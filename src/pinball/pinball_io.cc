#include "pinball/pinball_io.hh"

#include <istream>
#include <ostream>
#include <sstream>

#include "obs/metrics.hh"
#include "util/checksum.hh"
#include "util/logging.hh"

namespace looppoint {

void
writeFramedArtifact(std::ostream &os, const std::string &magic_base,
                    int version, const std::string &payload)
{
    LP_ASSERT(version >= 2); // version 1 is the read-only legacy format
    os << magic_base << version << '\n';
    os << "version " << version << '\n';
    os << "length " << payload.size() << '\n';
    os << payload;
    os << "checksum " << crcHex(crc32(payload)) << '\n';
}

LoadResult<FramedArtifact>
readFramedArtifact(std::istream &is, const std::string &magic_base,
                   int current_version)
{
    using Result = LoadResult<FramedArtifact>;

    std::string magic;
    if (!std::getline(is, magic))
        return Result::failure(LoadErrorKind::Truncated,
                               "empty stream (no magic line)");
    if (magic.compare(0, magic_base.size(), magic_base) != 0)
        return Result::failure(
            LoadErrorKind::BadMagic,
            "magic line '" + magic + "' does not start with '" +
                magic_base + "'");

    const std::string suffix = magic.substr(magic_base.size());
    if (suffix.empty() ||
        suffix.find_first_not_of("0123456789") != std::string::npos)
        return Result::failure(LoadErrorKind::BadMagic,
                               "malformed version suffix in magic "
                               "line '" + magic + "'");
    const long magic_version = std::stol(suffix);
    if (magic_version > current_version)
        return Result::failure(
            LoadErrorKind::UnknownVersion,
            "artifact version " + suffix + ", this build reads up to " +
                std::to_string(current_version));

    FramedArtifact out;
    out.version = static_cast<int>(magic_version);

    if (magic_version == 1) {
        // Legacy format: the rest of the stream is the bare payload.
        std::ostringstream rest;
        rest << is.rdbuf();
        out.payload = rest.str();
        return Result::success(std::move(out));
    }

    std::string key;
    long version_field = 0;
    if (!(is >> key >> version_field) || key != "version")
        return Result::failure(streamError(is, "version field"));
    if (version_field != magic_version)
        return Result::failure(
            LoadErrorKind::Parse,
            "version field (" + std::to_string(version_field) +
                ") disagrees with the magic line (" + suffix + ")");

    uint64_t length = 0;
    if (!(is >> key >> length) || key != "length")
        return Result::failure(streamError(is, "length field"));
    if (is.get() != '\n')
        return Result::failure(LoadErrorKind::Parse,
                               "length line has trailing junk");

    out.payload.resize(length);
    is.read(out.payload.data(), static_cast<std::streamsize>(length));
    if (static_cast<uint64_t>(is.gcount()) != length)
        return Result::failure(
            LoadErrorKind::Truncated,
            "payload ends after " + std::to_string(is.gcount()) +
                " of " + std::to_string(length) + " bytes");

    std::string crc_text;
    if (!(is >> key >> crc_text) || key != "checksum")
        return Result::failure(streamError(is, "checksum trailer"));
    uint32_t stored = 0;
    if (!parseCrcHex(crc_text, stored))
        return Result::failure(LoadErrorKind::Parse,
                               "malformed checksum '" + crc_text + "'");
    const uint32_t computed = crc32(out.payload);
    if (computed != stored) {
        MetricsRegistry::global()
            .counter("artifact.checksum.fail")
            .add();
        return Result::failure(
            LoadErrorKind::BadChecksum,
            "payload CRC32 " + crcHex(computed) +
                " does not match stored " + crcHex(stored));
    }
    MetricsRegistry::global().counter("artifact.checksum.ok").add();
    return Result::success(std::move(out));
}

void
saveOrderTable(std::ostream &os, const char *tag,
               const std::vector<std::vector<uint32_t>> &table)
{
    os << tag << ' ' << table.size() << '\n';
    for (const auto &row : table) {
        os << row.size();
        for (uint32_t tid : row)
            os << ' ' << tid;
        os << '\n';
    }
}

std::optional<LoadError>
loadOrderTable(std::istream &is, const char *tag,
               std::vector<std::vector<uint32_t>> &out)
{
    std::string got;
    size_t rows = 0;
    if (!(is >> got >> rows) || got != tag)
        return streamError(is, std::string("'") + tag +
                                   "' table header");
    out.assign(rows, {});
    for (auto &row : out) {
        size_t n = 0;
        if (!(is >> n))
            return streamError(is, std::string("'") + tag +
                                       "' row length");
        row.resize(n);
        for (auto &tid : row)
            if (!(is >> tid))
                return streamError(is, std::string("'") + tag +
                                           "' row entry");
    }
    return std::nullopt;
}

void
saveSyncTids(std::ostream &os, uint32_t num_threads)
{
    os << "synctids " << num_threads;
    for (uint32_t t = 0; t < num_threads; ++t)
        os << ' ' << t;
    os << '\n';
}

std::optional<LoadError>
loadSyncTids(std::istream &is, uint32_t num_threads)
{
    std::string key;
    uint32_t n = 0;
    if (!(is >> key >> n) || key != "synctids")
        return streamError(is, "'synctids' roster");
    if (n != num_threads)
        return LoadError{LoadErrorKind::Validation,
                         "sync-log tid roster has " + std::to_string(n) +
                             " entries for " +
                             std::to_string(num_threads) + " threads"};
    uint32_t prev = 0;
    for (uint32_t i = 0; i < n; ++i) {
        uint32_t tid = 0;
        if (!(is >> tid))
            return streamError(is, "'synctids' entry");
        if (i > 0 && tid <= prev) {
            const char *what =
                tid == prev ? "duplicate" : "unsorted";
            return LoadError{LoadErrorKind::Validation,
                             std::string(what) +
                                 " sync-log tid " + std::to_string(tid) +
                                 " in roster"};
        }
        if (tid != i)
            return LoadError{LoadErrorKind::Validation,
                             "sync-log tid roster entry " +
                                 std::to_string(i) + " is " +
                                 std::to_string(tid) +
                                 " (expected a dense [0, n) roster)"};
        prev = tid;
    }
    return std::nullopt;
}

std::optional<LoadError>
validateExecutionRecord(const char *what, uint32_t num_threads,
                        const std::vector<std::vector<uint32_t>> &lock_order,
                        const std::vector<std::vector<uint32_t>> &chunk_order,
                        const std::vector<uint64_t> &icounts,
                        const std::vector<uint64_t> &filtered_icounts)
{
    auto invalid = [&](std::string msg) {
        return LoadError{LoadErrorKind::Validation,
                         std::string(what) + ": " + std::move(msg)};
    };

    if (num_threads == 0)
        return invalid("thread count is zero");
    if (num_threads > kMaxArtifactThreads)
        return invalid("thread count " + std::to_string(num_threads) +
                       " exceeds the supported maximum " +
                       std::to_string(kMaxArtifactThreads));

    if (!icounts.empty() && icounts.size() != num_threads)
        return invalid("config declares " + std::to_string(num_threads) +
                       " threads but the icount table has " +
                       std::to_string(icounts.size()) + " entries");
    if (!filtered_icounts.empty() &&
        filtered_icounts.size() != num_threads)
        return invalid("config declares " + std::to_string(num_threads) +
                       " threads but the filtered-icount table has " +
                       std::to_string(filtered_icounts.size()) +
                       " entries");

    uint64_t total = 0;
    for (uint64_t v : icounts)
        if (__builtin_add_overflow(total, v, &total))
            return invalid("per-thread icounts overflow a 64-bit "
                           "global total");
    if (icounts.size() == filtered_icounts.size()) {
        for (size_t t = 0; t < icounts.size(); ++t)
            if (filtered_icounts[t] > icounts[t])
                return invalid(
                    "thread " + std::to_string(t) + " filtered icount " +
                    std::to_string(filtered_icounts[t]) +
                    " exceeds its total " + std::to_string(icounts[t]));
    }

    auto check_rows =
        [&](const char *tag,
            const std::vector<std::vector<uint32_t>> &table)
        -> std::optional<LoadError> {
        for (size_t row = 0; row < table.size(); ++row)
            for (uint32_t tid : table[row])
                if (tid >= num_threads)
                    return invalid(std::string(tag) + " row " +
                                   std::to_string(row) +
                                   " references tid " +
                                   std::to_string(tid) + " but only " +
                                   std::to_string(num_threads) +
                                   " threads exist");
        return std::nullopt;
    };
    if (auto err = check_rows("lock-order", lock_order))
        return err;
    if (auto err = check_rows("chunk-order", chunk_order))
        return err;
    return std::nullopt;
}

LoadError
streamError(const std::istream &is, const std::string &what)
{
    if (is.eof())
        return LoadError{LoadErrorKind::Truncated,
                         "stream ends inside " + what};
    return LoadError{LoadErrorKind::Parse, "malformed " + what};
}

} // namespace looppoint
