/**
 * @file
 * Shared serialization plumbing for checkpoint artifacts (pinballs and
 * region pinballs): the integrity-checked framing — magic line, format
 * version, payload length, CRC32 trailer — plus the order-table codec
 * both artifact types embed.
 *
 * Framing (version >= 2):
 *
 *   <magic-base><version>\n         e.g. looppoint-pinball-v2
 *   version <version>\n
 *   length <payload-bytes>\n
 *   <payload>                       exactly `length` bytes
 *   checksum <crc32-hex>\n          CRC32 of the payload bytes
 *
 * Version 1 artifacts (the legacy format: magic line followed by the
 * bare payload, no length or checksum) still load: readFramedArtifact
 * recognizes the v1 magic and slurps the rest of the stream as the
 * payload, so pre-existing checkpoints and fixtures remain usable.
 */

#ifndef LOOPPOINT_PINBALL_PINBALL_IO_HH
#define LOOPPOINT_PINBALL_PINBALL_IO_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "util/load_result.hh"

namespace looppoint {

/** A successfully de-framed artifact: its version and payload. */
struct FramedArtifact
{
    int version = 0;
    std::string payload;
};

/** Write the version/length/checksum framing around `payload`. */
void writeFramedArtifact(std::ostream &os, const std::string &magic_base,
                         int version, const std::string &payload);

/**
 * Read framing written by writeFramedArtifact (or a bare legacy v1
 * stream). `current_version` is the newest version this build parses;
 * newer artifacts report UnknownVersion.
 */
LoadResult<FramedArtifact> readFramedArtifact(std::istream &is,
                                              const std::string &magic_base,
                                              int current_version);

/** Serialize one tid order table ("locks"/"chunks" sections). */
void saveOrderTable(std::ostream &os, const char *tag,
                    const std::vector<std::vector<uint32_t>> &table);

/**
 * Parse an order table written by saveOrderTable into `out`. Returns
 * an error (with the offending table's tag in the message) instead of
 * calling fatal().
 */
std::optional<LoadError> loadOrderTable(
    std::istream &is, const char *tag,
    std::vector<std::vector<uint32_t>> &out);

/**
 * Serialize the participating-tid roster of the sync log (version >= 2
 * bodies): `synctids <n> 0 1 ... n-1`. Loaders require the roster to
 * be exactly [0, n) in order — duplicate or unsorted tids are how a
 * tampered sync log smuggles in threads the config never declared.
 */
void saveSyncTids(std::ostream &os, uint32_t num_threads);

/** Parse and validate a saveSyncTids() roster against `num_threads`. */
std::optional<LoadError> loadSyncTids(std::istream &is,
                                      uint32_t num_threads);

/**
 * Shared hostile-input checks over a parsed sync log + icount tables:
 * thread-count mismatches between the config and the tables, per-entry
 * filtered > total, total-icount overflow, and out-of-range tids in
 * the sync-log rows. `what` names the artifact in messages.
 */
std::optional<LoadError> validateExecutionRecord(
    const char *what, uint32_t num_threads,
    const std::vector<std::vector<uint32_t>> &lock_order,
    const std::vector<std::vector<uint32_t>> &chunk_order,
    const std::vector<uint64_t> &icounts,
    const std::vector<uint64_t> &filtered_icounts);

/** Largest thread count any artifact may declare (DoS guard: the
 * loaders allocate per-thread tables before validation completes). */
inline constexpr uint32_t kMaxArtifactThreads = 4096;

/** On extraction failure: Truncated when the stream ran dry, Parse
 * otherwise. */
LoadError streamError(const std::istream &is, const std::string &what);

} // namespace looppoint

#endif // LOOPPOINT_PINBALL_PINBALL_IO_HH
