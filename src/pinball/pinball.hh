/**
 * @file
 * Pinballs: portable, replayable checkpoints of a multi-threaded
 * execution (the PinPlay analog, Sections II and IV-C of the paper).
 *
 * A whole-program pinball captures everything needed to reproduce the
 * recorded execution under any functional scheduler:
 *
 *  - the execution configuration (threads, wait policy, seed);
 *  - the schedule-resolution log: the global order of successful lock
 *    acquisitions per lock and of dynamic-for chunk grants per kernel
 *    instance (the analog of PinPlay's shared-memory dependence
 *    files);
 *  - per-thread final instruction counts, used to verify replays.
 *
 * Our programs are regenerated from their descriptors instead of
 * storing a memory image: the (workload name, seed) pair plays the role
 * of the .text/.reg snapshot, which keeps pinballs tiny while
 * preserving the property the methodology needs — deterministic,
 * analysis-grade replay (see DESIGN.md, substitution table).
 */

#ifndef LOOPPOINT_PINBALL_PINBALL_HH
#define LOOPPOINT_PINBALL_PINBALL_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "exec/engine.hh"
#include "exec/listener.hh"
#include "util/load_result.hh"

namespace looppoint {

/** Ordered log of nondeterministic synchronization resolutions. */
struct SyncLog
{
    /** Per lock id: tids in acquisition order. */
    std::vector<std::vector<uint32_t>> lockOrder;
    /** Per run-list position: tids in chunk-grant order. */
    std::vector<std::vector<uint32_t>> chunkOrder;

    bool operator==(const SyncLog &other) const = default;
};

/** A recorded whole-program execution. */
struct Pinball
{
    std::string programName;
    ExecConfig config;
    SyncLog log;
    /** Per-thread total (unfiltered) instruction counts at record. */
    std::vector<uint64_t> threadIcounts;
    /** Per-thread main-image instruction counts at record. */
    std::vector<uint64_t> threadFilteredIcounts;

    /**
     * Serialize as a versioned, CRC32-checksummed artifact (format
     * version 2: magic, version, payload length, payload, checksum).
     */
    void save(std::ostream &os) const;
    /**
     * Parse a pinball saved with save() — current or legacy v1 format
     * — returning a structured error (truncation, bad checksum,
     * unknown version, hostile values) instead of calling fatal().
     */
    static LoadResult<Pinball> tryLoad(std::istream &is);
    /** tryLoad, with failures rethrown as FatalError (legacy API). */
    static Pinball load(std::istream &is);

    bool operator==(const Pinball &other) const = default;
};

/** SyncArbiter that logs every resolution (used while recording). */
class RecordingArbiter : public SyncArbiter
{
  public:
    RecordingArbiter(uint32_t num_locks, uint32_t run_list_size);

    void onLockAcquired(uint32_t lock_id, uint32_t tid) override;
    void onChunkFetched(uint32_t run_pos, uint32_t tid) override;

    SyncLog take() { return std::move(log); }
    const SyncLog &current() const { return log; }

  private:
    SyncLog log;
};

/** SyncArbiter that enforces a recorded resolution order. */
class ReplayArbiter : public SyncArbiter
{
  public:
    explicit ReplayArbiter(const SyncLog &log);

    bool mayAcquireLock(uint32_t lock_id, uint32_t tid) override;
    void onLockAcquired(uint32_t lock_id, uint32_t tid) override;
    bool mayFetchChunk(uint32_t run_pos, uint32_t tid) override;
    void onChunkFetched(uint32_t run_pos, uint32_t tid) override;

    /** True when every logged event has been replayed. */
    bool exhausted() const;

    /**
     * Replay-position serialization (one text line each way): lets a
     * region checkpoint shipped to another process resume constrained
     * replay at the exact event the warming pass had reached. The
     * loader must hold the identical SyncLog.
     */
    void saveCursors(std::ostream &os) const;
    void loadCursors(std::istream &is);

  private:
    const SyncLog *log;
    std::vector<size_t> lockCursor;
    std::vector<size_t> chunkCursor;
};

/**
 * Record a whole-program execution of `prog` under flow control.
 * `listener` (optional) observes the recorded execution.
 */
Pinball recordPinball(const Program &prog, const ExecConfig &cfg,
                      uint64_t quantum_instrs = 1000,
                      ExecListener *listener = nullptr);

/**
 * Replay a pinball: runs the program under the replay arbiter with the
 * given flow-control quantum (which may differ from the recording
 * quantum; the replay still reproduces the recorded resolution order).
 * Verifies per-thread filtered instruction counts against the pinball
 * and throws FatalError on divergence.
 */
void replayPinball(const Program &prog, const Pinball &pinball,
                   uint64_t quantum_instrs = 1000,
                   ExecListener *listener = nullptr);

/**
 * A region checkpoint: a snapshot of the execution engine mid-run plus
 * the global instruction position it was captured at. Copy-construct
 * cost is proportional to live state, not history.
 */
struct Checkpoint
{
    ExecutionEngine engine;
    uint64_t globalIcount = 0;
    uint64_t globalFilteredIcount = 0;
};

} // namespace looppoint

#endif // LOOPPOINT_PINBALL_PINBALL_HH
