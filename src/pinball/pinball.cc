#include "pinball/pinball.hh"

#include <istream>
#include <ostream>
#include <sstream>

#include "exec/driver.hh"
#include "pinball/pinball_io.hh"
#include "util/logging.hh"

namespace looppoint {

RecordingArbiter::RecordingArbiter(uint32_t num_locks,
                                   uint32_t run_list_size)
{
    log.lockOrder.resize(num_locks);
    log.chunkOrder.resize(run_list_size);
}

void
RecordingArbiter::onLockAcquired(uint32_t lock_id, uint32_t tid)
{
    LP_ASSERT(lock_id < log.lockOrder.size());
    log.lockOrder[lock_id].push_back(tid);
}

void
RecordingArbiter::onChunkFetched(uint32_t run_pos, uint32_t tid)
{
    LP_ASSERT(run_pos < log.chunkOrder.size());
    log.chunkOrder[run_pos].push_back(tid);
}

ReplayArbiter::ReplayArbiter(const SyncLog &log_)
    : log(&log_)
{
    lockCursor.assign(log->lockOrder.size(), 0);
    chunkCursor.assign(log->chunkOrder.size(), 0);
}

bool
ReplayArbiter::mayAcquireLock(uint32_t lock_id, uint32_t tid)
{
    LP_ASSERT(lock_id < lockCursor.size());
    const auto &order = log->lockOrder[lock_id];
    size_t cur = lockCursor[lock_id];
    if (cur >= order.size())
        fatal("replay: lock %u acquired more times than recorded",
              lock_id);
    return order[cur] == tid;
}

void
ReplayArbiter::onLockAcquired(uint32_t lock_id, uint32_t tid)
{
    const auto &order = log->lockOrder[lock_id];
    size_t &cur = lockCursor[lock_id];
    LP_ASSERT(cur < order.size() && order[cur] == tid);
    ++cur;
}

bool
ReplayArbiter::mayFetchChunk(uint32_t run_pos, uint32_t tid)
{
    LP_ASSERT(run_pos < chunkCursor.size());
    const auto &order = log->chunkOrder[run_pos];
    size_t cur = chunkCursor[run_pos];
    if (cur >= order.size())
        fatal("replay: kernel instance %u fetched more chunks than "
              "recorded", run_pos);
    return order[cur] == tid;
}

void
ReplayArbiter::onChunkFetched(uint32_t run_pos, uint32_t tid)
{
    const auto &order = log->chunkOrder[run_pos];
    size_t &cur = chunkCursor[run_pos];
    LP_ASSERT(cur < order.size() && order[cur] == tid);
    ++cur;
}

bool
ReplayArbiter::exhausted() const
{
    for (size_t i = 0; i < lockCursor.size(); ++i)
        if (lockCursor[i] != log->lockOrder[i].size())
            return false;
    for (size_t i = 0; i < chunkCursor.size(); ++i)
        if (chunkCursor[i] != log->chunkOrder[i].size())
            return false;
    return true;
}

void
ReplayArbiter::saveCursors(std::ostream &os) const
{
    os << "arbiter " << lockCursor.size();
    for (size_t v : lockCursor)
        os << ' ' << v;
    os << ' ' << chunkCursor.size();
    for (size_t v : chunkCursor)
        os << ' ' << v;
    os << '\n';
}

void
ReplayArbiter::loadCursors(std::istream &is)
{
    std::string key;
    size_t n = 0;
    if (!(is >> key >> n) || key != "arbiter" ||
        n != lockCursor.size())
        fatal("replay-arbiter cursor parse error: lock cursors");
    for (auto &v : lockCursor)
        if (!(is >> v))
            fatal("replay-arbiter cursor parse error: lock entry");
    if (!(is >> n) || n != chunkCursor.size())
        fatal("replay-arbiter cursor parse error: chunk cursors");
    for (auto &v : chunkCursor)
        if (!(is >> v))
            fatal("replay-arbiter cursor parse error: chunk entry");
}

Pinball
recordPinball(const Program &prog, const ExecConfig &cfg,
              uint64_t quantum_instrs, ExecListener *listener)
{
    RecordingArbiter rec(std::max<uint32_t>(1, prog.numLocks),
                         static_cast<uint32_t>(prog.runList.size()));
    ExecutionEngine engine(prog, cfg, &rec);
    RoundRobinDriver driver(engine, quantum_instrs);
    driver.run(listener);

    Pinball pb;
    pb.programName = prog.name;
    pb.config = cfg;
    pb.log = rec.take();
    for (uint32_t t = 0; t < cfg.numThreads; ++t) {
        pb.threadIcounts.push_back(engine.icount(t));
        pb.threadFilteredIcounts.push_back(engine.filteredIcount(t));
    }
    return pb;
}

void
replayPinball(const Program &prog, const Pinball &pinball,
              uint64_t quantum_instrs, ExecListener *listener)
{
    if (prog.name != pinball.programName)
        fatal("replay: pinball was recorded for program '%s', not '%s'",
              pinball.programName.c_str(), prog.name.c_str());
    ReplayArbiter rep(pinball.log);
    ExecutionEngine engine(prog, pinball.config, &rep);
    RoundRobinDriver driver(engine, quantum_instrs);
    driver.run(listener);

    if (!rep.exhausted())
        fatal("replay: recorded synchronization events were not fully "
              "consumed");
    for (uint32_t t = 0; t < pinball.config.numThreads; ++t) {
        if (engine.filteredIcount(t) != pinball.threadFilteredIcounts[t])
            fatal("replay divergence: thread %u executed %llu filtered "
                  "instructions, recorded %llu", t,
                  static_cast<unsigned long long>(
                      engine.filteredIcount(t)),
                  static_cast<unsigned long long>(
                      pinball.threadFilteredIcounts[t]));
    }
}

namespace {

constexpr const char *kPinballMagicBase = "looppoint-pinball-v";
constexpr int kPinballVersion = 2;

/** Guard against a hostile table-size field forcing a huge resize. */
constexpr uint64_t kMaxIcountEntries = kMaxArtifactThreads;

std::optional<LoadError>
parsePinballPayload(std::istream &is, int version, Pinball &pb)
{
    std::string key, value;
    if (!(is >> key >> pb.programName) || key != "program")
        return streamError(is, "'program' field");
    if (!(is >> key >> pb.config.numThreads) || key != "threads")
        return streamError(is, "'threads' field");
    if (!(is >> key >> value) || key != "waitpolicy")
        return streamError(is, "'waitpolicy' field");
    if (value == "active")
        pb.config.waitPolicy = WaitPolicy::Active;
    else if (value == "passive")
        pb.config.waitPolicy = WaitPolicy::Passive;
    else
        return LoadError{LoadErrorKind::Parse,
                         "unknown wait policy '" + value + "'"};
    if (!(is >> key >> pb.config.seed) || key != "seed")
        return streamError(is, "'seed' field");
    if (version >= 2) {
        if (auto err = loadSyncTids(is, pb.config.numThreads))
            return err;
    }
    if (auto err = loadOrderTable(is, "locks", pb.log.lockOrder))
        return err;
    if (auto err = loadOrderTable(is, "chunks", pb.log.chunkOrder))
        return err;

    auto load_icounts = [&](const char *tag,
                            std::vector<uint64_t> &out)
        -> std::optional<LoadError> {
        uint64_t n = 0;
        if (!(is >> key >> n) || key != tag)
            return streamError(is, std::string("'") + tag +
                                       "' table header");
        if (n > kMaxIcountEntries)
            return LoadError{LoadErrorKind::Validation,
                             std::string("'") + tag + "' table claims " +
                                 std::to_string(n) + " entries"};
        out.resize(n);
        for (auto &v : out)
            if (!(is >> v))
                return streamError(is, std::string("'") + tag +
                                           "' table entry");
        return std::nullopt;
    };
    if (auto err = load_icounts("icounts", pb.threadIcounts))
        return err;
    if (auto err = load_icounts("filtered", pb.threadFilteredIcounts))
        return err;

    return validateExecutionRecord("pinball", pb.config.numThreads,
                                   pb.log.lockOrder, pb.log.chunkOrder,
                                   pb.threadIcounts,
                                   pb.threadFilteredIcounts);
}

} // namespace

void
Pinball::save(std::ostream &os) const
{
    std::ostringstream payload;
    payload << "program " << programName << '\n';
    payload << "threads " << config.numThreads << '\n';
    payload << "waitpolicy "
            << (config.waitPolicy == WaitPolicy::Active ? "active"
                                                        : "passive")
            << '\n';
    payload << "seed " << config.seed << '\n';
    saveSyncTids(payload, config.numThreads);
    saveOrderTable(payload, "locks", log.lockOrder);
    saveOrderTable(payload, "chunks", log.chunkOrder);
    payload << "icounts " << threadIcounts.size();
    for (uint64_t v : threadIcounts)
        payload << ' ' << v;
    payload << '\n';
    payload << "filtered " << threadFilteredIcounts.size();
    for (uint64_t v : threadFilteredIcounts)
        payload << ' ' << v;
    payload << '\n';
    writeFramedArtifact(os, kPinballMagicBase, kPinballVersion,
                        payload.str());
}

LoadResult<Pinball>
Pinball::tryLoad(std::istream &is)
{
    auto framed = readFramedArtifact(is, kPinballMagicBase,
                                     kPinballVersion);
    if (!framed)
        return LoadResult<Pinball>::failure(framed.error());
    const int version = framed.value().version;
    std::istringstream payload(std::move(framed.value().payload));
    Pinball pb;
    if (auto err = parsePinballPayload(payload, version, pb))
        return LoadResult<Pinball>::failure(std::move(*err));
    return LoadResult<Pinball>::success(std::move(pb));
}

Pinball
Pinball::load(std::istream &is)
{
    auto result = tryLoad(is);
    if (!result)
        fatal("pinball load failed (%s)",
              result.error().describe().c_str());
    return std::move(result).value();
}

} // namespace looppoint
