#include "pinball/pinball.hh"

#include <istream>
#include <ostream>
#include <sstream>

#include "exec/driver.hh"
#include "util/logging.hh"

namespace looppoint {

RecordingArbiter::RecordingArbiter(uint32_t num_locks,
                                   uint32_t run_list_size)
{
    log.lockOrder.resize(num_locks);
    log.chunkOrder.resize(run_list_size);
}

void
RecordingArbiter::onLockAcquired(uint32_t lock_id, uint32_t tid)
{
    LP_ASSERT(lock_id < log.lockOrder.size());
    log.lockOrder[lock_id].push_back(tid);
}

void
RecordingArbiter::onChunkFetched(uint32_t run_pos, uint32_t tid)
{
    LP_ASSERT(run_pos < log.chunkOrder.size());
    log.chunkOrder[run_pos].push_back(tid);
}

ReplayArbiter::ReplayArbiter(const SyncLog &log_)
    : log(&log_)
{
    lockCursor.assign(log->lockOrder.size(), 0);
    chunkCursor.assign(log->chunkOrder.size(), 0);
}

bool
ReplayArbiter::mayAcquireLock(uint32_t lock_id, uint32_t tid)
{
    LP_ASSERT(lock_id < lockCursor.size());
    const auto &order = log->lockOrder[lock_id];
    size_t cur = lockCursor[lock_id];
    if (cur >= order.size())
        fatal("replay: lock %u acquired more times than recorded",
              lock_id);
    return order[cur] == tid;
}

void
ReplayArbiter::onLockAcquired(uint32_t lock_id, uint32_t tid)
{
    const auto &order = log->lockOrder[lock_id];
    size_t &cur = lockCursor[lock_id];
    LP_ASSERT(cur < order.size() && order[cur] == tid);
    ++cur;
}

bool
ReplayArbiter::mayFetchChunk(uint32_t run_pos, uint32_t tid)
{
    LP_ASSERT(run_pos < chunkCursor.size());
    const auto &order = log->chunkOrder[run_pos];
    size_t cur = chunkCursor[run_pos];
    if (cur >= order.size())
        fatal("replay: kernel instance %u fetched more chunks than "
              "recorded", run_pos);
    return order[cur] == tid;
}

void
ReplayArbiter::onChunkFetched(uint32_t run_pos, uint32_t tid)
{
    const auto &order = log->chunkOrder[run_pos];
    size_t &cur = chunkCursor[run_pos];
    LP_ASSERT(cur < order.size() && order[cur] == tid);
    ++cur;
}

bool
ReplayArbiter::exhausted() const
{
    for (size_t i = 0; i < lockCursor.size(); ++i)
        if (lockCursor[i] != log->lockOrder[i].size())
            return false;
    for (size_t i = 0; i < chunkCursor.size(); ++i)
        if (chunkCursor[i] != log->chunkOrder[i].size())
            return false;
    return true;
}

Pinball
recordPinball(const Program &prog, const ExecConfig &cfg,
              uint64_t quantum_instrs, ExecListener *listener)
{
    RecordingArbiter rec(std::max<uint32_t>(1, prog.numLocks),
                         static_cast<uint32_t>(prog.runList.size()));
    ExecutionEngine engine(prog, cfg, &rec);
    RoundRobinDriver driver(engine, quantum_instrs);
    driver.run(listener);

    Pinball pb;
    pb.programName = prog.name;
    pb.config = cfg;
    pb.log = rec.take();
    for (uint32_t t = 0; t < cfg.numThreads; ++t) {
        pb.threadIcounts.push_back(engine.icount(t));
        pb.threadFilteredIcounts.push_back(engine.filteredIcount(t));
    }
    return pb;
}

void
replayPinball(const Program &prog, const Pinball &pinball,
              uint64_t quantum_instrs, ExecListener *listener)
{
    if (prog.name != pinball.programName)
        fatal("replay: pinball was recorded for program '%s', not '%s'",
              pinball.programName.c_str(), prog.name.c_str());
    ReplayArbiter rep(pinball.log);
    ExecutionEngine engine(prog, pinball.config, &rep);
    RoundRobinDriver driver(engine, quantum_instrs);
    driver.run(listener);

    if (!rep.exhausted())
        fatal("replay: recorded synchronization events were not fully "
              "consumed");
    for (uint32_t t = 0; t < pinball.config.numThreads; ++t) {
        if (engine.filteredIcount(t) != pinball.threadFilteredIcounts[t])
            fatal("replay divergence: thread %u executed %llu filtered "
                  "instructions, recorded %llu", t,
                  static_cast<unsigned long long>(
                      engine.filteredIcount(t)),
                  static_cast<unsigned long long>(
                      pinball.threadFilteredIcounts[t]));
    }
}

namespace {

void
saveOrderTable(std::ostream &os, const char *tag,
               const std::vector<std::vector<uint32_t>> &table)
{
    os << tag << ' ' << table.size() << '\n';
    for (const auto &row : table) {
        os << row.size();
        for (uint32_t tid : row)
            os << ' ' << tid;
        os << '\n';
    }
}

std::vector<std::vector<uint32_t>>
loadOrderTable(std::istream &is, const char *tag)
{
    std::string got;
    size_t rows = 0;
    if (!(is >> got >> rows) || got != tag)
        fatal("pinball parse error: expected '%s' table", tag);
    std::vector<std::vector<uint32_t>> table(rows);
    for (auto &row : table) {
        size_t n = 0;
        if (!(is >> n))
            fatal("pinball parse error in '%s' table", tag);
        row.resize(n);
        for (auto &tid : row)
            if (!(is >> tid))
                fatal("pinball parse error in '%s' row", tag);
    }
    return table;
}

} // namespace

void
Pinball::save(std::ostream &os) const
{
    os << "looppoint-pinball-v1\n";
    os << "program " << programName << '\n';
    os << "threads " << config.numThreads << '\n';
    os << "waitpolicy "
       << (config.waitPolicy == WaitPolicy::Active ? "active" : "passive")
       << '\n';
    os << "seed " << config.seed << '\n';
    saveOrderTable(os, "locks", log.lockOrder);
    saveOrderTable(os, "chunks", log.chunkOrder);
    os << "icounts " << threadIcounts.size();
    for (uint64_t v : threadIcounts)
        os << ' ' << v;
    os << '\n';
    os << "filtered " << threadFilteredIcounts.size();
    for (uint64_t v : threadFilteredIcounts)
        os << ' ' << v;
    os << '\n';
}

Pinball
Pinball::load(std::istream &is)
{
    Pinball pb;
    std::string line, key, value;
    if (!std::getline(is, line) || line != "looppoint-pinball-v1")
        fatal("not a looppoint pinball (bad magic)");
    if (!(is >> key >> pb.programName) || key != "program")
        fatal("pinball parse error: program");
    if (!(is >> key >> pb.config.numThreads) || key != "threads")
        fatal("pinball parse error: threads");
    if (!(is >> key >> value) || key != "waitpolicy")
        fatal("pinball parse error: waitpolicy");
    if (value == "active")
        pb.config.waitPolicy = WaitPolicy::Active;
    else if (value == "passive")
        pb.config.waitPolicy = WaitPolicy::Passive;
    else
        fatal("pinball parse error: unknown wait policy '%s'",
              value.c_str());
    if (!(is >> key >> pb.config.seed) || key != "seed")
        fatal("pinball parse error: seed");
    pb.log.lockOrder = loadOrderTable(is, "locks");
    pb.log.chunkOrder = loadOrderTable(is, "chunks");

    size_t n = 0;
    if (!(is >> key >> n) || key != "icounts")
        fatal("pinball parse error: icounts");
    pb.threadIcounts.resize(n);
    for (auto &v : pb.threadIcounts)
        if (!(is >> v))
            fatal("pinball parse error: icounts values");
    if (!(is >> key >> n) || key != "filtered")
        fatal("pinball parse error: filtered");
    pb.threadFilteredIcounts.resize(n);
    for (auto &v : pb.threadFilteredIcounts)
        if (!(is >> v))
            fatal("pinball parse error: filtered values");
    return pb;
}

} // namespace looppoint
