/**
 * @file
 * The multi-process execution backend: a coordinator that shards
 * checkpointed region simulations across persistent worker processes.
 *
 * Topology: the coordinator forks the whole worker fleet ONCE, at
 * backend construction, before the warming pass has dirtied any
 * state — so the copy-on-write tax of fork (both the child faulting
 * pages it touches and the parent re-faulting every page it writes
 * after the fork) is paid on a near-empty image, one epoch for the
 * whole run. Forking per region would re-arm that tax on the full
 * working set for every region, which on a small host costs far more
 * than the explicit copy it avoids.
 *
 * Region checkpoints are *shipped* instead of inherited, split by
 * what dominates their size:
 *
 *  - the microarchitectural state (cache tag arrays, LRU clocks,
 *    prefetch counter, branch-predictor tables — megabytes) goes
 *    through a per-slot shared-memory arena: the coordinator exports
 *    it with one straight memcpy (MulticoreSim::exportMicroarchState)
 *    and the worker binds its caches zero-copy into the arena
 *    (adoptMicroarchState) and simulates in place;
 *  - the functional state (ExecutionEngine::save: cursors, rng
 *    streams, sync objects, block counts — kilobytes) and the replay
 *    arbiter cursors ride the per-worker socketpair as one state
 *    frame behind the task frame.
 *
 * Everything on the socket is CRC32-framed (dist/frame.hh,
 * dist/protocol.hh): the coordinator sends task + state frames, the
 * worker streams progress frames (one per attempt) and a final result
 * frame whose success payload is a journal-compatible completion
 * record. Keeping the full protocol on the socketpair is deliberate —
 * it is the seam the ROADMAP's multi-host farm plugs into (a remote
 * worker would receive the arena image as a third frame).
 *
 * This split ships exactly the *restart set* of a region — everything
 * detailed simulation does not reset on entry — so a worker's run is
 * bit-identical to the pool backend's deep-copy snapshot while moving
 * less state than the pool copies (no dependence rings, no stats, no
 * allocator churn).
 *
 * Fault tolerance: a worker that hits EOF mid-region without a result
 * frame (killed, crashed) or overruns `workerTimeoutSeconds` (wedged;
 * the coordinator SIGKILLs it) is a region failure like any other.
 * The attempts the worker consumed — counted from its progress
 * frames — are charged against the region's attempt budget; if budget
 * remains, the coordinator re-warms (replaying the exact warming stop
 * schedule, so the retry's warm state is bit-identical to the
 * original dispatch), forks a replacement worker for the dead slot,
 * and retries; otherwise the region drops and coverage renormalizes.
 *
 * Process hygiene: the coordinator must be single-threaded at every
 * fork (the caller resets any thread pool before constructing the
 * backend); workers create no threads, close every other worker's
 * descriptors (so EOF reliably means "this worker is gone"), and
 * leave via _exit — cleanly, with status 0, when the coordinator
 * closes their channel after the last region. An InjectedKill in a
 * worker raises SIGKILL on itself — under this backend a simulated
 * host death kills one worker process, not the run.
 */

#ifndef LOOPPOINT_DIST_REGION_FARM_HH
#define LOOPPOINT_DIST_REGION_FARM_HH

#include <sys/types.h>

#include <cstdint>
#include <deque>
#include <memory>
#include <functional>
#include <string>
#include <vector>

#include "dist/region_exec.hh"
#include "sim/config.hh"
#include "util/fault.hh"

namespace looppoint {

/** Host-side knobs plus the worker-side reconstruction context. */
struct ProcsBackendOptions
{
    /** Maximum concurrent worker processes (>= 1). */
    uint32_t workers = 1;
    /** SIGKILL a worker whose region has been in flight longer than
     * this many seconds; 0 disables the timeout. */
    double workerTimeoutSeconds = 0.0;
    /** Fault plan, forwarded to the worker-side attempt loop. */
    FaultPlan faults;

    /**
     * Checkpoint-shipping context: the coordinator builds the worker
     * simulator template from the same program and configuration it
     * warms with (workers inherit it copy-on-write at fork), and each
     * task restores a region's state from the arena + state frame.
     * All three pointers must outlive the backend.
     */
    const Program *prog = nullptr;
    ExecConfig execCfg;
    SimConfig simCfg;
    /** The recorded sync log; replay-arbiter cursors shipped in state
     * frames index into it. Required even for unconstrained runs. */
    const SyncLog *syncLog = nullptr;
    /** Arena size per slot: the coordinator sim's
     * microarchStateBytes() (a pure function of the configuration, so
     * worker sims agree on the layout). */
    size_t arenaBytes = 0;
};

/**
 * Re-warm to the start of region `region_index` and hand the warm
 * state to `use`. Called by the backend when a retry needs warm state
 * the dead worker took with it. The producer implements this by
 * replaying its warming pass with the exact original stop schedule.
 */
using RewarmFn = std::function<void(
    uint32_t region_index,
    const std::function<void(MulticoreSim &, const ReplayArbiter &)>
        &use)>;

/** See file comment. */
class ProcsBackend : public RegionExecBackend
{
  public:
    /** Maps the arenas and forks the whole worker fleet (the caller
     * must be single-threaded here). */
    ProcsBackend(ProcsBackendOptions opts, CompletionSink sink,
                 RewarmFn rewarm);
    /** SIGKILLs and reaps any still-live workers (unwind safety),
     * then unmaps the arenas. */
    ~ProcsBackend() override;

    void submit(const RegionWorkItem &item, MulticoreSim &warm_base,
                const ReplayArbiter &warm_arbiter) override;
    void finish() override;

    uint32_t workerDeaths() const override { return deaths; }
    uint32_t workerRespawns() const override { return respawns; }

  private:
    /** One worker slot; the slot index is the stable worker id. */
    struct Slot
    {
        /** The worker process exists (may be idle between regions). */
        bool live = false;
        /** A region is in flight on this slot. */
        bool busy = false;
        pid_t pid = -1;
        int fd = -1;
        /** MAP_SHARED checkpoint arena, opts.arenaBytes long. */
        void *arena = nullptr;
        std::string rxBuf;
        RegionWorkItem item;
        uint32_t attemptBase = 0;
        /** Last attempt index a progress frame announced; -1 = none. */
        int64_t lastProgress = -1;
        bool resultSeen = false;
        /** Dispatch timestamp (tracer clock, ns) for the trace and
         * the wedge timeout. */
        uint64_t dispatchNs = 0;
        bool timedOut = false;
        /** Non-empty when the worker sent garbage and was killed. */
        std::string protoError;
    };

    /** A region awaiting a respawn + retry (attempt budget remains). */
    struct Retry
    {
        RegionWorkItem item;
        uint32_t attemptBase = 0;
    };

    /** Fork a worker process into `slot_idx` (no task assigned). */
    void spawnWorker(uint32_t slot_idx);
    /** Ship a region to `slot_idx` (reviving a dead worker first):
     * export the microarch state into the slot arena, then send the
     * task frame and the functional-state frame. */
    void dispatch(uint32_t slot_idx, const RegionWorkItem &item,
                  uint32_t attempt_base, MulticoreSim &warm_base,
                  const ReplayArbiter &warm_arbiter);
    /** Worker-process body: task loop; leaves only via _exit. */
    [[noreturn]] void workerMain(int fd, void *arena);
    /**
     * Service worker channels: drain readable frames, reap exited
     * workers, enforce the wedge timeout. Blocks (in poll) until at
     * least one slot frees when `need_slot`.
     */
    void pump(bool need_slot);
    void handleFrames(Slot &slot);
    /** Emit the backend.task + region.sim trace spans for one
     * dispatch's conclusion (completion, death, or doomed attempt). */
    void recordTaskTrace(const Slot &slot,
                         const RegionCompletion &completion);
    /** EOF on a slot: reap the child; a mid-region EOF is a death.
     * Kills first so the wait is total even if the worker was merely
     * misdiagnosed as dead (read error on a live channel). */
    void reap(Slot &slot);
    /** Classification half of reap, also reached by pump's liveness
     * sweep with a status it already collected via WNOHANG: mark the
     * slot dead and either retry or finally fail its region. */
    void finishReap(Slot &slot, int status);
    /** Close idle workers' channels and wait for their clean exits. */
    void shutdownWorkers();
    uint32_t busyCount() const;
    bool sendCounted(int fd, const std::string &payload);

    ProcsBackendOptions opts;
    CompletionSink sink;
    RewarmFn rewarm;
    /** Pre-fork worker simulator template: constructed once by the
     * coordinator so every worker (and respawn) inherits it
     * copy-on-write instead of rebuilding it. Workers re-aim it per
     * task; the coordinator never touches it after construction. */
    std::unique_ptr<MulticoreSim> workerSim;
    std::vector<Slot> slots;
    std::deque<Retry> retries;
    uint32_t deaths = 0;
    uint32_t respawns = 0;
    /** Virtual trace track per worker slot, created lazily. */
    std::vector<uint32_t> workerTracks;
};

} // namespace looppoint

#endif // LOOPPOINT_DIST_REGION_FARM_HH
