#include "dist/frame.hh"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "pinball/pinball_io.hh"
#include "util/logging.hh"

namespace looppoint {

namespace {

/** Outer length prefix, little-endian (host order is not wire
 * order: a future multi-host transport must not care about peer
 * endianness). */
std::string
encodePrefix(uint32_t n)
{
    char b[4] = {static_cast<char>(n & 0xFF),
                 static_cast<char>((n >> 8) & 0xFF),
                 static_cast<char>((n >> 16) & 0xFF),
                 static_cast<char>((n >> 24) & 0xFF)};
    return std::string(b, 4);
}

uint32_t
decodePrefix(const char *b)
{
    return static_cast<uint32_t>(static_cast<unsigned char>(b[0])) |
           static_cast<uint32_t>(static_cast<unsigned char>(b[1])) << 8 |
           static_cast<uint32_t>(static_cast<unsigned char>(b[2])) << 16 |
           static_cast<uint32_t>(static_cast<unsigned char>(b[3])) << 24;
}

LoadResult<std::string>
decodeEnvelope(const std::string &envelope)
{
    std::istringstream is(envelope);
    auto framed =
        readFramedArtifact(is, kDistFrameMagicBase, kDistFrameVersion);
    if (!framed.ok())
        return LoadResult<std::string>::failure(framed.error());
    return LoadResult<std::string>::success(
        std::move(framed.value().payload));
}

} // namespace

std::string
encodeDistFrame(const std::string &payload)
{
    std::ostringstream os;
    writeFramedArtifact(os, kDistFrameMagicBase, kDistFrameVersion,
                        payload);
    std::string envelope = os.str();
    LP_ASSERT(envelope.size() <= kMaxDistFrameBytes);
    return encodePrefix(static_cast<uint32_t>(envelope.size())) +
           envelope;
}

LoadResult<std::string>
decodeDistFrame(const std::string &frame)
{
    if (frame.size() < 4)
        return LoadResult<std::string>::failure(
            {LoadErrorKind::Truncated,
             "dist frame shorter than its length prefix"});
    const uint32_t total = decodePrefix(frame.data());
    if (total > kMaxDistFrameBytes)
        return LoadResult<std::string>::failure(
            {LoadErrorKind::Validation,
             "dist frame announces " + std::to_string(total) +
                 " bytes, over the " +
                 std::to_string(kMaxDistFrameBytes) + " byte limit"});
    if (frame.size() < 4u + total)
        return LoadResult<std::string>::failure(
            {LoadErrorKind::Truncated,
             "dist frame truncated: prefix announces " +
                 std::to_string(total) + " bytes, got " +
                 std::to_string(frame.size() - 4)});
    if (frame.size() > 4u + total)
        return LoadResult<std::string>::failure(
            {LoadErrorKind::Validation,
             "dist frame has " +
                 std::to_string(frame.size() - 4 - total) +
                 " trailing bytes after the announced envelope"});
    return decodeEnvelope(frame.substr(4, total));
}

std::optional<LoadResult<std::string>>
tryExtractFrame(std::string &buf)
{
    if (buf.size() < 4)
        return std::nullopt;
    const uint32_t total = decodePrefix(buf.data());
    if (total > kMaxDistFrameBytes) {
        // Never wait for an absurd announced length to "complete":
        // that is how a corrupt prefix stalls the coordinator.
        return LoadResult<std::string>::failure(
            {LoadErrorKind::Validation,
             "dist frame announces " + std::to_string(total) +
                 " bytes, over the " +
                 std::to_string(kMaxDistFrameBytes) + " byte limit"});
    }
    if (buf.size() < 4u + total)
        return std::nullopt;
    auto result = decodeEnvelope(buf.substr(4, total));
    buf.erase(0, 4u + total);
    return result;
}

bool
writeFrameFd(int fd, const std::string &payload)
{
    const std::string frame = encodeDistFrame(payload);
    size_t off = 0;
    while (off < frame.size()) {
        const ssize_t n = ::send(fd, frame.data() + off,
                                 frame.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

LoadResult<std::string>
readFrameFd(int fd, std::string &buf, bool *clean_eof)
{
    if (clean_eof)
        *clean_eof = false;
    char chunk[4096];
    for (;;) {
        if (auto extracted = tryExtractFrame(buf))
            return *extracted;
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return LoadResult<std::string>::failure(
                {LoadErrorKind::Io,
                 std::string("dist frame read failed: ") +
                     std::strerror(errno)});
        }
        if (n == 0) {
            if (buf.empty()) {
                if (clean_eof)
                    *clean_eof = true;
                return LoadResult<std::string>::failure(
                    {LoadErrorKind::Io, "peer closed the channel"});
            }
            return LoadResult<std::string>::failure(
                {LoadErrorKind::Truncated,
                 "peer closed the channel mid-frame (" +
                     std::to_string(buf.size()) + " bytes buffered)"});
        }
        buf.append(chunk, static_cast<size_t>(n));
    }
}

LoadResult<std::string>
readFrameFd(int fd, bool *clean_eof)
{
    std::string buf;
    return readFrameFd(fd, buf, clean_eof);
}

} // namespace looppoint
