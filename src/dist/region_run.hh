/**
 * @file
 * The region attempt loop, shared by every execution backend.
 *
 * Checkpointed region simulation separates *producing* region work (a
 * serial warming pass that stops at each region start) from *executing*
 * it (warm snapshot in, metrics out). This file holds the execution
 * half's core: given a warm snapshot and a region's markers, run the
 * detailed simulation with the full retry/fault-injection/watchdog
 * semantics, identically whether the caller is the in-process thread
 * pool or a forked worker process. Keeping one implementation is what
 * makes the backends bit-identical by construction.
 *
 * Layering: lp_dist sits below lp_core (which links it) and above
 * lp_sim/lp_pinball, so both the pool backend (src/core) and the
 * worker process (src/dist) can call runRegionAttempts without a
 * dependency cycle.
 */

#ifndef LOOPPOINT_DIST_REGION_RUN_HH
#define LOOPPOINT_DIST_REGION_RUN_HH

#include <cstdint>
#include <functional>
#include <string>

#include "isa/program.hh"
#include "pinball/pinball.hh"
#include "profile/bbv.hh"
#include "sim/multicore.hh"
#include "util/fault.hh"

namespace looppoint {

/**
 * A deep snapshot of the warming simulation plus its private replay
 * arbiter. The arbiter is rebound in the constructor (the MulticoreSim
 * copy aliases the source's arbiter otherwise).
 */
struct WarmSnapshot
{
    MulticoreSim sim;
    ReplayArbiter arbiter;

    WarmSnapshot(const MulticoreSim &base,
                 const ReplayArbiter &base_arbiter, bool constrained)
        : sim(base), arbiter(base_arbiter)
    {
        if (constrained)
            sim.engine().setArbiter(&arbiter);
    }
};

/**
 * Everything a backend needs to simulate one region, independent of
 * where the work runs. Plain data: the procs backend serializes it
 * verbatim into a task frame.
 */
struct RegionWorkItem
{
    /** Index into LoopPointResult::regions (and the output arrays). */
    uint32_t index = 0;
    Marker start;
    Marker end;
    double multiplier = 1.0;
    uint64_t filteredIcount = 0;
    /** Resolved end-marker block; kInvalidBlock = run to completion.
     * Resolved by the producer so execution can never hit a
     * missing-block FatalError. */
    BlockId endBlock = kInvalidBlock;
    /** Divergence watchdog budget in instructions; 0 = no watchdog. */
    uint64_t budget = 0;
    /** 1 + regionRetries. */
    uint32_t maxAttempts = 1;
    bool constrained = false;

    bool operator==(const RegionWorkItem &other) const = default;
};

/** What one region's attempt loop produced. */
struct RegionRunResult
{
    bool ok = false;
    /** Attempts consumed, cumulative across retries-after-death (the
     * procs coordinator re-dispatches with an attempt base). */
    uint32_t attempts = 0;
    std::string error;
    SimMetrics metrics;
};

/**
 * Run the attempt loop for one region on a pristine warm state.
 *
 * `pristine` must hold the simulation warmed exactly to the region
 * start. The pool backend passes its private WarmSnapshot copy; a
 * procs worker passes its long-lived simulator after re-aiming it at
 * the region — functional state loaded from the shipped state frame,
 * caches bound into the shared-memory arena the coordinator exported
 * into (see dist/region_farm.hh).
 *
 * Semantics (kept exactly in sync with the historical in-line loop —
 * the backend bit-identicality tests depend on it):
 *  - attempts run in [attempt_base, item.maxAttempts); `progress` (if
 *    set) fires with the attempt index before each attempt, so the
 *    procs coordinator can account consumed attempts for a worker
 *    that dies mid-region;
 *  - with retries in play (maxAttempts > 1) every attempt runs on a
 *    fresh copy of the pristine state; the single-attempt default
 *    runs in place, with no extra deep copy on the fault-free path;
 *  - kind=throw faults raise InjectedFault (retryable); kind=diverge
 *    retargets the stop at an unreachable count so the watchdog
 *    budget fires; kind=kill fills `out` and throws InjectedKill (the
 *    pool backend lets it escape the phase, a worker process turns it
 *    into SIGKILL); kind=wedge hangs forever when `hang_on_wedge`
 *    (procs: worker-timeout territory) and degenerates to a throw
 *    otherwise so a pool-backed phase still terminates.
 *
 * On return `out` is fully written: ok + metrics on success, or
 * ok=false + the last attempt's error once the budget is exhausted.
 * Only InjectedKill propagates (after filling `out`).
 */
void runRegionAttempts(const RegionWorkItem &item,
                       MulticoreSim &pristine,
                       const ReplayArbiter &pristine_arbiter,
                       const FaultPlan &faults, RegionRunResult &out,
                       uint32_t attempt_base = 0,
                       const std::function<void(uint32_t)> &progress = {},
                       bool hang_on_wedge = false);

} // namespace looppoint

#endif // LOOPPOINT_DIST_REGION_RUN_HH
