/**
 * @file
 * Message codec for the multi-process region farm. Three message
 * types, each carried as one dist frame (see dist/frame.hh):
 *
 *   coordinator -> worker
 *     task      one RegionWorkItem + the attempt index to start from
 *
 *   worker -> coordinator
 *     progress  "attempt N is starting" — lets the coordinator account
 *               attempts consumed by a worker that dies mid-region
 *     result    the region's outcome; a successful result embeds a
 *               journal-compatible completion record
 *               (encodeJournalRecord), so the coordinator appends to
 *               the run journal exactly what an in-process run would
 *
 * Payloads are line-oriented text in the artifact idiom: sscanf with a
 * fixed field list, then a re-encode byte-equality check, so trailing
 * junk, lossy doubles, or tampered fields all surface as structured
 * Parse errors instead of silently skewed metrics.
 */

#ifndef LOOPPOINT_DIST_PROTOCOL_HH
#define LOOPPOINT_DIST_PROTOCOL_HH

#include <string>

#include "core/run_journal.hh"
#include "dist/region_run.hh"
#include "util/load_result.hh"

namespace looppoint {

/** coordinator -> worker: simulate this region. */
struct DistTaskMsg
{
    RegionWorkItem item;
    /** First attempt index to run (nonzero on retry after a death). */
    uint32_t attemptBase = 0;

    bool operator==(const DistTaskMsg &other) const = default;
};

/** worker -> coordinator: attempt `attempt` of `region` is starting. */
struct DistProgressMsg
{
    uint32_t region = 0;
    uint32_t attempt = 0;

    bool operator==(const DistProgressMsg &other) const = default;
};

/** worker -> coordinator: the region's final outcome. */
struct DistResultMsg
{
    uint32_t region = 0;
    bool ok = false;
    /** Wall seconds the worker spent on the region (its attempt loop
     * only; the coordinator separately measures dispatch-to-completion
     * for the trace). */
    double wallSeconds = 0.0;
    /** !ok only: attempts consumed and the last error. */
    uint32_t attempts = 0;
    std::string error;
    /** ok only: the journal-compatible completion record (carries the
     * metrics and the attempt count). */
    RunJournal::Record record;

    bool operator==(const DistResultMsg &other) const = default;
};

/**
 * coordinator -> worker: header line of the checkpoint state frame
 * that follows every task frame. The full frame payload is this line,
 * then (constrained regions only) one ReplayArbiter cursor line, then
 * the ExecutionEngine::save artifact. The microarchitectural state
 * (cache tags, predictor tables) does not ride the socket at all: the
 * coordinator exports it into the worker's shared-memory arena, and
 * `arenaBytes` lets the worker cross-check the arena layout before
 * binding its caches into it.
 */
struct DistStateHeader
{
    uint32_t region = 0;
    uint64_t arenaBytes = 0;
    bool constrained = false;

    bool operator==(const DistStateHeader &other) const = default;
};

/** First whitespace-delimited token of a payload ("task", "progress",
 * "result", or whatever a corrupt peer sent). */
std::string distMsgTag(const std::string &payload);

std::string encodeStateHeader(const DistStateHeader &h);
LoadResult<DistStateHeader> parseStateHeader(const std::string &line);

std::string encodeTaskMsg(const DistTaskMsg &msg);
LoadResult<DistTaskMsg> parseTaskMsg(const std::string &payload);

std::string encodeProgressMsg(const DistProgressMsg &msg);
LoadResult<DistProgressMsg> parseProgressMsg(const std::string &payload);

std::string encodeResultMsg(const DistResultMsg &msg);
LoadResult<DistResultMsg> parseResultMsg(const std::string &payload);

} // namespace looppoint

#endif // LOOPPOINT_DIST_PROTOCOL_HH
