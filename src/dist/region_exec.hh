/**
 * @file
 * The execution-backend seam of checkpointed region simulation.
 *
 * simulateRegionsCheckpointed is split into a *producer* — the
 * necessarily-serial warming pass that advances one execution in
 * program order and stops at every region start — and an *executor*
 * behind this interface. The producer hands each region's work item
 * plus the warm simulation state to the backend; the backend runs the
 * detailed simulations (wherever and however it likes) and reports
 * each region through the completion sink. Because both backends run
 * the same attempt loop (dist/region_run.hh) on the same warm states,
 * region metrics are bit-identical across backends and worker counts.
 *
 * Implementations:
 *  - pool  (src/core/region_exec.cc): in-process thread-pool fanout;
 *    submit deep-copies the warm state and queues the region, so
 *    warming overlaps detailed simulation.
 *  - procs (src/dist/region_farm.hh): coordinator forks a persistent
 *    worker fleet once, then ships each region's warm state to an
 *    idle worker as a checkpoint — microarchitectural state through a
 *    per-slot shared-memory arena, functional state in a frame on a
 *    CRC32-framed socketpair protocol (task/result/progress travel
 *    the same channel). A killed or wedged worker is just another
 *    region failure: the coordinator respawns and retries within the
 *    region's attempt budget, and renormalizes coverage if the region
 *    ultimately drops.
 */

#ifndef LOOPPOINT_DIST_REGION_EXEC_HH
#define LOOPPOINT_DIST_REGION_EXEC_HH

#include <cstdint>
#include <functional>

#include "dist/region_run.hh"

namespace looppoint {

/** One region's outcome, delivered by a backend to the producer. */
struct RegionCompletion
{
    RegionWorkItem item;
    RegionRunResult result;
    /** Wall seconds the region's attempt loop ran (host-side; not part
     * of the simulated results). */
    double wallSeconds = 0.0;
    /** Worker slot that ran the region (0 for inline execution). */
    uint32_t worker = 0;
    /**
     * The region died of InjectedKill (simulated host death). The
     * sink must record the outcome and nothing else — under the pool
     * backend the kill is about to unwind the whole phase, exactly
     * like a real host death would.
     */
    bool killed = false;
};

/**
 * Called by the backend once per submitted region, with the final
 * outcome. May run on any backend thread (the pool backend invokes it
 * from worker threads); implementations must only touch state that is
 * safe under that concurrency, exactly like the historical in-task
 * completion code. The procs backend invokes it only on the
 * coordinator thread.
 */
using CompletionSink = std::function<void(const RegionCompletion &)>;

/** See file comment. */
class RegionExecBackend
{
  public:
    virtual ~RegionExecBackend() = default;

    /**
     * Hand the backend one region to simulate. `warm_base` /
     * `warm_arbiter` hold the warming simulation stopped exactly at
     * the region start; they remain valid only for the duration of the
     * call, so a backend that defers execution must capture the state
     * (deep copy, fork, ...) before returning. May block when the
     * backend is saturated.
     */
    virtual void submit(const RegionWorkItem &item,
                        MulticoreSim &warm_base,
                        const ReplayArbiter &warm_arbiter) = 0;

    /**
     * Drain: block until every submitted region has reported through
     * the sink, including any backend-level retries. Rethrows the
     * first region exception that must escape the phase (the pool
     * backend's InjectedKill).
     */
    virtual void finish() = 0;

    /** Worker processes that died mid-region (procs backend). */
    virtual uint32_t workerDeaths() const { return 0; }
    /** Workers respawned to retry after a death (procs backend). */
    virtual uint32_t workerRespawns() const { return 0; }
};

} // namespace looppoint

#endif // LOOPPOINT_DIST_REGION_EXEC_HH
