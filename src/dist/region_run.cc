#include "dist/region_run.hh"

#include <chrono>
#include <limits>
#include <memory>
#include <thread>

#include "obs/trace.hh"

namespace looppoint {

void
runRegionAttempts(const RegionWorkItem &item, MulticoreSim &pristine,
                  const ReplayArbiter &pristine_arbiter,
                  const FaultPlan &faults, RegionRunResult &out,
                  uint32_t attempt_base,
                  const std::function<void(uint32_t)> &progress,
                  bool hang_on_wedge)
{
    Tracer &tracer = Tracer::global();
    const uint32_t idx = item.index;
    const uint32_t max_attempts = item.maxAttempts;
    for (uint32_t attempt = attempt_base; attempt < max_attempts;
         ++attempt) {
        if (progress)
            progress(attempt);
        // Per-attempt spans only matter when retries are in play; the
        // common single-attempt case is already covered by region.sim.
        ScopedSpan attempt_span(max_attempts > 1 ? &tracer : nullptr,
                                "region.attempt");
        attempt_span.arg("region", static_cast<uint64_t>(idx))
            .arg("attempt", attempt);
        try {
            const auto fault = faults.simFault(idx, attempt);
            if (fault == FaultSpec::Kind::Kill)
                throw InjectedKill("injected host death in region " +
                                   std::to_string(idx));
            if (fault == FaultSpec::Kind::Wedge) {
                if (hang_on_wedge) {
                    // A wedged worker: stall until the coordinator's
                    // --worker-timeout SIGKILLs this process.
                    for (;;)
                        std::this_thread::sleep_for(
                            std::chrono::seconds(1));
                }
                throw InjectedFault(
                    "injected wedge in region " + std::to_string(idx) +
                    ", attempt " + std::to_string(attempt) +
                    " (degenerates to a throw outside the procs "
                    "backend)");
            }
            if (fault == FaultSpec::Kind::Throw)
                throw InjectedFault("injected failure in region " +
                                    std::to_string(idx) + ", attempt " +
                                    std::to_string(attempt));
            const bool diverge = fault == FaultSpec::Kind::Diverge;

            // With retries in play, every attempt gets its own copy of
            // the pristine snapshot so a failed attempt's partial
            // progress cannot leak into the next; the single-attempt
            // default runs in place (no extra deep copy on the
            // fault-free path).
            std::unique_ptr<WarmSnapshot> scratch;
            MulticoreSim *sim = &pristine;
            if (max_attempts > 1) {
                scratch = std::make_unique<WarmSnapshot>(
                    pristine, pristine_arbiter, item.constrained);
                sim = &scratch->sim;
            }

            SimMetrics m;
            bool reached = true;
            if (item.endBlock == kInvalidBlock && !diverge) {
                m = sim->runDetailed();
            } else {
                // A diverge fault retargets the stop at a count no
                // execution can reach.
                const BlockId stop_block =
                    item.endBlock == kInvalidBlock ? 0 : item.endBlock;
                const uint64_t stop_count =
                    diverge ? std::numeric_limits<uint64_t>::max()
                            : item.end.count;
                m = sim->runDetailedUntilBudget(stop_block, stop_count,
                                                item.budget, &reached);
            }
            if (!reached)
                throw std::runtime_error(
                    "end marker not reached (divergent region; "
                    "watchdog budget " + std::to_string(item.budget) +
                    " instructions)");

            out.metrics = m;
            out.ok = true;
            out.attempts = attempt + 1;
            out.error.clear();
            return;
        } catch (const InjectedKill &) {
            out.ok = false;
            out.attempts = attempt + 1;
            out.error = "injected host death";
            throw; // simulated crash: the backend decides how it dies
        } catch (const std::exception &e) {
            out.ok = false;
            out.attempts = attempt + 1;
            out.error = e.what();
        }
    }
}

} // namespace looppoint
