/**
 * @file
 * Wire framing for the multi-process region farm's coordinator/worker
 * socketpair protocol.
 *
 * Each message travels as one *frame*: a 4-byte little-endian outer
 * length prefix followed by exactly that many bytes of an
 * integrity-checked artifact in the standard checkpoint framing
 * (pinball_io's magic/version/length/checksum envelope, magic base
 * "looppoint-dist-frame-v"):
 *
 *   <u32 LE total>                   bytes that follow
 *   looppoint-dist-frame-v2\n
 *   version 2\n
 *   length <payload-bytes>\n
 *   <payload>
 *   checksum <crc32-hex>\n
 *
 * The outer prefix makes frames self-delimiting on a byte stream (a
 * reader knows when a frame is complete without parsing it); the inner
 * envelope carries the CRC32 so a torn, truncated, or bit-flipped
 * frame surfaces as a structured LoadError, never as a silently
 * corrupted task or result. Decoders never trust the peer: the outer
 * length is bounded by kMaxDistFrameBytes before any allocation.
 */

#ifndef LOOPPOINT_DIST_FRAME_HH
#define LOOPPOINT_DIST_FRAME_HH

#include <cstdint>
#include <optional>
#include <string>

#include "util/load_result.hh"

namespace looppoint {

/** Magic base of the inner envelope ("looppoint-dist-frame-v2"). */
inline constexpr const char *kDistFrameMagicBase =
    "looppoint-dist-frame-v";

/** Current wire-protocol version. */
inline constexpr int kDistFrameVersion = 2;

/** Upper bound on one frame's encoded size (DoS guard: the reader
 * allocates the frame buffer before validating its contents). */
inline constexpr uint32_t kMaxDistFrameBytes = 64u * 1024 * 1024;

/** Encode `payload` into a complete frame (outer prefix + envelope). */
std::string encodeDistFrame(const std::string &payload);

/**
 * Decode one complete frame produced by encodeDistFrame. Returns the
 * payload, or a structured error: Truncated (bytes missing), Validation
 * (oversize or length mismatch), BadMagic / UnknownVersion /
 * BadChecksum / Parse from the inner envelope.
 */
LoadResult<std::string> decodeDistFrame(const std::string &frame);

/**
 * Incremental extraction from a receive buffer: if `buf` holds at
 * least one complete frame, consume its bytes from the front of `buf`
 * and return its decode result; return nullopt when more bytes are
 * needed. An oversize length prefix fails immediately (Validation)
 * without waiting for the announced bytes to arrive.
 */
std::optional<LoadResult<std::string>> tryExtractFrame(std::string &buf);

/**
 * Write one frame carrying `payload` to `fd`, handling short writes.
 * Uses send(MSG_NOSIGNAL) so a dead peer yields EPIPE, not SIGPIPE.
 * Returns false on any write error (the caller treats the peer as
 * dead).
 */
bool writeFrameFd(int fd, const std::string &payload);

/**
 * Blocking read of one complete frame from `fd`. On clean EOF before
 * any byte, returns an Io error and sets *clean_eof (the peer closed
 * the channel deliberately); EOF mid-frame is Truncated.
 *
 * `buf` carries bytes between calls: reads are chunked, so a read
 * that completes one frame usually slurps the head of the next. A
 * caller expecting more than one frame on the same channel MUST pass
 * the same buffer to every call, or the excess is silently dropped
 * and the stream desynchronizes.
 */
LoadResult<std::string> readFrameFd(int fd, std::string &buf,
                                    bool *clean_eof = nullptr);

/** One-shot convenience: readFrameFd with a throwaway buffer. Only
 * correct when at most one frame will ever arrive on `fd`. */
LoadResult<std::string> readFrameFd(int fd, bool *clean_eof = nullptr);

} // namespace looppoint

#endif // LOOPPOINT_DIST_FRAME_HH
