#include "dist/protocol.hh"

#include <cinttypes>
#include <cstdio>

namespace looppoint {

namespace {

LoadError
parseError(const char *what, const std::string &payload)
{
    std::string head = payload.substr(0, 96);
    for (char &c : head)
        if (c == '\n')
            c = ' ';
    return {LoadErrorKind::Parse,
            std::string("malformed ") + what + " message: '" + head +
                (payload.size() > 96 ? "...'" : "'")};
}

} // namespace

std::string
distMsgTag(const std::string &payload)
{
    const size_t end = payload.find_first_of(" \n");
    return payload.substr(0, end);
}

std::string
encodeStateHeader(const DistStateHeader &h)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "state region=%" PRIu32 " arena=%" PRIu64
                  " constrained=%u",
                  h.region, h.arenaBytes, h.constrained ? 1 : 0);
    return buf;
}

LoadResult<DistStateHeader>
parseStateHeader(const std::string &line)
{
    DistStateHeader h;
    unsigned constrained = 0;
    int n = std::sscanf(line.c_str(),
                        "state region=%" SCNu32 " arena=%" SCNu64
                        " constrained=%u",
                        &h.region, &h.arenaBytes, &constrained);
    if (n != 3 || constrained > 1)
        return LoadResult<DistStateHeader>::failure(
            parseError("state", line));
    h.constrained = constrained != 0;
    if (encodeStateHeader(h) != line)
        return LoadResult<DistStateHeader>::failure(
            parseError("state", line));
    return LoadResult<DistStateHeader>::success(h);
}

std::string
encodeTaskMsg(const DistTaskMsg &msg)
{
    const RegionWorkItem &it = msg.item;
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "task region=%" PRIu32 " start=%" PRIu64 ":%" PRIu64
        " end=%" PRIu64 ":%" PRIu64 " mult=%.17g icount=%" PRIu64
        " endblock=%" PRIu32 " budget=%" PRIu64
        " max_attempts=%" PRIu32 " attempt_base=%" PRIu32
        " constrained=%u",
        it.index, static_cast<uint64_t>(it.start.pc), it.start.count,
        static_cast<uint64_t>(it.end.pc), it.end.count, it.multiplier,
        it.filteredIcount, it.endBlock, it.budget, it.maxAttempts,
        msg.attemptBase, it.constrained ? 1 : 0);
    return buf;
}

LoadResult<DistTaskMsg>
parseTaskMsg(const std::string &payload)
{
    DistTaskMsg msg;
    RegionWorkItem &it = msg.item;
    uint64_t start_pc = 0, end_pc = 0;
    unsigned constrained = 0;
    int n = std::sscanf(
        payload.c_str(),
        "task region=%" SCNu32 " start=%" SCNu64 ":%" SCNu64
        " end=%" SCNu64 ":%" SCNu64 " mult=%lg icount=%" SCNu64
        " endblock=%" SCNu32 " budget=%" SCNu64
        " max_attempts=%" SCNu32 " attempt_base=%" SCNu32
        " constrained=%u",
        &it.index, &start_pc, &it.start.count, &end_pc, &it.end.count,
        &it.multiplier, &it.filteredIcount, &it.endBlock, &it.budget,
        &it.maxAttempts, &msg.attemptBase, &constrained);
    if (n != 12)
        return LoadResult<DistTaskMsg>::failure(
            parseError("task", payload));
    it.start.pc = start_pc;
    it.end.pc = end_pc;
    it.constrained = constrained != 0;
    if (encodeTaskMsg(msg) != payload)
        return LoadResult<DistTaskMsg>::failure(
            parseError("task", payload));
    return LoadResult<DistTaskMsg>::success(std::move(msg));
}

std::string
encodeProgressMsg(const DistProgressMsg &msg)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "progress region=%" PRIu32 " attempt=%" PRIu32,
                  msg.region, msg.attempt);
    return buf;
}

LoadResult<DistProgressMsg>
parseProgressMsg(const std::string &payload)
{
    DistProgressMsg msg;
    int n = std::sscanf(payload.c_str(),
                        "progress region=%" SCNu32 " attempt=%" SCNu32,
                        &msg.region, &msg.attempt);
    if (n != 2 || encodeProgressMsg(msg) != payload)
        return LoadResult<DistProgressMsg>::failure(
            parseError("progress", payload));
    return LoadResult<DistProgressMsg>::success(msg);
}

std::string
encodeResultMsg(const DistResultMsg &msg)
{
    char buf[256];
    if (msg.ok) {
        std::snprintf(buf, sizeof(buf),
                      "result region=%" PRIu32 " ok=1 wall=%.17g\n",
                      msg.region, msg.wallSeconds);
        return buf + encodeJournalRecord(msg.record);
    }
    std::snprintf(buf, sizeof(buf),
                  "result region=%" PRIu32
                  " ok=0 wall=%.17g attempts=%" PRIu32 " error=",
                  msg.region, msg.wallSeconds, msg.attempts);
    return buf + msg.error;
}

LoadResult<DistResultMsg>
parseResultMsg(const std::string &payload)
{
    DistResultMsg msg;
    unsigned ok = 0;
    int n = std::sscanf(payload.c_str(),
                        "result region=%" SCNu32 " ok=%u wall=%lg",
                        &msg.region, &ok, &msg.wallSeconds);
    if (n != 3 || ok > 1)
        return LoadResult<DistResultMsg>::failure(
            parseError("result", payload));
    msg.ok = ok != 0;
    if (msg.ok) {
        // "result ...\n<journal record>" — the record line carries the
        // metrics and the attempt count.
        const size_t nl = payload.find('\n');
        if (nl == std::string::npos)
            return LoadResult<DistResultMsg>::failure(
                parseError("result", payload));
        auto rec = parseJournalRecord(payload.substr(nl + 1));
        if (!rec || rec->regionIndex != msg.region)
            return LoadResult<DistResultMsg>::failure(
                parseError("result", payload));
        msg.record = *rec;
        msg.attempts = rec->attempts;
    } else {
        const std::string marker = " error=";
        const size_t pos = payload.find(marker);
        if (pos == std::string::npos ||
            payload.find('\n') != std::string::npos)
            return LoadResult<DistResultMsg>::failure(
                parseError("result", payload));
        msg.error = payload.substr(pos + marker.size());
        if (std::sscanf(payload.c_str(),
                        "result region=%*u ok=%*u wall=%*g "
                        "attempts=%" SCNu32,
                        &msg.attempts) != 1)
            return LoadResult<DistResultMsg>::failure(
                parseError("result", payload));
    }
    if (encodeResultMsg(msg) != payload)
        return LoadResult<DistResultMsg>::failure(
            parseError("result", payload));
    return LoadResult<DistResultMsg>::success(std::move(msg));
}

} // namespace looppoint
