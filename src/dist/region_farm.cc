#include "dist/region_farm.hh"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>

#include "dist/frame.hh"
#include "dist/protocol.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace looppoint {

namespace {

/** Format a double exactly like ScopedSpan::arg(double) does, so the
 * coordinator-emitted region.sim events parse identically in
 * lp_report. */
std::string
argDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
argU64(uint64_t v)
{
    return std::to_string(v);
}

std::string
describeExit(int status)
{
    if (WIFSIGNALED(status))
        return std::string("killed by signal ") +
               std::to_string(WTERMSIG(status));
    if (WIFEXITED(status))
        return "exited with status " + std::to_string(WEXITSTATUS(status));
    return "exited abnormally";
}

} // namespace

ProcsBackend::ProcsBackend(ProcsBackendOptions opts_,
                           CompletionSink sink_, RewarmFn rewarm_)
    : opts(std::move(opts_)), sink(std::move(sink_)),
      rewarm(std::move(rewarm_))
{
    LP_ASSERT(opts.workers >= 1);
    LP_ASSERT(opts.prog != nullptr && opts.syncLog != nullptr &&
              opts.arenaBytes > 0);
    slots.resize(opts.workers);
    workerTracks.assign(opts.workers, UINT32_MAX);

    for (Slot &slot : slots) {
        slot.arena = ::mmap(nullptr, opts.arenaBytes,
                            PROT_READ | PROT_WRITE,
                            MAP_SHARED | MAP_ANONYMOUS, -1, 0);
        if (slot.arena == MAP_FAILED)
            fatal("procs backend: mmap(%zu) failed: %s",
                  opts.arenaBytes, std::strerror(errno));
    }

    // Build the worker simulator once, pre-fork: every worker (and
    // every respawn) inherits it copy-on-write instead of paying its
    // own multi-millisecond construction. Workers never write the
    // cache arrays (those rebind into the shared arena), so the big
    // allocations stay physically shared across the fleet.
    workerSim = std::make_unique<MulticoreSim>(*opts.prog, opts.execCfg,
                                               opts.simCfg, nullptr);
    if (workerSim->microarchStateBytes() != opts.arenaBytes)
        fatal("procs backend: arena size %zu does not match the "
              "worker simulator's microarch state (%zu bytes)",
              opts.arenaBytes, workerSim->microarchStateBytes());

    // Fork the whole fleet now, while the coordinator image is still
    // small and clean: one copy-on-write epoch for the entire run
    // instead of one per region (see the file comment).
    for (uint32_t i = 0; i < opts.workers; ++i)
        spawnWorker(i);
}

ProcsBackend::~ProcsBackend()
{
    // Unwind safety: never leave orphan workers simulating.
    for (Slot &slot : slots) {
        if (slot.live) {
            ::kill(slot.pid, SIGKILL);
            int status = 0;
            while (::waitpid(slot.pid, &status, 0) < 0 &&
                   errno == EINTR) {
            }
            if (slot.fd >= 0)
                ::close(slot.fd);
            slot.live = false;
            slot.busy = false;
        }
        if (slot.arena != nullptr) {
            ::munmap(slot.arena, opts.arenaBytes);
            slot.arena = nullptr;
        }
    }
}

uint32_t
ProcsBackend::busyCount() const
{
    uint32_t n = 0;
    for (const Slot &slot : slots)
        n += slot.busy ? 1 : 0;
    return n;
}

bool
ProcsBackend::sendCounted(int fd, const std::string &payload)
{
    using clock = std::chrono::steady_clock;
    MetricsRegistry &reg = MetricsRegistry::global();
    const auto t0 = clock::now();
    const std::string frame = encodeDistFrame(payload);
    size_t off = 0;
    bool ok = true;
    while (off < frame.size()) {
        const ssize_t n = ::send(fd, frame.data() + off,
                                 frame.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                // State frames outgrow the socket buffer. The worker
                // is guaranteed to be draining (it reads every frame
                // before it simulates), so waiting for space cannot
                // deadlock; a dead peer surfaces as POLLERR and then
                // a send failure.
                pollfd pfd{fd, POLLOUT, 0};
                while (::poll(&pfd, 1, -1) < 0 && errno == EINTR) {
                }
                continue;
            }
            ok = false;
            break;
        }
        off += static_cast<size_t>(n);
    }
    reg.counter("backend.procs.frames_tx").add();
    reg.counter("backend.procs.bytes_tx").add(off);
    reg.counter("backend.procs.protocol_us")
        .add(static_cast<uint64_t>(
            std::chrono::duration<double, std::micro>(clock::now() - t0)
                .count()));
    return ok;
}

void
ProcsBackend::spawnWorker(uint32_t slot_idx)
{
    Slot &slot = slots[slot_idx];
    LP_ASSERT(!slot.live && slot.fd < 0);

    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
        fatal("procs backend: socketpair failed: %s",
              std::strerror(errno));

    // Flush stdio so the child does not replay buffered output, and
    // note the coordinator must be single-threaded here (the caller
    // tears down its thread pool before selecting this backend).
    std::fflush(nullptr);
    const pid_t pid = ::fork();
    if (pid < 0)
        fatal("procs backend: fork failed: %s", std::strerror(errno));

    if (pid == 0) {
        // Worker: keep only this worker's channel. Closing every other
        // worker's descriptor is what makes EOF on a channel mean
        // "that worker is gone" — an inherited duplicate would hold
        // the channel open past its owner's death.
        ::close(fds[0]);
        for (const Slot &other : slots) {
            if (other.fd >= 0)
                ::close(other.fd);
        }
        workerMain(fds[1], slot.arena);
        // workerMain never returns.
    }

    ::close(fds[1]);
    const int flags = ::fcntl(fds[0], F_GETFL, 0);
    ::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK);

    slot.live = true;
    slot.pid = pid;
    slot.fd = fds[0];
    slot.rxBuf.clear();

    MetricsRegistry::global().counter("backend.procs.spawns").add();
}

void
ProcsBackend::dispatch(uint32_t slot_idx, const RegionWorkItem &item,
                       uint32_t attempt_base, MulticoreSim &warm_base,
                       const ReplayArbiter &warm_arbiter)
{
    Slot &slot = slots[slot_idx];
    LP_ASSERT(!slot.busy);
    if (!slot.live)
        spawnWorker(slot_idx);

    slot.busy = true;
    slot.item = item;
    slot.attemptBase = attempt_base;
    slot.lastProgress = -1;
    slot.resultSeen = false;
    slot.timedOut = false;
    slot.protoError.clear();
    slot.dispatchNs = Tracer::global().nowNs();

    // Ship the checkpoint: microarchitectural state into the shared
    // arena (one memcpy, adopted zero-copy on the other side), the
    // functional state and replay cursors over the socket.
    warm_base.exportMicroarchState(slot.arena);

    DistStateHeader header;
    header.region = item.index;
    header.arenaBytes = opts.arenaBytes;
    header.constrained = item.constrained;
    std::ostringstream state;
    state << encodeStateHeader(header) << '\n';
    if (item.constrained)
        warm_arbiter.saveCursors(state);
    warm_base.engine().save(state);
    const std::string state_payload = state.str();

    MetricsRegistry &reg = MetricsRegistry::global();
    reg.counter("backend.procs.dispatches").add();
    reg.counter("backend.procs.ship_bytes")
        .add(opts.arenaBytes + state_payload.size());

    DistTaskMsg task;
    task.item = item;
    task.attemptBase = attempt_base;
    if (!sendCounted(slot.fd, encodeTaskMsg(task)) ||
        !sendCounted(slot.fd, state_payload)) {
        // The worker died before reading its task; the reap path will
        // classify the death when the channel reports EOF.
        warn("procs backend: worker %u rejected its task frames",
             slot_idx);
    }
}

void
ProcsBackend::workerMain(int fd, void *arena)
{
    using clock = std::chrono::steady_clock;

    // One simulator per worker process, inherited copy-on-write from
    // the coordinator's pre-fork template (the ctor validated its
    // arena size) and re-aimed at each task by loading the shipped
    // functional state and binding its caches into the shared arena.
    MulticoreSim &sim = *workerSim;
    ReplayArbiter arbiter(*opts.syncLog);

    // One receive buffer for the whole channel lifetime: each read
    // that completes a frame usually slurps the head of the next one
    // (task and state frames arrive back to back).
    std::string rx;

    for (;;) {
        bool clean_eof = false;
        auto task_frame = readFrameFd(fd, rx, &clean_eof);
        if (!task_frame.ok())
            ::_exit(clean_eof ? 0 : 2); // clean EOF = shutdown signal
        auto task = parseTaskMsg(task_frame.value());
        if (!task.ok())
            ::_exit(2);
        const RegionWorkItem item = task.value().item;
        const uint32_t attempt_base = task.value().attemptBase;

        auto state_frame = readFrameFd(fd, rx, &clean_eof);
        if (!state_frame.ok()) {
            ::_exit(2);
        }
        const std::string &state = state_frame.value();
        const size_t nl = state.find('\n');
        if (nl == std::string::npos)
            ::_exit(2);
        auto header = parseStateHeader(state.substr(0, nl));
        if (!header.ok() || header.value().region != item.index ||
            header.value().arenaBytes != opts.arenaBytes ||
            header.value().constrained != item.constrained)
            ::_exit(2);

        try {
            std::istringstream iss(state.substr(nl + 1));
            arbiter = ReplayArbiter(*opts.syncLog);
            if (item.constrained) {
                arbiter.loadCursors(iss);
                iss.ignore(
                    std::numeric_limits<std::streamsize>::max(), '\n');
            }
            sim.engine() = ExecutionEngine::load(
                iss, *opts.prog,
                item.constrained ? &arbiter : nullptr);
            sim.adoptMicroarchState(arena);
        } catch (...) {
            ::_exit(2);
        }

        const auto t0 = clock::now();
        RegionRunResult res;
        try {
            runRegionAttempts(
                item, sim, arbiter, opts.faults, res, attempt_base,
                [&](uint32_t attempt) {
                    DistProgressMsg progress;
                    progress.region = item.index;
                    progress.attempt = attempt;
                    writeFrameFd(fd, encodeProgressMsg(progress));
                },
                /*hang_on_wedge=*/true);
        } catch (const InjectedKill &) {
            // Simulated host death: under this backend it takes down
            // one worker process, exactly like a real crash would.
            ::raise(SIGKILL);
            ::_exit(3); // unreachable
        } catch (...) {
            ::_exit(2);
        }

        DistResultMsg out;
        out.region = item.index;
        out.ok = res.ok;
        out.wallSeconds =
            std::chrono::duration<double>(clock::now() - t0).count();
        if (res.ok) {
            out.record.regionIndex = item.index;
            out.record.start = item.start;
            out.record.end = item.end;
            out.record.multiplier = item.multiplier;
            out.record.attempts = res.attempts;
            out.record.metrics = res.metrics;
            out.attempts = res.attempts;
        } else {
            out.attempts = res.attempts;
            out.error = res.error;
        }
        writeFrameFd(fd, encodeResultMsg(out));
    }
}

void
ProcsBackend::submit(const RegionWorkItem &item,
                     MulticoreSim &warm_base,
                     const ReplayArbiter &warm_arbiter)
{
    // Find a free slot, draining completions (blocking if saturated).
    // Prefer a live idle worker over reviving a dead slot: the latter
    // costs a fork against the now-dirty coordinator image.
    for (;;) {
        int dead_idle = -1;
        for (uint32_t i = 0; i < slots.size(); ++i) {
            if (slots[i].busy)
                continue;
            if (slots[i].live) {
                dispatch(i, item, 0, warm_base, warm_arbiter);
                return;
            }
            if (dead_idle < 0)
                dead_idle = static_cast<int>(i);
        }
        if (dead_idle >= 0) {
            dispatch(static_cast<uint32_t>(dead_idle), item, 0,
                     warm_base, warm_arbiter);
            return;
        }
        pump(/*need_slot=*/true);
    }
}

void
ProcsBackend::handleFrames(Slot &slot)
{
    using clock = std::chrono::steady_clock;
    MetricsRegistry &reg = MetricsRegistry::global();
    for (;;) {
        const auto t0 = clock::now();
        auto extracted = tryExtractFrame(slot.rxBuf);
        reg.counter("backend.procs.protocol_us")
            .add(static_cast<uint64_t>(
                std::chrono::duration<double, std::micro>(clock::now() -
                                                          t0)
                    .count()));
        if (!extracted)
            return;
        reg.counter("backend.procs.frames_rx").add();
        if (!extracted->ok() || !slot.busy) {
            // A frame from an idle worker is as much a protocol
            // violation as a garbled one.
            slot.protoError = "protocol error from worker: " +
                              (extracted->ok()
                                   ? std::string("unsolicited frame")
                                   : extracted->error().describe());
            ::kill(slot.pid, SIGKILL);
            return;
        }
        const std::string &payload = extracted->value();
        const std::string tag = distMsgTag(payload);
        if (tag == "progress") {
            auto msg = parseProgressMsg(payload);
            if (!msg.ok() || msg.value().region != slot.item.index) {
                slot.protoError = "protocol error from worker: bad "
                                  "progress frame";
                ::kill(slot.pid, SIGKILL);
                return;
            }
            slot.lastProgress = msg.value().attempt;
        } else if (tag == "result") {
            auto msg = parseResultMsg(payload);
            const bool identity_ok =
                msg.ok() && !slot.resultSeen &&
                msg.value().region == slot.item.index &&
                (!msg.value().ok ||
                 (msg.value().record.start == slot.item.start &&
                  msg.value().record.end == slot.item.end &&
                  msg.value().record.multiplier ==
                      slot.item.multiplier));
            if (!identity_ok) {
                slot.protoError = "protocol error from worker: bad "
                                  "result frame";
                ::kill(slot.pid, SIGKILL);
                return;
            }
            const DistResultMsg &result = msg.value();
            slot.resultSeen = true;
            // The slot frees immediately; the worker stays live,
            // blocked in readFrame waiting for its next region.
            slot.busy = false;

            RegionCompletion completion;
            completion.item = slot.item;
            completion.result.ok = result.ok;
            completion.result.attempts = result.attempts;
            completion.result.error = result.error;
            if (result.ok)
                completion.result.metrics = result.record.metrics;
            completion.wallSeconds = result.wallSeconds;
            completion.worker =
                static_cast<uint32_t>(&slot - slots.data());
            recordTaskTrace(slot, completion);
            sink(completion);
        } else {
            slot.protoError = "protocol error from worker: unknown "
                              "message tag '" + tag + "'";
            ::kill(slot.pid, SIGKILL);
            return;
        }
    }
}

void
ProcsBackend::recordTaskTrace(const Slot &slot,
                              const RegionCompletion &completion)
{
    Tracer &tracer = Tracer::global();
    if (!tracer.enabled())
        return;
    const uint32_t worker =
        static_cast<uint32_t>(&slot - slots.data());
    if (workerTracks[worker] == UINT32_MAX)
        workerTracks[worker] = tracer.virtualTrack(
            "worker " + std::to_string(worker));
    const uint64_t now = tracer.nowNs();
    const uint64_t dur =
        now > slot.dispatchNs ? now - slot.dispatchNs : 0;

    // Per-worker utilization: one backend.task span per dispatch on
    // the worker's own track (spans on a worker track are sequential,
    // so they trivially nest).
    TraceEvent task_ev;
    task_ev.name = "backend.task";
    task_ev.phase = 'X';
    task_ev.tsNs = slot.dispatchNs;
    task_ev.durNs = dur;
    task_ev.track = workerTracks[worker];
    task_ev.args = {
        {"region", argU64(slot.item.index), false},
        {"worker", argU64(worker), false},
        {"attempt_base", argU64(slot.attemptBase), false},
        {"ok", argU64(completion.result.ok ? 1 : 0), false},
    };
    tracer.record(std::move(task_ev));

    // The region.sim span the pool backend would have emitted, placed
    // on the region's virtual track with the same args, so lp_report's
    // per-region table is backend-agnostic.
    TraceEvent sim_ev;
    sim_ev.name = "region.sim";
    sim_ev.phase = 'X';
    sim_ev.tsNs = slot.dispatchNs;
    sim_ev.durNs = dur;
    sim_ev.track = tracer.virtualTrack(
        "region " + std::to_string(slot.item.index));
    sim_ev.args = {
        {"region", argU64(slot.item.index), false},
        {"multiplier", argDouble(slot.item.multiplier), false},
        {"icount", argU64(slot.item.filteredIcount), false},
    };
    if (completion.result.ok) {
        const SimMetrics &m = completion.result.metrics;
        sim_ev.args.push_back({"cycles", argU64(m.cycles), false});
        sim_ev.args.push_back(
            {"instructions", argU64(m.instructions), false});
        sim_ev.args.push_back({"ipc", argDouble(m.ipc()), false});
        sim_ev.args.push_back(
            {"l2_mpki", argDouble(m.l2Mpki()), false});
    }
    sim_ev.args.push_back(
        {"ok", argU64(completion.result.ok ? 1 : 0), false});
    sim_ev.args.push_back(
        {"attempts", argU64(completion.result.attempts), false});
    sim_ev.args.push_back({"worker", argU64(worker), false});
    tracer.record(std::move(sim_ev));
}

void
ProcsBackend::reap(Slot &slot)
{
    // The EOF that lands here usually means the worker already exited,
    // but one caller reaches reap on a read *error*, where the worker
    // may still be alive — and a blocking waitpid on a live worker
    // would deadlock the coordinator. SIGKILL first: a no-op on a
    // zombie, and it makes the waitpid below total either way.
    ::kill(slot.pid, SIGKILL);
    int status = 0;
    while (::waitpid(slot.pid, &status, 0) < 0 && errno == EINTR) {
    }
    finishReap(slot, status);
}

void
ProcsBackend::finishReap(Slot &slot, int status)
{
    ::close(slot.fd);
    slot.fd = -1;
    slot.live = false;

    if (!slot.busy)
        return; // idle worker exit (shutdown, or killed after result)
    slot.busy = false;

    // Worker death mid-region: charge the attempts it consumed (it was
    // inside `lastProgress` when it died; with no progress frame seen,
    // charge the attempt it was dispatched with) and either retry with
    // the remaining budget or finally fail the region.
    ++deaths;
    MetricsRegistry::global().counter("backend.procs.deaths").add();
    const uint32_t consumed = static_cast<uint32_t>(
        slot.lastProgress >= 0 ? slot.lastProgress + 1
                               : slot.attemptBase + 1);

    std::string why;
    if (slot.timedOut)
        why = "worker timed out (wedged) and was killed";
    else if (!slot.protoError.empty())
        why = slot.protoError;
    else
        why = "worker process died mid-region (" +
              describeExit(status) + ")";

    if (consumed < slot.item.maxAttempts) {
        retries.push_back(Retry{slot.item, consumed});
        warn("procs backend: region %u: %s; retrying (attempt %u of "
             "%u)",
             slot.item.index, why.c_str(), consumed + 1,
             slot.item.maxAttempts);
        // The trace still shows the doomed dispatch on the worker
        // track.
        RegionCompletion dead;
        dead.item = slot.item;
        dead.result.ok = false;
        dead.result.attempts = consumed;
        dead.result.error = why;
        recordTaskTrace(slot, dead);
        return;
    }

    RegionCompletion completion;
    completion.item = slot.item;
    completion.result.ok = false;
    completion.result.attempts = consumed;
    completion.result.error = why;
    completion.wallSeconds =
        static_cast<double>(Tracer::global().nowNs() -
                            slot.dispatchNs) /
        1e9;
    completion.worker = static_cast<uint32_t>(&slot - slots.data());
    recordTaskTrace(slot, completion);
    sink(completion);
}

void
ProcsBackend::pump(bool need_slot)
{
    for (;;) {
        if (busyCount() == 0)
            return;

        std::vector<pollfd> fds;
        std::vector<uint32_t> fd_slot;
        for (uint32_t i = 0; i < slots.size(); ++i) {
            if (!slots[i].busy)
                continue;
            fds.push_back(pollfd{slots[i].fd, POLLIN, 0});
            fd_slot.push_back(i);
        }

        // Poll timeout: a bounded heartbeat even when waiting for a
        // slot — never block indefinitely on the channels alone. Each
        // heartbeat runs the liveness sweep below, so a worker death
        // whose EOF is somehow lost (or a kernel-side lost wakeup)
        // degrades to a short delay instead of a coordinator hang.
        // The wedge timeout needs finer resolution when armed.
        int timeout_ms = need_slot ? 250 : 0;
        if (opts.workerTimeoutSeconds > 0.0)
            timeout_ms = need_slot ? 50 : 0;

        int rc = ::poll(fds.data(),
                        static_cast<nfds_t>(fds.size()), timeout_ms);
        if (rc < 0 && errno != EINTR)
            fatal("procs backend: poll failed: %s",
                  std::strerror(errno));
        for (size_t f = 0; f < fds.size(); ++f) {
            if (!(fds[f].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            Slot &slot = slots[fd_slot[f]];
            bool eof = false;
            char chunk[4096];
            for (;;) {
                const ssize_t n =
                    ::read(slot.fd, chunk, sizeof(chunk));
                if (n > 0) {
                    slot.rxBuf.append(chunk,
                                      static_cast<size_t>(n));
                    MetricsRegistry::global()
                        .counter("backend.procs.bytes_rx")
                        .add(static_cast<uint64_t>(n));
                    continue;
                }
                if (n == 0) {
                    eof = true;
                    break;
                }
                if (errno == EINTR)
                    continue;
                if (errno == EAGAIN || errno == EWOULDBLOCK)
                    break;
                eof = true; // treat read errors as a dead channel
                break;
            }
            handleFrames(slot);
            if (eof)
                reap(slot);
        }

        // Liveness sweep: notice any worker that exited without its
        // EOF having surfaced yet. Normally the closed channel reports
        // first and reap() does the waiting; this sweep is the backstop
        // that keeps a missed EOF — and an *idle* worker dying, whose
        // channel is not even polled — from lingering. Draining the
        // channel before classifying preserves any result frames the
        // worker flushed before it died.
        for (uint32_t i = 0; i < slots.size(); ++i) {
            Slot &slot = slots[i];
            if (!slot.live)
                continue;
            int status = 0;
            const pid_t rcw = ::waitpid(slot.pid, &status, WNOHANG);
            if (rcw != slot.pid)
                continue;
            char chunk[4096];
            for (;;) {
                const ssize_t n = ::read(slot.fd, chunk, sizeof(chunk));
                if (n > 0) {
                    slot.rxBuf.append(chunk, static_cast<size_t>(n));
                    continue;
                }
                if (n < 0 && errno == EINTR)
                    continue;
                break;
            }
            handleFrames(slot);
            finishReap(slot, status);
        }

        // Wedge timeout: SIGKILL overdue workers; the EOF that
        // follows takes the normal death path.
        if (opts.workerTimeoutSeconds > 0.0) {
            const uint64_t now = Tracer::global().nowNs();
            for (Slot &slot : slots) {
                if (!slot.busy || slot.timedOut)
                    continue;
                const double in_flight_s =
                    static_cast<double>(now - slot.dispatchNs) / 1e9;
                if (in_flight_s > opts.workerTimeoutSeconds) {
                    slot.timedOut = true;
                    ::kill(slot.pid, SIGKILL);
                }
            }
        }

        if (!need_slot)
            return;
        for (const Slot &slot : slots)
            if (!slot.busy)
                return;
    }
}

void
ProcsBackend::shutdownWorkers()
{
    // Closing the channel is the shutdown signal: each worker's next
    // readFrame sees a clean EOF and _exits(0).
    for (Slot &slot : slots) {
        LP_ASSERT(!slot.busy);
        if (!slot.live)
            continue;
        ::close(slot.fd);
        slot.fd = -1;
    }
    // Bounded wait: a worker stuck mid-syscall (or wedged by an
    // injected fault after its result) must not hang the coordinator's
    // exit path. Give the fleet a grace window to see the EOF, then
    // SIGKILL stragglers — at this point every region result is
    // already in hand, so the kill loses nothing.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    for (Slot &slot : slots) {
        if (!slot.live)
            continue;
        int status = 0;
        for (;;) {
            const pid_t rc = ::waitpid(slot.pid, &status, WNOHANG);
            if (rc == slot.pid)
                break;
            if (rc < 0 && errno != EINTR)
                break;
            if (std::chrono::steady_clock::now() >= deadline) {
                ::kill(slot.pid, SIGKILL);
                while (::waitpid(slot.pid, &status, 0) < 0 &&
                       errno == EINTR) {
                }
                break;
            }
            // Fine-grained: a clean exit lands within a scheduler
            // quantum, and this wait sits on the phase's tail.
            ::usleep(500);
        }
        slot.live = false;
    }
}

void
ProcsBackend::finish()
{
    // Drain every in-flight worker.
    while (busyCount() > 0)
        pump(/*need_slot=*/true);

    // Retries: regions whose worker died with attempt budget left.
    // Each needs warm state the dead worker took with it, so the
    // producer re-warms (replaying the exact original stop schedule —
    // the retried region's warm state is bit-identical to the first
    // dispatch) and we run the retry to completion before the next.
    while (!retries.empty()) {
        Retry retry = retries.front();
        retries.pop_front();
        ++respawns;
        MetricsRegistry::global()
            .counter("backend.procs.respawns")
            .add();
        // Prefer a surviving worker for the retry; a dead slot would
        // cost a fresh fork against the dirty coordinator image.
        uint32_t slot_idx = 0;
        for (uint32_t i = 0; i < slots.size(); ++i) {
            if (slots[i].live && !slots[i].busy) {
                slot_idx = i;
                break;
            }
        }
        rewarm(retry.item.index,
               [&](MulticoreSim &sim, const ReplayArbiter &arbiter) {
                   dispatch(slot_idx, retry.item, retry.attemptBase,
                            sim, arbiter);
               });
        while (busyCount() > 0)
            pump(/*need_slot=*/true);
    }

    shutdownWorkers();
}

} // namespace looppoint
