#include "analysis/artifact_audit.hh"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "core/region_checkpoint.hh"
#include "store/artifact_store.hh"
#include "util/logging.hh"

namespace looppoint {

namespace {

constexpr char kPass[] = "audit";
/** Relative tolerance for Eq. 2 weight-closure checks. */
constexpr double kWeightTolerance = 1e-6;

bool
closeRel(double a, double b, double tol)
{
    const double scale = std::max(std::fabs(a), std::fabs(b));
    return std::fabs(a - b) <= tol * std::max(scale, 1.0);
}

// ------------------------------------------------------------- markers

void
auditMarker(const Marker &m, const char *role, const std::string &loc,
            const std::unordered_map<Addr, BlockId> &header_by_pc,
            const Dcfg &dcfg, DiagnosticSink &sink)
{
    if (m.isProgramBoundary())
        return; // program start/end sentinel
    auto it = header_by_pc.find(m.pc);
    if (it == header_by_pc.end()) {
        sink.error(kPass, loc,
                   strFormat("%s marker pc %#llx is not a main-image "
                             "loop header in the DCFG profile",
                             role,
                             static_cast<unsigned long long>(m.pc)));
        return;
    }
    const uint64_t execs = dcfg.blockExecs(it->second);
    if (m.count == 0 || m.count > execs)
        sink.error(kPass, loc,
                   strFormat("%s marker count %llu outside the "
                             "profiled execution count (%llu) of pc "
                             "%#llx",
                             role,
                             static_cast<unsigned long long>(m.count),
                             static_cast<unsigned long long>(execs),
                             static_cast<unsigned long long>(m.pc)));
}

void
auditMarkers(const AuditContext &ctx, DiagnosticSink &sink)
{
    const Program &p = *ctx.prog;
    const Dcfg &dcfg = *ctx.dcfg;
    std::unordered_map<Addr, BlockId> header_by_pc;
    for (BlockId b : dcfg.mainImageLoopHeaders())
        header_by_pc.emplace(p.blocks[b].pc, b);

    const LoopPointResult &r = *ctx.result;
    for (size_t i = 0; i < r.slices.size(); ++i) {
        const std::string loc = strFormat("slice %zu", i);
        auditMarker(r.slices[i].start, "start", loc, header_by_pc,
                    dcfg, sink);
        auditMarker(r.slices[i].end, "end", loc, header_by_pc, dcfg,
                    sink);
    }
    for (size_t i = 0; i < r.regions.size(); ++i) {
        const std::string loc = strFormat("region %zu", i);
        auditMarker(r.regions[i].start, "start", loc, header_by_pc,
                    dcfg, sink);
        auditMarker(r.regions[i].end, "end", loc, header_by_pc, dcfg,
                    sink);
    }
}

// ------------------------------------------------------------- weights

void
auditWeights(const AuditContext &ctx, DiagnosticSink &sink)
{
    const LoopPointResult &r = *ctx.result;

    if (r.assignment.size() != r.slices.size())
        sink.error(kPass, "clustering",
                   strFormat("assignment covers %zu slices but the "
                             "profile has %zu",
                             r.assignment.size(), r.slices.size()));
    for (size_t i = 0; i < r.assignment.size(); ++i)
        if (r.assignment[i] >= r.chosenK)
            sink.error(kPass, strFormat("slice %zu", i),
                       strFormat("assigned to cluster %u but only %u "
                                 "clusters were chosen",
                                 r.assignment[i], r.chosenK));

    // Per-cluster slice population, for the Eq. 2 reproduction check.
    std::map<uint32_t, uint64_t> cluster_work;
    for (size_t i = 0;
         i < std::min(r.assignment.size(), r.slices.size()); ++i)
        cluster_work[r.assignment[i]] +=
            r.slices[i].filteredIcount;

    std::set<uint32_t> seen_clusters;
    double weight_sum = 0.0;
    double region_work = 0.0;
    for (size_t i = 0; i < r.regions.size(); ++i) {
        const LoopPointRegion &reg = r.regions[i];
        const std::string loc = strFormat("region %zu", i);
        if (reg.cluster >= r.chosenK)
            sink.error(kPass, loc,
                       strFormat("references cluster %u but only %u "
                                 "clusters were chosen",
                                 reg.cluster, r.chosenK));
        if (!seen_clusters.insert(reg.cluster).second)
            sink.error(kPass, loc,
                       strFormat("cluster %u has more than one "
                                 "representative region",
                                 reg.cluster));
        if (reg.sliceIndex >= r.slices.size()) {
            sink.error(kPass, loc,
                       strFormat("representative slice %u out of "
                                 "range (%zu slices)",
                                 reg.sliceIndex, r.slices.size()));
            continue;
        }
        const SliceRecord &rep = r.slices[reg.sliceIndex];
        if (reg.sliceIndex < r.assignment.size() &&
            r.assignment[reg.sliceIndex] != reg.cluster)
            sink.error(kPass, loc,
                       strFormat("representative slice %u belongs to "
                                 "cluster %u, not %u",
                                 reg.sliceIndex,
                                 r.assignment[reg.sliceIndex],
                                 reg.cluster));
        if (!(reg.start == rep.start) || !(reg.end == rep.end))
            sink.error(kPass, loc,
                       "region markers differ from its "
                       "representative slice's markers");
        if (reg.filteredIcount != rep.filteredIcount)
            sink.error(kPass, loc,
                       strFormat("region filtered icount %llu differs "
                                 "from its slice's %llu",
                                 static_cast<unsigned long long>(
                                     reg.filteredIcount),
                                 static_cast<unsigned long long>(
                                     rep.filteredIcount)));
        if (!(reg.multiplier > 0.0) ||
            !std::isfinite(reg.multiplier)) {
            sink.error(kPass, loc,
                       strFormat("non-positive or non-finite Eq. 2 "
                                 "multiplier %g",
                                 reg.multiplier));
            continue;
        }
        // Eq. 2: multiplier * rep work must reproduce the cluster's
        // slice population.
        const double scaled = reg.multiplier *
                              static_cast<double>(reg.filteredIcount);
        const auto work = cluster_work.find(reg.cluster);
        if (work != cluster_work.end() &&
            !closeRel(scaled,
                      static_cast<double>(work->second),
                      kWeightTolerance))
            sink.error(kPass, loc,
                       strFormat("Eq. 2 multiplier %g scales the "
                                 "representative to %.0f filtered "
                                 "instructions, but cluster %u holds "
                                 "%llu",
                                 reg.multiplier, scaled, reg.cluster,
                                 static_cast<unsigned long long>(
                                     work->second)));
        region_work += scaled;
        if (r.totalFilteredIcount > 0)
            weight_sum += scaled /
                          static_cast<double>(r.totalFilteredIcount);
    }

    if (!r.regions.empty() && r.totalFilteredIcount > 0 &&
        !closeRel(weight_sum, 1.0, kWeightTolerance))
        sink.error(kPass, "clustering",
                   strFormat("cluster weights sum to %.9f, not 1 "
                             "(scaled region work %.0f vs. total "
                             "filtered icount %llu)",
                             weight_sum, region_work,
                             static_cast<unsigned long long>(
                                 r.totalFilteredIcount)));
}

// ------------------------------------------------------------ pinballs

void
auditPinball(const Pinball &pb, uint32_t expected_threads,
             const std::string &loc, DiagnosticSink &sink)
{
    std::ostringstream os;
    pb.save(os);
    std::istringstream is(os.str());
    auto reloaded = Pinball::tryLoad(is);
    if (!reloaded.ok()) {
        sink.error(kPass, loc,
                   strFormat("recording does not round-trip through "
                             "its serialization: %s",
                             reloaded.error().describe().c_str()));
        return;
    }
    const uint32_t threads = pb.config.numThreads;
    if (pb.threadIcounts.size() != threads ||
        pb.threadFilteredIcounts.size() != threads)
        sink.error(kPass, loc,
                   strFormat("thread roster mismatch: %u configured "
                             "threads, %zu icount rows, %zu filtered "
                             "rows",
                             threads, pb.threadIcounts.size(),
                             pb.threadFilteredIcounts.size()));
    if (expected_threads != 0 && threads != expected_threads)
        sink.error(kPass, loc,
                   strFormat("recording captured %u threads but the "
                             "run is configured for %u",
                             threads, expected_threads));
}

void
auditPinballFile(const std::string &path, DiagnosticSink &sink)
{
    std::ifstream is(path, std::ios::binary);
    const std::string loc = strFormat("pinball %s", path.c_str());
    if (!is) {
        sink.error(kPass, loc, "artifact cannot be opened");
        return;
    }
    auto pb = Pinball::tryLoad(is);
    if (!pb.ok())
        sink.error(kPass, loc,
                   strFormat("artifact does not parse: %s",
                             pb.error().describe().c_str()));
}

void
auditRegionPinballs(const AuditContext &ctx, DiagnosticSink &sink)
{
    const auto rps = exportRegionPinballs(*ctx.app, ctx.input,
                                          *ctx.opts, *ctx.result);
    const LoopPointResult &r = *ctx.result;
    for (size_t i = 0; i < rps.size(); ++i) {
        const std::string loc = strFormat("region pinball %zu", i);
        std::ostringstream os;
        rps[i].save(os);
        std::istringstream is(os.str());
        auto reloaded = RegionPinball::tryLoad(is);
        if (!reloaded.ok()) {
            sink.error(kPass, loc,
                       strFormat("checkpoint frame does not parse: "
                                 "%s",
                                 reloaded.error().describe().c_str()));
            continue;
        }
        if (!(reloaded.value() == rps[i]))
            sink.error(kPass, loc,
                       "checkpoint frame does not round-trip "
                       "bit-identically");
        if (ctx.pinball &&
            rps[i].config.numThreads !=
                ctx.pinball->config.numThreads)
            sink.error(kPass, loc,
                       strFormat("thread roster %u does not match "
                                 "the recording's %u",
                                 rps[i].config.numThreads,
                                 ctx.pinball->config.numThreads));
        if (i < r.regions.size() &&
            (!(rps[i].start == r.regions[i].start) ||
             !(rps[i].end == r.regions[i].end) ||
             rps[i].multiplier != r.regions[i].multiplier))
            sink.error(kPass, loc,
                       "region identity (markers, multiplier) "
                       "differs from the analysis result");
    }
}

// ------------------------------------------------------------- journal

void
auditJournal(const AuditContext &ctx, DiagnosticSink &sink)
{
    const std::string loc =
        strFormat("journal %s", ctx.journalPath.c_str());
    RunJournal journal(ctx.journalPath, *ctx.journalKey);
    if (auto err = journal.load(true)) {
        sink.error(kPass, loc,
                   strFormat("journal does not load: %s",
                             err->describe().c_str()));
        return;
    }
    if (journal.droppedRecords() > 0)
        sink.warning(kPass, loc,
                     strFormat("%zu torn or corrupt trailing "
                               "record(s) dropped",
                               journal.droppedRecords()));
    if (!ctx.result)
        return;
    const auto &regions = ctx.result->regions;
    for (const RunJournal::Record &rec : journal.snapshot()) {
        if (rec.regionIndex >= regions.size()) {
            sink.error(kPass, loc,
                       strFormat("record references region %u but "
                                 "the analysis selected %zu regions",
                                 rec.regionIndex, regions.size()));
            continue;
        }
        const LoopPointRegion &reg = regions[rec.regionIndex];
        if (!(rec.start == reg.start) || !(rec.end == reg.end) ||
            rec.multiplier != reg.multiplier)
            sink.error(kPass, loc,
                       strFormat("record for region %u does not "
                                 "match the region's identity "
                                 "(markers, multiplier)",
                                 rec.regionIndex));
    }
}

// --------------------------------------------------------------- store

/** record < profile < cluster < sim/fullsim in the stage DAG. */
int
stageRank(const std::string &stage)
{
    if (stage == "record")
        return 0;
    if (stage == "profile")
        return 1;
    if (stage == "cluster")
        return 2;
    if (stage == "sim" || stage == "fullsim")
        return 3;
    return -1;
}

bool
isHexHash(const std::string &s)
{
    if (s.size() != 40)
        return false;
    return s.find_first_not_of("0123456789abcdef") ==
           std::string::npos;
}

void
auditStore(const AuditContext &ctx, DiagnosticSink &sink)
{
    const std::string loc = strFormat("store %s", ctx.storeDir.c_str());
    ArtifactStore store(ctx.storeDir);
    const size_t corrupt = store.verify();
    if (corrupt > 0)
        sink.error(kPass, loc,
                   strFormat("%zu object(s) failed hash "
                             "verification or are missing",
                             corrupt));

    const auto entries = store.entries();
    std::unordered_map<std::string, int> rank_by_hash;
    for (const auto &e : entries) {
        auto [it, inserted] =
            rank_by_hash.try_emplace(e.hash, stageRank(e.stage));
        if (!inserted)
            it->second = std::min(it->second, stageRank(e.stage));
    }

    for (const auto &e : entries) {
        const int rank = stageRank(e.stage);
        if (rank < 0) {
            sink.warning(kPass, loc,
                         strFormat("manifest entry with unknown "
                                   "stage '%s'",
                                   e.stage.c_str()));
            continue;
        }
        // Stage keys are FingerprintBuilder texts: ';'-separated
        // name=value segments, where record=/profile=/cluster= carry
        // the upstream content hash the entry chains on.
        std::istringstream key(e.key);
        std::string seg;
        while (std::getline(key, seg, ';')) {
            const size_t eq = seg.find('=');
            if (eq == std::string::npos)
                continue;
            const std::string name = seg.substr(0, eq);
            const std::string value = seg.substr(eq + 1);
            const int up_rank = stageRank(name);
            if (up_rank < 0 || up_rank > 2 || !isHexHash(value))
                continue;
            auto it = rank_by_hash.find(value);
            if (it == rank_by_hash.end()) {
                sink.error(kPass, loc,
                           strFormat("%s entry references upstream "
                                     "%s hash %s with no manifest "
                                     "binding (incomplete stage-key "
                                     "chain)",
                                     e.stage.c_str(), name.c_str(),
                                     value.c_str()));
                continue;
            }
            if (it->second >= rank)
                sink.error(kPass, loc,
                           strFormat("%s entry references %s-stage "
                                     "hash %s: stage-key chain is "
                                     "not acyclic",
                                     e.stage.c_str(), name.c_str(),
                                     value.c_str()));
        }
    }
}

} // namespace

size_t
runArtifactAudit(const AuditContext &ctx, DiagnosticSink &sink)
{
    const size_t before =
        sink.errors() + sink.count(Severity::Warning);
    size_t checks = 0;

    if (ctx.prog && ctx.dcfg && ctx.result) {
        auditMarkers(ctx, sink);
        ++checks;
    }
    if (ctx.result) {
        auditWeights(ctx, sink);
        ++checks;
    }
    if (ctx.pinball) {
        auditPinball(*ctx.pinball, ctx.expectedThreads, "recording",
                     sink);
        ++checks;
    }
    if (!ctx.pinballPath.empty()) {
        auditPinballFile(ctx.pinballPath, sink);
        ++checks;
    }
    if (ctx.app && ctx.opts && ctx.result) {
        auditRegionPinballs(ctx, sink);
        ++checks;
    }
    if (!ctx.journalPath.empty() && ctx.journalKey) {
        auditJournal(ctx, sink);
        ++checks;
    }
    if (!ctx.storeDir.empty()) {
        auditStore(ctx, sink);
        ++checks;
    }

    const size_t findings =
        sink.errors() + sink.count(Severity::Warning) - before;
    sink.info(kPass, "",
              strFormat("%zu artifact sub-check(s) run: %zu "
                        "finding(s)",
                        checks, findings));
    return findings;
}

} // namespace looppoint
