/**
 * @file
 * Baseline (suppression) files for analysis findings. A baseline
 * records the fingerprints of known findings so CI can gate on *new*
 * findings only: `lp_lint --write-baseline=FILE` snapshots the current
 * warnings and errors, and later runs with `--baseline=FILE` drop any
 * finding whose fingerprint appears in the file.
 *
 * Format (line-oriented, text, git-diffable):
 *
 *   looppoint-baseline-v1
 *   # error [race] block 3 (pc 0x...) instr 1: data race on ...
 *   finding 7f3a9c0d12345678
 *
 * Each suppressed finding is one `finding <fnv64-hex>` line preceded
 * by a human-readable comment of the finding it came from. The
 * fingerprint covers severity, pass, location, and message, so a
 * finding that changes in any visible way is no longer suppressed.
 * Info diagnostics are never baselined: they do not affect exit
 * status, and snapshotting them would churn the file on every run.
 */

#ifndef LOOPPOINT_ANALYSIS_BASELINE_HH
#define LOOPPOINT_ANALYSIS_BASELINE_HH

#include <cstdint>
#include <iosfwd>
#include <set>
#include <vector>

#include "analysis/diagnostic.hh"
#include "util/load_result.hh"

namespace looppoint {

/** Stable 64-bit fingerprint of one finding (FNV-1a). */
uint64_t diagnosticFingerprint(const Diagnostic &d);

/**
 * Write a baseline suppressing every warning and error in `diags`
 * (info diagnostics are skipped).
 */
void writeBaseline(std::ostream &os,
                   const std::vector<Diagnostic> &diags);

/** Parse a baseline file into the set of suppressed fingerprints. */
LoadResult<std::set<uint64_t>> loadBaseline(std::istream &is);

/**
 * Remove from `diags` every warning or error whose fingerprint is in
 * `baseline`. Returns how many findings were suppressed.
 */
size_t applyBaseline(std::vector<Diagnostic> &diags,
                     const std::set<uint64_t> &baseline);

} // namespace looppoint

#endif // LOOPPOINT_ANALYSIS_BASELINE_HH
