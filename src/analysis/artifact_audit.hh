/**
 * @file
 * ArtifactAudit: a sampling-validity auditor that statically
 * cross-checks pipeline artifacts without re-running simulation.
 *
 * LoopPoint's Eq. 1/2 extrapolation is only as sound as the artifacts
 * it is computed from. Each sub-check validates one link between
 * neighboring pipeline stages:
 *
 *  - markers: every region/slice boundary marker names a main-image
 *    loop-header PC the DCFG actually profiled, with an execution
 *    count the profile can reach;
 *  - weights: cluster weights sum to 1 within tolerance, Eq. 2
 *    multipliers reproduce each cluster's slice population, and
 *    region/cluster/slice cross-references are in range and mutually
 *    consistent;
 *  - pinball: the recording round-trips through its serialization and
 *    its thread roster matches the requested configuration;
 *  - region pinballs: every exported per-region checkpoint parses
 *    back bit-identically and carries the recording's thread roster
 *    and its region's identity;
 *  - journal: the run journal loads under its expected key, every
 *    record references an existing region and matches its identity;
 *  - store: every manifest entry hash-verifies and the stage-key
 *    chains (record -> profile -> cluster -> sim) are complete and
 *    acyclic.
 *
 * Sub-checks run only when their inputs are present in the
 * AuditContext, so the same analysis serves lp_lint (program +
 * pinball only) and run_looppoint --audit (everything). All findings
 * use pass name "audit".
 */

#ifndef LOOPPOINT_ANALYSIS_ARTIFACT_AUDIT_HH
#define LOOPPOINT_ANALYSIS_ARTIFACT_AUDIT_HH

#include <string>

#include "analysis/diagnostic.hh"
#include "core/looppoint.hh"
#include "core/run_journal.hh"
#include "dcfg/dcfg.hh"
#include "pinball/pinball.hh"
#include "workload/descriptor.hh"

namespace looppoint {

/** Inputs the audit may cross-check; null/empty fields skip checks. */
struct AuditContext
{
    const Program *prog = nullptr;
    const Dcfg *dcfg = nullptr;
    /** The whole-program recording. */
    const Pinball *pinball = nullptr;
    /** Completed analysis (slices, clustering, regions). */
    const LoopPointResult *result = nullptr;
    /** Workload identity, for region-pinball export checks. */
    const AppDescriptor *app = nullptr;
    InputClass input = InputClass::Train;
    const LoopPointOptions *opts = nullptr;
    /** Threads the run was configured for (0 = don't check). */
    uint32_t expectedThreads = 0;
    /** On-disk pinball artifact to parse-check ("" = skip). */
    std::string pinballPath;
    /** Run journal to validate ("" = skip; key required). */
    std::string journalPath;
    const RunKey *journalKey = nullptr;
    /** Artifact store to hash-verify and chain-check ("" = skip). */
    std::string storeDir;
};

/**
 * Run every sub-check whose inputs are present. Returns the number of
 * warning/error findings emitted (info lines excluded).
 */
size_t runArtifactAudit(const AuditContext &ctx, DiagnosticSink &sink);

} // namespace looppoint

#endif // LOOPPOINT_ANALYSIS_ARTIFACT_AUDIT_HH
