/**
 * @file
 * RaceDetector: a FastTrack-style vector-clock happens-before checker
 * for guest programs, run during constrained (pinball) replay.
 *
 * The detector observes the engine's dynamic block stream as an
 * ExecListener and, at the same time, decorates the replay SyncArbiter
 * so it sees every successful lock acquisition and dynamic-for chunk
 * grant at the moment it is resolved. From those events it derives the
 * happens-before ordering the guest program actually established:
 *
 *   lock release -> next acquire of the same lock
 *   barrier enter (all threads) -> barrier exit (all threads)
 *   dynamic-for chunk grant N -> grant N+1 of the same kernel instance
 *   atomic stub executions of the same kernel instance (seq-cst RMW)
 *
 * Two accesses to the same shared address race when neither is ordered
 * before the other and at least one is a write. Reports carry both
 * access sites (block + instruction index). Write/write races are
 * errors; races involving a read are warnings.
 *
 * Accesses excluded by construction (never reported):
 *  - private-stream, stack, and sync-object addresses: per-thread or
 *    synchronization-only by the addr_space.hh layout;
 *  - accesses flagged `aliased` by the generator: address-compression
 *    artifacts, not program-semantic sharing;
 *  - blocks containing an AtomicRmw instruction (atomic updates and
 *    reduction tails): modeled as hardware-serialized.
 */

#ifndef LOOPPOINT_ANALYSIS_RACE_DETECTOR_HH
#define LOOPPOINT_ANALYSIS_RACE_DETECTOR_HH

#include <cstdint>
#include <set>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "analysis/diagnostic.hh"
#include "exec/listener.hh"
#include "exec/sync_arbiter.hh"
#include "isa/program.hh"
#include "pinball/pinball.hh"

namespace looppoint {

/** Counters summarizing one race-check replay. */
struct RaceCheckStats
{
    uint64_t checkedAccesses = 0;
    uint64_t skippedAliased = 0;
    uint64_t skippedAtomic = 0;
    /** Distinct (site pair, kind) races reported. */
    size_t races = 0;
};

/** See file comment. */
class RaceDetector : public ExecListener, public SyncArbiter
{
  public:
    /**
     * @param prog the program being replayed
     * @param inner the arbiter actually deciding outcomes (usually a
     *        ReplayArbiter); may be nullptr (default policy)
     * @param sink where race reports go (pass name "race")
     * @param max_findings cap on individual race reports (further
     *        races are only counted)
     */
    RaceDetector(const Program &prog, SyncArbiter *inner,
                 DiagnosticSink &sink,
                 size_t max_findings = kMaxReports);

    // SyncArbiter (decorator): delegate, then update clocks.
    bool mayAcquireLock(uint32_t lock_id, uint32_t tid) override;
    void onLockAcquired(uint32_t lock_id, uint32_t tid) override;
    bool mayFetchChunk(uint32_t run_pos, uint32_t tid) override;
    void onChunkFetched(uint32_t run_pos, uint32_t tid) override;

    // ExecListener
    void onBlock(uint32_t tid, BlockId block,
                 const ExecutionEngine &engine) override;

    const RaceCheckStats &stats() const { return counters; }

    /** Default cap on individual race reports. */
    static constexpr size_t kMaxReports = 32;

  private:
    using VectorClock = std::vector<uint64_t>;

    /** One access site at a point in logical time. */
    struct Epoch
    {
        uint64_t clk = 0; ///< 0 = no such access yet
        uint32_t tid = 0;
        BlockId block = kInvalidBlock;
        uint16_t instr = 0;
    };

    /** FastTrack shadow word: last write + last read(s). */
    struct Shadow
    {
        Epoch write;
        Epoch read;
        /**
         * Last read per thread; only allocated once concurrent
         * unordered readers are seen (FastTrack's read-VC escalation,
         * with sites kept so reports can cite both accesses).
         */
        std::vector<Epoch> readEpochs;
    };

    void ensureThread(uint32_t tid);
    /** tc(t) >= e: the access at `e` happened before thread t's now. */
    bool ordered(const Epoch &e, uint32_t tid) const;
    void joinInto(VectorClock &dst, const VectorClock &src) const;
    /** Release: publish tid's clock into `target`, then advance tid. */
    void releaseInto(VectorClock &target, uint32_t tid);

    void handleRead(uint32_t tid, Addr addr, BlockId block,
                    uint16_t instr);
    void handleWrite(uint32_t tid, Addr addr, BlockId block,
                     uint16_t instr);
    void reportRace(const Epoch &prev, bool prev_write, uint32_t tid,
                    BlockId block, uint16_t instr, bool is_write,
                    Addr addr);

    std::string siteName(BlockId block, uint16_t instr) const;

    const Program *prog;
    SyncArbiter *inner;
    DiagnosticSink *sink;
    size_t maxReports;

    /** Per-thread vector clocks (created on first sight of a tid). */
    std::vector<VectorClock> clocks;
    /** Per-lock-id release clocks. */
    std::vector<VectorClock> lockClock;
    /** Per-run-position barrier join clocks. */
    std::vector<VectorClock> barrierClock;
    /** Per-run-position dynamic-for chunk serialization clocks. */
    std::vector<VectorClock> chunkClock;
    /** Per-kernel-index atomic-stub serialization clocks. */
    std::vector<VectorClock> atomicClock;

    /** Locks currently held per thread, in acquisition order. */
    std::vector<std::vector<uint32_t>> heldLocks;
    /** Barrier arrivals per run position (participant check). */
    std::vector<uint32_t> barrierArrivals;
    std::vector<bool> barrierChecked;

    /** Derived per-block tables. */
    std::vector<uint8_t> blockHasAtomic;

    std::unordered_map<Addr, Shadow> shadow;
    /** Dedup key: (prev block, prev instr, block, instr, rw kinds). */
    std::set<std::tuple<BlockId, uint16_t, BlockId, uint16_t,
                        uint8_t>> reportedPairs;
    RaceCheckStats counters;
};

/**
 * Replay `pinball` under its recorded synchronization order with the
 * race detector attached. Race reports go to `sink` (pass "race"); a
 * replay divergence is reported as an error diagnostic, not thrown.
 */
RaceCheckStats checkGuestRaces(
    const Program &prog, const Pinball &pinball, DiagnosticSink &sink,
    uint64_t quantum_instrs = 1000,
    size_t max_findings = RaceDetector::kMaxReports);

} // namespace looppoint

#endif // LOOPPOINT_ANALYSIS_RACE_DETECTOR_HH
