#include "analysis/race_detector.hh"

#include <algorithm>

#include "exec/driver.hh"
#include "exec/engine.hh"
#include "isa/addr_space.hh"
#include "util/logging.hh"

namespace looppoint {

RaceDetector::RaceDetector(const Program &prog_, SyncArbiter *inner_,
                           DiagnosticSink &sink_, size_t max_findings)
    : prog(&prog_), inner(inner_), sink(&sink_),
      maxReports(max_findings)
{
    lockClock.resize(std::max<uint32_t>(1, prog->numLocks));
    barrierClock.resize(prog->runList.size());
    chunkClock.resize(prog->runList.size());
    atomicClock.resize(prog->kernels.size());
    barrierArrivals.assign(prog->runList.size(), 0);
    barrierChecked.assign(prog->runList.size(), false);

    blockHasAtomic.assign(prog->numBlocks(), 0);
    for (size_t i = 0; i < prog->numBlocks(); ++i)
        for (const InstrDesc &in : prog->blocks[i].instrs)
            if (in.op == OpClass::AtomicRmw) {
                blockHasAtomic[i] = 1;
                break;
            }
}

void
RaceDetector::ensureThread(uint32_t tid)
{
    if (clocks.size() <= tid)
        clocks.resize(tid + 1);
    if (heldLocks.size() <= tid)
        heldLocks.resize(tid + 1);
    if (clocks[tid].empty()) {
        clocks[tid].assign(tid + 1, 0);
        clocks[tid][tid] = 1; // the initial epoch of this thread
    }
}

bool
RaceDetector::ordered(const Epoch &e, uint32_t tid) const
{
    if (e.clk == 0)
        return true;
    const VectorClock &tc = clocks[tid];
    const uint64_t seen = e.tid < tc.size() ? tc[e.tid] : 0;
    return seen >= e.clk;
}

void
RaceDetector::joinInto(VectorClock &dst, const VectorClock &src) const
{
    if (dst.size() < src.size())
        dst.resize(src.size(), 0);
    for (size_t i = 0; i < src.size(); ++i)
        dst[i] = std::max(dst[i], src[i]);
}

void
RaceDetector::releaseInto(VectorClock &target, uint32_t tid)
{
    joinInto(target, clocks[tid]);
    ++clocks[tid][tid];
}

bool
RaceDetector::mayAcquireLock(uint32_t lock_id, uint32_t tid)
{
    return inner ? inner->mayAcquireLock(lock_id, tid) : true;
}

void
RaceDetector::onLockAcquired(uint32_t lock_id, uint32_t tid)
{
    if (inner)
        inner->onLockAcquired(lock_id, tid);
    ensureThread(tid);
    if (lock_id < lockClock.size())
        joinInto(clocks[tid], lockClock[lock_id]);
    heldLocks[tid].push_back(lock_id);
}

bool
RaceDetector::mayFetchChunk(uint32_t run_pos, uint32_t tid)
{
    return inner ? inner->mayFetchChunk(run_pos, tid) : true;
}

void
RaceDetector::onChunkFetched(uint32_t run_pos, uint32_t tid)
{
    if (inner)
        inner->onChunkFetched(run_pos, tid);
    ensureThread(tid);
    // The shared chunk counter is an acquire+release RMW: grants of
    // the same kernel instance are totally ordered through it.
    if (run_pos < chunkClock.size()) {
        joinInto(clocks[tid], chunkClock[run_pos]);
        releaseInto(chunkClock[run_pos], tid);
    }
}

void
RaceDetector::onBlock(uint32_t tid, BlockId block,
                      const ExecutionEngine &engine)
{
    ensureThread(tid);
    const RuntimeBlocks &rt = prog->runtime;

    if (block == rt.barrierEnter) {
        const uint32_t pos = engine.runPosition(tid);
        if (pos < barrierClock.size()) {
            ++barrierArrivals[pos];
            releaseInto(barrierClock[pos], tid);
        }
        return;
    }
    if (block == rt.barrierExit) {
        const uint32_t pos = engine.runPosition(tid);
        if (pos < barrierClock.size()) {
            joinInto(clocks[tid], barrierClock[pos]);
            // The engine releases a barrier only after every
            // participant arrived, so the count is complete by the
            // time the first exit block appears.
            if (!barrierChecked[pos]) {
                barrierChecked[pos] = true;
                if (barrierArrivals[pos] != engine.numThreads())
                    sink->error(
                        "race",
                        strFormat("run position %u", pos),
                        strFormat("mismatched barrier participant "
                                  "count: %u arrivals, %u threads",
                                  barrierArrivals[pos],
                                  engine.numThreads()));
            }
        }
        return;
    }
    if (block == rt.lockRelease) {
        if (!heldLocks[tid].empty()) {
            const uint32_t lid = heldLocks[tid].back();
            heldLocks[tid].pop_back();
            if (lid < lockClock.size()) {
                lockClock[lid].clear();
                releaseInto(lockClock[lid], tid);
            }
        } else {
            sink->error("race", strFormat("thread %u", tid),
                        "lock release without a matching acquire");
        }
        return;
    }
    if (block == rt.atomicStub) {
        // Atomic updates of one kernel instance behave like seq-cst
        // RMWs on the reduction cell: serialize through a per-kernel
        // clock so the merged value's visibility is ordered.
        const uint32_t pos = engine.runPosition(tid);
        if (pos < prog->runList.size()) {
            const uint32_t kidx = prog->runList[pos];
            joinInto(clocks[tid], atomicClock[kidx]);
            releaseInto(atomicClock[kidx], tid);
        }
        return;
    }

    // Data accesses: only main-image compute blocks participate, and
    // blocks with an AtomicRmw (atomic items, reduction tails) are
    // modeled as hardware-serialized updates.
    if (prog->blocks[block].image != ImageId::Main)
        return;
    if (blockHasAtomic[block]) {
        for (const MemRef &ref : engine.memRefs(tid))
            if (ref.addr >= kSharedStreamRegionBase)
                ++counters.skippedAtomic;
        return;
    }
    for (const MemRef &ref : engine.memRefs(tid)) {
        if (ref.addr < kSharedStreamRegionBase)
            continue; // private / stack / sync: per-thread by layout
        if (ref.aliased) {
            ++counters.skippedAliased;
            continue;
        }
        ++counters.checkedAccesses;
        if (ref.isWrite)
            handleWrite(tid, ref.addr, block, ref.instrIndex);
        else
            handleRead(tid, ref.addr, block, ref.instrIndex);
    }
}

void
RaceDetector::handleRead(uint32_t tid, Addr addr, BlockId block,
                         uint16_t instr)
{
    Shadow &s = shadow[addr];
    if (!ordered(s.write, tid))
        reportRace(s.write, true, tid, block, instr, false, addr);

    const Epoch now{clocks[tid][tid], tid, block, instr};
    if (!s.readEpochs.empty()) {
        if (s.readEpochs.size() <= tid)
            s.readEpochs.resize(tid + 1);
        s.readEpochs[tid] = now;
        return;
    }
    if (s.read.clk == 0 || s.read.tid == tid || ordered(s.read, tid)) {
        s.read = now; // the new read subsumes the old one
        return;
    }
    // Concurrent unordered readers: escalate to per-thread epochs.
    s.readEpochs.resize(std::max<size_t>(tid, s.read.tid) + 1);
    s.readEpochs[s.read.tid] = s.read;
    s.readEpochs[tid] = now;
    s.read = Epoch{};
}

void
RaceDetector::handleWrite(uint32_t tid, Addr addr, BlockId block,
                          uint16_t instr)
{
    Shadow &s = shadow[addr];
    if (!ordered(s.write, tid))
        reportRace(s.write, true, tid, block, instr, true, addr);
    if (!s.readEpochs.empty()) {
        for (const Epoch &e : s.readEpochs)
            if (e.clk != 0 && e.tid != tid && !ordered(e, tid))
                reportRace(e, false, tid, block, instr, true, addr);
    } else if (s.read.clk != 0 && s.read.tid != tid &&
               !ordered(s.read, tid)) {
        reportRace(s.read, false, tid, block, instr, true, addr);
    }
    s.write = Epoch{clocks[tid][tid], tid, block, instr};
    s.read = Epoch{};
    s.readEpochs.clear();
}

std::string
RaceDetector::siteName(BlockId block, uint16_t instr) const
{
    return strFormat("block %u (pc %#llx) instr %u", block,
                     static_cast<unsigned long long>(
                         prog->blocks[block].pc),
                     instr);
}

void
RaceDetector::reportRace(const Epoch &prev, bool prev_write,
                         uint32_t tid, BlockId block, uint16_t instr,
                         bool is_write, Addr addr)
{
    const uint8_t kinds = static_cast<uint8_t>(
        (prev_write ? 1 : 0) | (is_write ? 2 : 0));
    if (!reportedPairs
             .insert({prev.block, prev.instr, block, instr, kinds})
             .second)
        return;
    ++counters.races;
    if (counters.races > maxReports) {
        if (counters.races == maxReports + 1)
            sink->info("race", "",
                       strFormat("more than %zu distinct races; "
                                 "further reports suppressed",
                                 maxReports));
        return;
    }
    const Severity sev = (prev_write && is_write) ? Severity::Error
                                                  : Severity::Warning;
    sink->report(
        sev, "race", siteName(block, instr),
        strFormat("data race on address %#llx: thread %u %s here is "
                  "unordered with thread %u %s at %s",
                  static_cast<unsigned long long>(addr), tid,
                  is_write ? "write" : "read", prev.tid,
                  prev_write ? "write" : "read",
                  siteName(prev.block, prev.instr).c_str()));
}

RaceCheckStats
checkGuestRaces(const Program &prog, const Pinball &pinball,
                DiagnosticSink &sink, uint64_t quantum_instrs,
                size_t max_findings)
{
    ReplayArbiter replay(pinball.log);
    RaceDetector detector(prog, &replay, sink, max_findings);
    ExecConfig cfg = pinball.config;
    cfg.genAddresses = true;
    ExecutionEngine engine(prog, cfg, &detector);
    RoundRobinDriver driver(engine, quantum_instrs);
    driver.run(&detector);

    if (!replay.exhausted())
        sink.error("race", "replay",
                   "constrained replay did not consume the full "
                   "synchronization log");
    for (uint32_t t = 0; t < cfg.numThreads; ++t) {
        if (t < pinball.threadFilteredIcounts.size() &&
            engine.filteredIcount(t) !=
                pinball.threadFilteredIcounts[t])
            sink.error(
                "race", strFormat("thread %u", t),
                strFormat("replay diverged: filtered icount %llu "
                          "differs from the recorded %llu",
                          static_cast<unsigned long long>(
                              engine.filteredIcount(t)),
                          static_cast<unsigned long long>(
                              pinball.threadFilteredIcounts[t])));
    }

    const RaceCheckStats &st = detector.stats();
    sink.info("race", "",
              strFormat("checked %llu shared accesses (%llu aliased "
                        "and %llu atomic skipped): %zu distinct "
                        "race(s)",
                        static_cast<unsigned long long>(
                            st.checkedAccesses),
                        static_cast<unsigned long long>(
                            st.skippedAliased),
                        static_cast<unsigned long long>(
                            st.skippedAtomic),
                        st.races));
    return st;
}

} // namespace looppoint
