/**
 * @file
 * SARIF 2.1.0 emitter for analysis diagnostics. SARIF (Static
 * Analysis Results Interchange Format) is the OASIS interchange format
 * CI systems and code hosts ingest natively; emitting it makes
 * lp_lint / run_looppoint findings machine-consumable without a
 * bespoke parser.
 *
 * Mapping: each analysis pass becomes a reporting rule
 * (`tool.driver.rules[]`, ruleId = pass name); each diagnostic becomes
 * a `result` with `level` note/warning/error and its location string
 * carried as a logical location (our locations are program/artifact
 * coordinates like "kernel 'k0' body", not files).
 */

#ifndef LOOPPOINT_ANALYSIS_SARIF_HH
#define LOOPPOINT_ANALYSIS_SARIF_HH

#include <iosfwd>
#include <vector>

#include "analysis/diagnostic.hh"

namespace looppoint {

/**
 * Render `diags` as a complete SARIF 2.1.0 log with a single run.
 * Emission order follows the input order; callers wanting
 * jobs-independent output should sortDiagnosticsCanonical() first.
 */
void printDiagnosticsSarif(std::ostream &os,
                           const std::vector<Diagnostic> &diags);

} // namespace looppoint

#endif // LOOPPOINT_ANALYSIS_SARIF_HH
