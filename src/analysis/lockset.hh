/**
 * @file
 * LockDisciplineDetector: an Eraser-style lockset checker and a
 * lock-order-graph deadlock-potential pass, run during constrained
 * (pinball) replay.
 *
 * Both analyses are deliberately happens-before-free, which is what
 * makes them complementary to the FastTrack RaceDetector:
 *
 *  - The **lockset** pass checks the locking *discipline* of data that
 *    is ever lock-protected. For every shared address accessed while
 *    at least one lock is held, it intersects the candidate lockset
 *    across accesses; if two or more threads touch the address, at
 *    least one access is a write, and no common lock remains, the
 *    discipline is broken — even when the observed interleaving (a
 *    barrier between phases, an incidental release/acquire chain)
 *    happens to order the accesses so FastTrack stays silent.
 *    Accesses made with no lock held are left to the happens-before
 *    checker: barrier- and chunk-partitioned data parallelism is the
 *    normal idiom here and carries no lock discipline to check.
 *
 *  - The **deadlock** pass builds a lock-order graph from the recorded
 *    acquisition events: an edge h -> l for every acquisition of l
 *    while h is held. A cycle means two threads *could* acquire the
 *    involved locks in opposite orders and deadlock, even if the
 *    recorded run never interleaved them that way. Cycles whose every
 *    edge was taken while some common "gate" lock (not itself part of
 *    the cycle) was held are suppressed: the gate serializes the
 *    nested acquisitions, so the inversion cannot happen.
 *
 * Reports carry both involved sites. Lockset findings follow the race
 * detector's convention (write/write = error, read-involved =
 * warning); unsuppressed lock-order cycles are errors.
 */

#ifndef LOOPPOINT_ANALYSIS_LOCKSET_HH
#define LOOPPOINT_ANALYSIS_LOCKSET_HH

#include <cstdint>
#include <map>
#include <set>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "analysis/diagnostic.hh"
#include "exec/listener.hh"
#include "exec/sync_arbiter.hh"
#include "isa/program.hh"
#include "pinball/pinball.hh"

namespace looppoint {

/** Counters summarizing one lock-discipline replay. */
struct LockDisciplineStats
{
    /** Shared-region accesses made while holding at least one lock. */
    uint64_t guardedAccesses = 0;
    /** Distinct inconsistent-lockset findings reported. */
    size_t locksetViolations = 0;
    /** Distinct edges in the lock-order graph. */
    uint64_t orderEdges = 0;
    /** Lock-order cycles reported as deadlock potential. */
    size_t deadlockCycles = 0;
    /** Cycles suppressed because a gate lock serializes them. */
    size_t gateSuppressedCycles = 0;
};

/** See file comment. */
class LockDisciplineDetector : public ExecListener, public SyncArbiter
{
  public:
    /**
     * @param prog the program being replayed
     * @param inner the arbiter actually deciding outcomes (usually a
     *        ReplayArbiter); may be nullptr (default policy)
     * @param sink where findings go (passes "lockset" and "deadlock")
     * @param max_findings cap on reports per pass (further findings
     *        are only counted)
     */
    LockDisciplineDetector(const Program &prog, SyncArbiter *inner,
                           DiagnosticSink &sink,
                           size_t max_findings = 32);

    // SyncArbiter (decorator): delegate, then update lock state.
    bool mayAcquireLock(uint32_t lock_id, uint32_t tid) override;
    void onLockAcquired(uint32_t lock_id, uint32_t tid) override;
    bool mayFetchChunk(uint32_t run_pos, uint32_t tid) override;
    void onChunkFetched(uint32_t run_pos, uint32_t tid) override;

    // ExecListener
    void onBlock(uint32_t tid, BlockId block,
                 const ExecutionEngine &engine) override;

    /**
     * Analyze the collected lock-order graph and emit deadlock
     * findings. Call once, after the replay finished.
     */
    void finishDeadlockAnalysis();

    const LockDisciplineStats &stats() const { return counters; }

    /** Number of lock ids the lockset bitmask can represent. */
    static constexpr uint32_t kMaxTrackedLocks = 64;

  private:
    /** Eraser shadow state for one shared address. */
    struct Shadow
    {
        /** Intersection of held-lock sets across guarded accesses. */
        uint64_t lockset = ~0ull;
        uint32_t firstTid = 0;
        bool multiThread = false;
        bool written = false;
        bool reported = false;
        /** Representative prior site (latest guarded access). */
        BlockId prevBlock = kInvalidBlock;
        uint16_t prevInstr = 0;
        uint32_t prevTid = 0;
        uint64_t prevHeld = 0;
    };

    /** One lock-order edge h -> l aggregated over its instances. */
    struct Edge
    {
        /** AND of the full held-lock mask at every instance. */
        uint64_t gateMask = ~0ull;
        /** Acquisition site of the first instance (for the report). */
        std::string site;
    };

    void ensureThread(uint32_t tid);
    uint64_t heldMask(uint32_t tid) const;
    std::string lockSetName(uint64_t mask) const;
    std::string siteName(BlockId block, uint16_t instr) const;
    void handleAccess(uint32_t tid, Addr addr, BlockId block,
                      uint16_t instr, bool is_write);
    void reportViolation(const Shadow &s, uint32_t tid, BlockId block,
                         uint16_t instr, bool is_write, uint64_t held,
                         Addr addr);

    const Program *prog;
    SyncArbiter *inner;
    DiagnosticSink *sink;
    size_t maxFindings;

    /** Locks currently held per thread, in acquisition order. */
    std::vector<std::vector<uint32_t>> heldLocks;
    /** Latest run position seen per thread (site attribution). */
    std::vector<uint32_t> lastRunPos;

    /** Derived per-block tables (atomic blocks are skipped). */
    std::vector<uint8_t> blockHasAtomic;

    std::unordered_map<Addr, Shadow> shadow;
    /** Dedup key: (prev block, prev instr, block, instr). */
    std::set<std::tuple<BlockId, uint16_t, BlockId, uint16_t>>
        reportedPairs;

    /** Lock-order graph, keyed (held, acquired) for determinism. */
    std::map<std::pair<uint32_t, uint32_t>, Edge> edges;

    LockDisciplineStats counters;
};

/**
 * Replay `pinball` under its recorded synchronization order with the
 * lock-discipline detector attached. Lockset findings go to `sink`
 * under pass "lockset", deadlock-potential findings under "deadlock";
 * `run_lockset` / `run_deadlock` select which of the two emit. A
 * replay divergence is reported as an error diagnostic, not thrown.
 */
LockDisciplineStats checkGuestLockDiscipline(
    const Program &prog, const Pinball &pinball, DiagnosticSink &sink,
    uint64_t quantum_instrs = 1000, size_t max_findings = 32,
    bool run_lockset = true, bool run_deadlock = true);

} // namespace looppoint

#endif // LOOPPOINT_ANALYSIS_LOCKSET_HH
