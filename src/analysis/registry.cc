#include "analysis/registry.hh"

#include <algorithm>

#include "analysis/lockset.hh"
#include "analysis/race_detector.hh"
#include "util/logging.hh"

namespace looppoint {

std::vector<std::string>
analysisNames()
{
    std::vector<std::string> names = lintPassNames();
    names.emplace_back("race");
    names.emplace_back("lockset");
    names.emplace_back("deadlock");
    names.emplace_back("audit");
    return names;
}

size_t
runAnalyses(const AnalysisContext &ctx, DiagnosticSink &sink,
            const std::vector<std::string> &only)
{
    LP_ASSERT(ctx.lint.prog != nullptr);
    auto enabled = [&](std::string_view name) {
        if (only.empty())
            return true;
        return std::find(only.begin(), only.end(),
                         std::string(name)) != only.end();
    };

    DiagnosticSink local;
    // Lint passes ignore non-lint names in `only`, so the filter can
    // be forwarded as-is.
    ProgramLint().run(ctx.lint, local, only);

    // The replay analyses and the audit assume a structurally sound
    // program, exactly like the later lint passes. If the structure
    // pass did not run (filtered out), run it into a scratch sink
    // purely as the gate.
    bool structure_ok = true;
    for (const Diagnostic &d : local.diagnostics())
        if (d.pass == "structure" && d.severity == Severity::Error)
            structure_ok = false;
    const bool wants_dynamic =
        ctx.lint.pinball &&
        (enabled("race") || enabled("lockset") || enabled("deadlock"));
    const bool wants_audit = enabled("audit");
    if (structure_ok && !enabled("structure") &&
        (wants_dynamic || wants_audit)) {
        DiagnosticSink scratch;
        ProgramLint().run(ctx.lint, scratch, {"structure"});
        structure_ok = scratch.errors() == 0;
        if (!structure_ok)
            local.info("lint", "",
                       "structural errors found; dynamic analyses "
                       "and audit skipped");
    }

    if (structure_ok && ctx.lint.pinball) {
        if (enabled("race"))
            checkGuestRaces(*ctx.lint.prog, *ctx.lint.pinball, local,
                            ctx.replayQuantum, ctx.maxFindings);
        const bool ls = enabled("lockset");
        const bool dl = enabled("deadlock");
        if (ls || dl)
            checkGuestLockDiscipline(*ctx.lint.prog,
                                     *ctx.lint.pinball, local,
                                     ctx.replayQuantum,
                                     ctx.maxFindings, ls, dl);
    }

    if (structure_ok && wants_audit) {
        AuditContext audit = ctx.audit;
        if (!audit.prog)
            audit.prog = ctx.lint.prog;
        if (!audit.dcfg)
            audit.dcfg = ctx.lint.dcfg;
        if (!audit.pinball)
            audit.pinball = ctx.lint.pinball;
        runArtifactAudit(audit, local);
    }

    std::vector<Diagnostic> diags = local.take();
    sortDiagnosticsCanonical(diags);
    size_t errs = 0;
    for (Diagnostic &d : diags) {
        errs += d.severity == Severity::Error;
        sink.report(d.severity, std::move(d.pass),
                    std::move(d.location), std::move(d.message));
    }
    return errs;
}

} // namespace looppoint
