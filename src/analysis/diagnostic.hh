/**
 * @file
 * Shared diagnostic representation for the static/dynamic guest
 * analyses (ProgramLint, RaceDetector). Every check reports through a
 * DiagnosticSink so callers get structured, machine-readable findings
 * instead of scattered asserts; emitters render the collected list as
 * human-readable text or as a JSON array.
 */

#ifndef LOOPPOINT_ANALYSIS_DIAGNOSTIC_HH
#define LOOPPOINT_ANALYSIS_DIAGNOSTIC_HH

#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace looppoint {

/** How bad a finding is. */
enum class Severity : uint8_t
{
    Info,    ///< context / statistics, never affects exit status
    Warning, ///< suspicious but not invariant-breaking
    Error    ///< a checked invariant is violated
};

/** Printable name ("info", "warning", "error"). */
std::string_view severityName(Severity s);

/** One finding from an analysis pass. */
struct Diagnostic
{
    Severity severity = Severity::Info;
    /** Pass that produced it ("structure", "race", ...). */
    std::string pass;
    /** Where: "kernel 'k0'", "block 12 (pc 0x...)", ... */
    std::string location;
    std::string message;
};

/**
 * Collects diagnostics from any number of passes. Thread-safe: the
 * race detector reports from inside the replay loop while lint passes
 * may run elsewhere.
 */
class DiagnosticSink
{
  public:
    void report(Severity severity, std::string pass,
                std::string location, std::string message);

    void error(std::string pass, std::string location,
               std::string message)
    {
        report(Severity::Error, std::move(pass), std::move(location),
               std::move(message));
    }
    void warning(std::string pass, std::string location,
                 std::string message)
    {
        report(Severity::Warning, std::move(pass), std::move(location),
               std::move(message));
    }
    void info(std::string pass, std::string location,
              std::string message)
    {
        report(Severity::Info, std::move(pass), std::move(location),
               std::move(message));
    }

    const std::vector<Diagnostic> &diagnostics() const { return list; }
    size_t count(Severity s) const;
    size_t errors() const { return count(Severity::Error); }
    size_t warnings() const { return count(Severity::Warning); }
    bool empty() const { return list.empty(); }

    /** Move the collected list out (sink becomes empty). */
    std::vector<Diagnostic> take();

    void printText(std::ostream &os) const;
    void printJson(std::ostream &os) const;

  private:
    mutable std::mutex mtx;
    std::vector<Diagnostic> list;
};

/** Render one list of diagnostics as "severity [pass] location: msg". */
void printDiagnosticsText(std::ostream &os,
                          const std::vector<Diagnostic> &diags);

/** Render a list of diagnostics as a JSON array. */
void printDiagnosticsJson(std::ostream &os,
                          const std::vector<Diagnostic> &diags);

/**
 * Sort diagnostics into the canonical report order: by pass, then
 * location, then message, then severity. Analyses that run under a
 * thread pool append findings in completion order; sorting before
 * emission makes the output independent of `--jobs`.
 */
void sortDiagnosticsCanonical(std::vector<Diagnostic> &diags);

} // namespace looppoint

#endif // LOOPPOINT_ANALYSIS_DIAGNOSTIC_HH
