#include "analysis/program_lint.hh"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "isa/addr_space.hh"
#include "isa/instr.hh"
#include "pinball/pinball.hh"
#include "util/logging.hh"

namespace looppoint {

namespace {

std::string
blockLoc(const Program &p, BlockId id)
{
    if (id == kInvalidBlock)
        return "block <invalid>";
    if (id >= p.blocks.size())
        return strFormat("block %u <out of range>", id);
    return strFormat("block %u (pc %#llx)", id,
                     static_cast<unsigned long long>(p.blocks[id].pc));
}

std::string
kernelLoc(const Program &p, size_t kidx)
{
    if (kidx >= p.kernels.size())
        return strFormat("kernel %zu", kidx);
    return strFormat("kernel '%s'", p.kernels[kidx].name.c_str());
}

bool
validBlock(const Program &p, BlockId id)
{
    return id != kInvalidBlock && id < p.blocks.size();
}

/** Walk a body tree with a depth guard, calling fn on every item. */
template <typename Fn>
void
walkItems(const std::vector<BodyItem> &items, Fn &&fn, int depth = 0)
{
    if (depth > 64)
        return;
    for (const BodyItem &item : items) {
        fn(item);
        if (item.kind == BodyItem::Kind::Loop ||
            item.kind == BodyItem::Kind::Critical)
            walkItems(item.children, fn, depth + 1);
    }
}

// ---------------------------------------------------------------------
// structure: the diagnostic mirror of Program::validate(). Everything
// here is bounds-checked by hand so a corrupt Program produces errors,
// not UB.
// ---------------------------------------------------------------------
class StructurePass : public LintPass
{
  public:
    std::string_view name() const override { return "structure"; }

    void
    run(const LintContext &ctx, DiagnosticSink &sink) const override
    {
        const Program &p = *ctx.prog;
        const std::string pass(name());

        if (p.images.size() != kNumImages)
            sink.error(pass, "images",
                       strFormat("expected %zu images, found %zu",
                                 kNumImages, p.images.size()));
        if (!p.derivedReady())
            sink.error(pass, "program",
                       "finalizeDerived() has not run on the current "
                       "contents");
        if (p.instrCounts.size() != p.blocks.size() ||
            p.mainImageFlags.size() != p.blocks.size())
            sink.error(pass, "program",
                       "derived per-block arrays are stale (size "
                       "mismatch with the block table)");

        for (size_t i = 0; i < p.blocks.size(); ++i) {
            const BasicBlock &bb = p.blocks[i];
            if (bb.id != i)
                sink.error(pass, strFormat("block table slot %zu", i),
                           strFormat("non-dense BlockId %u (engines "
                                     "index flat arrays by id)",
                                     bb.id));
            if (bb.instrs.empty())
                sink.error(pass, blockLoc(p, static_cast<BlockId>(i)),
                           "block has no instructions");
            if (bb.routine >= p.routines.size())
                sink.error(pass, blockLoc(p, static_cast<BlockId>(i)),
                           strFormat("routine index %u out of range "
                                     "(%zu routines)",
                                     bb.routine, p.routines.size()));
        }

        for (size_t r = 0; r < p.routines.size(); ++r) {
            const Routine &routine = p.routines[r];
            if (!validBlock(p, routine.entry))
                sink.error(pass,
                           strFormat("routine '%s'",
                                     routine.name.c_str()),
                           "entry block is invalid or out of range");
            for (BlockId b : routine.blocks)
                if (b >= p.blocks.size())
                    sink.error(pass,
                               strFormat("routine '%s'",
                                         routine.name.c_str()),
                               strFormat("member block %u out of "
                                         "range", b));
        }

        if (p.kernels.empty())
            sink.error(pass, "program", "no kernels defined");
        for (size_t k = 0; k < p.kernels.size(); ++k)
            checkKernel(p, k, sink);

        if (p.runList.empty())
            sink.error(pass, "run list", "empty run list");
        for (size_t i = 0; i < p.runList.size(); ++i)
            if (p.runList[i] >= p.kernels.size())
                sink.error(pass, strFormat("run list entry %zu", i),
                           strFormat("kernel index %u out of range "
                                     "(%zu kernels)",
                                     p.runList[i], p.kernels.size()));

        if (!validBlock(p, p.runtime.spinWait) ||
            p.blocks[p.runtime.spinWait].image != ImageId::LibIomp)
            sink.error(pass, "runtime table",
                       "spin-wait block missing or not in libiomp "
                       "(the spin filter depends on it)");
        if (!validBlock(p, p.runtime.futexWait) ||
            p.blocks[p.runtime.futexWait].image != ImageId::LibC)
            sink.error(pass, "runtime table",
                       "futex block missing or not in libc");
    }

  private:
    void
    checkKernel(const Program &p, size_t kidx,
                DiagnosticSink &sink) const
    {
        const LoweredKernel &k = p.kernels[kidx];
        const std::string pass(name());
        const std::string loc = kernelLoc(p, kidx);

        auto require = [&](BlockId id, const char *role) {
            if (!validBlock(p, id))
                sink.error(pass, loc,
                           strFormat("%s references %s", role,
                                     id == kInvalidBlock
                                         ? "an invalid block"
                                         : "an out-of-range block"));
        };
        require(k.entryBlock, "entry block");
        require(k.exitBlock, "exit block");
        require(k.workerHeader, "worker header");
        require(k.workerLatch, "worker latch");
        if (k.masterPrologue != kInvalidBlock)
            require(k.masterPrologue, "master prologue");
        if (k.reductionTail != kInvalidBlock)
            require(k.reductionTail, "reduction tail");
        if (validBlock(p, k.workerHeader) &&
            p.blocks[k.workerHeader].image != ImageId::Main)
            sink.error(pass, loc,
                       "worker header is outside the main image (it "
                       "cannot serve as a region marker)");

        if (k.parallelIters == 0)
            sink.error(pass, loc, "parallelIters is zero");
        if (k.chunkSize == 0)
            sink.error(pass, loc, "chunkSize is zero");
        if (p.derivedReady() && k.plans.size() != k.streams.size())
            sink.error(pass, loc,
                       strFormat("derived stream plans (%zu) do not "
                                 "match the stream table (%zu)",
                                 k.plans.size(), k.streams.size()));

        walkItems(k.body, [&](const BodyItem &item) {
            checkItem(p, k, item, sink);
        });
    }

    void
    checkItem(const Program &p, const LoweredKernel &k,
              const BodyItem &item, DiagnosticSink &sink) const
    {
        const std::string pass(name());
        auto check = [&](BlockId id, const char *role) {
            if (!validBlock(p, id))
                sink.error(pass,
                           strFormat("kernel '%s' body",
                                     k.name.c_str()),
                           strFormat("%s item references %s", role,
                                     id == kInvalidBlock
                                         ? "an invalid block"
                                         : "an out-of-range block"));
        };
        switch (item.kind) {
          case BodyItem::Kind::Block:
            check(item.blocks[0], "block");
            break;
          case BodyItem::Kind::Atomic:
            check(item.blocks[0], "atomic");
            break;
          case BodyItem::Kind::Cond:
            for (int i = 0; i < 4; ++i)
                check(item.blocks[i], "cond");
            if (!(item.prob >= 0.0 && item.prob <= 1.0))
                sink.error(pass,
                           strFormat("kernel '%s' body",
                                     k.name.c_str()),
                           strFormat("cond probability %g outside "
                                     "[0, 1]", item.prob));
            break;
          case BodyItem::Kind::Loop:
            check(item.blocks[0], "loop header");
            check(item.blocks[1], "loop latch");
            if (item.trips == 0)
                sink.error(pass,
                           strFormat("kernel '%s' body",
                                     k.name.c_str()),
                           "inner loop with zero trips");
            break;
          case BodyItem::Kind::Critical:
            for (int i = 0; i < 3; ++i)
                check(item.blocks[i], "critical");
            if (item.lockId >= p.numLocks)
                sink.error(pass,
                           strFormat("kernel '%s' body",
                                     k.name.c_str()),
                           strFormat("lock id %u out of range (%u "
                                     "locks declared)",
                                     item.lockId, p.numLocks));
            break;
          default:
            sink.error(pass,
                       strFormat("kernel '%s' body", k.name.c_str()),
                       "unknown body item kind");
        }
    }
};

// ---------------------------------------------------------------------
// reachability: every block must be reachable through a kernel table,
// a body item, or the runtime table, and routine membership must agree
// with the blocks' routine fields.
// ---------------------------------------------------------------------
class ReachabilityPass : public LintPass
{
  public:
    std::string_view name() const override { return "reachability"; }

    void
    run(const LintContext &ctx, DiagnosticSink &sink) const override
    {
        const Program &p = *ctx.prog;
        const std::string pass(name());
        std::vector<char> referenced(p.blocks.size(), 0);
        auto mark = [&](BlockId id) {
            if (validBlock(p, id))
                referenced[id] = 1;
        };

        mark(p.runtime.barrierEnter);
        mark(p.runtime.barrierExit);
        mark(p.runtime.spinWait);
        mark(p.runtime.futexWait);
        mark(p.runtime.chunkFetch);
        mark(p.runtime.lockAcquire);
        mark(p.runtime.lockSpin);
        mark(p.runtime.lockRelease);
        mark(p.runtime.atomicStub);

        for (const LoweredKernel &k : p.kernels) {
            mark(k.entryBlock);
            mark(k.exitBlock);
            mark(k.workerHeader);
            mark(k.workerLatch);
            mark(k.masterPrologue);
            mark(k.reductionTail);
            walkItems(k.body, [&](const BodyItem &item) {
                for (BlockId b : item.blocks)
                    mark(b);
            });
        }

        for (size_t i = 0; i < p.blocks.size(); ++i)
            if (!referenced[i])
                sink.warning(pass,
                             blockLoc(p, static_cast<BlockId>(i)),
                             "unreachable: not referenced by any "
                             "kernel or the runtime table");

        // Routine membership must be consistent both ways: profilers
        // partition the DCFG by the blocks' routine fields.
        for (size_t r = 0; r < p.routines.size(); ++r) {
            std::set<BlockId> members(p.routines[r].blocks.begin(),
                                      p.routines[r].blocks.end());
            for (BlockId b : members)
                if (b < p.blocks.size() &&
                    p.blocks[b].routine != r)
                    sink.warning(
                        pass, blockLoc(p, b),
                        strFormat("listed in routine '%s' but its "
                                  "routine field says %u",
                                  p.routines[r].name.c_str(),
                                  p.blocks[b].routine));
        }
        for (size_t i = 0; i < p.blocks.size(); ++i) {
            const BasicBlock &bb = p.blocks[i];
            if (bb.routine >= p.routines.size())
                continue; // structure pass reports this
            const auto &members = p.routines[bb.routine].blocks;
            if (std::find(members.begin(), members.end(),
                          static_cast<BlockId>(i)) == members.end())
                sink.warning(pass,
                             blockLoc(p, static_cast<BlockId>(i)),
                             strFormat("missing from its routine "
                                       "'%s' member list",
                                       p.routines[bb.routine]
                                           .name.c_str()));
        }
    }
};

// ---------------------------------------------------------------------
// streams: every StreamPlan must sit in its canonical addr_space.hh
// slot, stay inside the slot's bounds, and no two plans (or a plan and
// the stack/sync regions) may overlap.
// ---------------------------------------------------------------------
class StreamsPass : public LintPass
{
  public:
    std::string_view name() const override { return "streams"; }

    void
    run(const LintContext &ctx, DiagnosticSink &sink) const override
    {
        const Program &p = *ctx.prog;
        const std::string pass(name());

        struct Range
        {
            Addr lo = 0;
            Addr hi = 0; ///< exclusive
            std::string what;
        };
        std::vector<Range> ranges;
        ranges.push_back({kStackRegion, kStackRegion + (1ull << 40),
                          "stack region"});
        ranges.push_back({kSyncRegion, kSyncRegion + (1ull << 40),
                          "sync region"});

        for (size_t kidx = 0; kidx < p.kernels.size(); ++kidx) {
            const LoweredKernel &k = p.kernels[kidx];
            const std::string loc = kernelLoc(p, kidx);

            if (k.streams.size() > kStreamsPerKernel)
                sink.error(pass, loc,
                           strFormat("%zu streams exceed the %u-slot "
                                     "window; later streams alias the "
                                     "next kernel's address slots",
                                     k.streams.size(),
                                     kStreamsPerKernel));

            for (size_t si = 0; si < k.plans.size(); ++si) {
                const StreamPlan &plan = k.plans[si];
                const uint32_t gsi = static_cast<uint32_t>(
                    kidx * kStreamsPerKernel + si);
                const std::string sloc =
                    strFormat("%s stream %zu", loc.c_str(), si);

                if (plan.stride == 0 || plan.footprint == 0) {
                    sink.error(pass, sloc,
                               "zero stride or footprint");
                    continue;
                }
                const Addr canonical =
                    plan.shared ? sharedStreamBase(gsi)
                                : privStreamBase(gsi, 0);
                if (plan.base != canonical)
                    sink.error(pass, sloc,
                               strFormat("base %#llx escapes its "
                                         "address-space slot "
                                         "(expected %#llx)",
                                         static_cast<unsigned long long>(
                                             plan.base),
                                         static_cast<unsigned long long>(
                                             canonical)));
                if (!plan.shared &&
                    gsi + 0x100 >= 0x800)
                    sink.error(pass, sloc,
                               "private slot index reaches into the "
                               "shared-stream region");
                const uint64_t limit = plan.shared
                                           ? kStreamSlotBytes
                                           : kPrivPerThreadBytes;
                if (plan.footprint > limit)
                    sink.error(
                        pass, sloc,
                        strFormat("footprint %llu exceeds the %s "
                                  "bound %llu",
                                  static_cast<unsigned long long>(
                                      plan.footprint),
                                  plan.shared
                                      ? "shared-slot"
                                      : "per-thread private",
                                  static_cast<unsigned long long>(
                                      limit)));
                if (plan.jumpBound !=
                    plan.footprint / plan.stride + 1)
                    sink.warning(pass, sloc,
                                 "jump bound is stale (does not "
                                 "match footprint / stride + 1)");
                if (!(plan.jumpProb >= 0.0 && plan.jumpProb <= 1.0))
                    sink.error(pass, sloc,
                               strFormat("jump probability %g "
                                         "outside [0, 1]",
                                         plan.jumpProb));

                const uint64_t span =
                    plan.shared
                        ? std::min<uint64_t>(plan.footprint,
                                             kStreamSlotBytes)
                        : kStreamSlotBytes; // all threads' subregions
                ranges.push_back({plan.base, plan.base + span, sloc});
            }
        }

        std::sort(ranges.begin(), ranges.end(),
                  [](const Range &a, const Range &b) {
                      return a.lo != b.lo ? a.lo < b.lo : a.hi < b.hi;
                  });
        for (size_t i = 1; i < ranges.size(); ++i) {
            const Range &prev = ranges[i - 1];
            const Range &cur = ranges[i];
            if (cur.lo < prev.hi)
                sink.error(pass, cur.what,
                           strFormat("address range [%#llx, %#llx) "
                                     "overlaps %s",
                                     static_cast<unsigned long long>(
                                         cur.lo),
                                     static_cast<unsigned long long>(
                                         cur.hi),
                                     prev.what.c_str()));
        }
    }
};

// ---------------------------------------------------------------------
// sync: lock stubs must come in pairs and critical sections must use
// them; runtime stubs must live outside the main image (the spin/sync
// filter keys on the image); declared SyncUse must match actual use.
// ---------------------------------------------------------------------
class SyncPass : public LintPass
{
  public:
    std::string_view name() const override { return "sync"; }

    void
    run(const LintContext &ctx, DiagnosticSink &sink) const override
    {
        const Program &p = *ctx.prog;
        const RuntimeBlocks &rt = p.runtime;
        const std::string pass(name());

        const bool have_acquire = validBlock(p, rt.lockAcquire);
        const bool have_release = validBlock(p, rt.lockRelease);
        if (have_acquire != have_release)
            sink.error(pass, "runtime table",
                       strFormat("unpaired lock stubs: %s present "
                                 "without its counterpart",
                                 have_acquire ? "acquire"
                                              : "release"));
        const bool have_enter = validBlock(p, rt.barrierEnter);
        const bool have_exit = validBlock(p, rt.barrierExit);
        if (have_enter != have_exit)
            sink.error(pass, "runtime table",
                       strFormat("unpaired barrier stubs: %s present "
                                 "without its counterpart",
                                 have_enter ? "enter" : "exit"));
        else if (!have_enter)
            sink.error(pass, "runtime table",
                       "no barrier stubs: every kernel instance ends "
                       "with a barrier");

        auto check_image = [&](BlockId id, const char *what) {
            if (validBlock(p, id) &&
                p.blocks[id].image == ImageId::Main)
                sink.error(pass, blockLoc(p, id),
                           strFormat("%s stub is in the main image; "
                                     "the synchronization filter "
                                     "would count it as work", what));
        };
        check_image(rt.barrierEnter, "barrier-enter");
        check_image(rt.barrierExit, "barrier-exit");
        check_image(rt.chunkFetch, "chunk-fetch");
        check_image(rt.lockAcquire, "lock-acquire");
        check_image(rt.lockSpin, "lock-spin");
        check_image(rt.lockRelease, "lock-release");
        check_image(rt.atomicStub, "atomic");

        for (size_t kidx = 0; kidx < p.kernels.size(); ++kidx) {
            const LoweredKernel &k = p.kernels[kidx];
            const std::string loc = kernelLoc(p, kidx);
            bool uses_lock = false, uses_atomic = false;

            walkItems(k.body, [&](const BodyItem &item) {
                if (item.kind == BodyItem::Kind::Atomic)
                    uses_atomic = true;
                if (item.kind != BodyItem::Kind::Critical)
                    return;
                uses_lock = true;
                if (item.blocks[0] != rt.lockAcquire)
                    sink.error(pass, loc,
                               "critical section's acquire is not "
                               "the runtime lock-acquire stub "
                               "(unpaired lock acquire)");
                if (item.blocks[2] != rt.lockRelease)
                    sink.error(pass, loc,
                               "critical section's release is not "
                               "the runtime lock-release stub "
                               "(unpaired lock release)");
            });

            auto declared = [&](bool decl, bool used,
                                const char *what) {
                if (used && !decl)
                    sink.warning(pass, loc,
                                 strFormat("uses %s but does not "
                                           "declare it in SyncUse",
                                           what));
                else if (decl && !used)
                    sink.warning(pass, loc,
                                 strFormat("declares %s in SyncUse "
                                           "but never uses it",
                                           what));
            };
            declared(k.sync.lock, uses_lock, "critical sections");
            declared(k.sync.atomic, uses_atomic, "atomic updates");
            declared(k.sync.reduction,
                     k.reductionTail != kInvalidBlock, "a reduction");
            declared(k.sync.master || k.sync.single,
                     k.masterPrologue != kInvalidBlock,
                     "a master/single prologue");
            declared(k.sync.dynamicFor,
                     k.sched == SchedPolicy::DynamicFor,
                     "dynamic-for scheduling");
            declared(k.sync.staticFor,
                     k.sched == SchedPolicy::StaticFor,
                     "static-for scheduling");
        }
    }
};

// ---------------------------------------------------------------------
// loops: see lintLoopList.
// ---------------------------------------------------------------------
class LoopsPass : public LintPass
{
  public:
    std::string_view name() const override { return "loops"; }

    void
    run(const LintContext &ctx, DiagnosticSink &sink) const override
    {
        if (!ctx.dcfg) {
            sink.info(std::string(name()), "",
                      "skipped: no DCFG provided");
            return;
        }
        lintLoopList(*ctx.prog, ctx.dcfg->loops(), sink);
    }
};

// ---------------------------------------------------------------------
// markers: (PC, count) identity requires globally unique PCs, and the
// program must expose at least one main-image loop header.
// ---------------------------------------------------------------------
class MarkersPass : public LintPass
{
  public:
    std::string_view name() const override { return "markers"; }

    void
    run(const LintContext &ctx, DiagnosticSink &sink) const override
    {
        const Program &p = *ctx.prog;
        const std::string pass(name());

        std::map<Addr, BlockId> by_pc;
        for (size_t i = 0; i < p.blocks.size(); ++i) {
            auto [it, inserted] =
                by_pc.emplace(p.blocks[i].pc,
                              static_cast<BlockId>(i));
            if (!inserted)
                sink.error(pass,
                           blockLoc(p, static_cast<BlockId>(i)),
                           strFormat("shares pc %#llx with block %u; "
                                     "(PC, count) markers cannot "
                                     "distinguish them",
                                     static_cast<unsigned long long>(
                                         p.blocks[i].pc),
                                     it->second));
        }

        if (!ctx.dcfg) {
            sink.info(pass, "", "dynamic checks skipped: no DCFG "
                                "provided");
            return;
        }
        std::vector<BlockId> headers =
            ctx.dcfg->mainImageLoopHeaders();
        if (headers.empty()) {
            sink.error(pass, "dcfg",
                       "no main-image loop headers: the program "
                       "exposes no legal region markers");
            return;
        }
        for (BlockId h : headers)
            if (ctx.dcfg->blockExecs(h) == 0)
                sink.warning(pass, blockLoc(p, h),
                             "marker header has zero recorded "
                             "executions");
    }
};

/** Counts per-block executions during a replay. */
class BlockCountListener : public ExecListener
{
  public:
    explicit BlockCountListener(size_t num_blocks)
        : counts(num_blocks, 0)
    {}

    void
    onBlock(uint32_t tid, BlockId block,
            const ExecutionEngine &engine) override
    {
        (void)tid;
        (void)engine;
        ++counts[block];
    }

    std::vector<uint64_t> counts;
};

// ---------------------------------------------------------------------
// marker-stability: replay the pinball twice under different flow
// quanta and require every candidate marker block to be executed the
// same number of times in both replays and in the DCFG profile — the
// paper's "(PC, count) pairs are stable under constrained replay"
// invariant (Section III).
// ---------------------------------------------------------------------
class MarkerStabilityPass : public LintPass
{
  public:
    std::string_view name() const override
    {
        return "marker-stability";
    }

    void
    run(const LintContext &ctx, DiagnosticSink &sink) const override
    {
        const std::string pass(name());
        if (!ctx.dcfg || !ctx.pinball) {
            sink.info(pass, "",
                      "skipped: needs both a DCFG and a pinball");
            return;
        }
        const Program &p = *ctx.prog;
        std::vector<BlockId> headers =
            ctx.dcfg->mainImageLoopHeaders();
        if (headers.empty())
            return; // the markers pass reports this

        const uint64_t q1 = std::max<uint64_t>(1, ctx.flowQuantum);
        const uint64_t q2 = q1 * 3 + 17;
        BlockCountListener run1(p.numBlocks());
        BlockCountListener run2(p.numBlocks());
        if (!replay(p, *ctx.pinball, q1, run1, sink) ||
            !replay(p, *ctx.pinball, q2, run2, sink))
            return;

        size_t bad = 0;
        for (BlockId h : headers) {
            const uint64_t c1 = run1.counts[h];
            const uint64_t c2 = run2.counts[h];
            const uint64_t cd = ctx.dcfg->blockExecs(h);
            if (c1 != c2) {
                sink.error(
                    pass, blockLoc(p, h),
                    strFormat("marker count differs across "
                              "constrained replays: %llu (quantum "
                              "%llu) vs %llu (quantum %llu)",
                              static_cast<unsigned long long>(c1),
                              static_cast<unsigned long long>(q1),
                              static_cast<unsigned long long>(c2),
                              static_cast<unsigned long long>(q2)));
                ++bad;
            } else if (c1 != cd) {
                sink.error(
                    pass, blockLoc(p, h),
                    strFormat("replayed marker count %llu disagrees "
                              "with the DCFG profile count %llu",
                              static_cast<unsigned long long>(c1),
                              static_cast<unsigned long long>(cd)));
                ++bad;
            }
        }
        if (bad == 0)
            sink.info(pass, "",
                      strFormat("%zu markers stable across two "
                                "constrained replays",
                                headers.size()));
    }

  private:
    bool
    replay(const Program &p, const Pinball &pb, uint64_t quantum,
           BlockCountListener &listener, DiagnosticSink &sink) const
    {
        try {
            replayPinball(p, pb, quantum, &listener);
            return true;
        } catch (const FatalError &e) {
            sink.error(std::string(name()),
                       strFormat("replay (quantum %llu)",
                                 static_cast<unsigned long long>(
                                     quantum)),
                       strFormat("constrained replay diverged: %s",
                                 e.what()));
            return false;
        }
    }
};

} // namespace

void
lintLoopList(const Program &prog, const std::vector<DcfgLoop> &loops,
             DiagnosticSink &sink)
{
    const std::string pass = "loops";
    std::set<BlockId> headers_seen;
    std::vector<std::set<BlockId>> bodies;
    bodies.reserve(loops.size());

    for (const DcfgLoop &loop : loops) {
        std::set<BlockId> body(loop.body.begin(), loop.body.end());
        bodies.push_back(body);

        if (!validBlock(prog, loop.header)) {
            sink.error(pass, blockLoc(prog, loop.header),
                       "loop header is invalid or out of range");
            continue;
        }
        const std::string loc = blockLoc(prog, loop.header);
        if (!headers_seen.insert(loop.header).second)
            sink.error(pass, loc,
                       "two loops share this header (loop list is "
                       "malformed)");
        if (body.empty()) {
            sink.error(pass, loc, "loop has an empty body");
            continue;
        }
        if (!body.count(loop.header))
            sink.error(pass, loc,
                       "loop body does not contain its header "
                       "(non-natural loop)");
        for (BlockId b : body) {
            if (b >= prog.blocks.size()) {
                sink.error(pass, loc,
                           strFormat("body block %u out of range",
                                     b));
            } else if (prog.blocks[b].routine != loop.routine) {
                sink.error(pass, loc,
                           strFormat("body block %u belongs to "
                                     "routine %u, not the loop's "
                                     "routine %u",
                                     b, prog.blocks[b].routine,
                                     loop.routine));
            }
        }
        if (prog.blocks[loop.header].image != loop.image)
            sink.error(pass, loc,
                       "loop image tag disagrees with its header's "
                       "image");
        if (loop.backEdgeCount == 0)
            sink.warning(pass, loc,
                         "loop has no recorded back-edge traversals");
        if (loop.headerExecs < loop.backEdgeCount)
            sink.error(
                pass, loc,
                strFormat("back-edge count %llu exceeds header "
                          "executions %llu (loop accounting is "
                          "malformed)",
                          static_cast<unsigned long long>(
                              loop.backEdgeCount),
                          static_cast<unsigned long long>(
                              loop.headerExecs)));
        else if (loop.entries !=
                 loop.headerExecs - loop.backEdgeCount)
            sink.error(
                pass, loc,
                strFormat("entry count %llu inconsistent with "
                          "header executions %llu - back edges %llu",
                          static_cast<unsigned long long>(
                              loop.entries),
                          static_cast<unsigned long long>(
                              loop.headerExecs),
                          static_cast<unsigned long long>(
                              loop.backEdgeCount)));
    }

    // Natural loops either nest or are disjoint; a partial overlap
    // means the loop structure is not reducible.
    for (size_t i = 0; i < bodies.size(); ++i) {
        for (size_t j = i + 1; j < bodies.size(); ++j) {
            const auto &a = bodies[i];
            const auto &b = bodies[j];
            bool intersects = false;
            for (BlockId x : a)
                if (b.count(x)) {
                    intersects = true;
                    break;
                }
            if (!intersects)
                continue;
            auto subset = [](const std::set<BlockId> &inner,
                             const std::set<BlockId> &outer) {
                return std::includes(outer.begin(), outer.end(),
                                     inner.begin(), inner.end());
            };
            if (!subset(a, b) && !subset(b, a))
                sink.error(
                    pass,
                    blockLoc(prog, loops[i].header),
                    strFormat("overlaps loop at %s without nesting "
                              "(non-natural loop structure)",
                              blockLoc(prog, loops[j].header)
                                  .c_str()));
        }
    }
}

ProgramLint::ProgramLint()
{
    passList.push_back(std::make_unique<StructurePass>());
    passList.push_back(std::make_unique<ReachabilityPass>());
    passList.push_back(std::make_unique<StreamsPass>());
    passList.push_back(std::make_unique<SyncPass>());
    passList.push_back(std::make_unique<LoopsPass>());
    passList.push_back(std::make_unique<MarkersPass>());
    passList.push_back(std::make_unique<MarkerStabilityPass>());
}

void
ProgramLint::addPass(std::unique_ptr<LintPass> pass)
{
    passList.push_back(std::move(pass));
}

size_t
ProgramLint::run(const LintContext &ctx, DiagnosticSink &sink,
                 const std::vector<std::string> &only) const
{
    LP_ASSERT(ctx.prog != nullptr);
    const size_t errs_before = sink.errors();
    auto enabled = [&](std::string_view name) {
        if (only.empty())
            return true;
        return std::find(only.begin(), only.end(),
                         std::string(name)) != only.end();
    };
    for (const auto &pass : passList) {
        if (!enabled(pass->name()))
            continue;
        pass->run(ctx, sink);
        if (pass->name() == "structure" &&
            sink.errors() > errs_before) {
            sink.info("lint", "",
                      "structural errors found; remaining passes "
                      "skipped (they assume a sound block table)");
            break;
        }
    }
    return sink.errors() - errs_before;
}

std::vector<std::string>
lintPassNames()
{
    ProgramLint lint;
    std::vector<std::string> names;
    for (const auto &pass : lint.passes())
        names.emplace_back(pass->name());
    return names;
}

} // namespace looppoint
