/**
 * @file
 * ProgramLint: a pass-based static verifier over the Program IR and
 * (optionally) its DCFG and recorded pinball. Each pass checks one
 * family of invariants LoopPoint's correctness rests on and reports
 * violations through the shared DiagnosticSink instead of asserting,
 * so release builds get actionable errors rather than UB:
 *
 *   structure         dense BlockIds, kernel-table and runtime-table
 *                     consistency, body-tree well-formedness (the
 *                     diagnostic mirror of Program::validate())
 *   reachability      blocks not referenced by any kernel or the
 *                     runtime table; routine-membership consistency
 *   streams           StreamPlan ranges that escape their
 *                     addr_space.hh slots or overlap across kernels
 *   sync              unpaired lock acquire/release stubs, runtime
 *                     stubs in the wrong image, declared-vs-used
 *                     synchronization features
 *   loops             malformed or non-natural loop nesting in the
 *                     DCFG loop list (requires a Dcfg)
 *   markers           duplicate PCs that break (PC, count) marker
 *                     identity; missing main-image loop headers
 *   marker-stability  every candidate marker is reached with
 *                     identical counts under two constrained replays
 *                     at different flow quanta, and those counts match
 *                     the DCFG profile (requires Dcfg + Pinball;
 *                     paper Section III marker stability)
 */

#ifndef LOOPPOINT_ANALYSIS_PROGRAM_LINT_HH
#define LOOPPOINT_ANALYSIS_PROGRAM_LINT_HH

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostic.hh"
#include "dcfg/dcfg.hh"
#include "isa/program.hh"
#include "pinball/pinball.hh"

namespace looppoint {

/** Inputs available to the passes; only `prog` is mandatory. */
struct LintContext
{
    const Program *prog = nullptr;
    /** Enables the loops/markers dynamic checks when present. */
    const Dcfg *dcfg = nullptr;
    /** Enables the marker-stability replays when present. */
    const Pinball *pinball = nullptr;
    /** Flow-control quantum for the stability replays. */
    uint64_t flowQuantum = 1000;
};

/** One verification pass. Passes are stateless and reusable. */
class LintPass
{
  public:
    virtual ~LintPass() = default;
    virtual std::string_view name() const = 0;
    virtual void run(const LintContext &ctx,
                     DiagnosticSink &sink) const = 0;
};

/** The default pass pipeline. */
class ProgramLint
{
  public:
    /** Registers the built-in passes in dependency order. */
    ProgramLint();

    void addPass(std::unique_ptr<LintPass> pass);
    const std::vector<std::unique_ptr<LintPass>> &passes() const
    {
        return passList;
    }

    /**
     * Run the (optionally name-filtered) passes. When the structure
     * pass reports errors the remaining passes are skipped: they are
     * only memory-safe on structurally sound programs. Returns the
     * number of errors added to `sink`.
     */
    size_t run(const LintContext &ctx, DiagnosticSink &sink,
               const std::vector<std::string> &only = {}) const;

  private:
    std::vector<std::unique_ptr<LintPass>> passList;
};

/** Names of the built-in passes, in run order. */
std::vector<std::string> lintPassNames();

/**
 * Core of the loops pass, exposed so tests can feed handcrafted loop
 * lists (the Dcfg constructor only ever produces natural loops from
 * real edge data; the defects this guards against come from corrupted
 * or hand-built inputs).
 */
void lintLoopList(const Program &prog,
                  const std::vector<DcfgLoop> &loops,
                  DiagnosticSink &sink);

} // namespace looppoint

#endif // LOOPPOINT_ANALYSIS_PROGRAM_LINT_HH
