#include "analysis/experiment_audit.hh"

#include <string>
#include <utility>

#include "analysis/artifact_audit.hh"
#include "core/run_journal.hh"
#include "dcfg/dcfg.hh"
#include "obs/trace.hh"
#include "pinball/pinball.hh"
#include "workload/descriptor.hh"

namespace looppoint {

size_t
auditExperiment(const ExperimentConfig &cfg, ExperimentResult &res)
{
    ScopedSpan span(Tracer::global(), "phase.audit");

    // Re-derive the run's identity the same way runExperiment() did;
    // program generation is deterministic, so this is the exact
    // program the recording was made from.
    const AppDescriptor &app = findApp(cfg.app);
    const uint32_t threads = res.threads;
    Program prog = generateProgram(app, cfg.input);
    LoopPointOptions opts = cfg.loopPoint;
    opts.numThreads = threads;
    opts.waitPolicy = cfg.waitPolicy;
    opts.jobs = cfg.jobs;
    opts.analysis = cfg.sim.analysis;
    SimConfig sim_cfg = cfg.sim;
    sim_cfg.jobs = cfg.jobs;

    // The marker checks want the DCFG profile; rebuild it from the
    // recording (a constrained replay, cheap next to simulation).
    DcfgBuilder dcfg_builder(prog, threads);
    replayPinball(prog, res.analysis.pinball, opts.flowQuantum,
                  &dcfg_builder);
    Dcfg dcfg = dcfg_builder.build();

    AuditContext actx;
    actx.prog = &prog;
    actx.dcfg = &dcfg;
    actx.pinball = &res.analysis.pinball;
    actx.result = &res.analysis;
    actx.app = &app;
    actx.input = cfg.input;
    actx.opts = &opts;
    actx.expectedThreads = threads;
    actx.storeDir = cfg.storeDir;
    RunKey journal_key;
    if (!cfg.journalPath.empty()) {
        journal_key = makeRunKey(
            cfg.app, std::string(inputClassName(cfg.input)), threads,
            cfg.waitPolicy, opts.seed, cfg.constrainedRegions,
            sim_cfg);
        actx.journalPath = cfg.journalPath;
        actx.journalKey = &journal_key;
    }

    DiagnosticSink sink;
    res.auditFindings = runArtifactAudit(actx, sink);
    auto diags = sink.take();
    sortDiagnosticsCanonical(diags);
    for (auto &d : diags)
        res.analysis.diagnostics.push_back(std::move(d));
    span.arg("findings",
             static_cast<uint64_t>(res.auditFindings));
    return res.auditFindings;
}

} // namespace looppoint
