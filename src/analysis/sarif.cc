#include "analysis/sarif.hh"

#include <ostream>
#include <set>
#include <string>

#include "obs/json.hh"

namespace looppoint {

namespace {

const char *
sarifLevel(Severity s)
{
    switch (s) {
      case Severity::Info: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
      default: return "none";
    }
}

} // namespace

void
printDiagnosticsSarif(std::ostream &os,
                      const std::vector<Diagnostic> &diags)
{
    // Rules: one per distinct pass, in sorted order so the rule table
    // is independent of finding order.
    std::set<std::string> passes;
    for (const Diagnostic &d : diags)
        passes.insert(d.pass);

    os << "{\n"
       << "  \"version\": \"2.1.0\",\n"
       << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
       << "  \"runs\": [\n"
       << "    {\n"
       << "      \"tool\": {\n"
       << "        \"driver\": {\n"
       << "          \"name\": \"looppoint-analysis\",\n"
       << "          \"informationUri\": "
          "\"https://github.com/looppoint/looppoint\",\n"
       << "          \"rules\": [\n";
    size_t i = 0;
    for (const std::string &pass : passes) {
        os << "            {\"id\": " << jsonQuote(pass)
           << ", \"name\": " << jsonQuote(pass) << '}'
           << (++i < passes.size() ? "," : "") << '\n';
    }
    os << "          ]\n"
       << "        }\n"
       << "      },\n"
       << "      \"results\": [\n";
    for (size_t n = 0; n < diags.size(); ++n) {
        const Diagnostic &d = diags[n];
        os << "        {\"ruleId\": " << jsonQuote(d.pass)
           << ", \"level\": \"" << sarifLevel(d.severity)
           << "\", \"message\": {\"text\": " << jsonQuote(d.message)
           << '}';
        if (!d.location.empty()) {
            os << ", \"locations\": [{\"logicalLocations\": "
                  "[{\"fullyQualifiedName\": " << jsonQuote(d.location)
               << "}]}]";
        }
        os << '}' << (n + 1 < diags.size() ? "," : "") << '\n';
    }
    os << "      ]\n"
       << "    }\n"
       << "  ]\n"
       << "}\n";
}

} // namespace looppoint
