/**
 * @file
 * AnalysisRegistry: the one front door to every analysis in
 * src/analysis/. It unifies the static lint passes (ProgramLint), the
 * dynamic replay checkers (race, lockset, deadlock), and the artifact
 * audit behind a single name-filtered entry point with a shared
 * DiagnosticSink, so lp_lint --passes=..., run_looppoint --audit, and
 * lp_campaign all speak the same pass vocabulary.
 *
 * Determinism contract: analyses run sequentially in registry order
 * and each dynamic analysis replays single-threaded, so the finding
 * order is identical for any --jobs setting. Findings are additionally
 * sorted canonically (sortDiagnosticsCanonical) before they reach the
 * caller's sink.
 */

#ifndef LOOPPOINT_ANALYSIS_REGISTRY_HH
#define LOOPPOINT_ANALYSIS_REGISTRY_HH

#include <string>
#include <vector>

#include "analysis/artifact_audit.hh"
#include "analysis/diagnostic.hh"
#include "analysis/program_lint.hh"

namespace looppoint {

/** Inputs for a full analysis run; only lint.prog is mandatory. */
struct AnalysisContext
{
    /** Static inputs (program, optional DCFG and pinball). */
    LintContext lint;
    /** Driver quantum for the dynamic replay analyses. */
    uint64_t replayQuantum = 1000;
    /** Per-pass cap on reported findings (--max-findings). */
    size_t maxFindings = 32;
    /** Artifact-audit inputs; prog/dcfg/pinball default to lint's. */
    AuditContext audit;
};

/**
 * All analysis names, in run order: the lint passes, then "race",
 * "lockset", "deadlock", "audit".
 */
std::vector<std::string> analysisNames();

/**
 * Run the (optionally name-filtered) analyses and append the findings
 * to `sink` in canonical order. Dynamic analyses and the audit only
 * run when their inputs are present, and are skipped (like the later
 * lint passes) when the structure pass finds errors — they assume a
 * sound block table. Returns the number of errors added.
 */
size_t runAnalyses(const AnalysisContext &ctx, DiagnosticSink &sink,
                   const std::vector<std::string> &only = {});

} // namespace looppoint

#endif // LOOPPOINT_ANALYSIS_REGISTRY_HH
