#include "analysis/baseline.hh"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "util/logging.hh"

namespace looppoint {

namespace {

constexpr char kMagic[] = "looppoint-baseline-v1";

uint64_t
fnv1a(uint64_t h, std::string_view s)
{
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    // Field separator: keeps ("ab","c") distinct from ("a","bc").
    h ^= 0x1f;
    h *= 0x100000001b3ull;
    return h;
}

} // namespace

uint64_t
diagnosticFingerprint(const Diagnostic &d)
{
    uint64_t h = 0xcbf29ce484222325ull;
    h = fnv1a(h, severityName(d.severity));
    h = fnv1a(h, d.pass);
    h = fnv1a(h, d.location);
    h = fnv1a(h, d.message);
    return h;
}

void
writeBaseline(std::ostream &os, const std::vector<Diagnostic> &diags)
{
    os << kMagic << '\n';
    for (const Diagnostic &d : diags) {
        if (d.severity == Severity::Info)
            continue;
        // One-line comment of what is being suppressed; newlines in
        // messages are flattened so the file stays line-oriented.
        std::string text = strFormat("%s [%s] %s: %s",
                                     std::string(
                                         severityName(d.severity))
                                         .c_str(),
                                     d.pass.c_str(),
                                     d.location.c_str(),
                                     d.message.c_str());
        std::replace(text.begin(), text.end(), '\n', ' ');
        std::replace(text.begin(), text.end(), '\r', ' ');
        os << "# " << text << '\n';
        os << "finding " << strFormat("%016llx",
                                      static_cast<unsigned long long>(
                                          diagnosticFingerprint(d)))
           << '\n';
    }
}

LoadResult<std::set<uint64_t>>
loadBaseline(std::istream &is)
{
    using Result = LoadResult<std::set<uint64_t>>;
    std::string line;
    if (!std::getline(is, line) || line != kMagic)
        return Result::failure(LoadErrorKind::BadMagic,
                               "not a looppoint baseline file");
    std::set<uint64_t> out;
    size_t lineno = 1;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string key, hex;
        if (!(ls >> key >> hex) || key != "finding" ||
            hex.size() != 16 ||
            hex.find_first_not_of("0123456789abcdef") !=
                std::string::npos)
            return Result::failure(
                LoadErrorKind::Parse,
                strFormat("baseline line %zu is not a 'finding "
                          "<hex64>' record",
                          lineno));
        out.insert(std::stoull(hex, nullptr, 16));
    }
    return Result::success(std::move(out));
}

size_t
applyBaseline(std::vector<Diagnostic> &diags,
              const std::set<uint64_t> &baseline)
{
    const size_t before = diags.size();
    diags.erase(std::remove_if(
                    diags.begin(), diags.end(),
                    [&](const Diagnostic &d) {
                        return d.severity != Severity::Info &&
                               baseline.count(
                                   diagnosticFingerprint(d)) != 0;
                    }),
                diags.end());
    return before - diags.size();
}

} // namespace looppoint
