#include "analysis/diagnostic.hh"

#include <ostream>

namespace looppoint {

std::string_view
severityName(Severity s)
{
    switch (s) {
      case Severity::Info: return "info";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
      default: return "???";
    }
}

void
DiagnosticSink::report(Severity severity, std::string pass,
                       std::string location, std::string message)
{
    std::lock_guard<std::mutex> guard(mtx);
    list.push_back({severity, std::move(pass), std::move(location),
                    std::move(message)});
}

size_t
DiagnosticSink::count(Severity s) const
{
    std::lock_guard<std::mutex> guard(mtx);
    size_t n = 0;
    for (const auto &d : list)
        if (d.severity == s)
            ++n;
    return n;
}

std::vector<Diagnostic>
DiagnosticSink::take()
{
    std::lock_guard<std::mutex> guard(mtx);
    std::vector<Diagnostic> out = std::move(list);
    list.clear();
    return out;
}

void
DiagnosticSink::printText(std::ostream &os) const
{
    std::lock_guard<std::mutex> guard(mtx);
    printDiagnosticsText(os, list);
}

void
DiagnosticSink::printJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> guard(mtx);
    printDiagnosticsJson(os, list);
}

void
printDiagnosticsText(std::ostream &os,
                     const std::vector<Diagnostic> &diags)
{
    for (const auto &d : diags) {
        os << severityName(d.severity) << " [" << d.pass << "] ";
        if (!d.location.empty())
            os << d.location << ": ";
        os << d.message << '\n';
    }
}

namespace {

void
jsonEscape(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char hex[] = "0123456789abcdef";
                os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

void
printDiagnosticsJson(std::ostream &os,
                     const std::vector<Diagnostic> &diags)
{
    os << "[\n";
    for (size_t i = 0; i < diags.size(); ++i) {
        const Diagnostic &d = diags[i];
        os << "  {\"severity\": ";
        jsonEscape(os, std::string(severityName(d.severity)));
        os << ", \"pass\": ";
        jsonEscape(os, d.pass);
        os << ", \"location\": ";
        jsonEscape(os, d.location);
        os << ", \"message\": ";
        jsonEscape(os, d.message);
        os << '}' << (i + 1 < diags.size() ? "," : "") << '\n';
    }
    os << "]\n";
}

} // namespace looppoint
