#include "analysis/diagnostic.hh"

#include <algorithm>
#include <ostream>
#include <tuple>

#include "obs/json.hh"

namespace looppoint {

std::string_view
severityName(Severity s)
{
    switch (s) {
      case Severity::Info: return "info";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
      default: return "???";
    }
}

void
DiagnosticSink::report(Severity severity, std::string pass,
                       std::string location, std::string message)
{
    std::lock_guard<std::mutex> guard(mtx);
    list.push_back({severity, std::move(pass), std::move(location),
                    std::move(message)});
}

size_t
DiagnosticSink::count(Severity s) const
{
    std::lock_guard<std::mutex> guard(mtx);
    size_t n = 0;
    for (const auto &d : list)
        if (d.severity == s)
            ++n;
    return n;
}

std::vector<Diagnostic>
DiagnosticSink::take()
{
    std::lock_guard<std::mutex> guard(mtx);
    std::vector<Diagnostic> out = std::move(list);
    list.clear();
    return out;
}

void
DiagnosticSink::printText(std::ostream &os) const
{
    std::lock_guard<std::mutex> guard(mtx);
    printDiagnosticsText(os, list);
}

void
DiagnosticSink::printJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> guard(mtx);
    printDiagnosticsJson(os, list);
}

void
printDiagnosticsText(std::ostream &os,
                     const std::vector<Diagnostic> &diags)
{
    for (const auto &d : diags) {
        os << severityName(d.severity) << " [" << d.pass << "] ";
        if (!d.location.empty())
            os << d.location << ": ";
        os << d.message << '\n';
    }
}

void
printDiagnosticsJson(std::ostream &os,
                     const std::vector<Diagnostic> &diags)
{
    os << "[\n";
    for (size_t i = 0; i < diags.size(); ++i) {
        const Diagnostic &d = diags[i];
        os << "  {\"severity\": " << jsonQuote(severityName(d.severity))
           << ", \"pass\": " << jsonQuote(d.pass)
           << ", \"location\": " << jsonQuote(d.location)
           << ", \"message\": " << jsonQuote(d.message) << '}'
           << (i + 1 < diags.size() ? "," : "") << '\n';
    }
    os << "]\n";
}

void
sortDiagnosticsCanonical(std::vector<Diagnostic> &diags)
{
    std::stable_sort(diags.begin(), diags.end(),
                     [](const Diagnostic &a, const Diagnostic &b) {
                         return std::tie(a.pass, a.location, a.message,
                                         a.severity) <
                                std::tie(b.pass, b.location, b.message,
                                         b.severity);
                     });
}

} // namespace looppoint
