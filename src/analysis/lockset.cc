#include "analysis/lockset.hh"

#include <algorithm>
#include <deque>

#include "exec/driver.hh"
#include "exec/engine.hh"
#include "isa/addr_space.hh"
#include "util/logging.hh"

namespace looppoint {

LockDisciplineDetector::LockDisciplineDetector(const Program &prog_,
                                               SyncArbiter *inner_,
                                               DiagnosticSink &sink_,
                                               size_t max_findings)
    : prog(&prog_), inner(inner_), sink(&sink_),
      maxFindings(max_findings)
{
    blockHasAtomic.assign(prog->numBlocks(), 0);
    for (size_t i = 0; i < prog->numBlocks(); ++i)
        for (const InstrDesc &in : prog->blocks[i].instrs)
            if (in.op == OpClass::AtomicRmw) {
                blockHasAtomic[i] = 1;
                break;
            }
    if (prog->numLocks > kMaxTrackedLocks)
        sink->info("lockset", "",
                   strFormat("program declares %u locks; lockset "
                             "tracking covers the first %u",
                             prog->numLocks, kMaxTrackedLocks));
}

void
LockDisciplineDetector::ensureThread(uint32_t tid)
{
    if (heldLocks.size() <= tid)
        heldLocks.resize(tid + 1);
    if (lastRunPos.size() <= tid)
        lastRunPos.resize(tid + 1, 0);
}

uint64_t
LockDisciplineDetector::heldMask(uint32_t tid) const
{
    uint64_t mask = 0;
    for (uint32_t lid : heldLocks[tid])
        if (lid < kMaxTrackedLocks)
            mask |= 1ull << lid;
    return mask;
}

std::string
LockDisciplineDetector::lockSetName(uint64_t mask) const
{
    std::string out = "{";
    bool first = true;
    for (uint32_t i = 0; i < kMaxTrackedLocks; ++i) {
        if (!(mask & (1ull << i)))
            continue;
        if (!first)
            out += ", ";
        out += strFormat("lock %u", i);
        first = false;
    }
    out += "}";
    return out;
}

std::string
LockDisciplineDetector::siteName(BlockId block, uint16_t instr) const
{
    return strFormat("block %u (pc %#llx) instr %u", block,
                     static_cast<unsigned long long>(
                         prog->blocks[block].pc),
                     instr);
}

bool
LockDisciplineDetector::mayAcquireLock(uint32_t lock_id, uint32_t tid)
{
    return inner ? inner->mayAcquireLock(lock_id, tid) : true;
}

void
LockDisciplineDetector::onLockAcquired(uint32_t lock_id, uint32_t tid)
{
    if (inner)
        inner->onLockAcquired(lock_id, tid);
    ensureThread(tid);
    if (!heldLocks[tid].empty()) {
        const uint64_t held = heldMask(tid);
        const uint32_t pos = lastRunPos[tid];
        for (uint32_t h : heldLocks[tid]) {
            auto [it, inserted] =
                edges.try_emplace({h, lock_id});
            Edge &e = it->second;
            if (inserted) {
                ++counters.orderEdges;
                const char *kname =
                    pos < prog->runList.size()
                        ? prog->kernels[prog->runList[pos]].name.c_str()
                        : "?";
                e.site = strFormat("kernel '%s' (run position %u)",
                                   kname, pos);
            }
            e.gateMask &= held;
        }
    }
    heldLocks[tid].push_back(lock_id);
}

bool
LockDisciplineDetector::mayFetchChunk(uint32_t run_pos, uint32_t tid)
{
    return inner ? inner->mayFetchChunk(run_pos, tid) : true;
}

void
LockDisciplineDetector::onChunkFetched(uint32_t run_pos, uint32_t tid)
{
    if (inner)
        inner->onChunkFetched(run_pos, tid);
}

void
LockDisciplineDetector::onBlock(uint32_t tid, BlockId block,
                                const ExecutionEngine &engine)
{
    ensureThread(tid);
    lastRunPos[tid] = engine.runPosition(tid);
    const RuntimeBlocks &rt = prog->runtime;

    if (block == rt.lockRelease) {
        if (!heldLocks[tid].empty())
            heldLocks[tid].pop_back();
        else
            sink->error("lockset", strFormat("thread %u", tid),
                        "lock release without a matching acquire");
        return;
    }
    if (block == rt.barrierEnter || block == rt.barrierExit ||
        block == rt.atomicStub)
        return;

    // Data accesses: only main-image compute blocks participate, and
    // blocks with an AtomicRmw (atomic items, reduction tails) are
    // modeled as hardware-serialized updates.
    if (prog->blocks[block].image != ImageId::Main)
        return;
    if (blockHasAtomic[block])
        return;
    if (heldLocks[tid].empty())
        return; // unguarded: the happens-before checker's domain
    for (const MemRef &ref : engine.memRefs(tid)) {
        if (ref.addr < kSharedStreamRegionBase)
            continue; // private / stack / sync: per-thread by layout
        if (ref.aliased)
            continue;
        handleAccess(tid, ref.addr, block, ref.instrIndex,
                     ref.isWrite);
    }
}

void
LockDisciplineDetector::handleAccess(uint32_t tid, Addr addr,
                                     BlockId block, uint16_t instr,
                                     bool is_write)
{
    ++counters.guardedAccesses;
    const uint64_t held = heldMask(tid);
    Shadow &s = shadow[addr];
    if (s.prevBlock == kInvalidBlock) {
        s.lockset = held;
        s.firstTid = tid;
    } else {
        if (tid != s.firstTid)
            s.multiThread = true;
        s.lockset &= held;
    }
    if (s.multiThread && (s.written || is_write) && s.lockset == 0 &&
        !s.reported) {
        reportViolation(s, tid, block, instr, is_write, held, addr);
        s.reported = true;
    }
    s.written |= is_write;
    s.prevBlock = block;
    s.prevInstr = instr;
    s.prevTid = tid;
    s.prevHeld = held;
}

void
LockDisciplineDetector::reportViolation(const Shadow &s, uint32_t tid,
                                        BlockId block, uint16_t instr,
                                        bool is_write, uint64_t held,
                                        Addr addr)
{
    if (!reportedPairs
             .insert({s.prevBlock, s.prevInstr, block, instr})
             .second)
        return;
    ++counters.locksetViolations;
    if (counters.locksetViolations > maxFindings) {
        if (counters.locksetViolations == maxFindings + 1)
            sink->info("lockset", "",
                       strFormat("more than %zu distinct lockset "
                                 "violations; further reports "
                                 "suppressed",
                                 maxFindings));
        return;
    }
    const Severity sev = (is_write && s.written) ? Severity::Error
                                                 : Severity::Warning;
    sink->report(
        sev, "lockset", siteName(block, instr),
        strFormat("inconsistent lock discipline on address %#llx: "
                  "thread %u %s here holds %s, but thread %u %s at %s "
                  "held %s; no common lock guards this location",
                  static_cast<unsigned long long>(addr), tid,
                  is_write ? "write" : "read",
                  lockSetName(held).c_str(), s.prevTid,
                  s.written ? "write" : "read",
                  siteName(s.prevBlock, s.prevInstr).c_str(),
                  lockSetName(s.prevHeld).c_str()));
}

void
LockDisciplineDetector::finishDeadlockAnalysis()
{
    // Canonical cycle enumeration: for each lock s in ascending order,
    // find the shortest cycle through s that uses only locks >= s (so
    // every cycle is reported exactly once, anchored at its smallest
    // member). The edge map is ordered, so the whole walk — and with
    // it the report order — is deterministic.
    std::map<uint32_t, std::vector<uint32_t>> adj;
    std::set<uint32_t> nodes;
    for (const auto &[key, e] : edges) {
        adj[key.first].push_back(key.second);
        nodes.insert(key.first);
        nodes.insert(key.second);
    }

    for (uint32_t s : nodes) {
        // Self-edge: re-acquiring a held (non-reentrant) lock is a
        // guaranteed self-deadlock; a gate cannot help the holder.
        std::vector<uint32_t> cycle;
        auto self = edges.find({s, s});
        if (self != edges.end()) {
            cycle = {s};
        } else {
            // BFS from s over locks >= s, looking for a path back.
            std::map<uint32_t, uint32_t> parent;
            std::deque<uint32_t> queue;
            queue.push_back(s);
            bool found = false;
            while (!queue.empty() && !found) {
                const uint32_t u = queue.front();
                queue.pop_front();
                auto it = adj.find(u);
                if (it == adj.end())
                    continue;
                for (uint32_t v : it->second) {
                    if (v == s) {
                        cycle.push_back(s);
                        for (uint32_t w = u; w != s;
                             w = parent.at(w))
                            cycle.push_back(w);
                        std::reverse(cycle.begin() + 1, cycle.end());
                        found = true;
                        break;
                    }
                    if (v < s || parent.count(v))
                        continue;
                    parent[v] = u;
                    queue.push_back(v);
                }
            }
        }
        if (cycle.empty())
            continue;

        // Gate-lock suppression: a lock held across *every* edge of
        // the cycle (and not itself part of it) serializes the nested
        // acquisitions, so the inversion cannot happen.
        uint64_t gate = ~0ull;
        uint64_t cycle_mask = 0;
        std::string route, sites;
        for (size_t i = 0; i < cycle.size(); ++i) {
            const uint32_t from = cycle[i];
            const uint32_t to = cycle[(i + 1) % cycle.size()];
            const Edge &e = edges.at({from, to});
            gate &= e.gateMask;
            if (cycle[i] < kMaxTrackedLocks)
                cycle_mask |= 1ull << cycle[i];
            route += strFormat("lock %u -> ", from);
            sites += strFormat("%slock %u acquired while holding "
                               "lock %u in %s",
                               i ? "; " : "", to, from,
                               e.site.c_str());
        }
        route += strFormat("lock %u", cycle.front());
        gate &= ~cycle_mask;
        if (cycle.size() > 1 && gate != 0) {
            ++counters.gateSuppressedCycles;
            sink->info("deadlock", "lock-order graph",
                       strFormat("lock-order cycle %s is serialized "
                                 "by gate %s; suppressed",
                                 route.c_str(),
                                 lockSetName(gate).c_str()));
            continue;
        }
        ++counters.deadlockCycles;
        if (counters.deadlockCycles > maxFindings) {
            if (counters.deadlockCycles == maxFindings + 1)
                sink->info("deadlock", "",
                           strFormat("more than %zu lock-order "
                                     "cycles; further reports "
                                     "suppressed",
                                     maxFindings));
            continue;
        }
        sink->error("deadlock", "lock-order graph",
                    strFormat("potential deadlock: lock-order cycle "
                              "%s (%s)",
                              route.c_str(), sites.c_str()));
    }
}

LockDisciplineStats
checkGuestLockDiscipline(const Program &prog, const Pinball &pinball,
                         DiagnosticSink &sink, uint64_t quantum_instrs,
                         size_t max_findings, bool run_lockset,
                         bool run_deadlock)
{
    DiagnosticSink local;
    ReplayArbiter replay(pinball.log);
    LockDisciplineDetector detector(prog, &replay, local,
                                    max_findings);
    ExecConfig cfg = pinball.config;
    cfg.genAddresses = true;
    ExecutionEngine engine(prog, cfg, &detector);
    RoundRobinDriver driver(engine, quantum_instrs);
    driver.run(&detector);
    detector.finishDeadlockAnalysis();

    const char *pass = run_lockset ? "lockset" : "deadlock";
    if (!replay.exhausted())
        local.error(pass, "replay",
                    "constrained replay did not consume the full "
                    "synchronization log");

    const LockDisciplineStats &st = detector.stats();
    if (run_lockset)
        local.info("lockset", "",
                   strFormat("checked %llu lock-guarded shared "
                             "accesses: %zu inconsistent-lockset "
                             "finding(s)",
                             static_cast<unsigned long long>(
                                 st.guardedAccesses),
                             st.locksetViolations));
    if (run_deadlock)
        local.info("deadlock", "",
                   strFormat("lock-order graph: %llu edge(s), %zu "
                             "cycle(s), %zu gate-suppressed",
                             static_cast<unsigned long long>(
                                 st.orderEdges),
                             st.deadlockCycles,
                             st.gateSuppressedCycles));

    for (const Diagnostic &d : local.take()) {
        if (d.pass == "lockset" && !run_lockset)
            continue;
        if (d.pass == "deadlock" && !run_deadlock)
            continue;
        sink.report(d.severity, d.pass, d.location, d.message);
    }
    return st;
}

} // namespace looppoint
