/**
 * @file
 * Post-run sampling-validity audit of a whole experiment: builds an
 * AuditContext from an ExperimentConfig/ExperimentResult pair and
 * runs ArtifactAudit over everything the run produced or consumed
 * (recording, clustering, journal, store). Lives above lp_core — the
 * experiment runner cannot call the audit itself without making the
 * core/analysis dependency circular, so the tools invoke this after
 * runExperiment() returns.
 */

#ifndef LOOPPOINT_ANALYSIS_EXPERIMENT_AUDIT_HH
#define LOOPPOINT_ANALYSIS_EXPERIMENT_AUDIT_HH

#include "core/experiment.hh"

namespace looppoint {

/**
 * Audit the artifacts of a completed experiment. Appends the findings
 * to res.analysis.diagnostics in canonical order, sets
 * res.auditFindings, and returns that count (warnings + errors; info
 * lines excluded).
 */
size_t auditExperiment(const ExperimentConfig &cfg,
                       ExperimentResult &res);

} // namespace looppoint

#endif // LOOPPOINT_ANALYSIS_EXPERIMENT_AUDIT_HH
