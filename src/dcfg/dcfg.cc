#include "dcfg/dcfg.hh"

#include <algorithm>

#include "util/logging.hh"

namespace looppoint {

DcfgBuilder::DcfgBuilder(const Program &prog_, uint32_t num_threads)
    : prog(&prog_), lastBlock(num_threads, kInvalidBlock),
      lastMainBlock(num_threads, kInvalidBlock),
      execCounts(prog_.numBlocks(), 0)
{}

void
DcfgBuilder::onBlock(uint32_t tid, BlockId block,
                     const ExecutionEngine &engine)
{
    (void)engine;
    ++execCounts[block];
    BlockId prev = lastBlock[tid];
    if (prev != kInvalidBlock) {
        uint64_t key = (static_cast<uint64_t>(prev) << 32) | block;
        ++edgeCounts[key];
    }
    lastBlock[tid] = block;

    // Call-return summarization: two consecutively executed blocks of
    // the same main-image routine form a summary edge even when
    // library code (lock stubs, chunk dispatch, barriers) ran in
    // between. Loop analysis runs on these edges, mirroring how the
    // Pin DCFG library collapses calls inside a routine's subgraph.
    if (prog->inMainImage(block)) {
        BlockId prev_main = lastMainBlock[tid];
        if (prev_main != kInvalidBlock &&
            prog->blocks[prev_main].routine ==
                prog->blocks[block].routine) {
            uint64_t key =
                (static_cast<uint64_t>(prev_main) << 32) | block;
            ++summaryCounts[key];
        }
        lastMainBlock[tid] = block;
    }
}

Dcfg
DcfgBuilder::build() const
{
    auto to_sorted = [](const std::unordered_map<uint64_t, uint64_t>
                            &counts) {
        std::vector<DcfgEdge> edges;
        edges.reserve(counts.size());
        for (const auto &[key, count] : counts) {
            DcfgEdge e;
            e.from = static_cast<BlockId>(key >> 32);
            e.to = static_cast<BlockId>(key & 0xffffffffu);
            e.count = count;
            edges.push_back(e);
        }
        std::sort(edges.begin(), edges.end(),
                  [](const DcfgEdge &a, const DcfgEdge &b) {
                      return a.from != b.from ? a.from < b.from
                                              : a.to < b.to;
                  });
        return edges;
    };
    return Dcfg(*prog, to_sorted(edgeCounts), to_sorted(summaryCounts),
                execCounts);
}

Dcfg::Dcfg(const Program &prog_, std::vector<DcfgEdge> edges,
           std::vector<DcfgEdge> summary_edges,
           std::vector<uint64_t> block_execs)
    : prog(&prog_), edgeList(std::move(edges)),
      summaryList(std::move(summary_edges)),
      execCounts(std::move(block_execs))
{
    LP_ASSERT(execCounts.size() == prog->numBlocks());
    analyze();
}

namespace {

/**
 * Per-routine dominator analysis scratch. Implements the classic
 * iterative algorithm (Cooper/Harvey/Kennedy) on the executed subgraph
 * of one routine.
 */
struct RoutineGraph
{
    std::vector<BlockId> nodes;             ///< executed routine blocks
    std::unordered_map<BlockId, int> index; ///< block -> local index
    std::vector<std::vector<int>> succs;
    std::vector<std::vector<int>> preds;
    std::vector<int> rpo;      ///< reverse post-order (local indices)
    std::vector<int> rpoNum;   ///< local index -> rpo position
    std::vector<int> idom;     ///< local index -> idom local index
};

void
computeRpo(RoutineGraph &g, int entry)
{
    std::vector<char> seen(g.nodes.size(), 0);
    std::vector<int> post;
    // Iterative DFS.
    std::vector<std::pair<int, size_t>> stack;
    stack.push_back({entry, 0});
    seen[entry] = 1;
    while (!stack.empty()) {
        auto &[n, i] = stack.back();
        if (i < g.succs[n].size()) {
            int s = g.succs[n][i++];
            if (!seen[s]) {
                seen[s] = 1;
                stack.push_back({s, 0});
            }
        } else {
            post.push_back(n);
            stack.pop_back();
        }
    }
    g.rpo.assign(post.rbegin(), post.rend());
    g.rpoNum.assign(g.nodes.size(), -1);
    for (size_t i = 0; i < g.rpo.size(); ++i)
        g.rpoNum[g.rpo[i]] = static_cast<int>(i);
}

int
intersect(const RoutineGraph &g, int a, int b)
{
    while (a != b) {
        while (g.rpoNum[a] > g.rpoNum[b])
            a = g.idom[a];
        while (g.rpoNum[b] > g.rpoNum[a])
            b = g.idom[b];
    }
    return a;
}

void
computeDominators(RoutineGraph &g, int entry)
{
    g.idom.assign(g.nodes.size(), -1);
    g.idom[entry] = entry;
    bool changed = true;
    while (changed) {
        changed = false;
        for (int n : g.rpo) {
            if (n == entry)
                continue;
            int new_idom = -1;
            for (int p : g.preds[n]) {
                if (g.idom[p] == -1)
                    continue; // unprocessed or unreachable
                new_idom = (new_idom == -1) ? p
                                            : intersect(g, new_idom, p);
            }
            if (new_idom != -1 && g.idom[n] != new_idom) {
                g.idom[n] = new_idom;
                changed = true;
            }
        }
    }
}

/** Does `a` dominate `b`? (walk up from b; entry's idom is itself) */
bool
dominatesNode(const RoutineGraph &g, int a, int b, int entry)
{
    int cur = b;
    for (;;) {
        if (cur == a)
            return true;
        if (cur == entry || g.idom[cur] == -1)
            return false;
        cur = g.idom[cur];
    }
}

} // namespace

void
Dcfg::analyze()
{
    // Per-node adjacency restricted to intra-routine edges.
    for (uint32_t r = 0; r < prog->routines.size(); ++r) {
        const Routine &routine = prog->routines[r];
        RoutineGraph g;
        for (BlockId b : routine.blocks) {
            if (execCounts[b] == 0)
                continue;
            g.index[b] = static_cast<int>(g.nodes.size());
            g.nodes.push_back(b);
        }
        if (g.nodes.empty())
            continue;
        auto entry_it = g.index.find(routine.entry);
        if (entry_it == g.index.end())
            continue; // routine entry never executed
        int entry = entry_it->second;

        g.succs.resize(g.nodes.size());
        g.preds.resize(g.nodes.size());
        std::vector<const DcfgEdge *> local_edges;
        auto add_edges = [&](const std::vector<DcfgEdge> &list) {
            for (const DcfgEdge &e : list) {
                auto fi = g.index.find(e.from);
                auto ti = g.index.find(e.to);
                if (fi == g.index.end() || ti == g.index.end())
                    continue;
                g.succs[fi->second].push_back(ti->second);
                g.preds[ti->second].push_back(fi->second);
                local_edges.push_back(&e);
            }
        };
        if (routine.image == ImageId::Main) {
            // Summary edges collapse library calls; they subsume all
            // intra-routine raw edges of main-image routines.
            add_edges(summaryList);
        } else {
            add_edges(edgeList);
        }

        computeRpo(g, entry);
        computeDominators(g, entry);

        // Back edges -> natural loops; merge bodies per header.
        std::unordered_map<int, DcfgLoop> loops_by_header;
        for (const DcfgEdge *e : local_edges) {
            int t = g.index[e->from];
            int h = g.index[e->to];
            if (g.rpoNum[t] == -1 || g.rpoNum[h] == -1)
                continue; // unreachable from routine entry
            if (!dominatesNode(g, h, t, entry))
                continue;
            DcfgLoop &loop = loops_by_header[h];
            if (loop.header == kInvalidBlock) {
                loop.header = e->to;
                loop.headerExecs = execCounts[e->to];
                loop.image = prog->blocks[e->to].image;
                loop.routine = r;
            }
            loop.backEdgeCount += e->count;
            // Natural-loop body: reverse reachability from t up to h.
            std::vector<char> in_loop(g.nodes.size(), 0);
            in_loop[h] = 1;
            std::vector<int> work;
            if (!in_loop[t]) {
                in_loop[t] = 1;
                work.push_back(t);
            }
            while (!work.empty()) {
                int n = work.back();
                work.pop_back();
                for (int p : g.preds[n]) {
                    if (!in_loop[p] && g.rpoNum[p] != -1) {
                        in_loop[p] = 1;
                        work.push_back(p);
                    }
                }
            }
            for (size_t i = 0; i < g.nodes.size(); ++i) {
                if (!in_loop[i])
                    continue;
                BlockId bid = g.nodes[i];
                if (std::find(loop.body.begin(), loop.body.end(), bid) ==
                    loop.body.end())
                    loop.body.push_back(bid);
            }
        }

        for (auto &[h, loop] : loops_by_header) {
            (void)h;
            loop.entries = loop.headerExecs >= loop.backEdgeCount
                               ? loop.headerExecs - loop.backEdgeCount
                               : 0;
            std::sort(loop.body.begin(), loop.body.end());
            headerIndex[loop.header] = loopList.size();
            loopList.push_back(std::move(loop));
        }
    }

    std::sort(loopList.begin(), loopList.end(),
              [&](const DcfgLoop &a, const DcfgLoop &b) {
                  return prog->blocks[a.header].pc <
                         prog->blocks[b.header].pc;
              });
    headerIndex.clear();
    for (size_t i = 0; i < loopList.size(); ++i)
        headerIndex[loopList[i].header] = i;
}

std::vector<BlockId>
Dcfg::mainImageLoopHeaders() const
{
    std::vector<BlockId> headers;
    for (const auto &loop : loopList)
        if (loop.image == ImageId::Main)
            headers.push_back(loop.header);
    std::sort(headers.begin(), headers.end(),
              [&](BlockId a, BlockId b) {
                  return prog->blocks[a].pc < prog->blocks[b].pc;
              });
    return headers;
}

bool
Dcfg::isLoopHeader(BlockId id) const
{
    return headerIndex.count(id) > 0;
}

const DcfgLoop &
Dcfg::loopAt(BlockId id) const
{
    auto it = headerIndex.find(id);
    if (it == headerIndex.end())
        fatal("block %u does not head a DCFG loop", id);
    return loopList[it->second];
}

} // namespace looppoint
