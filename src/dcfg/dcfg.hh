/**
 * @file
 * Dynamic Control-Flow Graph (DCFG) construction and loop analysis,
 * reproducing the Pin DCFG library's role in LoopPoint (Section III-D).
 *
 * A DcfgBuilder observes a (replayed) execution and records every
 * per-thread block-to-block transition with a traversal count. The
 * resulting Dcfg partitions nodes by routine, computes immediate
 * dominators per routine subgraph, identifies natural loops from back
 * edges (an edge t->h where h dominates t), and exposes the set of
 * *main-image loop headers* — the only legal (PC, count) region
 * boundary markers, since synchronization loops (spin waits) live in
 * the library images and their iteration counts are not stable across
 * executions.
 */

#ifndef LOOPPOINT_DCFG_DCFG_HH
#define LOOPPOINT_DCFG_DCFG_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "exec/listener.hh"
#include "isa/program.hh"

namespace looppoint {

class ExecutionEngine;

/** A control-flow edge with its dynamic traversal count. */
struct DcfgEdge
{
    BlockId from = kInvalidBlock;
    BlockId to = kInvalidBlock;
    uint64_t count = 0;
};

/** A natural loop discovered in the DCFG. */
struct DcfgLoop
{
    /** The loop header (single entry of the natural loop). */
    BlockId header = kInvalidBlock;
    /** All blocks in the loop body (including the header). */
    std::vector<BlockId> body;
    /** Total traversals of the loop's back edges. */
    uint64_t backEdgeCount = 0;
    /** Dynamic executions of the header. */
    uint64_t headerExecs = 0;
    /** Loop entries from outside (headerExecs - backEdgeCount). */
    uint64_t entries = 0;
    ImageId image = ImageId::Main;
    uint32_t routine = 0;
};

/** The analyzed dynamic control-flow graph. */
class Dcfg
{
  public:
    /**
     * @param edges raw block-to-block transitions
     * @param summary_edges call-return-summarized transitions between
     *        same-routine blocks (a library call between two blocks of
     *        one routine is collapsed into a direct edge, as the Pin
     *        DCFG library does); used for loop analysis
     * @param block_execs per-block dynamic execution counts
     */
    Dcfg(const Program &prog, std::vector<DcfgEdge> edges,
         std::vector<DcfgEdge> summary_edges,
         std::vector<uint64_t> block_execs);

    const Program &program() const { return *prog; }
    const std::vector<DcfgEdge> &edges() const { return edgeList; }
    const std::vector<DcfgEdge> &summaryEdges() const
    {
        return summaryList;
    }
    uint64_t blockExecs(BlockId id) const { return execCounts[id]; }

    /** All natural loops, discovered via dominator analysis. */
    const std::vector<DcfgLoop> &loops() const { return loopList; }

    /**
     * Loop-header blocks in the application's main image, sorted by
     * PC: the legal region-boundary markers.
     */
    std::vector<BlockId> mainImageLoopHeaders() const;

    /** True if `id` heads some discovered loop. */
    bool isLoopHeader(BlockId id) const;

    /** The loop headed by `id`; fatal if there is none. */
    const DcfgLoop &loopAt(BlockId id) const;

  private:
    void analyze();

    const Program *prog;
    std::vector<DcfgEdge> edgeList;
    std::vector<DcfgEdge> summaryList;
    std::vector<uint64_t> execCounts;
    std::vector<DcfgLoop> loopList;
    std::unordered_map<BlockId, size_t> headerIndex;
};

/**
 * ExecListener that accumulates DCFG edges from a live execution.
 * Per-thread transitions only: a thread migrating between blocks forms
 * an edge; two threads in unrelated blocks do not.
 */
class DcfgBuilder : public ExecListener
{
  public:
    DcfgBuilder(const Program &prog, uint32_t num_threads);

    void onBlock(uint32_t tid, BlockId block,
                 const ExecutionEngine &engine) override;

    /** Finish collection and build the analyzed graph. */
    Dcfg build() const;

  private:
    const Program *prog;
    std::vector<BlockId> lastBlock;
    /** Last main-image block per thread (for summarized edges). */
    std::vector<BlockId> lastMainBlock;
    std::unordered_map<uint64_t, uint64_t> edgeCounts;
    std::unordered_map<uint64_t, uint64_t> summaryCounts;
    std::vector<uint64_t> execCounts;
};

} // namespace looppoint

#endif // LOOPPOINT_DCFG_DCFG_HH
