/**
 * @file
 * Canonical config fingerprinting, shared by the run journal, the
 * artifact store's stage keys, and the campaign driver. One encoder
 * means one answer to "do these two runs have the same identity":
 * every consumer renders `name=value;` segments through the same
 * formatting rules (%.17g doubles, space-free values), so a key built
 * in one layer matches a key rebuilt in another byte for byte.
 */

#ifndef LOOPPOINT_UTIL_FINGERPRINT_HH
#define LOOPPOINT_UTIL_FINGERPRINT_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace looppoint {

/**
 * Accumulates `name=value;` segments into a canonical one-line text.
 * Values are sanitized to be space- and newline-free so the result can
 * be embedded in line-oriented manifests verbatim.
 */
class FingerprintBuilder
{
  public:
    /** `stage` leads the text (e.g. "record-v1;"): it carries the
     * stage name and its code version, so bumping a stage's logic
     * invalidates exactly that stage and its downstreams. */
    explicit FingerprintBuilder(std::string_view stage);

    FingerprintBuilder &field(std::string_view name,
                              std::string_view value);
    /** Without this overload a string literal would convert to bool
     * (pointer decay beats the user-defined string_view conversion)
     * and every such field would silently render as `1`. */
    FingerprintBuilder &field(std::string_view name, const char *value)
    {
        return field(name, std::string_view(value));
    }
    FingerprintBuilder &field(std::string_view name, uint64_t value);
    FingerprintBuilder &field(std::string_view name, uint32_t value);
    FingerprintBuilder &field(std::string_view name, int value);
    FingerprintBuilder &field(std::string_view name, bool value);
    /** %.17g: doubles round-trip exactly, so equal configs always
     * fingerprint equal and unequal ones never collide by rounding. */
    FingerprintBuilder &fieldDouble(std::string_view name, double value);

    /** The canonical text, e.g. "record-v1;threads=4;seed=42;". */
    const std::string &text() const { return out; }
    /** CRC32 of text() — the compact form for journal keys. */
    uint32_t crc() const;

  private:
    std::string out;
};

} // namespace looppoint

#endif // LOOPPOINT_UTIL_FINGERPRINT_HH
