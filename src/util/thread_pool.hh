/**
 * @file
 * A shared work-stealing thread pool for host-parallel phases of the
 * pipeline (checkpointed region simulation, the k-means BIC sweep,
 * per-slice random projection).
 *
 * Design: a fixed set of workers, each owning a mutex-guarded deque.
 * Local work is pushed and popped LIFO at the back (locality); idle
 * workers steal the oldest *half* of a victim's deque (steal-half), so
 * one long queue spreads across the pool in O(log n) steals. External
 * submitters distribute round-robin across the worker deques. There is
 * no global queue and no lock shared by running workers; the only
 * shared lock is the sleep mutex, touched when a worker runs dry.
 *
 * Determinism contract: the pool schedules *when and where* tasks run,
 * never *what they compute*. Callers must seed any randomness by task
 * index (e.g. hashCombine(seed, idx)), write results into
 * index-addressed slots, and never depend on worker identity or
 * completion order; every use in this codebase follows that rule, so
 * results are bit-identical for any worker count.
 *
 * Blocking inside a task is safe only via the helping APIs
 * (parallelFor, waitHelping, runPendingTask), which execute queued
 * work instead of sleeping — a task that plain-waits on a future can
 * deadlock a one-worker pool.
 */

#ifndef LOOPPOINT_UTIL_THREAD_POOL_HH
#define LOOPPOINT_UTIL_THREAD_POOL_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace looppoint {

class Counter;

/** See file comment. */
class ThreadPool
{
  public:
    /** @param num_workers worker threads; 0 = defaultWorkers(). */
    explicit ThreadPool(uint32_t num_workers = 0);

    /**
     * Drains: queued tasks are completed (on the workers, then on the
     * destructing thread if a racing task enqueued more), never
     * dropped.
     */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    uint32_t
    numWorkers() const
    {
        return static_cast<uint32_t>(workers.size());
    }

    /** Hardware concurrency, clamped to at least 1. */
    static uint32_t defaultWorkers();

    /**
     * Resolve a user-facing worker-count knob (--jobs / --workers):
     * 0 means "auto-detect" and resolves to defaultWorkers()
     * (std::thread::hardware_concurrency, clamped to at least 1);
     * any other value is taken as is. The one shared helper for every
     * such knob, so auto-detection is uniform across the pool and
     * procs backends and the analysis phase.
     */
    static uint32_t
    resolveWorkers(uint32_t requested)
    {
        return requested ? requested : defaultWorkers();
    }

    /**
     * Queue one task; the future carries its result or exception.
     * Called from a worker, the task lands on that worker's own deque
     * (LIFO, stealable); otherwise it is distributed round-robin.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        enqueue([task] { (*task)(); });
        return fut;
    }

    /**
     * Run body(i) for every i in [begin, end), on the workers plus the
     * calling thread. Indices are handed out one at a time from a
     * shared cursor, so uneven per-index costs balance automatically.
     * Blocks until every index completed; the first exception thrown
     * by any body is rethrown here (after all indices finish). Safe to
     * call from inside a pool task (the nested call helps instead of
     * sleeping).
     */
    void parallelFor(size_t begin, size_t end,
                     const std::function<void(size_t)> &body);

    /**
     * Execute one queued task on the calling thread, if any is
     * available (own deque first for workers, then stealing). Returns
     * false when every deque was empty.
     */
    bool runPendingTask();

    /**
     * Wait for `fut`, executing queued tasks while waiting, so a task
     * can safely block on work it submitted. Rethrows the task's
     * exception, like future::get().
     */
    template <typename T>
    T
    waitHelping(std::future<T> &fut)
    {
        while (fut.wait_for(std::chrono::seconds(0)) !=
               std::future_status::ready) {
            if (!runPendingTask())
                fut.wait_for(std::chrono::milliseconds(1));
        }
        return fut.get();
    }

    /**
     * parallelFor that tolerates a missing pool: runs the plain serial
     * loop when `pool` is null (the jobs <= 1 configuration).
     */
    static void forEach(ThreadPool *pool, size_t begin, size_t end,
                        const std::function<void(size_t)> &body);

  private:
    using Task = std::function<void()>;

    struct Worker
    {
        std::mutex mtx;
        std::deque<Task> deque;
        std::thread thread;
        // Telemetry handles, owned by the global MetricsRegistry and
        // wired in the pool constructor. Updates are no-ops while the
        // registry is disabled.
        Counter *statTasks = nullptr;
        Counter *statSteals = nullptr;
        Counter *statIdleNs = nullptr;
    };

    void enqueue(Task task);
    /** Pop the newest task of worker `wid`'s own deque. */
    bool popLocal(uint32_t wid, Task &out);
    /**
     * Steal-half: take the oldest half of some victim's deque, run the
     * first stolen task as `out`, requeue the rest on `wid`'s deque
     * (or, for external thieves with no deque, steal just one).
     */
    bool steal(uint32_t wid, Task &out);
    bool takeTask(uint32_t wid, Task &out);
    void bumpEpoch();
    void workerLoop(uint32_t wid);

    std::vector<std::unique_ptr<Worker>> workers;

    // Sleep/wake machinery: workers that find every deque empty block
    // on `sleepCv` until the submit epoch moves (epoch is read before
    // scanning, so a push between scan and sleep is never missed).
    std::mutex sleepMtx;
    std::condition_variable sleepCv;
    uint64_t wakeEpoch = 0;
    bool stopping = false;

    std::atomic<uint64_t> pushCursor{0};

    /** Steals performed by threads outside the pool (helping APIs). */
    Counter *statExternalSteals = nullptr;
};

} // namespace looppoint

#endif // LOOPPOINT_UTIL_THREAD_POOL_HH
