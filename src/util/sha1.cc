#include "util/sha1.hh"

#include <cstring>

#include "util/logging.hh"

namespace looppoint {

namespace {

inline uint32_t
rotl(uint32_t v, unsigned bits)
{
    return (v << bits) | (v >> (32 - bits));
}

} // namespace

Sha1::Sha1()
{
    h[0] = 0x67452301u;
    h[1] = 0xEFCDAB89u;
    h[2] = 0x98BADCFEu;
    h[3] = 0x10325476u;
    h[4] = 0xC3D2E1F0u;
}

void
Sha1::processBlock(const uint8_t *block)
{
    uint32_t w[80];
    for (int i = 0; i < 16; ++i) {
        w[i] = (static_cast<uint32_t>(block[i * 4]) << 24) |
               (static_cast<uint32_t>(block[i * 4 + 1]) << 16) |
               (static_cast<uint32_t>(block[i * 4 + 2]) << 8) |
               static_cast<uint32_t>(block[i * 4 + 3]);
    }
    for (int i = 16; i < 80; ++i)
        w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);

    uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
    for (int i = 0; i < 80; ++i) {
        uint32_t f, k;
        if (i < 20) {
            f = (b & c) | (~b & d);
            k = 0x5A827999u;
        } else if (i < 40) {
            f = b ^ c ^ d;
            k = 0x6ED9EBA1u;
        } else if (i < 60) {
            f = (b & c) | (b & d) | (c & d);
            k = 0x8F1BBCDCu;
        } else {
            f = b ^ c ^ d;
            k = 0xCA62C1D6u;
        }
        uint32_t tmp = rotl(a, 5) + f + e + k + w[i];
        e = d;
        d = c;
        c = rotl(b, 30);
        b = a;
        a = tmp;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
}

void
Sha1::update(const void *data, size_t len)
{
    LP_ASSERT(!finalized);
    const uint8_t *p = static_cast<const uint8_t *>(data);
    totalBytes += len;
    while (len > 0) {
        if (bufLen == 0 && len >= 64) {
            processBlock(p);
            p += 64;
            len -= 64;
            continue;
        }
        size_t take = 64 - bufLen;
        if (take > len)
            take = len;
        std::memcpy(buf + bufLen, p, take);
        bufLen += take;
        p += take;
        len -= take;
        if (bufLen == 64) {
            processBlock(buf);
            bufLen = 0;
        }
    }
}

std::string
Sha1::hex()
{
    LP_ASSERT(!finalized);
    const uint64_t total_bits = totalBytes * 8;

    // Pad: 0x80, zeros to 56 mod 64, then the bit length big-endian.
    buf[bufLen++] = 0x80;
    if (bufLen > 56) {
        std::memset(buf + bufLen, 0, 64 - bufLen);
        processBlock(buf);
        bufLen = 0;
    }
    std::memset(buf + bufLen, 0, 56 - bufLen);
    for (int i = 0; i < 8; ++i)
        buf[56 + i] = static_cast<uint8_t>(total_bits >> (56 - 8 * i));
    processBlock(buf);
    finalized = true;

    static const char *digits = "0123456789abcdef";
    std::string out;
    out.reserve(40);
    for (uint32_t word : h) {
        for (int shift = 28; shift >= 0; shift -= 4)
            out.push_back(digits[(word >> shift) & 0xF]);
    }
    return out;
}

std::string
sha1Hex(std::string_view payload)
{
    Sha1 s;
    s.update(payload);
    return s.hex();
}

} // namespace looppoint
