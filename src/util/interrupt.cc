#include "interrupt.hh"

#include <csignal>

#include <atomic>

namespace looppoint {

namespace {

std::atomic<int> shutdownRequests{0};

void
onInterrupt(int signum)
{
    int n = shutdownRequests.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n >= 3) {
        // Give up on cooperative shutdown: die by this signal now.
        std::signal(signum, SIG_DFL);
        std::raise(signum);
    }
}

} // anonymous namespace

void
installInterruptHandlers()
{
    struct sigaction sa = {};
    sa.sa_handler = onInterrupt;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

void
requestShutdown()
{
    shutdownRequests.fetch_add(1, std::memory_order_relaxed);
}

bool
shutdownRequested()
{
    return shutdownRequests.load(std::memory_order_relaxed) > 0;
}

int
shutdownSignalCount()
{
    return shutdownRequests.load(std::memory_order_relaxed);
}

void
clearShutdownRequest()
{
    shutdownRequests.store(0, std::memory_order_relaxed);
}

} // namespace looppoint
