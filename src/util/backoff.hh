/**
 * @file
 * Retry policy for supervised job execution: transient-vs-permanent
 * failure classification from a waitpid() status, and exponential
 * backoff with deterministic seeded jitter.
 *
 * The campaign supervisor runs each job in a forked child; when the
 * child stops, everything it knows is the wait status. The classifier
 * maps that status onto the shared exit-code contract (0 success,
 * 1 degraded, 2 usage, 3 runtime failure, 4 interrupted at a region
 * boundary) plus the signal dispositions: any signal death — SIGSEGV
 * from a real crash, SIGKILL from the OOM killer or the watchdog —
 * is transient (a retry from the same inputs may well succeed),
 * while usage errors and unknown exit codes are permanent (the same
 * command line will fail the same way forever).
 *
 * Backoff is exponential with a hard cap and multiplicative jitter.
 * The jitter is *seeded*, not sampled: delay(retry) is a pure
 * function of (policy, retry), so a test can assert the exact
 * schedule and a resumed supervisor recomputes the same delays the
 * crashed one would have used. Once the uncapped delay reaches the
 * cap, jitter is dropped and the cap is returned exactly — saturation
 * is a fixed point, not a band.
 */

#ifndef LOOPPOINT_UTIL_BACKOFF_HH
#define LOOPPOINT_UTIL_BACKOFF_HH

#include <cstdint>

namespace looppoint {

/** Why a supervised child stopped, classified from its wait status. */
enum class FailureClass : uint8_t
{
    Success,     ///< exit 0: full-coverage run
    Degraded,    ///< exit 1: completed with reduced coverage/findings
    Permanent,   ///< exit 2 or an unknown code: retrying cannot help
    Transient,   ///< exit 3 or any signal death: worth retrying
    Interrupted, ///< exit 4: stopped at a region boundary on request
};

/** Stable lowercase name (journal / status.json vocabulary). */
const char *failureClassName(FailureClass c);

/**
 * Classify a status filled in by waitpid(). See the file comment for
 * the table; WIFSTOPPED/WIFCONTINUED (not requested by the
 * supervisor) conservatively classify as Transient.
 */
FailureClass classifyWaitStatus(int wait_status);

/** See file comment. */
struct BackoffPolicy
{
    /** Delay before the first retry (uncapped, pre-jitter). */
    double baseSeconds = 0.5;
    /** Growth factor per retry (>= 1). */
    double multiplier = 2.0;
    /** Hard ceiling; saturated delays return exactly this. */
    double capSeconds = 60.0;
    /**
     * Width of the multiplicative jitter band: the pre-cap delay is
     * scaled by 1 + jitterFraction * (u - 0.5) with u in [0, 1)
     * derived from (seed, retry). 0 disables jitter.
     */
    double jitterFraction = 0.5;
    /** Jitter stream selector (e.g. per-job: combine with job index). */
    uint64_t seed = 0;

    /**
     * The delay before retry `retry` (0-based: retry 0 follows the
     * first failure). Deterministic for a fixed (policy, retry).
     */
    double delaySeconds(uint32_t retry) const;

    /** This policy with its jitter stream re-seeded (per-job use). */
    BackoffPolicy withSeed(uint64_t new_seed) const;
};

} // namespace looppoint

#endif // LOOPPOINT_UTIL_BACKOFF_HH
