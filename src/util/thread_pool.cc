#include "util/thread_pool.hh"

#include "obs/clock.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace looppoint {

namespace {

// Worker identity of the current thread, for deque-local push/pop.
// Plain thread_locals (not members) so external threads are simply
// "no pool, no deque".
thread_local ThreadPool *tlsPool = nullptr;
thread_local uint32_t tlsWid = 0;

} // namespace

uint32_t
ThreadPool::defaultWorkers()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? static_cast<uint32_t>(n) : 1u;
}

ThreadPool::ThreadPool(uint32_t num_workers)
{
    uint32_t n = num_workers ? num_workers : defaultWorkers();
    MetricsRegistry &reg = MetricsRegistry::global();
    statExternalSteals = &reg.counter("pool.steals.external");
    workers.reserve(n);
    for (uint32_t wid = 0; wid < n; ++wid) {
        auto w = std::make_unique<Worker>();
        const std::string prefix =
            "pool.worker" + std::to_string(wid);
        w->statTasks = &reg.counter(prefix + ".tasks");
        w->statSteals = &reg.counter(prefix + ".steals");
        w->statIdleNs = &reg.counter(prefix + ".idle_ns");
        workers.push_back(std::move(w));
    }
    for (uint32_t wid = 0; wid < n; ++wid)
        workers[wid]->thread =
            std::thread([this, wid] { workerLoop(wid); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> g(sleepMtx);
        stopping = true;
        ++wakeEpoch;
    }
    sleepCv.notify_all();
    for (auto &w : workers)
        w->thread.join();
    // A task racing with shutdown may have enqueued work after its
    // worker drained and exited; finish it here so no queued task is
    // ever dropped (and no future is left with a broken promise).
    Task task;
    while (takeTask(numWorkers(), task))
        task();
}

void
ThreadPool::bumpEpoch()
{
    {
        std::lock_guard<std::mutex> g(sleepMtx);
        ++wakeEpoch;
    }
    sleepCv.notify_all();
}

void
ThreadPool::enqueue(Task task)
{
    uint32_t target;
    if (tlsPool == this) {
        target = tlsWid;
    } else {
        target = static_cast<uint32_t>(
            pushCursor.fetch_add(1, std::memory_order_relaxed) %
            workers.size());
    }
    {
        std::lock_guard<std::mutex> g(workers[target]->mtx);
        workers[target]->deque.push_back(std::move(task));
    }
    bumpEpoch();
}

bool
ThreadPool::popLocal(uint32_t wid, Task &out)
{
    Worker &w = *workers[wid];
    std::lock_guard<std::mutex> g(w.mtx);
    if (w.deque.empty())
        return false;
    out = std::move(w.deque.back());
    w.deque.pop_back();
    return true;
}

bool
ThreadPool::steal(uint32_t wid, Task &out)
{
    const uint32_t n = numWorkers();
    const bool have_deque = wid < n;
    for (uint32_t i = 0; i < n; ++i) {
        uint32_t victim = (wid + 1 + i) % n;
        if (victim == wid)
            continue;
        // Move the spoils to a local buffer under the victim's lock
        // only, then requeue under our own lock — never both at once,
        // so two workers stealing from each other cannot deadlock.
        std::vector<Task> stolen;
        {
            std::lock_guard<std::mutex> g(workers[victim]->mtx);
            std::deque<Task> &dq = workers[victim]->deque;
            if (dq.empty())
                continue;
            size_t take = have_deque ? (dq.size() + 1) / 2 : 1;
            for (size_t s = 0; s < take; ++s) {
                stolen.push_back(std::move(dq.front()));
                dq.pop_front();
            }
        }
        out = std::move(stolen.front());
        if (stolen.size() > 1) {
            {
                std::lock_guard<std::mutex> g(workers[wid]->mtx);
                for (size_t s = 1; s < stolen.size(); ++s)
                    workers[wid]->deque.push_back(
                        std::move(stolen[s]));
            }
            // The requeued tasks are up for grabs again.
            bumpEpoch();
        }
        if (have_deque)
            workers[wid]->statSteals->add();
        else
            statExternalSteals->add();
        return true;
    }
    return false;
}

bool
ThreadPool::takeTask(uint32_t wid, Task &out)
{
    if (wid < numWorkers() && popLocal(wid, out))
        return true;
    return steal(wid, out);
}

bool
ThreadPool::runPendingTask()
{
    uint32_t wid = tlsPool == this ? tlsWid : numWorkers();
    Task task;
    if (!takeTask(wid, task))
        return false;
    task();
    return true;
}

void
ThreadPool::workerLoop(uint32_t wid)
{
    tlsPool = this;
    tlsWid = wid;
    // Claim a named trace track so spans recorded while running pool
    // tasks land on a recognizable timeline.
    if (Tracer::global().enabled())
        Tracer::global().nameCurrentThread(
            "pool worker " + std::to_string(wid));
    for (;;) {
        // Read the epoch *before* scanning, so a push that lands
        // between a failed scan and the wait still wakes us.
        uint64_t epoch;
        {
            std::lock_guard<std::mutex> g(sleepMtx);
            epoch = wakeEpoch;
        }
        Task task;
        if (takeTask(wid, task)) {
            task();
            workers[wid]->statTasks->add();
            continue;
        }
        // Clock reads only when someone is scraping; Counter::add
        // re-checks the enabled flag itself.
        const bool timing = MetricsRegistry::global().enabled();
        const uint64_t idle0 =
            timing ? SteadyClock::instance().nowNs() : 0;
        std::unique_lock<std::mutex> g(sleepMtx);
        if (stopping)
            break;
        sleepCv.wait(g, [&] {
            return wakeEpoch != epoch || stopping;
        });
        if (timing)
            workers[wid]->statIdleNs->add(
                SteadyClock::instance().nowNs() - idle0);
        if (stopping && wakeEpoch == epoch)
            break;
    }
    tlsPool = nullptr;
}

void
ThreadPool::parallelFor(size_t begin, size_t end,
                        const std::function<void(size_t)> &body)
{
    if (end <= begin)
        return;
    const size_t total = end - begin;
    if (total == 1) {
        body(begin);
        return;
    }

    // Shared per-call state; runner tasks may outlive this frame (a
    // runner that loses the race for the last index still has to wake
    // up and return), hence the shared_ptr. `body` itself is only
    // dereferenced for indices < total, all of which complete before
    // this frame returns.
    struct State
    {
        std::atomic<size_t> next{0};
        std::atomic<size_t> done{0};
        size_t total = 0;
        size_t begin = 0;
        const std::function<void(size_t)> *body = nullptr;
        std::mutex mtx;
        std::condition_variable cv;
        std::exception_ptr error;
    };
    auto state = std::make_shared<State>();
    state->total = total;
    state->begin = begin;
    state->body = &body;

    auto run = [state] {
        for (;;) {
            size_t i =
                state->next.fetch_add(1, std::memory_order_relaxed);
            if (i >= state->total)
                return;
            try {
                (*state->body)(state->begin + i);
            } catch (...) {
                std::lock_guard<std::mutex> g(state->mtx);
                if (!state->error)
                    state->error = std::current_exception();
            }
            if (state->done.fetch_add(1) + 1 == state->total) {
                std::lock_guard<std::mutex> g(state->mtx);
                state->cv.notify_all();
            }
        }
    };

    // One runner per worker (capped by the index count); the calling
    // thread is runner number zero, inline, so progress is guaranteed
    // even when every worker is busy elsewhere.
    const size_t runners = std::min<size_t>(numWorkers(), total - 1);
    for (size_t r = 0; r < runners; ++r)
        enqueue(run);
    run();

    std::unique_lock<std::mutex> g(state->mtx);
    state->cv.wait(g, [&] {
        return state->done.load() == state->total;
    });
    if (state->error)
        std::rethrow_exception(state->error);
}

void
ThreadPool::forEach(ThreadPool *pool, size_t begin, size_t end,
                    const std::function<void(size_t)> &body)
{
    if (!pool) {
        for (size_t i = begin; i < end; ++i)
            body(i);
        return;
    }
    pool->parallelFor(begin, end, body);
}

} // namespace looppoint
