/**
 * @file
 * Cooperative shutdown requests for long-running pipeline runs.
 *
 * The supervisor stops a job with SIGTERM and expects it to park at
 * the next region boundary, flush its run journal, and exit with the
 * documented "interrupted" code (4) so a later `--resume` continues
 * bit-identically. That contract lives here: signal handlers set an
 * async-signal-safe flag, the warming loop in the checkpointed
 * simulation polls it between regions, and the run driver turns the
 * resulting InterruptedRun into the exit code.
 *
 * Repeated signals escalate: the third delivery restores the default
 * disposition and re-raises, so a wedged process can still be killed
 * from the keyboard without reaching for SIGKILL.
 */

#ifndef LOOPPOINT_UTIL_INTERRUPT_HH
#define LOOPPOINT_UTIL_INTERRUPT_HH

#include <stdexcept>
#include <string>

namespace looppoint {

/** Thrown when a run stops at a region boundary on request. */
class InterruptedRun : public std::runtime_error
{
  public:
    explicit InterruptedRun(const std::string &what)
        : std::runtime_error(what) {}
};

/** Install SIGINT/SIGTERM handlers that request a boundary stop. */
void installInterruptHandlers();

/** Request a shutdown programmatically (fault injection, tests). */
void requestShutdown();

/** Has a shutdown been requested (by signal or requestShutdown)? */
bool shutdownRequested();

/** Number of shutdown requests so far (signals + programmatic). */
int shutdownSignalCount();

/** Reset the request state (tests; between daemon passes). */
void clearShutdownRequest();

} // namespace looppoint

#endif // LOOPPOINT_UTIL_INTERRUPT_HH
