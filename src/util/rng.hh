/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic decision in the library flows through an Rng seeded
 * from a (purpose, stream) pair, so that recordings, profiles, and
 * simulations are bit-reproducible across runs and platforms. We use
 * xoshiro256** with a SplitMix64 seeder; both are public-domain
 * algorithms with well-understood statistical behavior.
 */

#ifndef LOOPPOINT_UTIL_RNG_HH
#define LOOPPOINT_UTIL_RNG_HH

#include <cstdint>
#include <iosfwd>
#include <string_view>

namespace looppoint {

/** SplitMix64 step; used for seeding and cheap hash mixing. */
uint64_t splitMix64(uint64_t &state);

/** Stable 64-bit string hash (FNV-1a), for seed derivation from names. */
uint64_t hashString(std::string_view s);

/** Combine two 64-bit values into one seed. */
uint64_t hashCombine(uint64_t a, uint64_t b);

/**
 * xoshiro256** pseudo-random generator.
 *
 * Satisfies the UniformRandomBitGenerator requirements so it can be used
 * with <random> distributions, but the helpers below are preferred since
 * their results are identical across standard library implementations.
 */
class Rng
{
  public:
    using result_type = uint64_t;

    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Derive a child generator for an independent named stream. */
    Rng fork(std::string_view stream_name) const;

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    result_type operator()() { return next(); }

    uint64_t next();

    /** Uniform integer in [0, bound), bound > 0. Unbiased (rejection). */
    uint64_t nextBounded(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Standard normal via Box-Muller (deterministic across platforms). */
    double nextGaussian();

    /** Bernoulli trial with probability p of returning true. */
    bool nextBool(double p);

    /** The seed this generator was constructed with. */
    uint64_t seed() const { return _seed; }

    /** Serialize the complete generator state (text, one line). */
    void save(std::ostream &os) const;
    /** Restore state saved with save(); throws FatalError on junk. */
    void load(std::istream &is);

  private:
    uint64_t _seed;
    uint64_t s[4];
    bool haveSpareGaussian = false;
    double spareGaussian = 0.0;
};

} // namespace looppoint

#endif // LOOPPOINT_UTIL_RNG_HH
