#include "util/checksum.hh"

#include <array>
#include <cctype>

namespace looppoint {

namespace {

/** The reflected-polynomial lookup table, built once. */
std::array<uint32_t, 256>
buildTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

uint32_t
crc32(const void *data, size_t len, uint32_t seed)
{
    static const std::array<uint32_t, 256> table = buildTable();
    const auto *bytes = static_cast<const unsigned char *>(data);
    uint32_t crc = seed ^ 0xFFFFFFFFu;
    for (size_t i = 0; i < len; ++i)
        crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

std::string
crcHex(uint32_t crc)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(8, '0');
    for (int i = 7; i >= 0; --i) {
        out[i] = digits[crc & 0xFu];
        crc >>= 4;
    }
    return out;
}

std::string
withCrcLine(const std::string &line)
{
    return line + " crc=" + crcHex(crc32(line));
}

std::optional<std::string>
checkCrcLine(const std::string &line)
{
    static const std::string marker = " crc=";
    auto pos = line.rfind(marker);
    if (pos == std::string::npos)
        return std::nullopt;
    uint32_t stored = 0;
    if (!parseCrcHex(std::string_view(line).substr(pos + marker.size()),
                     stored))
        return std::nullopt;
    std::string payload = line.substr(0, pos);
    if (crc32(payload) != stored)
        return std::nullopt;
    return payload;
}

bool
parseCrcHex(std::string_view text, uint32_t &out)
{
    if (text.size() != 8)
        return false;
    uint32_t value = 0;
    for (char ch : text) {
        uint32_t nibble;
        if (ch >= '0' && ch <= '9')
            nibble = static_cast<uint32_t>(ch - '0');
        else if (ch >= 'a' && ch <= 'f')
            nibble = static_cast<uint32_t>(ch - 'a' + 10);
        else
            return false;
        value = (value << 4) | nibble;
    }
    out = value;
    return true;
}

} // namespace looppoint
