/**
 * @file
 * CRC32 payload checksums for serialized artifacts (pinballs, region
 * pinballs, run-journal records). The polynomial is the standard
 * reflected IEEE 802.3 one (0xEDB88320), so values match zlib's
 * crc32() and `python3 -c "import zlib; print(zlib.crc32(b'...'))"` —
 * artifacts stay verifiable with stock tools.
 */

#ifndef LOOPPOINT_UTIL_CHECKSUM_HH
#define LOOPPOINT_UTIL_CHECKSUM_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace looppoint {

/** CRC32 (IEEE, reflected) of `len` bytes; `seed` chains calls. */
uint32_t crc32(const void *data, size_t len, uint32_t seed = 0);

/** Convenience overload for string payloads. */
inline uint32_t
crc32(std::string_view payload, uint32_t seed = 0)
{
    return crc32(payload.data(), payload.size(), seed);
}

/** Render a CRC as the canonical 8-digit lowercase hex used on disk. */
std::string crcHex(uint32_t crc);

/**
 * Parse an 8-digit hex CRC written by crcHex(). Returns false (and
 * leaves `out` untouched) on malformed input.
 */
bool parseCrcHex(std::string_view text, uint32_t &out);

/**
 * Line-trailer convention shared by the run journal and the artifact
 * store manifest: every line ends in ` crc=XXXXXXXX` covering the
 * bytes before it.
 */
std::string withCrcLine(const std::string &line);

/**
 * Strip and verify a line's ` crc=XXXXXXXX` trailer. Returns the
 * payload (everything before the trailer), or nullopt when the trailer
 * is missing, malformed, or does not match the payload bytes.
 */
std::optional<std::string> checkCrcLine(const std::string &line);

} // namespace looppoint

#endif // LOOPPOINT_UTIL_CHECKSUM_HH
