/**
 * @file
 * CRC32 payload checksums for serialized artifacts (pinballs, region
 * pinballs, run-journal records). The polynomial is the standard
 * reflected IEEE 802.3 one (0xEDB88320), so values match zlib's
 * crc32() and `python3 -c "import zlib; print(zlib.crc32(b'...'))"` —
 * artifacts stay verifiable with stock tools.
 */

#ifndef LOOPPOINT_UTIL_CHECKSUM_HH
#define LOOPPOINT_UTIL_CHECKSUM_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace looppoint {

/** CRC32 (IEEE, reflected) of `len` bytes; `seed` chains calls. */
uint32_t crc32(const void *data, size_t len, uint32_t seed = 0);

/** Convenience overload for string payloads. */
inline uint32_t
crc32(std::string_view payload, uint32_t seed = 0)
{
    return crc32(payload.data(), payload.size(), seed);
}

/** Render a CRC as the canonical 8-digit lowercase hex used on disk. */
std::string crcHex(uint32_t crc);

/**
 * Parse an 8-digit hex CRC written by crcHex(). Returns false (and
 * leaves `out` untouched) on malformed input.
 */
bool parseCrcHex(std::string_view text, uint32_t &out);

} // namespace looppoint

#endif // LOOPPOINT_UTIL_CHECKSUM_HH
