/**
 * @file
 * Deterministic fault injection for the fault-tolerance layer. A
 * FaultPlan is parsed from a compact spec string (CLI `--inject-fault`)
 * and threaded through SimConfig, so every failure path — a region
 * simulation that throws, a divergent region whose end marker never
 * arrives, a host death mid-phase, a corrupted artifact byte — can be
 * exercised reproducibly in tests and CI.
 *
 * Spec grammar (';'-separated clauses, each `site:key=val,...`):
 *
 *   sim:region=3,kind=throw           every attempt of region 3 throws
 *   sim:region=3,kind=throw,times=1   only the first attempt throws
 *                                     (the retry succeeds)
 *   sim:region=3,kind=diverge         region 3's end marker is made
 *                                     unreachable (watchdog territory)
 *   sim:region=3,kind=kill            host death: aborts the phase,
 *                                     not retried (journal-resume path;
 *                                     under --backend=procs the worker
 *                                     process SIGKILLs itself instead
 *                                     and the region is retried)
 *   sim:region=3,kind=wedge           the attempt hangs: a procs
 *                                     worker stalls until the
 *                                     coordinator's --worker-timeout
 *                                     kills it; under the pool backend
 *                                     it degenerates to kind=throw
 *   sim:region=3,kind=interrupt       a shutdown request fires before
 *                                     region 3 warms: the run parks at
 *                                     the boundary and exits 4 (the
 *                                     supervisor-SIGTERM path, minus
 *                                     the signal)
 *   corrupt:byte=17                   flip byte 17 of an artifact
 *   corrupt:byte=rand,seed=7          flip a seeded-random byte
 *   job:index=2,kind=crash            campaign job 2 SIGKILLs itself
 *   job:index=2,kind=wedge,times=1    job 2's first attempt hangs
 *                                     until the watchdog escalates
 *   job:index=2,kind=corrupt-result   job 2 writes garbage result.json
 *                                     but still drops its .done marker
 *
 * The plan is pure data: nothing fires unless the hosting code asks
 * (simFault() in the checkpointed-simulation loop, corrupt() in the
 * artifact-corruption harness).
 */

#ifndef LOOPPOINT_UTIL_FAULT_HH
#define LOOPPOINT_UTIL_FAULT_HH

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace looppoint {

/** One fault clause. See file comment for the grammar. */
struct FaultSpec
{
    enum class Site : uint8_t
    {
        Sim,     ///< fires inside a region's detailed simulation
        Corrupt, ///< flips a byte of a serialized artifact
        Job      ///< fires in a supervised campaign job child
    };
    enum class Kind : uint8_t
    {
        Throw,    ///< the attempt throws InjectedFault (retryable)
        Diverge,  ///< the end marker becomes unreachable
        Kill,     ///< InjectedKill aborts the whole phase (not retried)
        Wedge,    ///< the attempt hangs forever (procs: worker-timeout
                  ///< territory; pool degenerates to Throw so the
                  ///< phase still terminates; job site: ignores
                  ///< SIGTERM so the watchdog must escalate)
        FlipByte, ///< corrupt-site: XOR 0xFF one payload byte
        Interrupt, ///< sim site: request shutdown at this boundary
        Crash,     ///< job site: the child SIGKILLs itself
        CorruptResult ///< job site: garbage result.json + .done marker
    };

    Site site = Site::Sim;
    Kind kind = Kind::Throw;
    /** Sim site: target region index (LoopPointResult::regions).
     * Job site: target job index in matrix order. */
    uint32_t region = 0;
    /** Sim/job site: fail only the first `times` attempts; 0 = all. */
    uint32_t times = 0;
    /** Corrupt site: byte offset to flip (when not randomized). */
    uint64_t byte = 0;
    /** Corrupt site: pick the offset from this seed instead. */
    std::optional<uint64_t> seed;

    bool operator==(const FaultSpec &other) const = default;
};

/** Thrown by an injected `kind=throw` fault; caught by the retry
 * loop like any real region failure. */
class InjectedFault : public std::runtime_error
{
  public:
    explicit InjectedFault(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Thrown by `kind=kill`: simulated host death. Escapes the phase so
 * tests (and `run_all.sh --faults`) can exercise journal resume. */
class InjectedKill : public std::runtime_error
{
  public:
    explicit InjectedKill(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** A parsed, deterministic set of fault clauses. */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /**
     * Parse a spec string (see file comment). Throws FatalError on a
     * malformed spec — a bad plan is a usage error, not a run fault.
     * An empty string yields an empty plan.
     */
    static FaultPlan parse(const std::string &spec);

    bool empty() const { return clauses.empty(); }
    const std::vector<FaultSpec> &specs() const { return clauses; }
    void add(FaultSpec spec) { clauses.push_back(spec); }

    /**
     * The sim-site fault to apply to `attempt` (0-based) of region
     * `region`, or nullopt. `times`-limited clauses stop matching once
     * the attempt index reaches their budget.
     */
    std::optional<FaultSpec::Kind> simFault(uint32_t region,
                                            uint32_t attempt) const;

    /**
     * The job-site fault to apply to `attempt` (0-based) of campaign
     * job `index`, or nullopt. Same `times` semantics as simFault().
     */
    std::optional<FaultSpec::Kind> jobFault(uint32_t index,
                                            uint32_t attempt) const;

    /** Apply every corrupt-site clause to `bytes` in order. Offsets
     * are taken modulo the payload size; empty payloads are left
     * alone. */
    void corrupt(std::string &bytes) const;

    bool operator==(const FaultPlan &other) const = default;

  private:
    std::vector<FaultSpec> clauses;
};

} // namespace looppoint

#endif // LOOPPOINT_UTIL_FAULT_HH
