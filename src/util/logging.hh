/**
 * @file
 * Status/error reporting helpers in the spirit of gem5's logging.hh.
 *
 * fatal() is for conditions that are the caller's fault (bad configuration,
 * invalid arguments); it throws FatalError so tests can observe it.
 * panic() is for internal invariant violations (a bug in this library);
 * it aborts the process.
 * logError()/warn()/inform()/debug() print leveled status to stderr
 * without stopping the run.
 *
 * Verbosity is controlled by a global level: the LOOPPOINT_LOG
 * environment variable (quiet | error | warn | info | debug) sets the
 * default, setLogLevel() overrides it programmatically, and the legacy
 * setQuiet() maps onto it (quiet=true -> Error, quiet=false -> back to
 * the environment default). Every tool and library in the repo logs
 * through these helpers so one knob filters everything.
 */

#ifndef LOOPPOINT_UTIL_LOGGING_HH
#define LOOPPOINT_UTIL_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace looppoint {

/** Exception thrown by fatal() for user-correctable errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Verbosity levels, in increasing order of chattiness. */
enum class LogLevel : uint8_t
{
    Quiet = 0, ///< nothing, not even errors
    Error = 1,
    Warn = 2,
    Info = 3, ///< the default
    Debug = 4
};

/**
 * Parse a level name ("quiet" | "error" | "warn" | "info" | "debug",
 * case-insensitive). Sets *ok accordingly when given; an unknown name
 * returns Info.
 */
LogLevel parseLogLevel(const std::string &name, bool *ok = nullptr);

/** The active level: the override if set, else the LOOPPOINT_LOG
 * environment default (Info when unset or unparseable). */
LogLevel logLevel();

/** Override the active level (wins over LOOPPOINT_LOG). */
void setLogLevel(LogLevel level);

/** Printf-style formatting into a std::string. */
std::string strFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a user error and throw FatalError. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal bug and abort. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a non-fatal error to stderr (LogLevel::Error and up). */
void logError(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr (LogLevel::Warn and up). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message (LogLevel::Info and up). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a debugging message (LogLevel::Debug only). */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Legacy verbosity switch: quiet=true caps the level at Error (errors
 * still print), quiet=false restores the LOOPPOINT_LOG default.
 */
void setQuiet(bool quiet);

/**
 * Internal-invariant check that is active in all build types.
 * Prefer this over <cassert> so release benches keep the checks.
 */
#define LP_ASSERT(cond, ...)                                              \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::looppoint::panic("assertion '%s' failed at %s:%d", #cond,   \
                               __FILE__, __LINE__);                       \
        }                                                                 \
    } while (0)

} // namespace looppoint

#endif // LOOPPOINT_UTIL_LOGGING_HH
