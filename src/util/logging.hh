/**
 * @file
 * Status/error reporting helpers in the spirit of gem5's logging.hh.
 *
 * fatal() is for conditions that are the caller's fault (bad configuration,
 * invalid arguments); it throws FatalError so tests can observe it.
 * panic() is for internal invariant violations (a bug in this library);
 * it aborts the process.
 * warn()/inform() print status without stopping the run.
 */

#ifndef LOOPPOINT_UTIL_LOGGING_HH
#define LOOPPOINT_UTIL_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace looppoint {

/** Exception thrown by fatal() for user-correctable errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Printf-style formatting into a std::string. */
std::string strFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a user error and throw FatalError. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal bug and abort. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; the run continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr; the run continues. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (useful in tests and benches). */
void setQuiet(bool quiet);

/**
 * Internal-invariant check that is active in all build types.
 * Prefer this over <cassert> so release benches keep the checks.
 */
#define LP_ASSERT(cond, ...)                                              \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::looppoint::panic("assertion '%s' failed at %s:%d", #cond,   \
                               __FILE__, __LINE__);                       \
        }                                                                 \
    } while (0)

} // namespace looppoint

#endif // LOOPPOINT_UTIL_LOGGING_HH
