#include "util/fault.hh"

#include "util/logging.hh"
#include "util/rng.hh"

namespace looppoint {

namespace {

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos <= s.size()) {
        size_t next = s.find(sep, pos);
        if (next == std::string::npos) {
            out.push_back(s.substr(pos));
            break;
        }
        out.push_back(s.substr(pos, next - pos));
        pos = next + 1;
    }
    return out;
}

uint64_t
parseUint(const std::string &clause, const std::string &key,
          const std::string &value)
{
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos)
        fatal("--inject-fault: '%s' needs a non-negative integer for "
              "'%s', got '%s'", clause.c_str(), key.c_str(),
              value.c_str());
    try {
        return std::stoull(value);
    } catch (const std::out_of_range &) {
        fatal("--inject-fault: value '%s' for '%s' is out of range",
              value.c_str(), key.c_str());
    }
}

FaultSpec
parseClause(const std::string &clause)
{
    const size_t colon = clause.find(':');
    if (colon == std::string::npos)
        fatal("--inject-fault: clause '%s' is missing the 'site:' "
              "prefix (expected sim: or corrupt:)", clause.c_str());
    const std::string site = clause.substr(0, colon);

    FaultSpec spec;
    bool have_region = false, have_byte = false, have_kind = false;
    bool have_index = false;
    for (const std::string &kv : split(clause.substr(colon + 1), ',')) {
        const size_t eq = kv.find('=');
        if (eq == std::string::npos)
            fatal("--inject-fault: '%s' in clause '%s' is not "
                  "key=value", kv.c_str(), clause.c_str());
        const std::string key = kv.substr(0, eq);
        const std::string value = kv.substr(eq + 1);
        if (key == "region") {
            spec.region = static_cast<uint32_t>(
                parseUint(clause, key, value));
            have_region = true;
        } else if (key == "index") {
            spec.region = static_cast<uint32_t>(
                parseUint(clause, key, value));
            have_index = true;
        } else if (key == "kind") {
            have_kind = true;
            if (value == "throw")
                spec.kind = FaultSpec::Kind::Throw;
            else if (value == "diverge")
                spec.kind = FaultSpec::Kind::Diverge;
            else if (value == "kill")
                spec.kind = FaultSpec::Kind::Kill;
            else if (value == "wedge")
                spec.kind = FaultSpec::Kind::Wedge;
            else if (value == "interrupt")
                spec.kind = FaultSpec::Kind::Interrupt;
            else if (value == "crash")
                spec.kind = FaultSpec::Kind::Crash;
            else if (value == "corrupt-result")
                spec.kind = FaultSpec::Kind::CorruptResult;
            else
                fatal("--inject-fault: unknown kind '%s' (expected "
                      "throw, diverge, kill, wedge, interrupt, crash, "
                      "or corrupt-result)", value.c_str());
        } else if (key == "times") {
            spec.times = static_cast<uint32_t>(
                parseUint(clause, key, value));
        } else if (key == "byte") {
            have_byte = true;
            if (value == "rand")
                spec.byte = 0; // resolved from the seed at apply time
            else
                spec.byte = parseUint(clause, key, value);
            if (value == "rand" && !spec.seed)
                spec.seed = 0; // default seed; overridable below
        } else if (key == "seed") {
            spec.seed = parseUint(clause, key, value);
        } else {
            fatal("--inject-fault: unknown key '%s' in clause '%s'",
                  key.c_str(), clause.c_str());
        }
    }

    if (site == "sim") {
        spec.site = FaultSpec::Site::Sim;
        if (!have_region)
            fatal("--inject-fault: sim clause '%s' needs region=N",
                  clause.c_str());
        if (!have_kind)
            spec.kind = FaultSpec::Kind::Throw;
        if (spec.kind == FaultSpec::Kind::FlipByte ||
            spec.kind == FaultSpec::Kind::Crash ||
            spec.kind == FaultSpec::Kind::CorruptResult)
            fatal("--inject-fault: sim clause '%s' expects kind "
                  "throw, diverge, kill, wedge, or interrupt",
                  clause.c_str());
    } else if (site == "corrupt") {
        spec.site = FaultSpec::Site::Corrupt;
        spec.kind = FaultSpec::Kind::FlipByte;
        if (!have_byte)
            fatal("--inject-fault: corrupt clause '%s' needs byte=N "
                  "or byte=rand,seed=S", clause.c_str());
    } else if (site == "job") {
        spec.site = FaultSpec::Site::Job;
        if (!have_index)
            fatal("--inject-fault: job clause '%s' needs index=N",
                  clause.c_str());
        if (!have_kind)
            spec.kind = FaultSpec::Kind::Crash;
        if (spec.kind != FaultSpec::Kind::Crash &&
            spec.kind != FaultSpec::Kind::Wedge &&
            spec.kind != FaultSpec::Kind::CorruptResult)
            fatal("--inject-fault: job clause '%s' expects kind "
                  "crash, wedge, or corrupt-result", clause.c_str());
    } else {
        fatal("--inject-fault: unknown site '%s' (expected sim, "
              "corrupt, or job)", site.c_str());
    }
    return spec;
}

} // namespace

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    if (spec.empty())
        return plan;
    for (const std::string &clause : split(spec, ';')) {
        if (clause.empty())
            fatal("--inject-fault: empty clause in '%s'", spec.c_str());
        plan.clauses.push_back(parseClause(clause));
    }
    return plan;
}

std::optional<FaultSpec::Kind>
FaultPlan::simFault(uint32_t region, uint32_t attempt) const
{
    for (const FaultSpec &spec : clauses) {
        if (spec.site != FaultSpec::Site::Sim || spec.region != region)
            continue;
        if (spec.times != 0 && attempt >= spec.times)
            continue;
        return spec.kind;
    }
    return std::nullopt;
}

std::optional<FaultSpec::Kind>
FaultPlan::jobFault(uint32_t index, uint32_t attempt) const
{
    for (const FaultSpec &spec : clauses) {
        if (spec.site != FaultSpec::Site::Job || spec.region != index)
            continue;
        if (spec.times != 0 && attempt >= spec.times)
            continue;
        return spec.kind;
    }
    return std::nullopt;
}

void
FaultPlan::corrupt(std::string &bytes) const
{
    if (bytes.empty())
        return;
    for (const FaultSpec &spec : clauses) {
        if (spec.site != FaultSpec::Site::Corrupt)
            continue;
        uint64_t offset = spec.byte;
        if (spec.seed)
            offset = hashCombine(*spec.seed, bytes.size());
        bytes[static_cast<size_t>(offset % bytes.size())] ^=
            static_cast<char>(0xFF);
    }
}

} // namespace looppoint
