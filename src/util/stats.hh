/**
 * @file
 * Small statistics helpers shared by the profiler, the evaluation
 * pipeline, and the benchmark harnesses.
 */

#ifndef LOOPPOINT_UTIL_STATS_HH
#define LOOPPOINT_UTIL_STATS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace looppoint {

/** Arithmetic mean; 0 for an empty input. */
double mean(const std::vector<double> &xs);

/** Geometric mean; requires strictly positive inputs. */
double geoMean(const std::vector<double> &xs);

/** Population standard deviation; 0 for fewer than two samples. */
double stddev(const std::vector<double> &xs);

/** Maximum; 0 for an empty input. */
double maxOf(const std::vector<double> &xs);

/**
 * Percentile via linear interpolation between closest ranks,
 * p in [0, 100].
 */
double percentile(std::vector<double> xs, double p);

/** Signed relative error (predicted vs actual) in percent. */
double relErrorPct(double predicted, double actual);

/** Absolute relative error in percent. */
double absRelErrorPct(double predicted, double actual);

/**
 * Streaming accumulator for mean/min/max/stddev without storing samples.
 */
class RunningStats
{
  public:
    void add(double x);

    size_t count() const { return n; }
    double mean() const { return n ? m : 0.0; }
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }
    double variance() const;
    double stddev() const;

  private:
    size_t n = 0;
    double m = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

} // namespace looppoint

#endif // LOOPPOINT_UTIL_STATS_HH
