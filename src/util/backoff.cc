#include "backoff.hh"

#include <sys/wait.h>

#include <algorithm>

#include "rng.hh"

namespace looppoint {

const char *
failureClassName(FailureClass c)
{
    switch (c) {
      case FailureClass::Success:     return "success";
      case FailureClass::Degraded:    return "degraded";
      case FailureClass::Permanent:   return "permanent";
      case FailureClass::Transient:   return "transient";
      case FailureClass::Interrupted: return "interrupted";
    }
    return "unknown";
}

FailureClass
classifyWaitStatus(int wait_status)
{
    if (WIFEXITED(wait_status)) {
        switch (WEXITSTATUS(wait_status)) {
          case 0: return FailureClass::Success;
          case 1: return FailureClass::Degraded;
          case 2: return FailureClass::Permanent;
          case 3: return FailureClass::Transient;
          case 4: return FailureClass::Interrupted;
          default: return FailureClass::Permanent;
        }
    }
    // Signal deaths (including watchdog SIGKILL and OOM kills) and any
    // stop/continue state we did not ask for: retryable.
    return FailureClass::Transient;
}

double
BackoffPolicy::delaySeconds(uint32_t retry) const
{
    double raw = std::max(0.0, baseSeconds);
    double mult = std::max(1.0, multiplier);
    double cap = std::max(0.0, capSeconds);
    for (uint32_t i = 0; i < retry; i++) {
        raw *= mult;
        if (raw >= cap)
            break;
    }
    if (raw >= cap)
        return cap;

    double frac = std::clamp(jitterFraction, 0.0, 1.0);
    if (frac > 0.0) {
        uint64_t state = hashCombine(seed, retry);
        double u = (splitMix64(state) >> 11) * 0x1.0p-53; // [0, 1)
        raw *= 1.0 + frac * (u - 0.5);
    }
    return std::min(raw, cap);
}

BackoffPolicy
BackoffPolicy::withSeed(uint64_t new_seed) const
{
    BackoffPolicy p = *this;
    p.seed = new_seed;
    return p;
}

} // namespace looppoint
