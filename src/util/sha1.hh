/**
 * @file
 * SHA-1 content hashing for the artifact store. CRC32 (util/checksum)
 * stays the per-artifact integrity check; SHA-1 is the *addressing*
 * hash — 160 bits so unrelated artifacts cannot collide into the same
 * object file at any realistic store size. Values match
 * `python3 -c "import hashlib; print(hashlib.sha1(b'...').hexdigest())"`
 * so stores remain auditable with stock tools.
 */

#ifndef LOOPPOINT_UTIL_SHA1_HH
#define LOOPPOINT_UTIL_SHA1_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace looppoint {

/** Incremental SHA-1 (FIPS 180-1). */
class Sha1
{
  public:
    Sha1();

    void update(const void *data, size_t len);
    void
    update(std::string_view s)
    {
        update(s.data(), s.size());
    }

    /** Finalize and return the 40-char lowercase hex digest. */
    std::string hex();

  private:
    void processBlock(const uint8_t *block);

    uint32_t h[5];
    uint64_t totalBytes = 0;
    uint8_t buf[64];
    size_t bufLen = 0;
    bool finalized = false;
};

/** One-shot digest of a payload. */
std::string sha1Hex(std::string_view payload);

} // namespace looppoint

#endif // LOOPPOINT_UTIL_SHA1_HH
