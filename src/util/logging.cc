#include "util/logging.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace looppoint {

namespace {

/** Programmatic override; negative = none (use the env default). */
int levelOverride = -1;

LogLevel
envDefaultLevel()
{
    static const LogLevel level = [] {
        const char *env = std::getenv("LOOPPOINT_LOG");
        if (!env || !*env)
            return LogLevel::Info;
        bool ok = false;
        LogLevel parsed = parseLogLevel(env, &ok);
        if (!ok) {
            std::fprintf(stderr,
                         "warn: LOOPPOINT_LOG='%s' is not a log level "
                         "(quiet|error|warn|info|debug); using info\n",
                         env);
            return LogLevel::Info;
        }
        return parsed;
    }();
    return level;
}

std::string
vFormat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (len < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(len));
}

} // namespace

LogLevel
parseLogLevel(const std::string &name, bool *ok)
{
    std::string lower;
    lower.reserve(name.size());
    for (char c : name)
        lower.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    if (ok)
        *ok = true;
    if (lower == "quiet" || lower == "none")
        return LogLevel::Quiet;
    if (lower == "error")
        return LogLevel::Error;
    if (lower == "warn" || lower == "warning")
        return LogLevel::Warn;
    if (lower == "info")
        return LogLevel::Info;
    if (lower == "debug")
        return LogLevel::Debug;
    if (ok)
        *ok = false;
    return LogLevel::Info;
}

LogLevel
logLevel()
{
    return levelOverride >= 0
               ? static_cast<LogLevel>(levelOverride)
               : envDefaultLevel();
}

void
setLogLevel(LogLevel level)
{
    levelOverride = static_cast<int>(level);
}

std::string
strFormat(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vFormat(fmt, ap);
    va_end(ap);
    return s;
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vFormat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    throw FatalError(msg);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vFormat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
logError(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Error)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vFormat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "error: %s\n", msg.c_str());
}

void
warn(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vFormat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Info)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vFormat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
debug(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vFormat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

void
setQuiet(bool quiet)
{
    if (quiet)
        setLogLevel(LogLevel::Error);
    else
        levelOverride = -1;
}

} // namespace looppoint
