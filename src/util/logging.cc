#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace looppoint {

namespace {

bool quietMode = false;

std::string
vFormat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (len < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(len));
}

} // namespace

std::string
strFormat(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vFormat(fmt, ap);
    va_end(ap);
    return s;
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vFormat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    throw FatalError(msg);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vFormat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
warn(const char *fmt, ...)
{
    if (quietMode)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vFormat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quietMode)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vFormat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setQuiet(bool quiet)
{
    quietMode = quiet;
}

} // namespace looppoint
