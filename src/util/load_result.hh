/**
 * @file
 * Structured load outcomes for checkpoint artifacts. Loaders that
 * consume bytes from outside the process (pinballs, region pinballs,
 * run journals) return a LoadResult instead of calling fatal(): a
 * distribution-scale deployment (paper Section II — checkpoints are
 * shared among many users and hosts) must treat malformed artifacts as
 * data, not as a reason to kill the whole run.
 */

#ifndef LOOPPOINT_UTIL_LOAD_RESULT_HH
#define LOOPPOINT_UTIL_LOAD_RESULT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace looppoint {

/** Failure classes a loader can report. */
enum class LoadErrorKind : uint8_t
{
    BadMagic,       ///< not this artifact type at all
    UnknownVersion, ///< a format version this build cannot read
    Truncated,      ///< the stream ended before the payload did
    BadChecksum,    ///< payload bytes do not match the stored CRC32
    Parse,          ///< structurally malformed payload
    Validation,     ///< parsed, but carries out-of-range values
    Io              ///< the file could not be opened or read at all
};

/** Printable name ("bad-magic", "truncated", ...). */
constexpr std::string_view
loadErrorKindName(LoadErrorKind kind)
{
    switch (kind) {
      case LoadErrorKind::BadMagic:
        return "bad-magic";
      case LoadErrorKind::UnknownVersion:
        return "unknown-version";
      case LoadErrorKind::Truncated:
        return "truncated";
      case LoadErrorKind::BadChecksum:
        return "bad-checksum";
      case LoadErrorKind::Parse:
        return "parse";
      case LoadErrorKind::Validation:
        return "validation";
      case LoadErrorKind::Io:
        return "io";
    }
    return "unknown";
}

/** One structured loader failure. */
struct LoadError
{
    LoadErrorKind kind = LoadErrorKind::Parse;
    std::string message;

    /** "truncated: icounts table ends early" */
    std::string
    describe() const
    {
        return std::string(loadErrorKindName(kind)) + ": " + message;
    }
};

/**
 * Either a successfully loaded T or a LoadError. A tiny expected<>
 * substitute: value() asserts ok() in the caller's hands, so check
 * first.
 */
template <typename T>
class LoadResult
{
  public:
    static LoadResult
    success(T value)
    {
        LoadResult r;
        r.val = std::move(value);
        return r;
    }

    static LoadResult
    failure(LoadErrorKind kind, std::string message)
    {
        LoadResult r;
        r.err = LoadError{kind, std::move(message)};
        return r;
    }

    static LoadResult
    failure(LoadError error)
    {
        LoadResult r;
        r.err = std::move(error);
        return r;
    }

    bool ok() const { return val.has_value(); }
    explicit operator bool() const { return ok(); }

    T &value() & { return *val; }
    const T &value() const & { return *val; }
    T &&value() && { return *std::move(val); }

    const LoadError &error() const { return *err; }

  private:
    std::optional<T> val;
    std::optional<LoadError> err;
};

} // namespace looppoint

#endif // LOOPPOINT_UTIL_LOAD_RESULT_HH
