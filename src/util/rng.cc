#include "util/rng.hh"

#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>

#include "util/logging.hh"

namespace looppoint {

uint64_t
splitMix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
hashString(std::string_view s)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (char c : s) {
        h ^= static_cast<uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

uint64_t
hashCombine(uint64_t a, uint64_t b)
{
    uint64_t state = a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
    return splitMix64(state);
}

namespace {

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
    : _seed(seed)
{
    uint64_t sm = seed;
    for (auto &word : s)
        word = splitMix64(sm);
}

Rng
Rng::fork(std::string_view stream_name) const
{
    return Rng(hashCombine(_seed, hashString(stream_name)));
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

uint64_t
Rng::nextBounded(uint64_t bound)
{
    LP_ASSERT(bound > 0);
    // Rejection sampling to remove modulo bias.
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    LP_ASSERT(lo <= hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextGaussian()
{
    if (haveSpareGaussian) {
        haveSpareGaussian = false;
        return spareGaussian;
    }
    double u, v, r2;
    do {
        u = 2.0 * nextDouble() - 1.0;
        v = 2.0 * nextDouble() - 1.0;
        r2 = u * u + v * v;
    } while (r2 >= 1.0 || r2 == 0.0);
    double scale = std::sqrt(-2.0 * std::log(r2) / r2);
    spareGaussian = v * scale;
    haveSpareGaussian = true;
    return u * scale;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

void
Rng::save(std::ostream &os) const
{
    uint64_t spare_bits;
    std::memcpy(&spare_bits, &spareGaussian, sizeof(spare_bits));
    os << _seed << ' ' << s[0] << ' ' << s[1] << ' ' << s[2] << ' '
       << s[3] << ' ' << (haveSpareGaussian ? 1 : 0) << ' '
       << spare_bits << '\n';
}

void
Rng::load(std::istream &is)
{
    int have = 0;
    uint64_t spare_bits = 0;
    if (!(is >> _seed >> s[0] >> s[1] >> s[2] >> s[3] >> have >>
          spare_bits))
        fatal("Rng::load: malformed generator state");
    haveSpareGaussian = (have != 0);
    std::memcpy(&spareGaussian, &spare_bits, sizeof(spareGaussian));
}

} // namespace looppoint
