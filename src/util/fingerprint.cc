#include "util/fingerprint.hh"

#include <cstdio>

#include "util/checksum.hh"

namespace looppoint {

namespace {

/** Manifest lines are space-separated; keys must never split them. */
void
appendSanitized(std::string &out, std::string_view value)
{
    for (char c : value)
        out.push_back(c == ' ' || c == '\n' || c == '\t' ? '_' : c);
}

} // namespace

FingerprintBuilder::FingerprintBuilder(std::string_view stage)
{
    appendSanitized(out, stage);
    out.push_back(';');
}

FingerprintBuilder &
FingerprintBuilder::field(std::string_view name, std::string_view value)
{
    appendSanitized(out, name);
    out.push_back('=');
    appendSanitized(out, value);
    out.push_back(';');
    return *this;
}

FingerprintBuilder &
FingerprintBuilder::field(std::string_view name, uint64_t value)
{
    return field(name, std::string_view(std::to_string(value)));
}

FingerprintBuilder &
FingerprintBuilder::field(std::string_view name, uint32_t value)
{
    return field(name, static_cast<uint64_t>(value));
}

FingerprintBuilder &
FingerprintBuilder::field(std::string_view name, int value)
{
    return field(name, std::string_view(std::to_string(value)));
}

FingerprintBuilder &
FingerprintBuilder::field(std::string_view name, bool value)
{
    return field(name, std::string_view(value ? "1" : "0"));
}

FingerprintBuilder &
FingerprintBuilder::fieldDouble(std::string_view name, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return field(name, std::string_view(buf));
}

uint32_t
FingerprintBuilder::crc() const
{
    return crc32(out);
}

} // namespace looppoint
