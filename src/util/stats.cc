#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace looppoint {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geoMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        LP_ASSERT(x > 0.0);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double mu = mean(xs);
    double ss = 0.0;
    for (double x : xs)
        ss += (x - mu) * (x - mu);
    return std::sqrt(ss / static_cast<double>(xs.size()));
}

double
maxOf(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    return *std::max_element(xs.begin(), xs.end());
}

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    LP_ASSERT(p >= 0.0 && p <= 100.0);
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs[0];
    double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    size_t lo_idx = static_cast<size_t>(rank);
    size_t hi_idx = std::min(lo_idx + 1, xs.size() - 1);
    double frac = rank - static_cast<double>(lo_idx);
    return xs[lo_idx] * (1.0 - frac) + xs[hi_idx] * frac;
}

double
relErrorPct(double predicted, double actual)
{
    if (actual == 0.0)
        return predicted == 0.0 ? 0.0 : 100.0;
    return (predicted - actual) / actual * 100.0;
}

double
absRelErrorPct(double predicted, double actual)
{
    return std::fabs(relErrorPct(predicted, actual));
}

void
RunningStats::add(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    ++n;
    double delta = x - m;
    m += delta / static_cast<double>(n);
    m2 += delta * (x - m);
}

double
RunningStats::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

} // namespace looppoint
