/**
 * @file
 * Operation classes of the virtual instruction set.
 *
 * The reproduction does not interpret real x86; instead every dynamic
 * instruction carries an OpClass that the timing models map to issue
 * latencies and functional-unit use, plus optional memory-reference
 * metadata. This is the same level of abstraction Sniper's interval
 * model consumes after decoding.
 */

#ifndef LOOPPOINT_ISA_OP_CLASS_HH
#define LOOPPOINT_ISA_OP_CLASS_HH

#include <cstdint>
#include <string_view>

namespace looppoint {

/** Coarse instruction classes understood by the timing models. */
enum class OpClass : uint8_t
{
    IntAlu,     ///< single-cycle integer op
    IntMul,     ///< pipelined integer multiply
    IntDiv,     ///< unpipelined integer divide
    FpAdd,      ///< floating-point add/sub/cmp
    FpMul,      ///< floating-point multiply
    FpDiv,      ///< floating-point divide/sqrt
    Load,       ///< memory read
    Store,      ///< memory write
    Branch,     ///< conditional or unconditional control transfer
    AtomicRmw,  ///< locked read-modify-write (e.g. lock xadd)
    NumOpClasses
};

constexpr size_t kNumOpClasses =
    static_cast<size_t>(OpClass::NumOpClasses);

/** Human-readable op-class name (for stats and debug output). */
std::string_view opClassName(OpClass op);

/** True for Load, Store, and AtomicRmw. */
constexpr bool
isMemOp(OpClass op)
{
    return op == OpClass::Load || op == OpClass::Store ||
           op == OpClass::AtomicRmw;
}

/** True for ops that write memory (Store, AtomicRmw). */
constexpr bool
isMemWrite(OpClass op)
{
    return op == OpClass::Store || op == OpClass::AtomicRmw;
}

} // namespace looppoint

#endif // LOOPPOINT_ISA_OP_CLASS_HH
