/**
 * @file
 * Static per-instruction descriptors.
 *
 * A basic block owns a short vector of InstrDesc. The descriptors are
 * microarchitecture independent: dependence *distances* and a memory
 * stream id, not concrete cycles or addresses. Concrete addresses are
 * produced at execution time by the per-thread address generators in
 * src/exec, so the same block produces different (but deterministic)
 * address streams per thread and per execution position.
 */

#ifndef LOOPPOINT_ISA_INSTR_HH
#define LOOPPOINT_ISA_INSTR_HH

#include <cstdint>

#include "isa/op_class.hh"

namespace looppoint {

/** Sentinel for "no memory stream" / "no dependence". */
constexpr uint8_t kNoStream = 0xff;

/**
 * One static instruction.
 *
 * srcDist1/srcDist2 give the distance, in dynamic instructions, back to
 * each producer (0 = no register dependence). The OoO model uses them to
 * build a dependence chain without a real register file; they bound the
 * exploitable ILP of the block exactly like real dataflow would.
 */
struct InstrDesc
{
    OpClass op = OpClass::IntAlu;
    uint8_t srcDist1 = 0;
    uint8_t srcDist2 = 0;
    /** Index into the owning kernel's memory stream table (mem ops). */
    uint8_t memStream = kNoStream;
};

static_assert(sizeof(InstrDesc) == 4, "InstrDesc should stay compact");

/**
 * A memory access stream referenced by InstrDesc::memStream.
 *
 * Addresses follow base + (index * strideBytes) mod footprintBytes with
 * a probability jumpProb of re-seeding index randomly, which controls
 * spatial and temporal locality. Shared streams use one base for all
 * threads (creating coherence and shared-cache interactions); private
 * streams get a per-thread base.
 */
struct MemStream
{
    uint64_t footprintBytes = 1 << 16;
    uint32_t strideBytes = 8;
    double jumpProb = 0.0;
    bool shared = false;
};

} // namespace looppoint

#endif // LOOPPOINT_ISA_INSTR_HH
