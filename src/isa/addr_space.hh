/**
 * @file
 * Synthetic address-space layout shared by the execution engine's
 * address generators and the program-build-time stream plans. Regions
 * are widely separated; the cache models only care about bit patterns,
 * not about a real mapping.
 */

#ifndef LOOPPOINT_ISA_ADDR_SPACE_HH
#define LOOPPOINT_ISA_ADDR_SPACE_HH

#include "isa/program.hh"

namespace looppoint {

/** Synchronization objects (barriers, locks, chunk counters). */
constexpr Addr kSyncRegion = 0xFull << 40;
/** Per-thread stack/scalar traffic. */
constexpr Addr kStackRegion = 0xEull << 40;

/** Cache line of one synchronization object. */
constexpr Addr
syncAddr(uint32_t kind, uint32_t obj)
{
    return kSyncRegion | (static_cast<Addr>(kind) << 24) |
           (static_cast<Addr>(obj) * 64);
}

/**
 * Base of a private (per-thread) memory stream. `gsi` is the global
 * stream index (kernel index * 16 + stream id).
 */
constexpr Addr
privStreamBase(uint32_t gsi, uint32_t tid)
{
    return (static_cast<Addr>(0x100 + gsi) << 36) |
           (static_cast<Addr>(tid) << 30);
}

/** Base of a shared memory stream. */
constexpr Addr
sharedStreamBase(uint32_t gsi)
{
    return static_cast<Addr>(0x800 + gsi) << 36;
}

} // namespace looppoint

#endif // LOOPPOINT_ISA_ADDR_SPACE_HH
