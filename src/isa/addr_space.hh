/**
 * @file
 * Synthetic address-space layout shared by the execution engine's
 * address generators and the program-build-time stream plans. Regions
 * are widely separated; the cache models only care about bit patterns,
 * not about a real mapping.
 */

#ifndef LOOPPOINT_ISA_ADDR_SPACE_HH
#define LOOPPOINT_ISA_ADDR_SPACE_HH

#include "isa/program.hh"

namespace looppoint {

/** Synchronization objects (barriers, locks, chunk counters). */
constexpr Addr kSyncRegion = 0xFull << 40;
/** Per-thread stack/scalar traffic. */
constexpr Addr kStackRegion = 0xEull << 40;

/**
 * Each kernel owns a window of kStreamsPerKernel global stream indices
 * (gsi = kernel index * kStreamsPerKernel + stream id), so stream
 * tables larger than this overlap the next kernel's address slots.
 */
constexpr uint32_t kStreamsPerKernel = 16;

/** Bytes reserved per global stream index (one slot). */
constexpr uint64_t kStreamSlotBytes = 1ull << 36;

/**
 * Bytes of a private stream's slot owned by one thread (the tid field
 * is shifted in above this); a private footprint beyond it would alias
 * the next thread's subregion.
 */
constexpr uint64_t kPrivPerThreadBytes = 1ull << 30;

/** Threads expressible in a private slot's tid field. */
constexpr uint32_t kMaxPrivThreads =
    static_cast<uint32_t>(kStreamSlotBytes / kPrivPerThreadBytes);

/** Cache line of one synchronization object. */
constexpr Addr
syncAddr(uint32_t kind, uint32_t obj)
{
    return kSyncRegion | (static_cast<Addr>(kind) << 24) |
           (static_cast<Addr>(obj) * 64);
}

/**
 * Base of a private (per-thread) memory stream. `gsi` is the global
 * stream index (kernel index * 16 + stream id).
 */
constexpr Addr
privStreamBase(uint32_t gsi, uint32_t tid)
{
    return (static_cast<Addr>(0x100 + gsi) << 36) |
           (static_cast<Addr>(tid) << 30);
}

/** Base of a shared memory stream. */
constexpr Addr
sharedStreamBase(uint32_t gsi)
{
    return static_cast<Addr>(0x800 + gsi) << 36;
}

/** First address of the private-stream region (gsi 0, tid 0). */
constexpr Addr kPrivStreamRegionBase = privStreamBase(0, 0);
/** First address of the shared-stream region (gsi 0). */
constexpr Addr kSharedStreamRegionBase = sharedStreamBase(0);

} // namespace looppoint

#endif // LOOPPOINT_ISA_ADDR_SPACE_HH
