/**
 * @file
 * Static program representation.
 *
 * A Program is the analog of a compiled multi-threaded binary plus the
 * runtime libraries it links against. It contains:
 *
 *  - Images (main binary, libiomp analog, libc analog) with base
 *    addresses, so "is this PC in the main image?" is a real question —
 *    the LoopPoint spin/synchronization filter depends on it;
 *  - BasicBlocks with concrete PCs and per-instruction descriptors;
 *  - Routines grouping blocks (DCFG routine partitioning ground truth);
 *  - LoweredKernels: structured OpenMP-like parallel regions the
 *    execution engine interprets (worker loop, body tree, scheduling
 *    policy, synchronization uses);
 *  - a run list: the dynamic sequence of kernel instances (timestep
 *    structure of the application).
 *
 * Programs are produced by ProgramBuilder (program_builder.hh), usually
 * via the workload generators in src/workload.
 */

#ifndef LOOPPOINT_ISA_PROGRAM_HH
#define LOOPPOINT_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instr.hh"
#include "isa/op_class.hh"

namespace looppoint {

using BlockId = uint32_t;
using Addr = uint64_t;

constexpr BlockId kInvalidBlock = ~0u;

/** Which binary image a block lives in. */
enum class ImageId : uint8_t
{
    Main,    ///< the application binary; work counted by LoopPoint
    LibIomp, ///< OpenMP runtime analog; filtered as synchronization
    LibC,    ///< libc analog (futex stubs); filtered as synchronization
    NumImages
};

constexpr size_t kNumImages = static_cast<size_t>(ImageId::NumImages);

/** Image metadata. */
struct Image
{
    std::string name;
    Addr base = 0;
};

/**
 * One memory-accessing instruction of a block (derived view, built by
 * Program::finalizeDerived). Lets the per-block address generator walk
 * only the memory ops instead of re-scanning every instruction.
 */
struct BlockMemOp
{
    uint16_t index = 0;          ///< instruction index within the block
    uint8_t stream = 0xff;       ///< kNoStream when stack/scalar
    bool isWrite = false;
};

/** A single-entry single-exit static code block. */
struct BasicBlock
{
    BlockId id = kInvalidBlock;
    Addr pc = 0;
    ImageId image = ImageId::Main;
    uint32_t routine = 0;
    std::vector<InstrDesc> instrs;
    /** Derived: the memory ops of `instrs`, in instruction order. */
    std::vector<BlockMemOp> memOps;

    size_t numInstrs() const { return instrs.size(); }
    /** True when the final instruction is a control transfer. */
    bool endsWithBranch() const
    {
        return !instrs.empty() && instrs.back().op == OpClass::Branch;
    }
};

/** Static routine (function) grouping blocks. */
struct Routine
{
    std::string name;
    ImageId image = ImageId::Main;
    BlockId entry = kInvalidBlock;
    std::vector<BlockId> blocks;
};

/** How a kernel's parallel iterations are distributed over threads. */
enum class SchedPolicy : uint8_t
{
    Serial,     ///< only thread 0 executes the iterations
    StaticFor,  ///< contiguous per-thread ranges, computed up front
    DynamicFor  ///< threads claim chunks from a shared counter
};

/** OpenMP wait policy: what a waiting thread does. */
enum class WaitPolicy : uint8_t
{
    Passive, ///< block (futex); no instructions while waiting
    Active   ///< spin in the runtime library, consuming instructions
};

/** "passive" / "active" — the spelling every key and CLI flag uses. */
constexpr const char *
waitPolicyName(WaitPolicy policy)
{
    return policy == WaitPolicy::Active ? "active" : "passive";
}

/**
 * One element of a kernel body. The execution engine interprets the
 * body tree once per parallel iteration.
 */
struct BodyItem
{
    enum class Kind : uint8_t
    {
        Block,    ///< straight-line block
        Cond,     ///< if/else diamond taken with probability `prob`
        Loop,     ///< inner counted loop around `children`
        Atomic,   ///< atomic update block (AtomicRmw inside)
        Critical, ///< lock-protected critical section
    };

    Kind kind = Kind::Block;

    // Role-dependent block ids:
    //   Block/Atomic: blocks[0] = the block
    //   Cond:  blocks[0]=cond, blocks[1]=then, blocks[2]=else,
    //          blocks[3]=join
    //   Loop:  blocks[0]=header, blocks[1]=latch
    //   Critical: blocks[0]=acquire, blocks[1]=critical section,
    //          blocks[2]=release
    BlockId blocks[4] = {kInvalidBlock, kInvalidBlock, kInvalidBlock,
                         kInvalidBlock};

    /** Cond: probability the then-side executes. */
    double prob = 0.5;
    /** Loop: mean trip count. */
    uint64_t trips = 1;
    /** Loop: +/- uniform jitter applied to trips per execution. */
    uint32_t tripJitter = 0;
    /** Critical: lock object index. */
    uint32_t lockId = 0;

    std::vector<BodyItem> children;
};

/** Synchronization features a kernel exercises (paper Table III). */
struct SyncUse
{
    bool staticFor = false;
    bool dynamicFor = false;
    bool barrier = false;
    bool master = false;
    bool single = false;
    bool reduction = false;
    bool atomic = false;
    bool lock = false;
};

/**
 * Address-generation plan of one memory stream (derived view, built by
 * Program::finalizeDerived). Precomputes everything the engine's
 * per-access formula needs — clamped stride/footprint, the jump-draw
 * bound, and the region base — so address generation is a table walk.
 */
struct StreamPlan
{
    Addr base = 0;          ///< shared base, or the tid==0 private base
    uint64_t stride = 1;    ///< max(1, strideBytes)
    uint64_t footprint = 64; ///< max(64, footprintBytes)
    uint64_t jumpBound = 0; ///< footprint / stride + 1
    double jumpProb = 0.0;
    bool shared = false;
};

/**
 * A fully lowered parallel region. The engine executes:
 *
 *   [masterPrologue (thread 0 only)]
 *   worker loop: for each assigned iteration
 *       workerHeader block, then the body tree
 *   [reductionTail (atomic merge, once per thread)]
 *   end-of-kernel barrier
 */
struct LoweredKernel
{
    std::string name;
    SchedPolicy sched = SchedPolicy::StaticFor;
    uint64_t parallelIters = 0;
    uint64_t chunkSize = 1;
    /**
     * Skew of static iteration shares across threads; 0 = equal shares,
     * 1 = strongly skewed toward low thread ids (657.xz_s-style
     * heterogeneity).
     */
    double imbalance = 0.0;

    BlockId entryBlock = kInvalidBlock;
    BlockId masterPrologue = kInvalidBlock; ///< optional (master/single)
    BlockId workerHeader = kInvalidBlock;   ///< main-image loop entry
    BlockId workerLatch = kInvalidBlock;    ///< back-branch block
    std::vector<BodyItem> body;
    BlockId reductionTail = kInvalidBlock;  ///< optional atomic merge
    BlockId exitBlock = kInvalidBlock;

    /** Memory streams referenced by this kernel's blocks. */
    std::vector<MemStream> streams;
    /** Derived: one address-generation plan per stream. */
    std::vector<StreamPlan> plans;

    SyncUse sync;
};

/** Block ids of the shared runtime-library (libiomp/libc) code. */
struct RuntimeBlocks
{
    BlockId barrierEnter = kInvalidBlock;
    BlockId barrierExit = kInvalidBlock;
    /** The spin-wait loop; a self-looping block in libiomp. */
    BlockId spinWait = kInvalidBlock;
    /** Futex block in the libc image; one execution per passive wait. */
    BlockId futexWait = kInvalidBlock;
    BlockId chunkFetch = kInvalidBlock;
    BlockId lockAcquire = kInvalidBlock;
    BlockId lockSpin = kInvalidBlock;
    BlockId lockRelease = kInvalidBlock;
    BlockId atomicStub = kInvalidBlock;
};

/**
 * A complete static program: images, blocks, routines, kernels, and the
 * dynamic kernel schedule.
 */
class Program
{
  public:
    /** Images indexed by ImageId. */
    std::vector<Image> images;
    std::vector<BasicBlock> blocks;
    std::vector<Routine> routines;
    std::vector<LoweredKernel> kernels;
    RuntimeBlocks runtime;

    /**
     * Dynamic sequence of kernel executions: indices into `kernels`.
     * Encodes the application's timestep structure.
     */
    std::vector<uint32_t> runList;

    /** Number of lock objects used across all kernels. */
    uint32_t numLocks = 0;

    std::string name;

    /**
     * Derived flat per-block arrays (finalizeDerived), indexed by the
     * dense BlockId. The hot paths (engine emit, slice profiling) read
     * these instead of chasing into the BasicBlock structs.
     */
    std::vector<uint32_t> instrCounts;
    std::vector<uint8_t> mainImageFlags;

    const BasicBlock &block(BlockId id) const { return blocks[id]; }
    size_t numBlocks() const { return blocks.size(); }

    /** True if the block belongs to the application's main image. */
    bool
    inMainImage(BlockId id) const
    {
        return blocks[id].image == ImageId::Main;
    }

    /**
     * Build the derived views: per-block memory-op tables, per-kernel
     * stream plans, and the flat instruction-count / main-image
     * arrays. ProgramBuilder::build() calls this; a hand-assembled
     * Program must call it before execution (validate() checks).
     */
    void finalizeDerived();

    /** True once finalizeDerived() has run on the current contents. */
    bool derivedReady() const { return derived; }

    /** Total static instructions across a kernel's body tree. */
    uint64_t bodyInstrCount(const LoweredKernel &k) const;

    /**
     * Approximate dynamic main-image instruction count of the whole
     * program when run with `num_threads` threads (spin/sync excluded).
     * Used for planning slice sizes and for theoretical-speedup math.
     */
    uint64_t estimateWorkInstrs(uint32_t num_threads) const;

    /** Validate internal consistency; panics on corruption. */
    void validate() const;

  private:
    uint64_t bodyItemInstrCount(const BodyItem &item) const;

    bool derived = false;
};

} // namespace looppoint

#endif // LOOPPOINT_ISA_PROGRAM_HH
