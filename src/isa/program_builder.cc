#include "isa/program_builder.hh"

#include <algorithm>

#include "util/logging.hh"

namespace looppoint {

namespace {

constexpr Addr kMainBase = 0x00400000;
constexpr Addr kLibIompBase = 0x7f000000;
constexpr Addr kLibCBase = 0x7e000000;
constexpr uint32_t kInstrBytes = 4;

} // namespace

ProgramBuilder::ProgramBuilder(std::string name, uint64_t seed)
    : rng(hashCombine(seed, hashString(name)))
{
    prog.name = std::move(name);
    prog.images.resize(kNumImages);
    prog.images[static_cast<size_t>(ImageId::Main)] = {prog.name,
                                                       kMainBase};
    prog.images[static_cast<size_t>(ImageId::LibIomp)] = {"libiomp5.so",
                                                          kLibIompBase};
    prog.images[static_cast<size_t>(ImageId::LibC)] = {"libc.so",
                                                       kLibCBase};
    nextPc[static_cast<size_t>(ImageId::Main)] = kMainBase;
    nextPc[static_cast<size_t>(ImageId::LibIomp)] = kLibIompBase;
    nextPc[static_cast<size_t>(ImageId::LibC)] = kLibCBase;
}

uint32_t
ProgramBuilder::addRoutine(const std::string &name, ImageId image)
{
    Routine r;
    r.name = name;
    r.image = image;
    prog.routines.push_back(std::move(r));
    return static_cast<uint32_t>(prog.routines.size() - 1);
}

BlockId
ProgramBuilder::makeBlock(const BlockSpec &spec, ImageId image,
                          uint32_t routine, bool ends_with_branch)
{
    LP_ASSERT(spec.numInstrs >= 1);
    BasicBlock bb;
    bb.id = static_cast<BlockId>(prog.blocks.size());
    bb.image = image;
    bb.routine = routine;
    size_t img = static_cast<size_t>(image);
    bb.pc = nextPc[img];
    nextPc[img] += static_cast<Addr>(spec.numInstrs) * kInstrBytes;
    // Leave a gap between blocks so PCs are visibly distinct regions.
    nextPc[img] += kInstrBytes;

    uint32_t body_instrs = spec.numInstrs - (ends_with_branch ? 1 : 0);
    uint32_t stream_cursor = 0;
    bb.instrs.reserve(spec.numInstrs);
    for (uint32_t i = 0; i < body_instrs; ++i) {
        InstrDesc d;
        if (rng.nextBool(spec.fracMem)) {
            d.op = rng.nextBool(spec.loadFrac) ? OpClass::Load
                                               : OpClass::Store;
            if (!spec.streams.empty()) {
                d.memStream =
                    spec.streams[stream_cursor % spec.streams.size()];
                ++stream_cursor;
            }
        } else if (rng.nextBool(spec.fracFp)) {
            d.op = rng.nextBool(spec.fpMulFrac) ? OpClass::FpMul
                                                : OpClass::FpAdd;
        } else if (rng.nextBool(spec.fracDiv)) {
            d.op = OpClass::IntDiv;
        } else if (rng.nextBool(spec.fracMul)) {
            d.op = OpClass::IntMul;
        } else {
            d.op = OpClass::IntAlu;
        }
        // Geometric-ish dependence distances around the requested ILP.
        if (i > 0 && spec.ilp > 0.0) {
            uint64_t max_dist = std::min<uint64_t>(i, 255);
            uint64_t d1 = 1 + rng.nextBounded(
                static_cast<uint64_t>(2.0 * spec.ilp) + 1);
            d.srcDist1 = static_cast<uint8_t>(std::min(d1, max_dist));
            if (rng.nextBool(0.5)) {
                uint64_t d2 = 1 + rng.nextBounded(
                    static_cast<uint64_t>(2.0 * spec.ilp) + 1);
                d.srcDist2 = static_cast<uint8_t>(std::min(d2, max_dist));
            }
        }
        bb.instrs.push_back(d);
    }
    if (ends_with_branch) {
        InstrDesc d;
        d.op = OpClass::Branch;
        d.srcDist1 = 1;
        bb.instrs.push_back(d);
    }
    prog.routines[routine].blocks.push_back(bb.id);
    if (prog.routines[routine].entry == kInvalidBlock)
        prog.routines[routine].entry = bb.id;
    prog.blocks.push_back(std::move(bb));
    return prog.blocks.back().id;
}

BlockId
ProgramBuilder::makeRuntimeBlock(uint32_t num_instrs, ImageId image,
                                 uint32_t routine, bool ends_with_branch,
                                 bool has_atomic, bool has_load,
                                 bool has_store)
{
    BasicBlock bb;
    bb.id = static_cast<BlockId>(prog.blocks.size());
    bb.image = image;
    bb.routine = routine;
    size_t img = static_cast<size_t>(image);
    bb.pc = nextPc[img];
    nextPc[img] += static_cast<Addr>(num_instrs + 1) * kInstrBytes;

    uint32_t slot = 0;
    auto add = [&](OpClass op) {
        InstrDesc d;
        d.op = op;
        if (slot > 0)
            d.srcDist1 = 1;
        bb.instrs.push_back(d);
        ++slot;
    };
    if (has_atomic)
        add(OpClass::AtomicRmw);
    if (has_load)
        add(OpClass::Load);
    if (has_store)
        add(OpClass::Store);
    while (bb.instrs.size() + (ends_with_branch ? 1 : 0) < num_instrs)
        add(OpClass::IntAlu);
    if (ends_with_branch)
        add(OpClass::Branch);
    LP_ASSERT(bb.instrs.size() == num_instrs);

    prog.routines[routine].blocks.push_back(bb.id);
    if (prog.routines[routine].entry == kInvalidBlock)
        prog.routines[routine].entry = bb.id;
    prog.blocks.push_back(std::move(bb));
    return prog.blocks.back().id;
}

uint32_t
ProgramBuilder::beginKernel(const std::string &name, SchedPolicy sched,
                            uint64_t parallel_iters, uint64_t chunk_size)
{
    LP_ASSERT(!inKernel && !built);
    if (parallel_iters == 0)
        fatal("kernel '%s': parallelIters must be >= 1", name.c_str());
    inKernel = true;
    curRoutine = addRoutine(name, ImageId::Main);

    LoweredKernel k;
    k.name = name;
    k.sched = sched;
    k.parallelIters = parallel_iters;
    k.chunkSize = std::max<uint64_t>(1, chunk_size);
    if (sched == SchedPolicy::StaticFor)
        k.sync.staticFor = true;
    else if (sched == SchedPolicy::DynamicFor)
        k.sync.dynamicFor = true;
    k.sync.barrier = true; // implicit end-of-region barrier

    // Entry (serial prologue, thread 0), worker loop header + latch,
    // and exit (serial epilogue, thread 0).
    BlockSpec entry_spec{.numInstrs = 12, .fracMem = 0.2, .streams = {}};
    k.entryBlock = makeBlock(entry_spec, ImageId::Main, curRoutine, false);
    BlockSpec header_spec{.numInstrs = 6, .fracMem = 0.1, .streams = {}};
    k.workerHeader =
        makeBlock(header_spec, ImageId::Main, curRoutine, true);
    BlockSpec latch_spec{.numInstrs = 3, .fracMem = 0.0, .streams = {}};
    k.workerLatch = makeBlock(latch_spec, ImageId::Main, curRoutine, true);
    BlockSpec exit_spec{.numInstrs = 10, .fracMem = 0.2, .streams = {}};
    k.exitBlock = makeBlock(exit_spec, ImageId::Main, curRoutine, false);

    prog.kernels.push_back(std::move(k));
    scopeStack.clear();
    scopeStack.push_back(&prog.kernels.back().body);
    return static_cast<uint32_t>(prog.kernels.size() - 1);
}

std::vector<BodyItem> *
ProgramBuilder::currentScope()
{
    LP_ASSERT(inKernel && !scopeStack.empty());
    return scopeStack.back();
}

uint8_t
ProgramBuilder::addStream(const MemStream &stream)
{
    LP_ASSERT(inKernel);
    auto &streams = prog.kernels.back().streams;
    if (streams.size() >= kNoStream)
        fatal("too many memory streams in kernel '%s'",
              prog.kernels.back().name.c_str());
    streams.push_back(stream);
    return static_cast<uint8_t>(streams.size() - 1);
}

void
ProgramBuilder::addBlock(const BlockSpec &spec)
{
    BodyItem item;
    item.kind = BodyItem::Kind::Block;
    item.blocks[0] = makeBlock(spec, ImageId::Main, curRoutine, false);
    currentScope()->push_back(std::move(item));
}

void
ProgramBuilder::addCond(const BlockSpec &cond, const BlockSpec &then_spec,
                        const BlockSpec &else_spec, const BlockSpec &join,
                        double p)
{
    LP_ASSERT(p >= 0.0 && p <= 1.0);
    BodyItem item;
    item.kind = BodyItem::Kind::Cond;
    item.prob = p;
    item.blocks[0] = makeBlock(cond, ImageId::Main, curRoutine, true);
    item.blocks[1] = makeBlock(then_spec, ImageId::Main, curRoutine, false);
    item.blocks[2] = makeBlock(else_spec, ImageId::Main, curRoutine, false);
    item.blocks[3] = makeBlock(join, ImageId::Main, curRoutine, false);
    currentScope()->push_back(std::move(item));
}

void
ProgramBuilder::beginInnerLoop(uint64_t trips, uint32_t trip_jitter)
{
    LP_ASSERT(inKernel);
    if (trips == 0)
        fatal("inner loop trips must be >= 1");
    auto item = std::make_unique<BodyItem>();
    item->kind = BodyItem::Kind::Loop;
    item->trips = trips;
    item->tripJitter = trip_jitter;
    BlockSpec header_spec{.numInstrs = 4, .fracMem = 0.0, .streams = {}};
    item->blocks[0] = makeBlock(header_spec, ImageId::Main, curRoutine,
                                false);
    BlockSpec latch_spec{.numInstrs = 3, .fracMem = 0.0, .streams = {}};
    item->blocks[1] = makeBlock(latch_spec, ImageId::Main, curRoutine,
                                true);
    scopeStack.push_back(&item->children);
    loopStack.push_back(std::move(item));
}

void
ProgramBuilder::endInnerLoop()
{
    LP_ASSERT(!loopStack.empty() &&
              loopStack.back()->kind == BodyItem::Kind::Loop);
    auto item = std::move(loopStack.back());
    loopStack.pop_back();
    scopeStack.pop_back();
    currentScope()->push_back(std::move(*item));
}

void
ProgramBuilder::addAtomic(const BlockSpec &spec)
{
    BodyItem item;
    item.kind = BodyItem::Kind::Atomic;
    BlockSpec s = spec;
    item.blocks[0] = makeBlock(s, ImageId::Main, curRoutine, false);
    // Force an AtomicRmw into the block (first instruction).
    prog.blocks[item.blocks[0]].instrs.front().op = OpClass::AtomicRmw;
    prog.kernels.back().sync.atomic = true;
    currentScope()->push_back(std::move(item));
}

void
ProgramBuilder::addCritical(uint32_t lock_id, const BlockSpec &cs)
{
    BodyItem item;
    item.kind = BodyItem::Kind::Critical;
    item.lockId = lock_id;
    // Acquire/release stubs are created later (shared runtime blocks);
    // here we only create the main-image critical-section block and
    // patch acquire/release ids in build().
    item.blocks[1] = makeBlock(cs, ImageId::Main, curRoutine, false);
    prog.kernels.back().sync.lock = true;
    prog.numLocks = std::max(prog.numLocks, lock_id + 1);
    currentScope()->push_back(std::move(item));
}

void
ProgramBuilder::beginCritical(uint32_t lock_id, const BlockSpec &cs)
{
    auto item = std::make_unique<BodyItem>();
    item->kind = BodyItem::Kind::Critical;
    item->lockId = lock_id;
    item->blocks[1] = makeBlock(cs, ImageId::Main, curRoutine, false);
    prog.kernels.back().sync.lock = true;
    prog.numLocks = std::max(prog.numLocks, lock_id + 1);
    scopeStack.push_back(&item->children);
    loopStack.push_back(std::move(item));
}

void
ProgramBuilder::endCritical()
{
    LP_ASSERT(!loopStack.empty() &&
              loopStack.back()->kind == BodyItem::Kind::Critical);
    auto item = std::move(loopStack.back());
    loopStack.pop_back();
    scopeStack.pop_back();
    currentScope()->push_back(std::move(*item));
}

void
ProgramBuilder::setImbalance(double imbalance)
{
    LP_ASSERT(inKernel);
    LP_ASSERT(imbalance >= 0.0);
    prog.kernels.back().imbalance = imbalance;
}

void
ProgramBuilder::setMasterPrologue(const BlockSpec &spec, bool is_single)
{
    LP_ASSERT(inKernel);
    LoweredKernel &k = prog.kernels.back();
    k.masterPrologue = makeBlock(spec, ImageId::Main, curRoutine, false);
    if (is_single)
        k.sync.single = true;
    else
        k.sync.master = true;
}

void
ProgramBuilder::setReduction(const BlockSpec &merge_spec)
{
    LP_ASSERT(inKernel);
    LoweredKernel &k = prog.kernels.back();
    k.reductionTail =
        makeBlock(merge_spec, ImageId::Main, curRoutine, false);
    prog.blocks[k.reductionTail].instrs.front().op = OpClass::AtomicRmw;
    k.sync.reduction = true;
}

void
ProgramBuilder::endKernel()
{
    LP_ASSERT(inKernel);
    if (!loopStack.empty())
        fatal("endKernel() with an open inner loop");
    inKernel = false;
    scopeStack.clear();
}

void
ProgramBuilder::runKernels(const std::vector<uint32_t> &kernel_seq,
                           uint64_t timesteps)
{
    LP_ASSERT(!inKernel && !built);
    for (uint32_t kidx : kernel_seq)
        if (kidx >= prog.kernels.size())
            fatal("runKernels: kernel index %u out of range", kidx);
    for (uint64_t t = 0; t < timesteps; ++t)
        for (uint32_t kidx : kernel_seq)
            prog.runList.push_back(kidx);
}

void
ProgramBuilder::setNumLocks(uint32_t n)
{
    prog.numLocks = std::max(prog.numLocks, n);
}

Program
ProgramBuilder::build()
{
    LP_ASSERT(!inKernel && !built);
    built = true;

    // Create the shared runtime-library blocks (one set per program,
    // mirroring one loaded copy of libiomp5.so / libc.so).
    uint32_t r_barrier = addRoutine("__kmp_barrier", ImageId::LibIomp);
    prog.runtime.barrierEnter =
        makeRuntimeBlock(12, ImageId::LibIomp, r_barrier, true,
                         /*atomic=*/true, /*load=*/true, /*store=*/false);
    prog.runtime.barrierExit =
        makeRuntimeBlock(6, ImageId::LibIomp, r_barrier, false,
                         false, true, false);

    uint32_t r_spin = addRoutine("__kmp_wait_yield", ImageId::LibIomp);
    prog.runtime.spinWait =
        makeRuntimeBlock(4, ImageId::LibIomp, r_spin, true,
                         false, true, false);

    uint32_t r_futex = addRoutine("__futex_wait", ImageId::LibC);
    prog.runtime.futexWait =
        makeRuntimeBlock(24, ImageId::LibC, r_futex, true,
                         false, true, true);

    uint32_t r_dispatch =
        addRoutine("__kmp_dispatch_next", ImageId::LibIomp);
    prog.runtime.chunkFetch =
        makeRuntimeBlock(14, ImageId::LibIomp, r_dispatch, true,
                         true, true, false);

    uint32_t r_lock = addRoutine("__kmp_acquire_lock", ImageId::LibIomp);
    prog.runtime.lockAcquire =
        makeRuntimeBlock(6, ImageId::LibIomp, r_lock, true,
                         true, false, false);
    prog.runtime.lockSpin =
        makeRuntimeBlock(4, ImageId::LibIomp, r_lock, true,
                         false, true, false);
    prog.runtime.lockRelease =
        makeRuntimeBlock(4, ImageId::LibIomp, r_lock, false,
                         false, false, true);

    uint32_t r_atomic = addRoutine("__kmp_atomic", ImageId::LibIomp);
    prog.runtime.atomicStub =
        makeRuntimeBlock(6, ImageId::LibIomp, r_atomic, false,
                         true, false, false);

    // Patch Critical items to reference the shared lock stubs.
    for (auto &k : prog.kernels) {
        std::vector<BodyItem *> stack;
        for (auto &item : k.body)
            stack.push_back(&item);
        while (!stack.empty()) {
            BodyItem *item = stack.back();
            stack.pop_back();
            if (item->kind == BodyItem::Kind::Critical) {
                item->blocks[0] = prog.runtime.lockAcquire;
                item->blocks[2] = prog.runtime.lockRelease;
            }
            for (auto &child : item->children)
                stack.push_back(&child);
        }
    }

    if (prog.runList.empty())
        fatal("program '%s' has an empty run list; call runKernels()",
              prog.name.c_str());
    prog.finalizeDerived();
    prog.validate();
    return std::move(prog);
}

} // namespace looppoint
