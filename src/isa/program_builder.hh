/**
 * @file
 * ProgramBuilder: constructs Programs from structured kernel
 * descriptions.
 *
 * The builder plays the role of the compiler + linker in this
 * reproduction: workload generators describe parallel regions (loop
 * nests, instruction mixes, memory streams, synchronization uses) and
 * the builder lowers them to concrete basic blocks with PCs in the
 * right images, wires up the shared runtime-library blocks, and emits a
 * validated Program.
 *
 * Usage sketch:
 *
 *   ProgramBuilder b("myapp", seed);
 *   uint32_t k = b.beginKernel("stencil", SchedPolicy::StaticFor, 4096);
 *   b.addStream({.footprintBytes = 1<<20, .strideBytes = 8});
 *   b.addBlock({.numInstrs = 64, .fracMem = 0.4, .streams = {0}});
 *   b.beginInnerLoop(16);
 *   b.addBlock({.numInstrs = 24, .fracMem = 0.5, .streams = {0}});
 *   b.endInnerLoop();
 *   b.endKernel();
 *   b.runKernels({k}, 100);          // 100 timesteps
 *   Program p = b.build();
 */

#ifndef LOOPPOINT_ISA_PROGRAM_BUILDER_HH
#define LOOPPOINT_ISA_PROGRAM_BUILDER_HH

#include <memory>
#include <string>
#include <vector>

#include "isa/program.hh"
#include "util/rng.hh"

namespace looppoint {

/**
 * Recipe for one basic block's contents. The builder turns the mix
 * fractions into a concrete InstrDesc sequence deterministically (from
 * the builder's seed), so identical specs in identical order always
 * produce identical programs.
 */
struct BlockSpec
{
    uint32_t numInstrs = 16;
    /** Fraction of instructions that access memory. */
    double fracMem = 0.3;
    /** Of the memory ops, fraction that are loads (rest stores). */
    double loadFrac = 0.7;
    /** Fraction of non-memory ops that are floating point. */
    double fracFp = 0.0;
    /** Of the fp ops, fraction that are multiplies (rest adds). */
    double fpMulFrac = 0.5;
    /** Fraction of non-memory integer ops that are multiplies. */
    double fracMul = 0.05;
    /** Fraction of non-memory integer ops that are divides. */
    double fracDiv = 0.0;
    /** Mean register-dependence distance (higher = more ILP). */
    double ilp = 4.0;
    /** Memory streams cycled through by the block's memory ops. */
    std::vector<uint8_t> streams;
};

/**
 * Builds a Program. See file comment. All begin/end calls must nest
 * properly; build() validates the result.
 */
class ProgramBuilder
{
  public:
    ProgramBuilder(std::string name, uint64_t seed);

    /**
     * Start a new kernel (parallel region). Returns its kernel index.
     */
    uint32_t beginKernel(const std::string &name, SchedPolicy sched,
                         uint64_t parallel_iters, uint64_t chunk_size = 8);

    /** Add a memory stream to the current kernel; returns stream id. */
    uint8_t addStream(const MemStream &stream);

    /** Append a straight-line block to the current body scope. */
    void addBlock(const BlockSpec &spec);

    /** Append an if/else diamond; then-side taken with probability p. */
    void addCond(const BlockSpec &cond, const BlockSpec &then_spec,
                 const BlockSpec &else_spec, const BlockSpec &join,
                 double p);

    /** Open an inner counted loop; close with endInnerLoop(). */
    void beginInnerLoop(uint64_t trips, uint32_t trip_jitter = 0);
    void endInnerLoop();

    /** Append an `omp atomic`-style update. */
    void addAtomic(const BlockSpec &spec);

    /** Append an `omp critical` section protected by lock `lock_id`. */
    void addCritical(uint32_t lock_id, const BlockSpec &cs);

    /**
     * Open an `omp critical` section protected by `lock_id` whose body
     * may contain further items (including nested criticals, for
     * hand-over-hand or gate-lock idioms); close with endCritical().
     * `cs` is the block executed on entry while the lock is held.
     */
    void beginCritical(uint32_t lock_id, const BlockSpec &cs);
    void endCritical();

    /** Give the current kernel an iteration-share skew (0 = balanced). */
    void setImbalance(double imbalance);

    /** Thread-0-only prologue (omp master / omp single). */
    void setMasterPrologue(const BlockSpec &spec, bool is_single);

    /** Add a reduction merge at the end of each thread's portion. */
    void setReduction(const BlockSpec &merge_spec);

    /** Finish the current kernel. */
    void endKernel();

    /**
     * Append `timesteps` repetitions of the kernel sequence to the run
     * list (the application's outer timestep loop).
     */
    void runKernels(const std::vector<uint32_t> &kernel_seq,
                    uint64_t timesteps = 1);

    /** Number of lock objects the program declares. */
    void setNumLocks(uint32_t n);

    /** Finalize: create runtime-library blocks, validate, and return. */
    Program build();

  private:
    BlockId makeBlock(const BlockSpec &spec, ImageId image,
                      uint32_t routine, bool ends_with_branch);
    BlockId makeRuntimeBlock(uint32_t num_instrs, ImageId image,
                             uint32_t routine, bool ends_with_branch,
                             bool has_atomic, bool has_load,
                             bool has_store);
    uint32_t addRoutine(const std::string &name, ImageId image);
    std::vector<BodyItem> *currentScope();

    Program prog;
    Rng rng;
    Addr nextPc[kNumImages] = {};
    bool inKernel = false;
    uint32_t curRoutine = 0;
    /** Stack of open body scopes: kernel body + nested loops. */
    std::vector<std::vector<BodyItem> *> scopeStack;
    /** Loop items under construction (parallel to scopeStack tail). */
    std::vector<std::unique_ptr<BodyItem>> loopStack;
    bool built = false;
};

} // namespace looppoint

#endif // LOOPPOINT_ISA_PROGRAM_BUILDER_HH
