#include "isa/program.hh"

#include <algorithm>

#include "isa/addr_space.hh"
#include "util/logging.hh"

namespace looppoint {

std::string_view
opClassName(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu: return "IntAlu";
      case OpClass::IntMul: return "IntMul";
      case OpClass::IntDiv: return "IntDiv";
      case OpClass::FpAdd: return "FpAdd";
      case OpClass::FpMul: return "FpMul";
      case OpClass::FpDiv: return "FpDiv";
      case OpClass::Load: return "Load";
      case OpClass::Store: return "Store";
      case OpClass::Branch: return "Branch";
      case OpClass::AtomicRmw: return "AtomicRmw";
      default: return "???";
    }
}

uint64_t
Program::bodyItemInstrCount(const BodyItem &item) const
{
    switch (item.kind) {
      case BodyItem::Kind::Block:
      case BodyItem::Kind::Atomic:
        return blocks[item.blocks[0]].numInstrs();
      case BodyItem::Kind::Cond: {
        double expect =
            static_cast<double>(blocks[item.blocks[0]].numInstrs()) +
            item.prob *
                static_cast<double>(blocks[item.blocks[1]].numInstrs()) +
            (1.0 - item.prob) *
                static_cast<double>(blocks[item.blocks[2]].numInstrs()) +
            static_cast<double>(blocks[item.blocks[3]].numInstrs());
        return static_cast<uint64_t>(expect);
      }
      case BodyItem::Kind::Loop: {
        uint64_t inner = blocks[item.blocks[0]].numInstrs() +
                         blocks[item.blocks[1]].numInstrs();
        for (const auto &child : item.children)
            inner += bodyItemInstrCount(child);
        return inner * item.trips;
      }
      case BodyItem::Kind::Critical: {
        // Only the critical-section block and any nested body items
        // are main-image work; the acquire/release stubs live in
        // libiomp and are filtered.
        uint64_t inner = blocks[item.blocks[1]].numInstrs();
        for (const auto &child : item.children)
            inner += bodyItemInstrCount(child);
        return inner;
      }
      default:
        panic("unknown body item kind");
    }
}

uint64_t
Program::bodyInstrCount(const LoweredKernel &k) const
{
    uint64_t per_iter = blocks[k.workerHeader].numInstrs() +
                        blocks[k.workerLatch].numInstrs();
    for (const auto &item : k.body)
        per_iter += bodyItemInstrCount(item);
    return per_iter;
}

uint64_t
Program::estimateWorkInstrs(uint32_t num_threads) const
{
    (void)num_threads; // main-image work is independent of thread count
    uint64_t total = 0;
    for (uint32_t kidx : runList) {
        const LoweredKernel &k = kernels[kidx];
        uint64_t per_iter = bodyInstrCount(k);
        total += per_iter * k.parallelIters;
        total += blocks[k.entryBlock].numInstrs();
        total += blocks[k.exitBlock].numInstrs();
        if (k.masterPrologue != kInvalidBlock)
            total += blocks[k.masterPrologue].numInstrs();
        // reductionTail lives in the main image (the merge value compute);
        // executed once per participating thread; count one per thread is
        // thread-dependent but negligible — count once.
        if (k.reductionTail != kInvalidBlock)
            total += blocks[k.reductionTail].numInstrs();
    }
    return total;
}

void
Program::finalizeDerived()
{
    // Per-block flat arrays and memory-op tables.
    instrCounts.resize(blocks.size());
    mainImageFlags.resize(blocks.size());
    for (size_t b = 0; b < blocks.size(); ++b) {
        BasicBlock &bb = blocks[b];
        instrCounts[b] = static_cast<uint32_t>(bb.instrs.size());
        mainImageFlags[b] = bb.image == ImageId::Main ? 1 : 0;
        bb.memOps.clear();
        for (size_t i = 0; i < bb.instrs.size(); ++i) {
            const InstrDesc &ins = bb.instrs[i];
            if (!isMemOp(ins.op))
                continue;
            BlockMemOp op;
            op.index = static_cast<uint16_t>(i);
            op.stream = ins.memStream;
            op.isWrite = isMemWrite(ins.op);
            bb.memOps.push_back(op);
        }
    }

    // Per-kernel stream plans: pre-clamp stride/footprint, precompute
    // the jump-draw bound and the region base so the engine's address
    // formula is pure arithmetic at run time.
    for (size_t kidx = 0; kidx < kernels.size(); ++kidx) {
        LoweredKernel &k = kernels[kidx];
        k.plans.resize(k.streams.size());
        for (size_t si = 0; si < k.streams.size(); ++si) {
            const MemStream &s = k.streams[si];
            StreamPlan &p = k.plans[si];
            uint32_t gsi =
                static_cast<uint32_t>(kidx) * kStreamsPerKernel +
                static_cast<uint32_t>(si);
            p.stride = std::max<uint64_t>(1, s.strideBytes);
            p.footprint = std::max<uint64_t>(64, s.footprintBytes);
            p.jumpBound = p.footprint / p.stride + 1;
            p.jumpProb = s.jumpProb;
            p.shared = s.shared;
            p.base = s.shared ? sharedStreamBase(gsi)
                              : privStreamBase(gsi, 0);
        }
    }

    derived = true;
}

namespace {

void
validateItem(const Program &p, const BodyItem &item)
{
    auto check_block = [&](BlockId id) {
        LP_ASSERT(id != kInvalidBlock && id < p.blocks.size());
    };
    switch (item.kind) {
      case BodyItem::Kind::Block:
      case BodyItem::Kind::Atomic:
        check_block(item.blocks[0]);
        break;
      case BodyItem::Kind::Cond:
        for (int i = 0; i < 4; ++i)
            check_block(item.blocks[i]);
        LP_ASSERT(item.prob >= 0.0 && item.prob <= 1.0);
        break;
      case BodyItem::Kind::Loop:
        check_block(item.blocks[0]);
        check_block(item.blocks[1]);
        LP_ASSERT(item.trips >= 1);
        for (const auto &child : item.children)
            validateItem(p, child);
        break;
      case BodyItem::Kind::Critical:
        for (int i = 0; i < 3; ++i)
            check_block(item.blocks[i]);
        LP_ASSERT(item.lockId < p.numLocks);
        for (const auto &child : item.children)
            validateItem(p, child);
        break;
      default:
        panic("unknown body item kind");
    }
}

} // namespace

void
Program::validate() const
{
    LP_ASSERT(images.size() == kNumImages);
    // The engine and profilers index flat derived arrays by BlockId:
    // ids must be dense (checked below) and finalizeDerived() must
    // have run on the current block/kernel contents.
    LP_ASSERT(derivedReady());
    LP_ASSERT(instrCounts.size() == blocks.size());
    LP_ASSERT(mainImageFlags.size() == blocks.size());
    for (size_t i = 0; i < blocks.size(); ++i) {
        LP_ASSERT(blocks[i].id == i);
        LP_ASSERT(!blocks[i].instrs.empty());
        LP_ASSERT(blocks[i].routine < routines.size());
    }
    for (const auto &r : routines) {
        LP_ASSERT(r.entry != kInvalidBlock && r.entry < blocks.size());
        for (BlockId b : r.blocks)
            LP_ASSERT(b < blocks.size());
    }
    LP_ASSERT(!kernels.empty());
    for (const auto &k : kernels) {
        LP_ASSERT(k.entryBlock < blocks.size());
        LP_ASSERT(k.exitBlock < blocks.size());
        LP_ASSERT(k.workerHeader < blocks.size());
        LP_ASSERT(k.workerLatch < blocks.size());
        LP_ASSERT(inMainImage(k.workerHeader));
        LP_ASSERT(k.parallelIters >= 1);
        LP_ASSERT(k.chunkSize >= 1);
        for (const auto &item : k.body)
            validateItem(*this, item);
    }
    for (uint32_t kidx : runList)
        LP_ASSERT(kidx < kernels.size());
    LP_ASSERT(!runList.empty());
    LP_ASSERT(runtime.spinWait != kInvalidBlock);
    LP_ASSERT(blocks[runtime.spinWait].image == ImageId::LibIomp);
    LP_ASSERT(blocks[runtime.futexWait].image == ImageId::LibC);
}

} // namespace looppoint
