#include "baselines/time_sampling.hh"

#include "util/logging.hh"

namespace looppoint {

TimeSamplingResult
runTimeSampling(const Program &prog, const TimeSamplingOptions &opts,
                const SimConfig &sim_cfg)
{
    if (opts.detailedInstrs == 0)
        fatal("time sampling: detailed window must be positive");

    ExecConfig cfg;
    cfg.numThreads = opts.numThreads;
    cfg.waitPolicy = opts.waitPolicy;
    cfg.seed = opts.seed;

    MulticoreSim sim(prog, cfg, sim_cfg);
    TimeSamplingResult out;

    while (!sim.engine().allFinished()) {
        // Detailed window: bounded by cycles (true time-based
        // sampling) or by instructions.
        SimMetrics window;
        if (opts.detailedCycles > 0) {
            window = sim.runDetailed([&] {
                return sim.maxCoreTime() >= opts.detailedCycles;
            });
        } else {
            uint64_t detail_end =
                sim.engine().globalIcount() + opts.detailedInstrs;
            window = sim.runDetailed([&] {
                return sim.engine().globalIcount() >= detail_end;
            });
        }
        out.detailed += window;
        ++out.detailedWindows;
        if (sim.engine().allFinished())
            break;
        // Fast-forward window with functional warming.
        uint64_t ff_end =
            sim.engine().globalIcount() + opts.fastForwardInstrs;
        sim.fastForward(
            [&] { return sim.engine().globalIcount() >= ff_end; },
            /*warm=*/true);
    }

    out.totalInstructions = sim.engine().globalIcount();
    double fraction = out.detailFraction();
    out.predictedRuntimeSeconds =
        fraction > 0.0 ? out.detailed.runtimeSeconds / fraction : 0.0;
    return out;
}

} // namespace looppoint
