/**
 * @file
 * Naive multi-threaded SimPoint baseline (paper Section II): slice the
 * execution by *global instruction count* — spin code included, no
 * loop-aligned boundaries, one aggregate BBV per slice — then cluster
 * and extrapolate as usual.
 *
 * This is the strawman the paper measures at ~25% average error (up to
 * 68%) under the active wait policy: instruction-count boundaries are
 * not stable work markers when waiting threads burn instructions, and
 * aggregate BBVs hide per-thread imbalance.
 */

#ifndef LOOPPOINT_BASELINES_NAIVE_SIMPOINT_HH
#define LOOPPOINT_BASELINES_NAIVE_SIMPOINT_HH

#include <cstdint>
#include <vector>

#include "isa/program.hh"
#include "sim/config.hh"
#include "sim/multicore.hh"

namespace looppoint {

/** Naive-SimPoint knobs. */
struct NaiveSimpointOptions
{
    uint32_t numThreads = 8;
    WaitPolicy waitPolicy = WaitPolicy::Passive;
    /** Slice size in *global, unfiltered* instructions. */
    uint64_t sliceSizeGlobal = 800'000;
    uint32_t maxK = 50;
    uint32_t projectionDims = 100;
    double bicThreshold = 0.9;
    uint64_t seed = 42;
    uint64_t flowQuantum = 1000;
};

/** One selected region: a global-icount interval. */
struct NaiveRegion
{
    uint32_t cluster = 0;
    uint32_t sliceIndex = 0;
    uint64_t startIcount = 0; ///< global icount at region start
    uint64_t endIcount = 0;   ///< global icount at region end
    double multiplier = 1.0;
};

/** Analysis result. */
struct NaiveSimpointResult
{
    std::vector<uint64_t> sliceIcounts;
    std::vector<uint32_t> assignment;
    uint32_t chosenK = 0;
    std::vector<NaiveRegion> regions;
    uint64_t totalIcount = 0;
};

/** Profile + cluster under the naive scheme. */
NaiveSimpointResult analyzeNaiveSimpoint(
    const Program &prog, const NaiveSimpointOptions &opts);

/**
 * Simulate one naive region (boundaries re-located by global icount in
 * the timing schedule — the very step that makes the method unsound)
 * and return its metrics.
 */
SimMetrics simulateNaiveRegion(const Program &prog,
                               const NaiveSimpointOptions &opts,
                               const NaiveRegion &region,
                               const SimConfig &sim_cfg);

/** Eq.-1-style runtime extrapolation for the naive method. */
double extrapolateNaiveRuntime(const NaiveSimpointResult &analysis,
                               const std::vector<SimMetrics> &regions);

} // namespace looppoint

#endif // LOOPPOINT_BASELINES_NAIVE_SIMPOINT_HH
