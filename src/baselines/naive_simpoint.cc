#include "baselines/naive_simpoint.hh"

#include <algorithm>

#include "cluster/kmeans.hh"
#include "exec/driver.hh"
#include "exec/engine.hh"
#include "exec/listener.hh"
#include "util/logging.hh"

namespace looppoint {

namespace {

/** Aggregate (not per-thread) BBVs over fixed global-icount slices. */
class NaiveProfiler : public ExecListener
{
  public:
    NaiveProfiler(const Program &prog, uint64_t slice_size)
        : prog(&prog), sliceSize(slice_size)
    {
        slices.emplace_back();
    }

    struct Slice
    {
        std::unordered_map<BlockId, uint64_t> bbv;
        uint64_t icount = 0;
        uint64_t startIcount = 0;
    };

    void
    onBlock(uint32_t tid, BlockId block,
            const ExecutionEngine &engine) override
    {
        (void)tid;
        (void)engine;
        const BasicBlock &bb = prog->blocks[block];
        Slice &s = slices.back();
        // No spin filtering, no per-thread separation: the naive
        // adaptation counts everything.
        s.bbv[block] += 1;
        s.icount += bb.numInstrs();
        globalIcount += bb.numInstrs();
        if (s.icount >= sliceSize) {
            Slice next;
            next.startIcount = globalIcount;
            slices.push_back(std::move(next));
        }
    }

    const Program *prog;
    uint64_t sliceSize;
    uint64_t globalIcount = 0;
    std::vector<Slice> slices;
};

} // namespace

NaiveSimpointResult
analyzeNaiveSimpoint(const Program &prog,
                     const NaiveSimpointOptions &opts)
{
    ExecConfig cfg;
    cfg.numThreads = opts.numThreads;
    cfg.waitPolicy = opts.waitPolicy;
    cfg.seed = opts.seed;

    NaiveProfiler profiler(prog, opts.sliceSizeGlobal);
    ExecutionEngine engine(prog, cfg);
    RoundRobinDriver driver(engine, opts.flowQuantum);
    driver.run(&profiler);
    if (profiler.slices.back().icount == 0 &&
        profiler.slices.size() > 1)
        profiler.slices.pop_back();

    NaiveSimpointResult out;
    RandomProjector projector(opts.projectionDims,
                              hashCombine(opts.seed, 0xbbf));
    FeatureMatrix features;
    for (const auto &s : profiler.slices) {
        out.sliceIcounts.push_back(s.icount);
        out.totalIcount += s.icount;
        std::vector<std::pair<uint64_t, double>> sparse;
        double norm = s.icount ? static_cast<double>(s.icount) : 1.0;
        for (const auto &[block, count] : s.bbv)
            sparse.emplace_back(
                block, static_cast<double>(count) *
                           static_cast<double>(
                               prog.blocks[block].numInstrs()) /
                           norm);
        features.push_back(projector.project(sparse));
    }

    ClusteringResult clustering =
        simpointCluster(features, opts.maxK,
                        hashCombine(opts.seed, 0xc1u),
                        opts.bicThreshold);
    out.assignment = clustering.best.assignment;
    out.chosenK = clustering.chosenK;

    std::vector<uint32_t> reps =
        pickRepresentatives(features, clustering.best);
    std::vector<uint64_t> cluster_work(out.chosenK, 0);
    for (size_t i = 0; i < out.sliceIcounts.size(); ++i)
        cluster_work[out.assignment[i]] += out.sliceIcounts[i];

    for (uint32_t c = 0; c < out.chosenK; ++c) {
        uint32_t idx = reps[c];
        if (out.sliceIcounts[idx] == 0)
            continue;
        NaiveRegion r;
        r.cluster = c;
        r.sliceIndex = idx;
        r.startIcount = profiler.slices[idx].startIcount;
        r.endIcount =
            profiler.slices[idx].startIcount + out.sliceIcounts[idx];
        r.multiplier = static_cast<double>(cluster_work[c]) /
                       static_cast<double>(out.sliceIcounts[idx]);
        out.regions.push_back(r);
    }
    return out;
}

SimMetrics
simulateNaiveRegion(const Program &prog,
                    const NaiveSimpointOptions &opts,
                    const NaiveRegion &region, const SimConfig &sim_cfg)
{
    ExecConfig cfg;
    cfg.numThreads = opts.numThreads;
    cfg.waitPolicy = opts.waitPolicy;
    cfg.seed = opts.seed;

    MulticoreSim sim(prog, cfg, sim_cfg);
    // Position by global instruction count — the naive (unstable)
    // boundary definition.
    if (region.startIcount > 0) {
        sim.fastForward(
            [&] {
                return sim.engine().globalIcount() >= region.startIcount;
            },
            /*warm=*/true);
    }
    return sim.runDetailed([&] {
        return sim.engine().globalIcount() >= region.endIcount;
    });
}

double
extrapolateNaiveRuntime(const NaiveSimpointResult &analysis,
                        const std::vector<SimMetrics> &regions)
{
    if (regions.size() != analysis.regions.size())
        fatal("extrapolateNaiveRuntime: region count mismatch");
    double runtime = 0.0;
    for (size_t i = 0; i < regions.size(); ++i)
        runtime += regions[i].runtimeSeconds *
                   analysis.regions[i].multiplier;
    return runtime;
}

} // namespace looppoint
