/**
 * @file
 * Time-based sampling baseline (Carlson et al., ISPASS 2013; paper
 * Sections I/II and Fig. 1): alternate short detailed-simulation
 * windows with long functional fast-forward windows over the *entire*
 * application, then scale the detailed time by the duty cycle.
 *
 * The method is generic and reasonably accurate, but its speedup is
 * bounded by having to visit the whole application functionally —
 * the limitation LoopPoint removes.
 */

#ifndef LOOPPOINT_BASELINES_TIME_SAMPLING_HH
#define LOOPPOINT_BASELINES_TIME_SAMPLING_HH

#include <cstdint>

#include "isa/program.hh"
#include "sim/config.hh"
#include "sim/multicore.hh"

namespace looppoint {

/** Time-based-sampling knobs. */
struct TimeSamplingOptions
{
    uint32_t numThreads = 8;
    WaitPolicy waitPolicy = WaitPolicy::Passive;
    /** Detailed window length, in global instructions. */
    uint64_t detailedInstrs = 100'000;
    /** Fast-forward window length, in global instructions. */
    uint64_t fastForwardInstrs = 900'000;
    /**
     * When nonzero, detailed windows end after this many *cycles*
     * instead of after detailedInstrs instructions — true time-based
     * windows, insensitive to spin-inflated instruction counts.
     */
    uint64_t detailedCycles = 0;
    uint64_t seed = 42;
};

/** Result of a time-sampled run. */
struct TimeSamplingResult
{
    /** Summed metrics over the detailed windows only. */
    SimMetrics detailed;
    /** Runtime prediction: detailed time scaled by the duty cycle. */
    double predictedRuntimeSeconds = 0.0;
    uint64_t detailedWindows = 0;
    uint64_t totalInstructions = 0;

    /** Fraction of instructions simulated in detail. */
    double
    detailFraction() const
    {
        return totalInstructions
                   ? static_cast<double>(detailed.instructions) /
                         static_cast<double>(totalInstructions)
                   : 0.0;
    }
};

/** Run time-based sampling over the whole program. */
TimeSamplingResult runTimeSampling(const Program &prog,
                                   const TimeSamplingOptions &opts,
                                   const SimConfig &sim_cfg);

} // namespace looppoint

#endif // LOOPPOINT_BASELINES_TIME_SAMPLING_HH
