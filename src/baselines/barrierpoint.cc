#include "baselines/barrierpoint.hh"

#include <algorithm>

#include "cluster/kmeans.hh"
#include "exec/driver.hh"
#include "exec/engine.hh"
#include "exec/listener.hh"
#include "util/logging.hh"

namespace looppoint {

namespace {

/** Collects per-inter-barrier-region, per-thread filtered BBVs. */
class BarrierRegionProfiler : public ExecListener
{
  public:
    BarrierRegionProfiler(const Program &prog, uint32_t num_threads)
        : prog(&prog), numThreads(num_threads),
          regions(prog.runList.size())
    {
        for (auto &r : regions) {
            r.perThread.assign(numThreads, ThreadBbv{});
            r.threadFilteredIcount.assign(numThreads, 0);
        }
    }

    void
    onBlock(uint32_t tid, BlockId block,
            const ExecutionEngine &engine) override
    {
        uint32_t rp = engine.runPosition(tid);
        if (rp >= regions.size())
            rp = static_cast<uint32_t>(regions.size()) - 1;
        SliceRecord &r = regions[rp];
        const BasicBlock &bb = prog->blocks[block];
        r.totalIcount += bb.numInstrs();
        if (bb.image == ImageId::Main) {
            r.perThread[tid].add(block);
            r.threadFilteredIcount[tid] += bb.numInstrs();
            r.filteredIcount += bb.numInstrs();
        }
    }

    const Program *prog;
    uint32_t numThreads;
    std::vector<SliceRecord> regions;
};

} // namespace

uint64_t
BarrierPointResult::largestRegionIcount() const
{
    uint64_t largest = 0;
    for (const auto &r : regions)
        largest = std::max(largest, r.filteredIcount);
    return largest;
}

double
BarrierPointResult::theoreticalSerialSpeedup() const
{
    uint64_t selected = 0;
    for (const auto &r : regions)
        selected += r.filteredIcount;
    return selected ? static_cast<double>(totalFilteredIcount) /
                          static_cast<double>(selected)
                    : 0.0;
}

double
BarrierPointResult::theoreticalParallelSpeedup() const
{
    uint64_t largest = largestRegionIcount();
    return largest ? static_cast<double>(totalFilteredIcount) /
                         static_cast<double>(largest)
                   : 0.0;
}

BarrierPointResult
analyzeBarrierPoint(const Program &prog, const BarrierPointOptions &opts)
{
    ExecConfig cfg;
    cfg.numThreads = opts.numThreads;
    cfg.waitPolicy = opts.waitPolicy;
    cfg.seed = opts.seed;

    BarrierRegionProfiler profiler(prog, cfg.numThreads);
    ExecutionEngine engine(prog, cfg);
    RoundRobinDriver driver(engine, opts.flowQuantum);
    driver.run(&profiler);

    BarrierPointResult out;
    for (const auto &r : profiler.regions) {
        out.regionIcounts.push_back(r.filteredIcount);
        out.totalFilteredIcount += r.filteredIcount;
    }

    // Feature construction identical to LoopPoint's: normalized,
    // instruction-weighted, per-thread concatenated BBVs under a
    // random projection. (The original BarrierPoint also concatenates
    // LRU-stack-distance signatures; BBVs dominate its behavior and
    // are what we reproduce.)
    RandomProjector projector(opts.projectionDims,
                              hashCombine(opts.seed, 0xbbf));
    FeatureMatrix features;
    const uint64_t num_blocks = prog.numBlocks();
    for (const auto &r : profiler.regions) {
        std::vector<std::pair<uint64_t, double>> sparse;
        double norm = r.filteredIcount
                          ? static_cast<double>(r.filteredIcount)
                          : 1.0;
        for (uint32_t tid = 0; tid < r.perThread.size(); ++tid)
            for (const auto &[block, count] : r.perThread[tid].counts)
                sparse.emplace_back(
                    static_cast<uint64_t>(tid) * num_blocks + block,
                    static_cast<double>(count) *
                        static_cast<double>(
                            prog.blocks[block].numInstrs()) /
                        norm);
        features.push_back(projector.project(sparse));
    }

    ClusteringResult clustering =
        simpointCluster(features, opts.maxK,
                        hashCombine(opts.seed, 0xc1u),
                        opts.bicThreshold);
    out.assignment = clustering.best.assignment;
    out.chosenK = clustering.chosenK;

    std::vector<uint32_t> reps =
        pickRepresentatives(features, clustering.best);
    std::vector<uint64_t> cluster_work(out.chosenK, 0);
    for (size_t i = 0; i < out.regionIcounts.size(); ++i)
        cluster_work[out.assignment[i]] += out.regionIcounts[i];

    for (uint32_t c = 0; c < out.chosenK; ++c) {
        uint64_t rep_icount = out.regionIcounts[reps[c]];
        if (rep_icount == 0)
            continue;
        BarrierPointRegion region;
        region.cluster = c;
        region.runPos = reps[c];
        region.filteredIcount = rep_icount;
        region.multiplier = static_cast<double>(cluster_work[c]) /
                            static_cast<double>(rep_icount);
        out.regions.push_back(region);
    }
    return out;
}

} // namespace looppoint
