/**
 * @file
 * BarrierPoint baseline (Carlson et al., ISPASS 2014; paper Section II
 * and Fig. 9): the unit of work is the inter-barrier region instead of
 * a loop-bounded slice. Regions are clustered with the same
 * SimPoint-style machinery as LoopPoint, but region sizes are dictated
 * by the application's barrier density — which is exactly the
 * limitation the paper demonstrates: barrier-poor applications
 * (638.imagick, 657.xz) produce enormous regions and negligible
 * speedup.
 *
 * In our OpenMP model every kernel instance ends with its implicit
 * region barrier, so inter-barrier regions correspond to run-list
 * entries.
 */

#ifndef LOOPPOINT_BASELINES_BARRIERPOINT_HH
#define LOOPPOINT_BASELINES_BARRIERPOINT_HH

#include <cstdint>
#include <vector>

#include "isa/program.hh"
#include "profile/bbv.hh"

namespace looppoint {

/** BarrierPoint analysis knobs. */
struct BarrierPointOptions
{
    uint32_t numThreads = 8;
    WaitPolicy waitPolicy = WaitPolicy::Passive;
    uint32_t maxK = 50;
    uint32_t projectionDims = 100;
    double bicThreshold = 0.9;
    uint64_t seed = 42;
    uint64_t flowQuantum = 1000;
};

/** One selected barrierpoint. */
struct BarrierPointRegion
{
    uint32_t cluster = 0;
    /** Run-list position (kernel instance) of the representative. */
    uint32_t runPos = 0;
    uint64_t filteredIcount = 0;
    double multiplier = 1.0;
};

/** BarrierPoint analysis output. */
struct BarrierPointResult
{
    /** Filtered work per inter-barrier region (run-list entry). */
    std::vector<uint64_t> regionIcounts;
    std::vector<uint32_t> assignment;
    uint32_t chosenK = 0;
    std::vector<BarrierPointRegion> regions;
    uint64_t totalFilteredIcount = 0;

    uint64_t largestRegionIcount() const;
    double theoreticalSerialSpeedup() const;
    double theoreticalParallelSpeedup() const;
};

/** Run the BarrierPoint analysis on one program. */
BarrierPointResult analyzeBarrierPoint(const Program &prog,
                                       const BarrierPointOptions &opts);

} // namespace looppoint

#endif // LOOPPOINT_BASELINES_BARRIERPOINT_HH
