/**
 * @file
 * Campaign supervisor: crash-isolated job execution with retry,
 * watchdogs, and graceful degradation.
 *
 * Each job runs in a forked child, so a crashing simulation — real or
 * injected — costs one job attempt, never the sweep. Around the fork
 * the supervisor layers, from the inside out:
 *
 *   watchdog     a per-job wall-clock budget (`jobTimeoutSeconds`).
 *                On expiry the child gets SIGTERM (a healthy job
 *                parks at the next region boundary, journals, and
 *                exits 4 = resumable); after `killGraceSeconds` a
 *                still-alive child gets SIGKILL.
 *   classify     the wait status maps onto FailureClass: degraded
 *                and permanent outcomes are final; transient ones
 *                (exit 3, any signal death) and boundary interrupts
 *                are retried.
 *   retry        up to `jobRetries` extra attempts, spaced by
 *                BackoffPolicy with deterministic per-job jitter
 *                (seeded from the campaign seed and job index). The
 *                per-job region journal makes each retry resume
 *                completed regions bit-identically.
 *   journal      every launch and outcome lands in the crash-safe
 *                campaign journal before/after the fact, so a killed
 *                supervisor restarts with exactly-once accounting:
 *                completed jobs are adopted, mid-flight ones rerun.
 *   degrade      before each launch, a free-disk probe runs store GC
 *                below `gcWatermarkBytes` and parks the whole queue
 *                below `gcFloorBytes` rather than corrupt the store.
 *
 * Signal contract (SIGINT/SIGTERM): the first request drains — the
 * running child finishes, nothing new launches; the second kills the
 * child (SIGKILL), journals the kill, and flushes state; a third
 * falls through to default disposition. SIGHUP in daemon mode
 * requests a rescan. status.json is rewritten atomically on every
 * transition for `lp_report --campaign` to render live.
 */

#ifndef LOOPPOINT_CAMPAIGN_SUPERVISOR_HH
#define LOOPPOINT_CAMPAIGN_SUPERVISOR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/campaign_journal.hh"
#include "util/backoff.hh"
#include "util/fault.hh"

namespace looppoint {

/** Supervision policy; see file comment for the model. */
struct SupervisorOptions
{
    /** Extra attempts after the first (so jobRetries=2 → 3 launches
     * max per job per supervisor invocation). */
    uint32_t jobRetries = 2;
    /** Wall-clock watchdog per attempt; 0 disables. */
    double jobTimeoutSeconds = 0.0;
    /** SIGTERM → SIGKILL escalation grace. */
    double killGraceSeconds = 5.0;
    /** Retry spacing; its seed is re-derived per job from the
     * campaign seed and the job index. */
    BackoffPolicy backoff;
    /** Run store GC before a launch when free disk under the store
     * falls below this; 0 disables. */
    uint64_t gcWatermarkBytes = 0;
    /** Park the queue (instead of launching) when free disk is still
     * below this after GC; 0 disables. */
    uint64_t gcFloorBytes = 0;
    /** gc() size target; the default only collects orphans, never
     * evicting live (manifest-bound) objects. */
    uint64_t gcTargetBytes = UINT64_MAX;
    /** Keep running after a pass: rescan on SIGHUP or every
     * `rescanSeconds`, rewriting status.json while idle. */
    bool daemonMode = false;
    double rescanSeconds = 0.0;
    /** Deterministic fault injection (job: clauses). */
    FaultPlan faults;
    /** Live surface path; default <outDir>/status.json. */
    std::string statusPath;
    /** Free bytes available at a path; injectable for tests
     * (default: statvfs). */
    std::function<uint64_t(const std::string &)> freeDiskProbe;
    /** Interruptible sleep; injectable for tests (default: chunked
     * nanosleep that returns early on a shutdown request). */
    std::function<void(double)> sleeper;
};

/** Outcome of one CampaignSupervisor::run(). */
struct SupervisorResult
{
    /** 0 all ok, 1 degraded/failed/parked jobs, 4 interrupted. */
    int exitCode = 0;
    std::vector<CampaignJob> jobs;
    uint32_t launches = 0;
    uint32_t retries = 0;
    uint32_t timeouts = 0;
    uint32_t gcRuns = 0;
    uint32_t adopted = 0; ///< completed jobs taken from the journal
    uint32_t staleResults = 0;
    /** A shutdown request stopped the campaign early. */
    bool interrupted = false;
    /** The disk floor parked the queue. */
    bool parked = false;
    size_t passes = 0; ///< daemon rescan passes completed
};

/** See file comment. */
class CampaignSupervisor
{
  public:
    CampaignSupervisor(CampaignSpec spec, SupervisorOptions opts);

    /**
     * Run the campaign to completion (or until interrupted/parked).
     * In daemon mode, loops: pass, idle (status heartbeats), rescan
     * on SIGHUP or interval, until a shutdown request. Writes
     * campaign.json after every pass and status.json on every
     * transition.
     */
    SupervisorResult run();

  private:
    struct ChildOutcome
    {
        FailureClass cls = FailureClass::Transient;
        int32_t code = -1;
        int32_t sig = 0;
        bool timedOut = false;
        bool killedByShutdown = false;
        double wallSeconds = 0.0;
    };

    /** One pass over the matrix; fills `result`. */
    void runPass(std::vector<CampaignJob> &jobs, CampaignJournal &jnl);
    /** Run one job's attempt loop (job is an element of jobs; the
     * whole vector is needed for status.json snapshots). */
    void superviseJob(std::vector<CampaignJob> &jobs, CampaignJob &job,
                      const std::string &job_dir, CampaignJournal &jnl);
    /** Daemon idle: heartbeat status.json until SIGHUP, the rescan
     * interval, or shutdown. False = shut down. */
    bool idleWait(const std::vector<CampaignJob> &jobs);
    /** Fork, babysit (watchdog + shutdown), reap, classify. */
    ChildOutcome launchAttempt(CampaignJob &job,
                               const std::string &job_dir,
                               uint32_t attempt);
    /** GC/park disk-pressure check before a launch. True = proceed. */
    bool diskPressureOk(CampaignJob &job);
    /** Atomic rewrite of status.json. */
    void writeStatus(const std::vector<CampaignJob> &jobs,
                     const std::string &state);

    CampaignSpec spec;
    SupervisorOptions opts;
    SupervisorResult result;
    std::string statusPath;
};

} // namespace looppoint

#endif // LOOPPOINT_CAMPAIGN_SUPERVISOR_HH
