#include "campaign/campaign_journal.hh"

#include <cstdio>
#include <fstream>

#include "obs/metrics.hh"
#include "util/checksum.hh"

namespace looppoint {

namespace {

constexpr const char *kJournalMagic = "looppoint-campaign-journal-v1";

} // namespace

CampaignJournal::CampaignJournal(std::string path,
                                 std::string fingerprint_)
    : filePath(std::move(path)), fingerprint(std::move(fingerprint_))
{
}

std::optional<LoadError>
CampaignJournal::load(bool must_exist)
{
    std::lock_guard<std::mutex> lock(mu);
    records.clear();
    dropped = 0;

    std::ifstream is(filePath);
    if (!is) {
        if (must_exist)
            return LoadError{LoadErrorKind::Io,
                             "cannot open campaign journal '" +
                                 filePath + "'"};
        return std::nullopt; // fresh journal
    }

    std::string line;
    if (!std::getline(is, line))
        return LoadError{LoadErrorKind::Truncated,
                         "campaign journal is empty"};
    auto magic = checkCrcLine(line);
    if (!magic || *magic != kJournalMagic)
        return LoadError{LoadErrorKind::BadMagic,
                         "'" + filePath + "' is not a looppoint "
                         "campaign journal"};
    if (!std::getline(is, line))
        return LoadError{LoadErrorKind::Truncated,
                         "campaign journal has no key line"};
    auto key_line = checkCrcLine(line);
    if (!key_line)
        return LoadError{LoadErrorKind::BadChecksum,
                         "campaign journal key line fails its "
                         "checksum"};
    const std::string want = "key fp=" + fingerprint;
    if (*key_line != want)
        return LoadError{
            LoadErrorKind::Validation,
            "campaign journal was written by a different campaign "
            "(key mismatch): journal has '" + *key_line +
                "', this campaign is '" + want + "'"};

    while (std::getline(is, line)) {
        auto payload = checkCrcLine(line);
        auto ev = payload ? parseCampaignEvent(*payload)
                          : std::optional<CampaignEvent>();
        if (!ev) {
            // Torn tail: this record (and anything after it, which
            // was written later) is unusable. Keep the valid prefix.
            ++dropped;
            while (std::getline(is, line))
                ++dropped;
            break;
        }
        records.push_back(std::move(*ev));
    }
    MetricsRegistry::global()
        .counter("campaign.journal.loaded_records")
        .add(records.size());
    if (dropped)
        MetricsRegistry::global()
            .counter("campaign.journal.dropped_records")
            .add(dropped);
    return std::nullopt;
}

void
CampaignJournal::append(const CampaignEvent &ev)
{
    std::lock_guard<std::mutex> lock(mu);
    records.push_back(ev);
    if (!rewriteLocked()) {
        ++writeFailures;
        MetricsRegistry::global()
            .counter("campaign.journal.failed_writes")
            .add();
    } else {
        MetricsRegistry::global()
            .counter("campaign.journal.appends")
            .add();
    }
}

std::map<uint32_t, CampaignJournal::Ledger>
CampaignJournal::ledgers() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::map<uint32_t, Ledger> out;
    for (const auto &ev : records) {
        Ledger &l = out[ev.index];
        if (ev.event == "launch") {
            l.attempts = std::max(l.attempts, ev.attempt + 1);
        } else if (ev.event == "ok" || ev.event == "degraded") {
            l.completed = true;
            l.finalStatus = ev.event;
        } else if (ev.event == "stale") {
            // A completion whose result later failed validation: the
            // job must run again.
            l.completed = false;
            l.finalStatus.clear();
        }
    }
    return out;
}

std::vector<CampaignEvent>
CampaignJournal::events() const
{
    std::lock_guard<std::mutex> lock(mu);
    return records;
}

bool
CampaignJournal::rewriteLocked()
{
    const std::string tmp = filePath + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            return false;
        os << withCrcLine(kJournalMagic) << '\n';
        os << withCrcLine("key fp=" + fingerprint) << '\n';
        for (const auto &ev : records)
            os << withCrcLine(encodeCampaignEvent(ev)) << '\n';
        os.flush();
        if (!os)
            return false;
    }
    return std::rename(tmp.c_str(), filePath.c_str()) == 0;
}

} // namespace looppoint
