#include "campaign/campaign.hh"

#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "analysis/experiment_audit.hh"
#include "core/experiment.hh"
#include "obs/json.hh"
#include "util/checksum.hh"
#include "util/interrupt.hh"
#include "util/logging.hh"

namespace looppoint {

namespace {

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
atomicWrite(const std::string &path, const std::string &contents)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream f(tmp);
        if (!f)
            fatal("cannot write '%s'", tmp.c_str());
        f << contents;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("cannot publish '%s': %s", path.c_str(),
              std::strerror(errno));
}

void
writeResultJson(const std::string &path, const CampaignJob &job,
                const ExperimentResult &r, const CampaignSpec &spec)
{
    size_t errors = 0, warnings = 0;
    for (const auto &d : r.analysis.diagnostics) {
        errors += d.severity == Severity::Error;
        warnings += d.severity == Severity::Warning;
    }
    std::ostringstream os;
    os << "{\n"
       << "  \"kind\": \"lp_campaign_job\",\n"
       << "  \"job\": " << jsonQuote(job.id) << ",\n"
       << "  \"program\": " << jsonQuote(job.program) << ",\n"
       << "  \"app\": " << jsonQuote(r.app) << ",\n"
       << "  \"input\": " << jsonQuote(job.input) << ",\n"
       << "  \"threads\": " << r.threads << ",\n"
       << "  \"uarch\": " << jsonQuote(job.uarch) << ",\n"
       << "  \"backend\": " << jsonQuote(spec.backend) << ",\n"
       << "  \"chosenK\": " << r.analysis.chosenK << ",\n"
       << "  \"regions\": " << r.analysis.regions.size() << ",\n"
       << "  \"coverage\": " << fmtDouble(r.coverage) << ",\n"
       << "  \"predictedRuntime\": "
       << fmtDouble(r.predicted.runtimeSeconds) << ",\n"
       << "  \"fullsimRuntime\": "
       << fmtDouble(r.haveFullSim ? r.fullSim.runtimeSeconds : 0.0)
       << ",\n"
       << "  \"runtimeErrorPct\": " << fmtDouble(r.runtimeErrorPct)
       << ",\n"
       << "  \"stageHits\": {\"record\": "
       << (r.analysis.stageHashes.recordHit ? "true" : "false")
       << ", \"profile\": "
       << (r.analysis.stageHashes.profileHit ? "true" : "false")
       << ", \"cluster\": "
       << (r.analysis.stageHashes.clusterHit ? "true" : "false")
       << ", \"sim\": " << (r.simStageHit ? "true" : "false")
       << ", \"fullsim\": " << (r.fullSimHit ? "true" : "false")
       << "},\n"
       << "  \"store\": {\"hits\": " << r.storeStats.hits
       << ", \"misses\": " << r.storeStats.misses
       << ", \"publishes\": " << r.storeStats.publishes
       << ", \"failedPublishes\": " << r.storeStats.failedPublishes
       << ", \"corrupt\": " << r.storeStats.corruptEntries
       << ", \"bytesStored\": " << r.storeStats.bytesStored
       << ", \"bytesDeduped\": " << r.storeStats.bytesDeduped
       << ", \"bytesRead\": " << r.storeStats.bytesRead << "},\n"
       << "  \"analysis\": {\"findings\": "
       << r.analysis.diagnostics.size() << ", \"errors\": " << errors
       << ", \"warnings\": " << warnings
       << ", \"auditFindings\": " << r.auditFindings << "},\n"
       << "  \"wallSeconds\": " << fmtDouble(job.wallSeconds) << "\n"
       << "}\n";
    atomicWrite(path, os.str());
}

} // namespace

void
makeCampaignDir(const std::string &path)
{
    if (mkdir(path.c_str(), 0777) != 0 && errno != EEXIST)
        fatal("cannot create directory '%s': %s", path.c_str(),
              std::strerror(errno));
}

void
validateCampaignSpec(const CampaignSpec &spec)
{
    if (spec.outDir.empty())
        fatal("--out=DIR is required");
    if (spec.backend != "pool" && spec.backend != "procs")
        fatal("backend must be 'pool' or 'procs'");
    if (spec.waitPolicy != "passive" && spec.waitPolicy != "active")
        fatal("wait policy must be 'passive' or 'active'");
    for (const auto &p : spec.apps)
        resolveArtifactProgram(p);
    for (const auto &ic : spec.inputs)
        resolveInputClass(ic);
    for (const auto &u : spec.uarchs) {
        SimConfig scratch;
        applyUarchPreset(scratch, u);
    }
}

std::vector<CampaignJob>
expandCampaignMatrix(const CampaignSpec &spec)
{
    std::vector<CampaignJob> jobs;
    for (const auto &prog : spec.apps)
        for (const auto &input : spec.inputs)
            for (uint32_t threads : spec.threads)
                for (const auto &uarch : spec.uarchs) {
                    CampaignJob j;
                    j.index = static_cast<uint32_t>(jobs.size());
                    j.program = prog;
                    j.input = input;
                    j.threads = threads;
                    j.uarch = uarch;
                    j.id = prog + "-" + input + "-t" +
                           std::to_string(threads) + "-" + uarch;
                    jobs.push_back(std::move(j));
                }
    return jobs;
}

std::string
campaignFingerprint(const CampaignSpec &spec)
{
    std::ostringstream os;
    os << "lp-campaign-v1;apps=";
    for (const auto &a : spec.apps)
        os << a << "|";
    os << ";inputs=";
    for (const auto &i : spec.inputs)
        os << i << "|";
    os << ";threads=";
    for (uint32_t t : spec.threads)
        os << t << "|";
    os << ";uarchs=";
    for (const auto &u : spec.uarchs)
        os << u << "|";
    os << ";backend=" << spec.backend
       << ";wait=" << spec.waitPolicy << ";seed=" << spec.seed
       << ";fullsim=" << (spec.fullSim ? 1 : 0)
       << ";audit=" << (spec.audit ? 1 : 0) << ";";
    const std::string text = os.str();
    return crcHex(crc32(text));
}

bool
validJobResult(const std::string &job_dir)
{
    std::ifstream f(job_dir + "/result.json");
    if (!f)
        return false;
    std::ostringstream buf;
    buf << f.rdbuf();
    auto doc = parseJson(buf.str());
    if (!doc || !doc->isObject())
        return false;
    if (doc->stringOr("kind", "") != "lp_campaign_job")
        return false;
    // A truncated-but-parseable document is still invalid: the
    // trailing wallSeconds field doubles as a completeness witness.
    return doc->find("coverage") != nullptr &&
           doc->find("wallSeconds") != nullptr;
}

int
runCampaignJob(CampaignJob &job, const std::string &job_dir,
               const CampaignSpec &spec)
{
    ExperimentConfig cfg;
    cfg.app = resolveArtifactProgram(job.program);
    cfg.input = resolveInputClass(job.input);
    cfg.requestedThreads = job.threads;
    cfg.waitPolicy = spec.waitPolicy == "active" ? WaitPolicy::Active
                                                 : WaitPolicy::Passive;
    cfg.jobs = spec.jobs;
    cfg.simulateFull = spec.fullSim;
    cfg.loopPoint.seed = spec.seed;
    applyUarchPreset(cfg.sim, job.uarch);
    cfg.sim.backend = spec.backend == "procs" ? ExecBackendKind::Procs
                                              : ExecBackendKind::Pool;
    cfg.storeDir = spec.storeDir;
    if (cfg.input == InputClass::Test)
        cfg.loopPoint.sliceSizePerThread = 25'000;

    // Always journal, auto-resume: a killed attempt's successor
    // continues from completed regions bit-identically instead of
    // starting over — the substrate the supervisor's retry and
    // watchdog policies stand on.
    cfg.journalPath = job_dir + "/journal";
    struct stat st;
    cfg.resume = stat(cfg.journalPath.c_str(), &st) == 0;

    auto t0 = std::chrono::steady_clock::now();
    ExperimentResult r;
    try {
        r = runExperiment(cfg);
    } catch (const InterruptedRun &e) {
        // Parked at a region boundary (supervisor SIGTERM): completed
        // regions are journaled, the next attempt resumes.
        warn("job %s: %s", job.id.c_str(), e.what());
        return 4;
    }
    if (spec.audit)
        auditExperiment(cfg, r);
    job.wallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    job.status = r.coverage < 1.0 ? "degraded" : "ok";

    writeResultJson(job_dir + "/result.json", job, r, spec);
    std::ofstream done(job_dir + "/.done");
    done << job.status << "\n";
    return r.coverage < 1.0 ? 1 : 0;
}

void
writeCampaignJson(const std::string &path, const CampaignSpec &spec,
                  const std::vector<CampaignJob> &jobs)
{
    size_t ran = 0, done = 0, running = 0, degraded = 0, failed = 0,
           parked = 0;
    for (const auto &j : jobs) {
        if (j.status == "ok")
            ++ran;
        else if (j.status == "done")
            ++done;
        else if (j.status == "running")
            ++running;
        else if (j.status == "degraded")
            ++degraded;
        else if (j.status == "failed")
            ++failed;
        else if (j.status == "parked")
            ++parked;
    }
    std::ostringstream os;
    os << "{\n"
       << "  \"kind\": \"lp_campaign\",\n"
       << "  \"store\": " << jsonQuote(spec.storeDir) << ",\n"
       << "  \"backend\": " << jsonQuote(spec.backend) << ",\n"
       << "  \"jobsTotal\": " << jobs.size() << ",\n"
       << "  \"jobsRan\": " << ran << ",\n"
       << "  \"jobsSkippedDone\": " << done << ",\n"
       << "  \"jobsSkippedRunning\": " << running << ",\n"
       << "  \"jobsDegraded\": " << degraded << ",\n"
       << "  \"jobsFailed\": " << failed << ",\n"
       << "  \"jobsParked\": " << parked << ",\n"
       << "  \"jobs\": [\n";
    for (size_t i = 0; i < jobs.size(); ++i)
        os << "    {\"job\": " << jsonQuote(jobs[i].id)
           << ", \"status\": " << jsonQuote(jobs[i].status)
           << ", \"attempts\": " << jobs[i].attempts
           << ", \"wallSeconds\": " << fmtDouble(jobs[i].wallSeconds)
           << "}" << (i + 1 < jobs.size() ? "," : "") << "\n";
    os << "  ]\n}\n";
    atomicWrite(path, os.str());
}

} // namespace looppoint
