/**
 * @file
 * Crash-safe campaign journal: the supervisor's exactly-once ledger.
 *
 * One line per job state transition (launch, completion, failure,
 * timeout, stale-result invalidation), in the run journal's CRC-line
 * format, so a supervisor killed at any instant restarts knowing
 * precisely which jobs completed, which were mid-flight (their launch
 * has no matching completion — rerun), and how many attempts each has
 * consumed. A completed job is adopted without relaunching, which is
 * what makes campaign accounting exactly-once across restarts.
 *
 * On-disk format (line-oriented text, one ` crc=XXXXXXXX` trailer per
 * line covering everything before it):
 *
 *   looppoint-campaign-journal-v1 crc=...
 *   key fp=<campaign fingerprint> crc=...
 *   job idx=N id=<id> event=<ev> attempt=K code=C sig=S crc=...
 *
 * Events: launch, ok, degraded, interrupted, fail-transient,
 * fail-permanent, timeout, killed, stale. `code` is the child's exit
 * code (-1 for signal deaths and non-exit events), `sig` the
 * terminating signal (0 when none).
 *
 * Appends rewrite the whole file to `<path>.tmp` and rename it over
 * the journal (atomic); a torn or corrupted *tail* in an existing
 * journal is tolerated — invalid trailing records are dropped and
 * counted, valid prefix records are kept. Append failures are counted
 * and swallowed: the journal is a recovery aid, never worth failing
 * the campaign for.
 */

#ifndef LOOPPOINT_CAMPAIGN_CAMPAIGN_JOURNAL_HH
#define LOOPPOINT_CAMPAIGN_CAMPAIGN_JOURNAL_HH

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/load_result.hh"

namespace looppoint {

/** One job state transition (see file comment for the vocabulary). */
struct CampaignEvent
{
    uint32_t index = 0;
    std::string id;
    std::string event;
    uint32_t attempt = 0;
    int32_t code = -1;
    int32_t sig = 0;

    bool operator==(const CampaignEvent &other) const = default;
};

/** See file comment. */
class CampaignJournal
{
  public:
    CampaignJournal(std::string path, std::string fingerprint);

    /**
     * Load an existing journal from disk. A missing file is an Io
     * error when `must_exist` and an empty journal otherwise. A
     * journal written by a different campaign (fingerprint mismatch)
     * is a Validation error. Torn or corrupt trailing records are
     * dropped, not errors — see droppedRecords().
     */
    std::optional<LoadError> load(bool must_exist);

    /** Record a transition and persist atomically (tmp + rename). */
    void append(const CampaignEvent &ev);

    /** What the journal knows about one job, replayed in order. */
    struct Ledger
    {
        /** Launches recorded (across all supervisor invocations). */
        uint32_t attempts = 0;
        /** Completed (ok/degraded) and not since invalidated. */
        bool completed = false;
        /** Final status when completed: "ok" or "degraded". */
        std::string finalStatus;
    };

    /** Replay the event stream into per-job ledgers. */
    std::map<uint32_t, Ledger> ledgers() const;

    const std::string &path() const { return filePath; }
    /** Copy of the loaded + appended events, in order. */
    std::vector<CampaignEvent> events() const;
    /** Invalid tail records dropped by load(). */
    size_t droppedRecords() const { return dropped; }
    /** Appends that failed to persist (disk full, permissions). */
    size_t failedWrites() const { return writeFailures; }

  private:
    bool rewriteLocked();

    std::string filePath;
    std::string fingerprint;
    std::vector<CampaignEvent> records;
    size_t dropped = 0;
    size_t writeFailures = 0;
    mutable std::mutex mu;
};

/**
 * One event as a single text line (no newline, no CRC trailer). Job
 * ids are matrix-derived (`<prog>-<input>-tN-<uarch>`) and event
 * names come from a fixed vocabulary, so neither can contain the
 * spaces the line format splits on.
 */
inline std::string
encodeCampaignEvent(const CampaignEvent &ev)
{
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "job idx=%" PRIu32 " id=%s event=%s attempt=%" PRIu32
                  " code=%" PRId32 " sig=%" PRId32,
                  ev.index, ev.id.c_str(), ev.event.c_str(), ev.attempt,
                  ev.code, ev.sig);
    return buf;
}

/**
 * Parse a line written by encodeCampaignEvent. Returns nullopt unless
 * re-encoding the parsed event reproduces `payload` byte for byte.
 */
inline std::optional<CampaignEvent>
parseCampaignEvent(const std::string &payload)
{
    CampaignEvent ev;
    char id[256] = {};
    char event[64] = {};
    int n = std::sscanf(payload.c_str(),
                        "job idx=%" SCNu32 " id=%255s event=%63s"
                        " attempt=%" SCNu32 " code=%" SCNd32
                        " sig=%" SCNd32,
                        &ev.index, id, event, &ev.attempt, &ev.code,
                        &ev.sig);
    if (n != 6)
        return std::nullopt;
    ev.id = id;
    ev.event = event;
    if (encodeCampaignEvent(ev) != payload)
        return std::nullopt;
    return ev;
}

} // namespace looppoint

#endif // LOOPPOINT_CAMPAIGN_CAMPAIGN_JOURNAL_HH
