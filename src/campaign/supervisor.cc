#include "campaign/supervisor.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <sys/statvfs.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/json.hh"
#include "obs/metrics.hh"
#include "store/artifact_store.hh"
#include "util/interrupt.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace looppoint {

namespace {

using clock_type = std::chrono::steady_clock;

double
secondsSince(clock_type::time_point t0)
{
    return std::chrono::duration<double>(clock_type::now() - t0)
        .count();
}

/** Daemon rescan request (SIGHUP). */
std::atomic<bool> rescanRequested{false};

void
onHup(int)
{
    rescanRequested.store(true, std::memory_order_relaxed);
}

void
installHupHandler()
{
    struct sigaction sa = {};
    sa.sa_handler = onHup;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    sigaction(SIGHUP, &sa, nullptr);
}

uint64_t
defaultFreeDisk(const std::string &path)
{
    struct statvfs vfs{};
    if (statvfs(path.c_str(), &vfs) != 0) {
        // An unprobeable path must never park the queue: report
        // "plenty" and let real I/O errors surface in the jobs.
        return UINT64_MAX;
    }
    return static_cast<uint64_t>(vfs.f_bavail) *
           static_cast<uint64_t>(vfs.f_frsize);
}

/** Chunked sleep that returns early once shutdown is requested. */
void
defaultSleep(double seconds)
{
    auto t0 = clock_type::now();
    while (secondsSince(t0) < seconds && !shutdownRequested()) {
        struct timespec ts{0, 50'000'000};
        nanosleep(&ts, nullptr);
    }
}

void
shortNap()
{
    struct timespec ts{0, 20'000'000};
    nanosleep(&ts, nullptr);
}

/**
 * The forked child's whole life. Never returns; exits with the
 * run_looppoint code contract so classifyWaitStatus() can read it.
 */
[[noreturn]] void
childEntry(CampaignJob job, const std::string &job_dir,
           const CampaignSpec &spec,
           std::optional<FaultSpec::Kind> fault)
{
#ifdef PR_SET_PDEATHSIG
    // A SIGKILLed supervisor must not leave orphan simulations
    // burning CPU behind it.
    prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
    // Fresh signal state: the child answers the supervisor's SIGTERM
    // by parking at the next region boundary and exiting 4.
    clearShutdownRequest();
    installInterruptHandlers();

    if (fault == FaultSpec::Kind::Crash) {
        // Simulated hard crash (SIGSEGV-equivalent, but deterministic).
        raise(SIGKILL);
        _exit(3);
    }
    if (fault == FaultSpec::Kind::Wedge) {
        // A stuck job that ignores polite requests: the watchdog must
        // escalate SIGTERM -> SIGKILL to clear it.
        std::signal(SIGTERM, SIG_IGN);
        std::signal(SIGINT, SIG_IGN);
        for (;;)
            pause();
    }
    if (fault == FaultSpec::Kind::CorruptResult) {
        // The nastiest failure: "success" with a garbage result and a
        // .done marker. Exercises the result-validation guard.
        {
            std::ofstream r(job_dir + "/result.json");
            r << "{\"kind\": \"lp_campaign_job\", \"trunc";
        }
        {
            std::ofstream d(job_dir + "/.done");
            d << "ok\n";
        }
        _exit(0);
    }

    int rc = 3;
    try {
        rc = runCampaignJob(job, job_dir, spec);
    } catch (const InjectedKill &e) {
        logError("job %s: %s", job.id.c_str(), e.what());
        rc = 3;
    } catch (const FatalError &e) {
        logError("job %s: %s", job.id.c_str(), e.what());
        rc = 3;
    } catch (const std::exception &e) {
        logError("job %s: %s", job.id.c_str(), e.what());
        rc = 3;
    }
    // _exit, not exit: the child shares the parent's stdio buffers
    // (flushed before fork) and must not run parent-owned atexit
    // handlers or static destructors.
    _exit(rc);
}

} // namespace

CampaignSupervisor::CampaignSupervisor(CampaignSpec spec_,
                                       SupervisorOptions opts_)
    : spec(std::move(spec_)), opts(std::move(opts_))
{
    if (!opts.freeDiskProbe)
        opts.freeDiskProbe = defaultFreeDisk;
    if (!opts.sleeper)
        opts.sleeper = defaultSleep;
}

CampaignSupervisor::ChildOutcome
CampaignSupervisor::launchAttempt(CampaignJob &job,
                                  const std::string &job_dir,
                                  uint32_t attempt)
{
    ChildOutcome out;
    auto fault = opts.faults.jobFault(job.index, attempt);

    // The child inherits stdio buffers: anything pending would be
    // flushed twice (once per process) if left unflushed here.
    std::fflush(stdout);
    std::fflush(stderr);
    auto t0 = clock_type::now();
    pid_t pid = fork();
    if (pid < 0) {
        logError("campaign: fork for job %s: %s", job.id.c_str(),
                 std::strerror(errno));
        out.cls = FailureClass::Transient;
        return out;
    }
    if (pid == 0)
        childEntry(job, job_dir, spec, fault); // never returns

    const double grace = std::max(0.0, opts.killGraceSeconds);
    bool sent_term = false, sent_kill = false;
    double term_at = 0.0;
    int status = 0;
    for (;;) {
        pid_t r = waitpid(pid, &status, WNOHANG);
        if (r == pid)
            break;
        if (r < 0 && errno != EINTR) {
            logError("campaign: waitpid for job %s: %s",
                     job.id.c_str(), std::strerror(errno));
            status = 0;
            break;
        }
        const double elapsed = secondsSince(t0);
        if (!sent_kill && shutdownSignalCount() >= 2) {
            // Second shutdown request: stop draining, kill the child
            // now. The journal records the kill before we exit.
            kill(pid, SIGKILL);
            sent_kill = true;
            out.killedByShutdown = true;
        } else if (!sent_term && opts.jobTimeoutSeconds > 0.0 &&
                   elapsed > opts.jobTimeoutSeconds) {
            // Watchdog: ask nicely first. A healthy job parks at the
            // next region boundary and exits 4 (resumable).
            kill(pid, SIGTERM);
            sent_term = true;
            term_at = elapsed;
            out.timedOut = true;
        } else if (sent_term && !sent_kill &&
                   elapsed > term_at + grace) {
            kill(pid, SIGKILL);
            sent_kill = true;
        }
        shortNap();
    }
    out.wallSeconds = secondsSince(t0);
    out.cls = classifyWaitStatus(status);
    out.code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    out.sig = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
    return out;
}

void
CampaignSupervisor::superviseJob(std::vector<CampaignJob> &jobs,
                                 CampaignJob &job,
                                 const std::string &job_dir,
                                 CampaignJournal &jnl)
{
    MetricsRegistry &reg = MetricsRegistry::global();
    const BackoffPolicy policy =
        opts.backoff.withSeed(hashCombine(spec.seed, job.index));
    const uint32_t max_attempts = 1 + opts.jobRetries;

    for (uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
        if (shutdownRequested()) {
            result.interrupted = true;
            return;
        }
        job.status = "running";
        job.attempts = attempt + 1;
        ++result.launches;
        reg.counter("campaign.launches").add();
        if (attempt > 0) {
            ++result.retries;
            reg.counter("campaign.retries").add();
        }
        std::printf("[run ] %-44s attempt %u/%u\n", job.id.c_str(),
                    attempt + 1, max_attempts);
        jnl.append({job.index, job.id, "launch", attempt, -1, 0});
        writeStatus(jobs, "running");

        ChildOutcome oc = launchAttempt(job, job_dir, attempt);
        job.wallSeconds += oc.wallSeconds;

        if (oc.timedOut) {
            ++result.timeouts;
            reg.counter("campaign.timeouts").add();
            jnl.append({job.index, job.id, "timeout", attempt, oc.code,
                        oc.sig});
            std::printf("[time] %-44s watchdog fired after %.1f s\n",
                        job.id.c_str(), opts.jobTimeoutSeconds);
        }
        if (oc.killedByShutdown) {
            jnl.append({job.index, job.id, "killed", attempt, -1,
                        SIGKILL});
            job.status = "pending";
            result.interrupted = true;
            return;
        }

        bool retry = false;
        switch (oc.cls) {
          case FailureClass::Success:
          case FailureClass::Degraded:
            if (!validJobResult(job_dir)) {
                // Exit 0/1 with a missing or garbage result.json:
                // never trust it. Scrub and retry.
                ++result.staleResults;
                reg.counter("campaign.stale_results").add();
                jnl.append({job.index, job.id, "stale", attempt,
                            oc.code, oc.sig});
                unlink((job_dir + "/.done").c_str());
                unlink((job_dir + "/result.json").c_str());
                logError("job %s: exit %d but result.json is missing "
                         "or corrupt; retrying", job.id.c_str(),
                         oc.code);
                retry = true;
                break;
            }
            job.status =
                oc.cls == FailureClass::Success ? "ok" : "degraded";
            jnl.append({job.index, job.id, job.status, attempt,
                        oc.code, 0});
            std::printf("[%s] %-44s %.3f s\n",
                        oc.cls == FailureClass::Success ? " ok "
                                                        : "DEGR",
                        job.id.c_str(), oc.wallSeconds);
            writeStatus(jobs, "running");
            return;
          case FailureClass::Permanent:
            job.status = "failed";
            jnl.append({job.index, job.id, "fail-permanent", attempt,
                        oc.code, oc.sig});
            logError("job %s: permanent failure (exit %d); not "
                     "retrying", job.id.c_str(), oc.code);
            writeStatus(jobs, "running");
            return;
          case FailureClass::Interrupted:
            // Parked at a region boundary (usually our own watchdog's
            // SIGTERM). The per-job journal holds its progress, so the
            // retry resumes rather than restarts.
            jnl.append({job.index, job.id, "interrupted", attempt,
                        oc.code, oc.sig});
            if (shutdownRequested()) {
                job.status = "pending";
                result.interrupted = true;
                return;
            }
            retry = true;
            break;
          case FailureClass::Transient:
            jnl.append({job.index, job.id, "fail-transient", attempt,
                        oc.code, oc.sig});
            std::printf("[fail] %-44s transient (%s %d)\n",
                        job.id.c_str(), oc.sig ? "signal" : "exit",
                        oc.sig ? oc.sig : oc.code);
            retry = true;
            break;
        }
        if (!retry)
            return;
        if (attempt + 1 >= max_attempts)
            break;

        const double delay = policy.delaySeconds(attempt);
        job.status = "backoff";
        job.backoffSeconds = delay;
        writeStatus(jobs, "running");
        std::printf("[wait] %-44s backoff %.3f s before attempt "
                    "%u/%u\n", job.id.c_str(), delay, attempt + 2,
                    max_attempts);
        std::fflush(stdout);
        opts.sleeper(delay);
        job.backoffSeconds = 0.0;
        if (shutdownRequested()) {
            job.status = "pending";
            result.interrupted = true;
            return;
        }
    }

    job.status = "failed";
    logError("job %s: failed after %u attempt(s)", job.id.c_str(),
             max_attempts);
    writeStatus(jobs, "running");
}

bool
CampaignSupervisor::diskPressureOk(CampaignJob &job)
{
    if (opts.gcWatermarkBytes == 0 && opts.gcFloorBytes == 0)
        return true;
    uint64_t free_bytes = opts.freeDiskProbe(spec.storeDir);
    if (opts.gcWatermarkBytes != 0 &&
        free_bytes < opts.gcWatermarkBytes) {
        inform("campaign: %llu free bytes under store below watermark "
               "%llu; running store gc",
               static_cast<unsigned long long>(free_bytes),
               static_cast<unsigned long long>(opts.gcWatermarkBytes));
        ArtifactStore store(spec.storeDir);
        auto gc = store.gc(opts.gcTargetBytes);
        ++result.gcRuns;
        MetricsRegistry::global().counter("campaign.gc_runs").add();
        inform("campaign: gc removed %llu object(s) / %llu byte(s), "
               "kept %llu object(s)",
               static_cast<unsigned long long>(gc.removedObjects),
               static_cast<unsigned long long>(gc.removedBytes),
               static_cast<unsigned long long>(gc.keptObjects));
        free_bytes = opts.freeDiskProbe(spec.storeDir);
    }
    if (opts.gcFloorBytes != 0 && free_bytes < opts.gcFloorBytes) {
        logError("campaign: %llu free bytes under store below hard "
                 "floor %llu even after gc; parking job %s and the "
                 "rest of the queue",
                 static_cast<unsigned long long>(free_bytes),
                 static_cast<unsigned long long>(opts.gcFloorBytes),
                 job.id.c_str());
        return false;
    }
    return true;
}

void
CampaignSupervisor::runPass(std::vector<CampaignJob> &jobs,
                            CampaignJournal &jnl)
{
    auto ledgers = jnl.ledgers();
    bool announced_drain = false;
    for (auto &job : jobs) {
        if (shutdownRequested()) {
            if (!announced_drain) {
                inform("campaign: shutdown requested; draining (no "
                       "new launches)");
                announced_drain = true;
            }
            result.interrupted = true;
            break;
        }
        const std::string job_dir = spec.outDir + "/" + job.id;
        makeCampaignDir(job_dir);

        // Exactly-once adoption: the campaign journal says this job
        // completed — but only trust it while the result on disk
        // still parses. A completed-then-corrupted job reruns.
        auto led = ledgers.find(job.index);
        if (led != ledgers.end() && led->second.completed) {
            if (validJobResult(job_dir)) {
                job.status = led->second.finalStatus;
                job.attempts = led->second.attempts;
                ++result.adopted;
                std::printf("[skip] %-44s complete per journal (%s)\n",
                            job.id.c_str(), job.status.c_str());
                continue;
            }
            ++result.staleResults;
            MetricsRegistry::global()
                .counter("campaign.stale_results")
                .add();
            jnl.append({job.index, job.id, "stale",
                        led->second.attempts, -1, 0});
            warn("job %s: journal says complete but result.json is "
                 "missing or corrupt; rerunning", job.id.c_str());
            unlink((job_dir + "/.done").c_str());
            unlink((job_dir + "/result.json").c_str());
        }

        // Marker-based skip (a job finished by an earlier campaign
        // instance that shares the directory but not this journal).
        // The marker alone proves nothing: verify the result parses.
        struct stat st;
        if (stat((job_dir + "/.done").c_str(), &st) == 0) {
            if (validJobResult(job_dir)) {
                job.status = "done";
                std::printf("[skip] %-44s already done\n",
                            job.id.c_str());
                continue;
            }
            ++result.staleResults;
            MetricsRegistry::global()
                .counter("campaign.stale_results")
                .add();
            warn("job %s: stale .done marker without a valid "
                 "result.json; rerunning", job.id.c_str());
            unlink((job_dir + "/.done").c_str());
            unlink((job_dir + "/result.json").c_str());
        }

        // Skip-running: the lock dies with its holder, so a crashed
        // job never wedges the campaign.
        int lock_fd = open((job_dir + "/.lock").c_str(),
                           O_CREAT | O_RDWR | O_CLOEXEC, 0666);
        if (lock_fd < 0)
            fatal("cannot open '%s/.lock': %s", job_dir.c_str(),
                  std::strerror(errno));
        if (flock(lock_fd, LOCK_EX | LOCK_NB) != 0) {
            close(lock_fd);
            job.status = "running";
            std::printf("[skip] %-44s running elsewhere\n",
                        job.id.c_str());
            continue;
        }

        // Resource-pressure degradation: GC below the watermark,
        // park below the floor.
        if (!diskPressureOk(job)) {
            job.status = "parked";
            result.parked = true;
            flock(lock_fd, LOCK_UN);
            close(lock_fd);
            writeStatus(jobs, "parked");
            break;
        }

        superviseJob(jobs, job, job_dir, jnl);

        flock(lock_fd, LOCK_UN);
        close(lock_fd);
        if (result.interrupted)
            break;
    }
}

void
CampaignSupervisor::writeStatus(const std::vector<CampaignJob> &jobs,
                                const std::string &state)
{
    size_t done = 0, failed = 0, pending = 0;
    for (const auto &j : jobs) {
        if (j.status == "ok" || j.status == "degraded" ||
            j.status == "done")
            ++done;
        else if (j.status == "failed")
            ++failed;
        else if (j.status == "pending")
            ++pending;
    }
    std::ostringstream os;
    os << "{\n"
       << "  \"kind\": \"lp_campaign_status\",\n"
       << "  \"pid\": " << static_cast<long>(getpid()) << ",\n"
       << "  \"state\": " << jsonQuote(state) << ",\n"
       << "  \"pass\": " << result.passes << ",\n"
       << "  \"jobsTotal\": " << jobs.size() << ",\n"
       << "  \"jobsDone\": " << done << ",\n"
       << "  \"jobsFailed\": " << failed << ",\n"
       << "  \"jobsPending\": " << pending << ",\n"
       << "  \"launches\": " << result.launches << ",\n"
       << "  \"retries\": " << result.retries << ",\n"
       << "  \"timeouts\": " << result.timeouts << ",\n"
       << "  \"gcRuns\": " << result.gcRuns << ",\n"
       << "  \"adopted\": " << result.adopted << ",\n"
       << "  \"staleResults\": " << result.staleResults << ",\n"
       << "  \"freeDiskBytes\": "
       << opts.freeDiskProbe(spec.storeDir) << ",\n"
       << "  \"jobs\": [\n";
    for (size_t i = 0; i < jobs.size(); ++i) {
        const CampaignJob &j = jobs[i];
        char backoff[64], wall[64];
        std::snprintf(backoff, sizeof(backoff), "%.3f",
                      j.backoffSeconds);
        std::snprintf(wall, sizeof(wall), "%.3f", j.wallSeconds);
        os << "    {\"job\": " << jsonQuote(j.id) << ", \"status\": "
           << jsonQuote(j.status) << ", \"attempts\": " << j.attempts
           << ", \"backoffSeconds\": " << backoff
           << ", \"wallSeconds\": " << wall << "}"
           << (i + 1 < jobs.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";

    // Best effort: a live surface is never worth failing the
    // campaign for.
    const std::string tmp = statusPath + ".tmp";
    {
        std::ofstream f(tmp);
        if (!f)
            return;
        f << os.str();
        f.flush();
        if (!f)
            return;
    }
    if (std::rename(tmp.c_str(), statusPath.c_str()) != 0)
        unlink(tmp.c_str());
}

SupervisorResult
CampaignSupervisor::run()
{
    makeCampaignDir(spec.outDir);
    statusPath = opts.statusPath.empty()
                     ? spec.outDir + "/status.json"
                     : opts.statusPath;
    // A shutdown request left over from an earlier campaign in this
    // process (tests run several) must not drain this one.
    clearShutdownRequest();
    installInterruptHandlers();
    if (opts.daemonMode)
        installHupHandler();

    CampaignJournal jnl(spec.outDir + "/campaign.journal",
                        campaignFingerprint(spec));
    if (auto err = jnl.load(/*must_exist=*/false))
        fatal("campaign journal '%s': %s", jnl.path().c_str(),
              err->describe().c_str());
    if (jnl.droppedRecords())
        warn("campaign journal: dropped %zu torn trailing record(s)",
             jnl.droppedRecords());

    std::vector<CampaignJob> jobs;
    for (;;) {
        ++result.passes;
        result.parked = false;
        jobs = expandCampaignMatrix(spec);
        writeStatus(jobs, "running");
        runPass(jobs, jnl);

        result.exitCode = 0;
        for (const auto &j : jobs)
            if (j.status == "degraded" || j.status == "failed" ||
                j.status == "parked")
                result.exitCode = 1;

        writeCampaignJson(spec.outDir + "/campaign.json", spec, jobs);
        const char *state = result.interrupted ? "interrupted"
                            : result.parked    ? "parked"
                            : opts.daemonMode  ? "idle"
                                               : "done";
        writeStatus(jobs, state);
        if (!opts.daemonMode || result.interrupted)
            break;
        if (!idleWait(jobs)) {
            result.interrupted = true;
            writeStatus(jobs, "interrupted");
            break;
        }
    }

    result.jobs = jobs;
    if (result.interrupted)
        result.exitCode = 4;
    return result;
}

bool
CampaignSupervisor::idleWait(const std::vector<CampaignJob> &jobs)
{
    auto t0 = clock_type::now();
    auto last_beat = t0;
    for (;;) {
        if (shutdownRequested())
            return false;
        if (rescanRequested.exchange(false,
                                     std::memory_order_relaxed)) {
            inform("campaign: SIGHUP received; rescanning matrix");
            return true;
        }
        if (opts.rescanSeconds > 0.0 &&
            secondsSince(t0) >= opts.rescanSeconds)
            return true;
        if (secondsSince(last_beat) >= 1.0) {
            // Periodic heartbeat so watchers can tell "idle daemon"
            // from "dead daemon".
            writeStatus(jobs, "idle");
            last_beat = clock_type::now();
        }
        shortNap();
    }
}

} // namespace looppoint
