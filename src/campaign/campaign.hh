/**
 * @file
 * Campaign model: the matrix spec, its expansion into jobs, and the
 * in-child job body. This is the portable core the supervisor forks
 * around — everything here is plain sequential code with no process
 * or signal machinery, so tests can drive a job body directly.
 *
 * A campaign expands (apps x inputs x threads x uarchs) into one job
 * per combination, in an order chosen for store reuse: all uarch
 * points of one (app, input, threads) triple are adjacent, so after
 * the first the analysis stages are store hits. Job indices are
 * positions in this expansion and are stable across restarts — they
 * key the campaign journal and the `job:index=N` fault site.
 *
 * Layout under CampaignSpec::outDir:
 *
 *   campaign.json            summary (written last, atomically)
 *   campaign.journal         supervisor state journal (crash-safe)
 *   status.json              live supervisor surface (atomic rewrite)
 *   store/                   the shared store (override: storeDir)
 *   <job>/result.json        one "lp_campaign_job" document per job
 *   <job>/journal            per-job region journal (resume-able)
 *   <job>/.done              completion marker (skip-done)
 *   <job>/.lock              flock target (skip-running)
 */

#ifndef LOOPPOINT_CAMPAIGN_CAMPAIGN_HH
#define LOOPPOINT_CAMPAIGN_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

namespace looppoint {

/** The sweep matrix plus the per-job execution knobs. */
struct CampaignSpec
{
    std::vector<std::string> apps{"demo-matrix-1"};
    std::vector<std::string> inputs{"test"};
    std::vector<uint32_t> threads{4};
    std::vector<std::string> uarchs{"baseline"};
    std::string outDir;
    std::string storeDir; ///< default: <outDir>/store
    uint32_t jobs = 1;    ///< host workers per job
    std::string backend = "pool";
    std::string waitPolicy = "passive";
    uint64_t seed = 42;
    bool fullSim = true;
    /** Run the post-job artifact audit and record its findings. */
    bool audit = false;
};

/** One expanded sweep point. */
struct CampaignJob
{
    /** Position in matrix order: stable across restarts; keys the
     * campaign journal and the `job:index=N` fault site. */
    uint32_t index = 0;
    std::string id;      ///< <prog>-<input>-t<T>-<uarch>
    std::string program; ///< artifact-style name
    std::string input;
    uint32_t threads = 0;
    std::string uarch;
    /** pending | done | running | ok | degraded | failed | parked
     * (set as the campaign runs). */
    std::string status = "pending";
    double wallSeconds = 0.0;
    /** Launches this campaign invocation made for the job. */
    uint32_t attempts = 0;
    /** Backoff the supervisor is currently waiting out (status.json
     * surface; 0 when not in backoff). */
    double backoffSeconds = 0.0;
};

/**
 * Validate every matrix axis and knob; fatal() on the first bad one —
 * a bad name anywhere is a usage error before any job runs.
 */
void validateCampaignSpec(const CampaignSpec &spec);

/** Expand the matrix in store-reuse order (see file comment). */
std::vector<CampaignJob> expandCampaignMatrix(const CampaignSpec &spec);

/**
 * Identity of the campaign for journal-reuse purposes: the matrix and
 * every result-affecting knob, canonically encoded. Host-side knobs
 * (jobs, retry budget, timeouts) are excluded so a restart with a
 * different supervision policy still adopts the journal.
 */
std::string campaignFingerprint(const CampaignSpec &spec);

/**
 * Does `<job_dir>/result.json` exist and parse as a complete
 * lp_campaign_job document? The skip-done path must call this before
 * trusting a `.done` marker: a crash (or an injected corrupt-result
 * fault) can leave a marker next to a missing or garbage result, and
 * skipping such a job would silently hole the campaign.
 */
bool validJobResult(const std::string &job_dir);

/**
 * The in-child job body: configure and run the experiment, write
 * `result.json` + `.done`. Returns the run_looppoint exit-code
 * contract (0 ok, 1 degraded, 3 runtime failure, 4 interrupted at a
 * region boundary). A per-job region journal at `<job_dir>/journal`
 * is always recorded and auto-resumed when present, so a killed job's
 * next attempt continues bit-identically instead of starting over.
 */
int runCampaignJob(CampaignJob &job, const std::string &job_dir,
                   const CampaignSpec &spec);

/** Atomically (tmp + rename) write the campaign summary document. */
void writeCampaignJson(const std::string &path, const CampaignSpec &spec,
                       const std::vector<CampaignJob> &jobs);

/** mkdir -p one level; fatal() on failure other than EEXIST. */
void makeCampaignDir(const std::string &path);

} // namespace looppoint

#endif // LOOPPOINT_CAMPAIGN_CAMPAIGN_HH
