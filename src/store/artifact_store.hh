/**
 * @file
 * Content-addressed artifact store: the on-disk substrate of pipeline
 * stage memoization (paper Section II economics — record, profile and
 * cluster once, share the artifacts, re-run only detailed simulation).
 *
 * Layout under the store directory:
 *
 *   .lock                 flock target serializing mutations
 *   manifest              stage key -> content hash binding (text)
 *   objects/<sha1>        one artifact per content hash, framed with
 *                         the pinball_io magic/version/length/CRC32
 *                         envelope so every load is integrity-checked
 *
 * The manifest is line-oriented and human-readable, with the
 * journal's ` crc=XXXXXXXX` trailer per line:
 *
 *   looppoint-store-v1 crc=...
 *   entry stage=<stage> key=<key-text> hash=<sha1> bytes=<n> crc=...
 *
 * Concurrency contract: every mutation (publish, gc) and every lookup
 * holds an exclusive flock on `.lock` and reloads the manifest first,
 * so pool/procs workers, parallel campaigns, and concurrent processes
 * share one store without torn state. Publication is atomic (tmp +
 * rename) for both objects and the manifest; a crash mid-publish
 * leaves at worst an orphaned object that the next gc collects.
 *
 * A corrupt object (truncated, bit-flipped, wrong length) is treated
 * as data, not a fatal error: the lookup counts it, unlinks it, drops
 * its manifest entries, and reports a miss — the caller transparently
 * recomputes and republishes.
 */

#ifndef LOOPPOINT_STORE_ARTIFACT_STORE_HH
#define LOOPPOINT_STORE_ARTIFACT_STORE_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace looppoint {

/** Monotonic per-instance operation counters (always on, unlike the
 * obs registry, so smoke tests can assert on them without --metrics;
 * the registry mirrors these under `store.*` when metrics are armed). */
struct StoreStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t publishes = 0;
    /** Objects that failed their integrity check and were evicted. */
    uint64_t corruptEntries = 0;
    /** Publishes abandoned because the object could not be written
     * (ENOSPC, short write, failed rename). The tmp file is removed,
     * no manifest binding is made, and the run continues — the next
     * run recomputes and retries. */
    uint64_t failedPublishes = 0;
    /** Bytes written for new objects (framed size). */
    uint64_t bytesStored = 0;
    /** Payload bytes a publish did NOT write because the content hash
     * already existed — the measure of cross-key deduplication. */
    uint64_t bytesDeduped = 0;
    /** Payload bytes served by hits. */
    uint64_t bytesRead = 0;
};

/** See file comment. */
class ArtifactStore
{
  public:
    /** Opens (creating if needed) the store at `dir`. */
    explicit ArtifactStore(std::string dir);
    ~ArtifactStore();

    ArtifactStore(const ArtifactStore &) = delete;
    ArtifactStore &operator=(const ArtifactStore &) = delete;

    /** A successful lookup: the artifact payload and its content
     * hash (the hash downstream stage keys chain on). */
    struct Hit
    {
        std::string payload;
        std::string hash;
    };

    /**
     * Fetch the artifact bound to (stage, key), verifying the framing
     * CRC32 and the content hash on the way in. Returns nullopt on a
     * miss; corrupt entries are evicted and reported as misses (see
     * file comment). A hit touches the object's mtime — the LRU clock
     * gc() evicts by.
     */
    std::optional<Hit> lookup(const std::string &stage,
                              const std::string &key);

    /**
     * Store `payload` under its content hash and bind (stage, key) to
     * it in the manifest. Re-publishing identical content is free
     * (counted as deduplication). Returns the content hash.
     *
     * A write failure (ENOSPC, short write, failed rename) does not
     * abort: it is logged, counted in failedPublishes, the tmp file
     * is removed, and the hash is returned without a manifest binding
     * — so downstream keys still chain correctly while the next run
     * recomputes and retries the publish.
     */
    std::string publish(const std::string &stage, const std::string &key,
                        const std::string &payload);

    /** The manifest hash for (stage, key) without loading the object. */
    std::optional<std::string> hashFor(const std::string &stage,
                                       const std::string &key);

    /** One manifest binding, for `lp_store ls` and reports. */
    struct Entry
    {
        std::string stage;
        std::string key;
        std::string hash;
        uint64_t bytes = 0;
    };

    /** Snapshot of the manifest (reloaded from disk). */
    std::vector<Entry> entries();

    struct GcResult
    {
        uint64_t removedObjects = 0;
        uint64_t removedBytes = 0;
        uint64_t keptObjects = 0;
        uint64_t keptBytes = 0;
        /** Manifest bindings dropped because their object was
         * evicted (or already missing). */
        uint64_t droppedEntries = 0;
    };

    /**
     * Shrink the store to at most `max_bytes` of objects by evicting
     * least-recently-used (oldest mtime) objects first, dropping their
     * manifest bindings. Orphaned objects (no binding) are preferred
     * eviction victims at equal age. With `dry_run`, only reports.
     */
    GcResult gc(uint64_t max_bytes, bool dry_run = false);

    /**
     * Integrity-check every object against its framing and manifest
     * hash. Returns the number of corrupt or missing objects (their
     * bindings are left in place; a later lookup evicts them).
     */
    size_t verify();

    StoreStats stats() const;
    const std::string &dir() const { return rootDir; }

  private:
    struct LockGuard;

    std::string manifestPath() const;
    std::string objectPath(const std::string &hash) const;

    /** Re-read the manifest from disk. Caller holds the flock. */
    void reloadManifestLocked();
    /** Atomically rewrite the manifest. Caller holds the flock. */
    bool rewriteManifestLocked();

    void countHit(const std::string &stage, uint64_t payload_bytes);
    void countMiss(const std::string &stage);

    std::string rootDir;
    int lockFd = -1;
    /** In-process serialization; the flock serializes processes. */
    std::mutex mu;
    /** (stage, key) -> entry, rebuilt from disk under the lock. */
    std::map<std::pair<std::string, std::string>, Entry> manifest;

    std::atomic<uint64_t> nHits{0}, nMisses{0}, nPublishes{0},
        nCorrupt{0}, nFailedPublishes{0}, nBytesStored{0},
        nBytesDeduped{0}, nBytesRead{0};
};

} // namespace looppoint

#endif // LOOPPOINT_STORE_ARTIFACT_STORE_HH
