/**
 * @file
 * Stage memoization over the content-addressed artifact store: one
 * canonical key per pipeline stage plus the typed codecs that move
 * each stage's artifact in and out of the store.
 *
 * Key discipline (mirrors the run journal's): a stage key is built
 * from (stage code version, workload descriptor, upstream artifact
 * *content hashes*, and only the config fields that stage actually
 * consumes). Chaining on upstream hashes makes invalidation
 * transitive — a new recording re-keys profiling, clustering, and
 * simulation automatically — while the field partition keeps it
 * minimal: changing a cache size re-keys only the simulation stages,
 * and host-side knobs (jobs, backend, obs, retries, ...) appear in no
 * key at all.
 *
 *   record   f(program, threads, wait policy, seed, flow quantum)
 *   profile  f(record hash, slice size, spin filter, flow quantum)
 *   cluster  f(profile hash, maxK, projection dims, BIC threshold,
 *              seed)
 *   sim      f(cluster hash, uarch partition, constrained)
 *   fullsim  f(program, threads, wait policy, seed, uarch partition)
 */

#ifndef LOOPPOINT_STORE_STAGE_CACHE_HH
#define LOOPPOINT_STORE_STAGE_CACHE_HH

#include <optional>
#include <string>
#include <vector>

#include "core/looppoint.hh"
#include "core/run_journal.hh"
#include "pinball/pinball.hh"
#include "profile/bbv.hh"
#include "sim/config.hh"
#include "store/artifact_store.hh"

namespace looppoint {

/** See file comment. */
class StageCache
{
  public:
    explicit StageCache(ArtifactStore &store_) : backing(&store_) {}

    // ---- canonical stage keys (pure functions of config) ----
    static std::string recordKey(const std::string &program_name,
                                 const LoopPointOptions &opts);
    static std::string profileKey(const std::string &record_hash,
                                  const LoopPointOptions &opts);
    static std::string clusterKey(const std::string &profile_hash,
                                  const LoopPointOptions &opts);
    static std::string simKey(const std::string &cluster_hash,
                              const SimConfig &sim_cfg,
                              bool constrained);
    static std::string fullSimKey(const std::string &program_name,
                                  uint32_t threads,
                                  WaitPolicy wait_policy, uint64_t seed,
                                  const SimConfig &sim_cfg);

    // ---- recording ----
    struct PinballHit
    {
        Pinball pinball;
        std::string hash;
    };
    std::optional<PinballHit> loadPinball(const std::string &key);
    std::string publishPinball(const std::string &key,
                               const Pinball &pinball);

    // ---- profiling (slices) ----
    struct SlicesHit
    {
        std::vector<SliceRecord> slices;
        std::string hash;
    };
    std::optional<SlicesHit> loadSlices(const std::string &key);
    std::string publishSlices(const std::string &key,
                              const std::vector<SliceRecord> &slices);

    // ---- clustering / representative selection ----
    struct ClusterArtifact
    {
        std::vector<uint32_t> assignment;
        uint32_t chosenK = 0;
        std::vector<double> bicByK;
        std::vector<LoopPointRegion> regions;
    };
    struct ClusterHit
    {
        ClusterArtifact art;
        std::string hash;
    };
    std::optional<ClusterHit> loadCluster(const std::string &key);
    std::string publishCluster(const std::string &key,
                               const ClusterArtifact &art);

    // ---- per-region simulation results ----
    /**
     * Load the cached region metrics for `key` and validate them
     * against the regions the current analysis selected (index,
     * markers, multiplier — the journal's identity check). A mismatch
     * is a miss, never an error: the caller recomputes and the new
     * publish rebinds the key.
     */
    std::optional<std::vector<RunJournal::Record>> loadSimResults(
        const std::string &key,
        const std::vector<LoopPointRegion> &regions);
    void publishSimResults(const std::string &key,
                           const std::vector<RunJournal::Record> &recs);

    // ---- whole-program ground-truth simulation ----
    std::optional<SimMetrics> loadFullSim(const std::string &key);
    void publishFullSim(const std::string &key, const SimMetrics &m);

    ArtifactStore &store() { return *backing; }

  private:
    ArtifactStore *backing;
};

} // namespace looppoint

#endif // LOOPPOINT_STORE_STAGE_CACHE_HH
