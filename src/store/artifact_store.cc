#include "store/artifact_store.hh"

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "pinball/pinball_io.hh"
#include "util/checksum.hh"
#include "util/logging.hh"
#include "util/sha1.hh"

namespace looppoint {

namespace {

constexpr const char *kManifestMagic = "looppoint-store-v1";
constexpr const char *kObjectMagicBase = "looppoint-object-v";
constexpr int kObjectVersion = 2;

void
makeDir(const std::string &path)
{
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST)
        fatal("artifact store: cannot create directory '%s': %s",
              path.c_str(), std::strerror(errno));
}

/** `entry stage=<s> key=<k> hash=<h> bytes=<n>` (all space-free). */
std::optional<ArtifactStore::Entry>
parseManifestEntry(const std::string &payload)
{
    std::istringstream is(payload);
    std::string tag, stage, key, hash, bytes;
    if (!(is >> tag >> stage >> key >> hash >> bytes))
        return std::nullopt;
    std::string extra;
    if (is >> extra)
        return std::nullopt;
    auto strip = [](std::string &s, const char *prefix) {
        const size_t n = std::strlen(prefix);
        if (s.rfind(prefix, 0) != 0)
            return false;
        s.erase(0, n);
        return true;
    };
    if (tag != "entry" || !strip(stage, "stage=") ||
        !strip(key, "key=") || !strip(hash, "hash=") ||
        !strip(bytes, "bytes="))
        return std::nullopt;
    ArtifactStore::Entry e;
    e.stage = std::move(stage);
    e.key = std::move(key);
    e.hash = std::move(hash);
    if (std::sscanf(bytes.c_str(), "%" SCNu64, &e.bytes) != 1)
        return std::nullopt;
    if (e.hash.size() != 40)
        return std::nullopt;
    return e;
}

std::string
encodeManifestEntry(const ArtifactStore::Entry &e)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), " bytes=%" PRIu64, e.bytes);
    return "entry stage=" + e.stage + " key=" + e.key +
           " hash=" + e.hash + buf;
}

} // namespace

/** Exclusive advisory lock over the whole store for one operation. */
struct ArtifactStore::LockGuard
{
    explicit LockGuard(ArtifactStore &store) : s(store), guard(store.mu)
    {
        if (s.lockFd >= 0 && ::flock(s.lockFd, LOCK_EX) != 0)
            logError("artifact store: flock('%s/.lock') failed: %s",
                     s.rootDir.c_str(), std::strerror(errno));
    }

    ~LockGuard()
    {
        if (s.lockFd >= 0)
            ::flock(s.lockFd, LOCK_UN);
    }

    ArtifactStore &s;
    std::lock_guard<std::mutex> guard;
};

ArtifactStore::ArtifactStore(std::string dir) : rootDir(std::move(dir))
{
    if (rootDir.empty())
        fatal("artifact store: empty directory path");
    makeDir(rootDir);
    makeDir(rootDir + "/objects");
    lockFd = ::open((rootDir + "/.lock").c_str(),
                    O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (lockFd < 0)
        fatal("artifact store: cannot open '%s/.lock': %s",
              rootDir.c_str(), std::strerror(errno));
}

ArtifactStore::~ArtifactStore()
{
    if (lockFd >= 0)
        ::close(lockFd);
}

std::string
ArtifactStore::manifestPath() const
{
    return rootDir + "/manifest";
}

std::string
ArtifactStore::objectPath(const std::string &hash) const
{
    return rootDir + "/objects/" + hash;
}

void
ArtifactStore::reloadManifestLocked()
{
    manifest.clear();
    std::ifstream is(manifestPath());
    if (!is)
        return; // fresh store
    std::string line;
    if (!std::getline(is, line))
        return;
    auto magic = checkCrcLine(line);
    if (!magic || *magic != kManifestMagic) {
        logError("artifact store: '%s' is not a store manifest; "
                 "ignoring it", manifestPath().c_str());
        return;
    }
    while (std::getline(is, line)) {
        auto payload = checkCrcLine(line);
        auto entry =
            payload ? parseManifestEntry(*payload)
                    : std::optional<Entry>();
        if (!entry) {
            // Torn tail (lost race with a power cut): later lines were
            // written later; keep the valid prefix, drop the rest.
            break;
        }
        auto key = std::make_pair(entry->stage, entry->key);
        manifest[std::move(key)] = std::move(*entry);
    }
}

bool
ArtifactStore::rewriteManifestLocked()
{
    const std::string tmp = manifestPath() + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            return false;
        os << withCrcLine(kManifestMagic) << '\n';
        for (const auto &[k, e] : manifest)
            os << withCrcLine(encodeManifestEntry(e)) << '\n';
        os.flush();
        if (!os)
            return false;
    }
    return std::rename(tmp.c_str(), manifestPath().c_str()) == 0;
}

void
ArtifactStore::countHit(const std::string &stage, uint64_t payload_bytes)
{
    nHits.fetch_add(1, std::memory_order_relaxed);
    nBytesRead.fetch_add(payload_bytes, std::memory_order_relaxed);
    MetricsRegistry &reg = MetricsRegistry::global();
    reg.counter("store.hits").add();
    reg.counter("store.hit." + stage).add();
    reg.counter("store.bytes_read").add(payload_bytes);
}

void
ArtifactStore::countMiss(const std::string &stage)
{
    nMisses.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry &reg = MetricsRegistry::global();
    reg.counter("store.misses").add();
    reg.counter("store.miss." + stage).add();
}

std::optional<ArtifactStore::Hit>
ArtifactStore::lookup(const std::string &stage, const std::string &key)
{
    ScopedSpan span(Tracer::global(), "store.lookup");
    span.arg("stage", stage);

    LockGuard lock(*this);
    reloadManifestLocked();
    auto it = manifest.find(std::make_pair(stage, key));
    if (it == manifest.end()) {
        countMiss(stage);
        span.arg("outcome", "miss");
        return std::nullopt;
    }
    const std::string hash = it->second.hash;
    const std::string path = objectPath(hash);

    auto evict = [&](const char *why) {
        // Corrupt object: count, evict every binding to it, unlink,
        // and report a miss so the caller recomputes + republishes.
        logError("artifact store: evicting corrupt object %s (%s)",
                 hash.c_str(), why);
        nCorrupt.fetch_add(1, std::memory_order_relaxed);
        MetricsRegistry::global().counter("store.corrupt").add();
        ::unlink(path.c_str());
        for (auto e = manifest.begin(); e != manifest.end();) {
            if (e->second.hash == hash)
                e = manifest.erase(e);
            else
                ++e;
        }
        rewriteManifestLocked();
        countMiss(stage);
        span.arg("outcome", "corrupt");
    };

    std::ifstream is(path, std::ios::binary);
    if (!is) {
        // Object vanished (e.g. a concurrent gc): plain miss.
        countMiss(stage);
        span.arg("outcome", "gone");
        return std::nullopt;
    }
    auto framed = readFramedArtifact(is, kObjectMagicBase,
                                     kObjectVersion);
    if (!framed.ok()) {
        evict(framed.error().describe().c_str());
        return std::nullopt;
    }
    std::string payload = std::move(framed.value().payload);
    if (sha1Hex(payload) != hash) {
        // The frame CRC passed but the content is not what the address
        // claims — a mis-filed or tampered object.
        evict("content hash mismatch");
        return std::nullopt;
    }

    // Touch the LRU clock: gc evicts oldest-mtime first.
    struct timespec times[2];
    times[0].tv_nsec = UTIME_NOW;
    times[0].tv_sec = 0;
    times[1].tv_nsec = UTIME_NOW;
    times[1].tv_sec = 0;
    ::utimensat(AT_FDCWD, path.c_str(), times, 0);

    countHit(stage, payload.size());
    span.arg("outcome", "hit")
        .arg("bytes", static_cast<uint64_t>(payload.size()));
    return Hit{std::move(payload), hash};
}

std::string
ArtifactStore::publish(const std::string &stage, const std::string &key,
                       const std::string &payload)
{
    ScopedSpan span(Tracer::global(), "store.publish");
    span.arg("stage", stage)
        .arg("bytes", static_cast<uint64_t>(payload.size()));

    const std::string hash = sha1Hex(payload);
    LockGuard lock(*this);
    reloadManifestLocked();

    const std::string path = objectPath(hash);
    struct stat st{};
    if (::stat(path.c_str(), &st) == 0) {
        nBytesDeduped.fetch_add(payload.size(),
                                std::memory_order_relaxed);
        MetricsRegistry::global()
            .counter("store.bytes_deduped")
            .add(payload.size());
    } else {
        // A failed publish is a cache miss, not a run failure: the
        // caller already holds the computed artifact, so an ENOSPC or
        // short write here must never abort the run. Clean up the tmp
        // file, count the failure, and return without binding the
        // manifest — the next run recomputes and tries again.
        char suffix[48];
        std::snprintf(suffix, sizeof(suffix), ".tmp.%ld",
                      static_cast<long>(::getpid()));
        const std::string tmp = path + suffix;
        uint64_t framed_bytes = 0;
        bool wrote = false;
        {
            std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
            if (!os) {
                logError("artifact store: cannot write '%s': %s "
                         "(publish skipped)",
                         tmp.c_str(), std::strerror(errno));
            } else {
                writeFramedArtifact(os, kObjectMagicBase,
                                    kObjectVersion, payload);
                os.flush();
                if (!os) {
                    logError("artifact store: short write to '%s' "
                             "(publish skipped)", tmp.c_str());
                } else {
                    framed_bytes = static_cast<uint64_t>(os.tellp());
                    wrote = true;
                }
            }
        }
        if (wrote && std::rename(tmp.c_str(), path.c_str()) != 0) {
            logError("artifact store: cannot publish '%s': %s "
                     "(publish skipped)",
                     path.c_str(), std::strerror(errno));
            wrote = false;
        }
        if (!wrote) {
            ::unlink(tmp.c_str());
            nFailedPublishes.fetch_add(1, std::memory_order_relaxed);
            MetricsRegistry::global()
                .counter("store.publish_failed")
                .add();
            span.arg("outcome", "publish-failed");
            return hash;
        }
        nBytesStored.fetch_add(framed_bytes,
                               std::memory_order_relaxed);
        MetricsRegistry::global()
            .counter("store.bytes_stored")
            .add(framed_bytes);
    }

    Entry e;
    e.stage = stage;
    e.key = key;
    e.hash = hash;
    e.bytes = payload.size();
    auto map_key = std::make_pair(stage, key);
    auto it = manifest.find(map_key);
    if (it == manifest.end() || it->second.hash != hash ||
        it->second.bytes != e.bytes) {
        manifest[std::move(map_key)] = std::move(e);
        if (!rewriteManifestLocked())
            logError("artifact store: cannot rewrite manifest '%s'",
                     manifestPath().c_str());
    }

    nPublishes.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::global().counter("store.publishes").add();
    return hash;
}

std::optional<std::string>
ArtifactStore::hashFor(const std::string &stage, const std::string &key)
{
    LockGuard lock(*this);
    reloadManifestLocked();
    auto it = manifest.find(std::make_pair(stage, key));
    if (it == manifest.end())
        return std::nullopt;
    return it->second.hash;
}

std::vector<ArtifactStore::Entry>
ArtifactStore::entries()
{
    LockGuard lock(*this);
    reloadManifestLocked();
    std::vector<Entry> out;
    out.reserve(manifest.size());
    for (const auto &[k, e] : manifest)
        out.push_back(e);
    return out;
}

ArtifactStore::GcResult
ArtifactStore::gc(uint64_t max_bytes, bool dry_run)
{
    LockGuard lock(*this);
    reloadManifestLocked();

    struct Object
    {
        std::string hash;
        uint64_t bytes = 0;
        time_t mtime = 0;
        bool referenced = false;
    };
    std::vector<Object> objects;
    const std::string obj_dir = rootDir + "/objects";
    if (DIR *d = ::opendir(obj_dir.c_str())) {
        while (struct dirent *ent = ::readdir(d)) {
            std::string name = ent->d_name;
            if (name == "." || name == "..")
                continue;
            if (name.find(".tmp.") != std::string::npos) {
                // Orphaned temp file from a crashed publish.
                ::unlink((obj_dir + "/" + name).c_str());
                continue;
            }
            struct stat st{};
            if (::stat((obj_dir + "/" + name).c_str(), &st) != 0)
                continue;
            Object o;
            o.hash = name;
            o.bytes = static_cast<uint64_t>(st.st_size);
            o.mtime = st.st_mtime;
            objects.push_back(std::move(o));
        }
        ::closedir(d);
    }
    for (auto &o : objects) {
        for (const auto &[k, e] : manifest) {
            if (e.hash == o.hash) {
                o.referenced = true;
                break;
            }
        }
    }

    // LRU: evict oldest first; unreferenced objects go before
    // referenced ones of the same age.
    std::sort(objects.begin(), objects.end(),
              [](const Object &a, const Object &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  if (a.referenced != b.referenced)
                      return !a.referenced;
                  return a.hash < b.hash;
              });

    uint64_t total = 0;
    for (const auto &o : objects)
        total += o.bytes;

    GcResult res;
    bool manifest_dirty = false;
    for (const auto &o : objects) {
        if (total <= max_bytes && o.referenced) {
            ++res.keptObjects;
            res.keptBytes += o.bytes;
            continue;
        }
        if (total > max_bytes || !o.referenced) {
            ++res.removedObjects;
            res.removedBytes += o.bytes;
            total -= o.bytes;
            if (!dry_run) {
                ::unlink((obj_dir + "/" + o.hash).c_str());
                for (auto e = manifest.begin(); e != manifest.end();) {
                    if (e->second.hash == o.hash) {
                        e = manifest.erase(e);
                        ++res.droppedEntries;
                        manifest_dirty = true;
                    } else {
                        ++e;
                    }
                }
            } else {
                for (const auto &[k, e] : manifest)
                    if (e.hash == o.hash)
                        ++res.droppedEntries;
            }
        } else {
            ++res.keptObjects;
            res.keptBytes += o.bytes;
        }
    }
    if (manifest_dirty)
        rewriteManifestLocked();
    return res;
}

size_t
ArtifactStore::verify()
{
    LockGuard lock(*this);
    reloadManifestLocked();
    size_t bad = 0;
    for (const auto &[k, e] : manifest) {
        std::ifstream is(objectPath(e.hash), std::ios::binary);
        if (!is) {
            ++bad;
            continue;
        }
        auto framed = readFramedArtifact(is, kObjectMagicBase,
                                         kObjectVersion);
        if (!framed.ok() || sha1Hex(framed.value().payload) != e.hash)
            ++bad;
    }
    return bad;
}

StoreStats
ArtifactStore::stats() const
{
    StoreStats s;
    s.hits = nHits.load(std::memory_order_relaxed);
    s.misses = nMisses.load(std::memory_order_relaxed);
    s.publishes = nPublishes.load(std::memory_order_relaxed);
    s.corruptEntries = nCorrupt.load(std::memory_order_relaxed);
    s.failedPublishes =
        nFailedPublishes.load(std::memory_order_relaxed);
    s.bytesStored = nBytesStored.load(std::memory_order_relaxed);
    s.bytesDeduped = nBytesDeduped.load(std::memory_order_relaxed);
    s.bytesRead = nBytesRead.load(std::memory_order_relaxed);
    return s;
}

} // namespace looppoint
