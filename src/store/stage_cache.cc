#include "store/stage_cache.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "util/fingerprint.hh"

namespace looppoint {

namespace {

/** %.17g: exact double round trip (same rule as the run journal). */
std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

// ---------------------------------------------------------------- keys

std::string
StageCache::recordKey(const std::string &program_name,
                      const LoopPointOptions &opts)
{
    return FingerprintBuilder("record-v1")
        .field("prog", program_name)
        .field("threads", opts.numThreads)
        .field("wait", waitPolicyName(opts.waitPolicy))
        .field("seed", opts.seed)
        .field("quantum", opts.flowQuantum)
        .text();
}

std::string
StageCache::profileKey(const std::string &record_hash,
                       const LoopPointOptions &opts)
{
    return FingerprintBuilder("profile-v1")
        .field("record", record_hash)
        .field("slice_size", opts.sliceSizePerThread)
        .field("filter_spin", opts.filterSpin)
        .field("quantum", opts.flowQuantum)
        .text();
}

std::string
StageCache::clusterKey(const std::string &profile_hash,
                       const LoopPointOptions &opts)
{
    return FingerprintBuilder("cluster-v1")
        .field("profile", profile_hash)
        .field("max_k", opts.maxK)
        .field("dims", opts.projectionDims)
        .fieldDouble("bic_threshold", opts.bicThreshold)
        .field("seed", opts.seed)
        .text();
}

std::string
StageCache::simKey(const std::string &cluster_hash,
                   const SimConfig &sim_cfg, bool constrained)
{
    return FingerprintBuilder("sim-v1")
        .field("cluster", cluster_hash)
        .field("uarch", sim_cfg.uarchKeyText())
        .field("constrained", constrained)
        .text();
}

std::string
StageCache::fullSimKey(const std::string &program_name, uint32_t threads,
                       WaitPolicy wait_policy, uint64_t seed,
                       const SimConfig &sim_cfg)
{
    return FingerprintBuilder("fullsim-v1")
        .field("prog", program_name)
        .field("threads", threads)
        .field("wait", waitPolicyName(wait_policy))
        .field("seed", seed)
        .field("uarch", sim_cfg.uarchKeyText())
        .text();
}

// ----------------------------------------------------------- recording

std::optional<StageCache::PinballHit>
StageCache::loadPinball(const std::string &key)
{
    auto hit = backing->lookup("record", key);
    if (!hit)
        return std::nullopt;
    std::istringstream is(hit->payload);
    auto pinball = Pinball::tryLoad(is);
    if (!pinball.ok())
        return std::nullopt;
    return PinballHit{std::move(pinball).value(),
                      std::move(hit->hash)};
}

std::string
StageCache::publishPinball(const std::string &key, const Pinball &pinball)
{
    std::ostringstream os;
    pinball.save(os);
    return backing->publish("record", key, os.str());
}

// ----------------------------------------------------------- profiling

std::string
StageCache::publishSlices(const std::string &key,
                          const std::vector<SliceRecord> &slices)
{
    std::ostringstream os;
    const size_t threads =
        slices.empty() ? 0 : slices.front().perThread.size();
    os << "slices " << slices.size() << " threads " << threads << '\n';
    for (const SliceRecord &s : slices) {
        os << "slice " << s.index << " start " << s.start.pc << ':'
           << s.start.count << " end " << s.end.pc << ':' << s.end.count
           << " filtered " << s.filteredIcount << " total "
           << s.totalIcount << '\n';
        os << "tf";
        for (uint64_t v : s.threadFilteredIcount)
            os << ' ' << v;
        os << '\n';
        for (size_t tid = 0; tid < s.perThread.size(); ++tid) {
            // Sorted by block id: the artifact is canonical whatever
            // the in-memory map iteration order was.
            std::vector<std::pair<uint64_t, uint64_t>> sorted;
            sorted.reserve(s.perThread[tid].counts.size());
            for (const auto &[block, count] : s.perThread[tid].counts)
                sorted.emplace_back(static_cast<uint64_t>(block), count);
            std::sort(sorted.begin(), sorted.end());
            os << "bbv " << tid << ' ' << sorted.size();
            for (const auto &[block, count] : sorted)
                os << ' ' << block << ':' << count;
            os << '\n';
        }
    }
    return backing->publish("profile", key, os.str());
}

std::optional<StageCache::SlicesHit>
StageCache::loadSlices(const std::string &key)
{
    auto hit = backing->lookup("profile", key);
    if (!hit)
        return std::nullopt;
    std::istringstream is(hit->payload);
    std::string tag;
    size_t n = 0, threads = 0;
    std::string tag2;
    if (!(is >> tag >> n >> tag2 >> threads) || tag != "slices" ||
        tag2 != "threads")
        return std::nullopt;
    std::vector<SliceRecord> slices;
    slices.reserve(n);
    char colon = 0;
    for (size_t i = 0; i < n; ++i) {
        SliceRecord s;
        std::string t_start, t_end, t_filtered, t_total;
        if (!(is >> tag >> s.index >> t_start >> s.start.pc >> colon >>
              s.start.count >> t_end >> s.end.pc >> colon >>
              s.end.count >> t_filtered >> s.filteredIcount >>
              t_total >> s.totalIcount) ||
            tag != "slice" || t_start != "start" || t_end != "end" ||
            t_filtered != "filtered" || t_total != "total")
            return std::nullopt;
        if (!(is >> tag) || tag != "tf")
            return std::nullopt;
        s.threadFilteredIcount.resize(threads);
        for (size_t t = 0; t < threads; ++t)
            if (!(is >> s.threadFilteredIcount[t]))
                return std::nullopt;
        s.perThread.resize(threads);
        for (size_t t = 0; t < threads; ++t) {
            size_t tid = 0, m = 0;
            if (!(is >> tag >> tid >> m) || tag != "bbv" || tid != t)
                return std::nullopt;
            for (size_t j = 0; j < m; ++j) {
                uint64_t block = 0, count = 0;
                if (!(is >> block >> colon >> count) || colon != ':')
                    return std::nullopt;
                s.perThread[t].counts[static_cast<BlockId>(block)] =
                    count;
            }
        }
        slices.push_back(std::move(s));
    }
    return SlicesHit{std::move(slices), std::move(hit->hash)};
}

// ---------------------------------------------------------- clustering

std::string
StageCache::publishCluster(const std::string &key,
                           const ClusterArtifact &art)
{
    std::ostringstream os;
    os << "cluster chosenK " << art.chosenK << " slices "
       << art.assignment.size() << " bic " << art.bicByK.size()
       << " regions " << art.regions.size() << '\n';
    os << "assignment";
    for (uint32_t v : art.assignment)
        os << ' ' << v;
    os << '\n';
    os << "bic";
    for (double v : art.bicByK)
        os << ' ' << fmtDouble(v);
    os << '\n';
    for (const LoopPointRegion &r : art.regions) {
        os << "region cluster=" << r.cluster << " slice="
           << r.sliceIndex << " start=" << r.start.pc << ':'
           << r.start.count << " end=" << r.end.pc << ':' << r.end.count
           << " ficount=" << r.filteredIcount << " mult="
           << fmtDouble(r.multiplier) << '\n';
    }
    return backing->publish("cluster", key, os.str());
}

std::optional<StageCache::ClusterHit>
StageCache::loadCluster(const std::string &key)
{
    auto hit = backing->lookup("cluster", key);
    if (!hit)
        return std::nullopt;
    std::istringstream is(hit->payload);
    std::string tag, t1, t2, t3;
    size_t n_slices = 0, n_bic = 0, n_regions = 0;
    ClusterArtifact art;
    if (!(is >> tag >> t1 >> art.chosenK >> t2 >> n_slices >> t3 >>
          n_bic) ||
        tag != "cluster" || t1 != "chosenK" || t2 != "slices" ||
        t3 != "bic")
        return std::nullopt;
    if (!(is >> t1 >> n_regions) || t1 != "regions")
        return std::nullopt;
    if (!(is >> tag) || tag != "assignment")
        return std::nullopt;
    art.assignment.resize(n_slices);
    for (auto &v : art.assignment)
        if (!(is >> v))
            return std::nullopt;
    if (!(is >> tag) || tag != "bic")
        return std::nullopt;
    art.bicByK.resize(n_bic);
    for (auto &v : art.bicByK)
        if (!(is >> v))
            return std::nullopt;
    std::string line;
    std::getline(is, line); // consume the bic line's newline
    for (size_t i = 0; i < n_regions; ++i) {
        if (!std::getline(is, line))
            return std::nullopt;
        LoopPointRegion r;
        uint64_t start_pc = 0, end_pc = 0;
        if (std::sscanf(line.c_str(),
                        "region cluster=%" SCNu32 " slice=%" SCNu32
                        " start=%" SCNu64 ":%" SCNu64 " end=%" SCNu64
                        ":%" SCNu64 " ficount=%" SCNu64 " mult=%lg",
                        &r.cluster, &r.sliceIndex, &start_pc,
                        &r.start.count, &end_pc, &r.end.count,
                        &r.filteredIcount, &r.multiplier) != 8)
            return std::nullopt;
        r.start.pc = start_pc;
        r.end.pc = end_pc;
        art.regions.push_back(r);
    }
    return ClusterHit{std::move(art), std::move(hit->hash)};
}

// -------------------------------------------------- simulation results

void
StageCache::publishSimResults(const std::string &key,
                              const std::vector<RunJournal::Record> &recs)
{
    std::ostringstream os;
    os << "simresults " << recs.size() << '\n';
    for (const auto &r : recs)
        os << encodeJournalRecord(r) << '\n';
    backing->publish("sim", key, os.str());
}

std::optional<std::vector<RunJournal::Record>>
StageCache::loadSimResults(const std::string &key,
                           const std::vector<LoopPointRegion> &regions)
{
    auto hit = backing->lookup("sim", key);
    if (!hit)
        return std::nullopt;
    std::istringstream is(hit->payload);
    std::string line;
    if (!std::getline(is, line))
        return std::nullopt;
    size_t n = 0;
    if (std::sscanf(line.c_str(), "simresults %zu", &n) != 1 ||
        n != regions.size())
        return std::nullopt;
    std::vector<RunJournal::Record> recs;
    recs.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        if (!std::getline(is, line))
            return std::nullopt;
        auto rec = parseJournalRecord(line);
        if (!rec)
            return std::nullopt;
        // Identity check against the regions this analysis selected —
        // the same exact-match rule the resume journal applies.
        const LoopPointRegion &r = regions[i];
        if (rec->regionIndex != i || !(rec->start == r.start) ||
            !(rec->end == r.end) || rec->multiplier != r.multiplier)
            return std::nullopt;
        recs.push_back(std::move(*rec));
    }
    return recs;
}

// ------------------------------------------------------------- fullsim

void
StageCache::publishFullSim(const std::string &key, const SimMetrics &m)
{
    RunJournal::Record rec;
    rec.metrics = m;
    std::ostringstream os;
    os << "fullsim\n" << encodeJournalRecord(rec) << '\n';
    backing->publish("fullsim", key, os.str());
}

std::optional<SimMetrics>
StageCache::loadFullSim(const std::string &key)
{
    auto hit = backing->lookup("fullsim", key);
    if (!hit)
        return std::nullopt;
    std::istringstream is(hit->payload);
    std::string line;
    if (!std::getline(is, line) || line != "fullsim")
        return std::nullopt;
    if (!std::getline(is, line))
        return std::nullopt;
    auto rec = parseJournalRecord(line);
    if (!rec)
        return std::nullopt;
    return rec->metrics;
}

} // namespace looppoint
