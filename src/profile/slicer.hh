/**
 * @file
 * SliceProfiler: divides a (replayed) execution into variable-length
 * slices bounded by main-image loop entries, collecting filtered
 * per-thread BBVs for each slice (paper Sections III-B/C/D).
 *
 * The slice-size target is expressed in *global filtered* instructions
 * (spin/synchronization code excluded, as in the paper), nominally
 * N_threads x perThreadSliceSize. A slice ends at the next execution
 * of any marker block once the target is reached, so every boundary is
 * a repeatable (PC, count) pair even under active spinning.
 */

#ifndef LOOPPOINT_PROFILE_SLICER_HH
#define LOOPPOINT_PROFILE_SLICER_HH

#include <cstdint>
#include <vector>

#include "exec/listener.hh"
#include "profile/bbv.hh"

namespace looppoint {

/** See file comment. */
class SliceProfiler : public ExecListener
{
  public:
    /**
     * @param prog the program being profiled
     * @param marker_blocks legal boundary blocks (main-image loop
     *        headers from the DCFG)
     * @param slice_size_global target slice size in global filtered
     *        instructions
     * @param num_threads thread count of the profiled execution
     * @param reference_accumulation accumulate BBVs directly into the
     *        per-slice hash maps instead of the flat per-thread dense
     *        arrays. The two modes produce identical slices (including
     *        map iteration order, which downstream feature projection
     *        depends on); the reference mode exists as the oracle for
     *        the equivalence tests.
     */
    SliceProfiler(const Program &prog,
                  std::vector<BlockId> marker_blocks,
                  uint64_t slice_size_global, uint32_t num_threads,
                  bool filter_sync = true,
                  bool reference_accumulation = false);

    void onBlock(uint32_t tid, BlockId block,
                 const ExecutionEngine &engine) override;

    /** Close the final partial slice; call once after the run. */
    void finalize();

    const std::vector<SliceRecord> &slices() const { return sliceList; }

    /** Global execution count of a marker block so far. */
    uint64_t markerCount(BlockId block) const;

    /** Total filtered instructions across all closed slices. */
    uint64_t totalFilteredIcount() const;

  private:
    void beginSlice(const Marker &start);
    void closeSlice(const Marker &end);

    const Program *prog;
    std::vector<char> isMarker;          ///< indexed by BlockId
    std::vector<uint64_t> markerCounts;  ///< indexed by BlockId
    uint64_t sliceTarget;
    uint32_t numThreads;
    bool filterSync;
    bool referenceAccum;

    /**
     * Fast accumulation state: per-(thread, block) counts in one flat
     * array of numThreads x numBlocks, valid only where the epoch
     * stamp matches the current slice's epoch — starting a slice is a
     * single counter bump, not an O(blocks) clear. `touched` records
     * each thread's blocks in first-touch order; closeSlice() replays
     * it to materialize the per-slice hash maps with exactly the
     * insertion order direct accumulation would have produced.
     */
    std::vector<uint64_t> dense;
    std::vector<uint64_t> denseEpoch;
    std::vector<std::vector<BlockId>> touched;
    uint64_t epoch = 0;

    SliceRecord current;
    std::vector<SliceRecord> sliceList;
    bool finalized = false;
};

} // namespace looppoint

#endif // LOOPPOINT_PROFILE_SLICER_HH
