/**
 * @file
 * Basic-block vectors, slice records, and (PC, count) markers — the
 * profiling artifacts LoopPoint clusters (Sections III-B/C of the
 * paper).
 */

#ifndef LOOPPOINT_PROFILE_BBV_HH
#define LOOPPOINT_PROFILE_BBV_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "isa/program.hh"

namespace looppoint {

/**
 * A (PC, count) execution marker: the moment just before the count-th
 * dynamic execution of the instruction at `pc` (1-based, counted
 * globally across threads). pc == 0 denotes the program start/end
 * sentinel.
 */
struct Marker
{
    Addr pc = 0;
    uint64_t count = 0;

    bool isProgramBoundary() const { return pc == 0; }
    bool operator==(const Marker &other) const = default;
};

/** Sparse per-thread basic-block vector (block -> execution count). */
struct ThreadBbv
{
    std::unordered_map<BlockId, uint64_t> counts;

    void
    add(BlockId block, uint64_t n = 1)
    {
        counts[block] += n;
    }

    bool operator==(const ThreadBbv &other) const = default;
};

/** One profiling slice: a variable-length region between markers. */
struct SliceRecord
{
    uint64_t index = 0;
    Marker start;
    Marker end;
    /** Filtered (main-image) per-thread BBVs, concatenated logically. */
    std::vector<ThreadBbv> perThread;
    /** Filtered instructions per thread within the slice. */
    std::vector<uint64_t> threadFilteredIcount;
    /** Global filtered instructions in the slice. */
    uint64_t filteredIcount = 0;
    /** Global instructions including synchronization/spin code. */
    uint64_t totalIcount = 0;
};

/** Map from PC to block id for marker resolution. */
std::unordered_map<Addr, BlockId> buildPcIndex(const Program &prog);

} // namespace looppoint

#endif // LOOPPOINT_PROFILE_BBV_HH
