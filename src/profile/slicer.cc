#include "profile/slicer.hh"

#include "util/logging.hh"

namespace looppoint {

std::unordered_map<Addr, BlockId>
buildPcIndex(const Program &prog)
{
    std::unordered_map<Addr, BlockId> index;
    index.reserve(prog.numBlocks());
    for (const auto &bb : prog.blocks)
        index[bb.pc] = bb.id;
    return index;
}

SliceProfiler::SliceProfiler(const Program &prog_,
                             std::vector<BlockId> marker_blocks,
                             uint64_t slice_size_global,
                             uint32_t num_threads, bool filter_sync,
                             bool reference_accumulation)
    : prog(&prog_), isMarker(prog_.numBlocks(), 0),
      markerCounts(prog_.numBlocks(), 0), sliceTarget(slice_size_global),
      numThreads(num_threads), filterSync(filter_sync),
      referenceAccum(reference_accumulation)
{
    if (slice_size_global == 0)
        fatal("SliceProfiler: slice size must be >= 1");
    for (BlockId b : marker_blocks) {
        LP_ASSERT(b < prog->numBlocks());
        if (!prog->inMainImage(b))
            fatal("marker block %u is not in the main image "
                  "(synchronization loops cannot bound regions)", b);
        isMarker[b] = 1;
    }
    if (!referenceAccum) {
        const size_t cells =
            static_cast<size_t>(numThreads) * prog->numBlocks();
        dense.assign(cells, 0);
        denseEpoch.assign(cells, 0);
        touched.resize(numThreads);
    }
    beginSlice(Marker{0, 0}); // program start sentinel
}

void
SliceProfiler::beginSlice(const Marker &start)
{
    current = SliceRecord{};
    current.index = sliceList.size();
    current.start = start;
    current.perThread.assign(numThreads, ThreadBbv{});
    current.threadFilteredIcount.assign(numThreads, 0);
    ++epoch; // invalidates every dense cell in O(1)
}

void
SliceProfiler::closeSlice(const Marker &end)
{
    if (!referenceAccum) {
        // Materialize the hash maps from the dense counters. Insertion
        // follows first-touch order, which reproduces the incremental
        // maps exactly — same contents AND same iteration order, so
        // downstream floating-point reductions sum in the same order.
        for (uint32_t tid = 0; tid < numThreads; ++tid) {
            auto &counts = current.perThread[tid].counts;
            const uint64_t *row =
                dense.data() +
                static_cast<size_t>(tid) * prog->numBlocks();
            for (BlockId b : touched[tid])
                counts[b] = row[b];
            touched[tid].clear();
        }
    }
    current.end = end;
    sliceList.push_back(std::move(current));
}

void
SliceProfiler::onBlock(uint32_t tid, BlockId block,
                       const ExecutionEngine &engine)
{
    (void)engine;
    // No per-block bounds asserts here: BlockIds are dense and tid
    // ranges are validated once at construction / program load.
    const uint32_t instrs = prog->instrCounts[block];

    if (isMarker[block]) {
        // Boundary check happens *before* this execution is counted,
        // so the marker execution itself belongs to the next slice.
        if (current.filteredIcount >= sliceTarget) {
            Marker boundary{prog->blocks[block].pc,
                            markerCounts[block] + 1};
            closeSlice(boundary);
            beginSlice(boundary);
        }
        ++markerCounts[block];
    }

    current.totalIcount += instrs;
    if (!filterSync || prog->mainImageFlags[block]) {
        // Spin and synchronization-library code is executed but not
        // counted ("execute but don't count", Section II).
        if (referenceAccum) {
            current.perThread[tid].add(block);
        } else {
            const size_t idx =
                static_cast<size_t>(tid) * prog->numBlocks() + block;
            if (denseEpoch[idx] != epoch) {
                denseEpoch[idx] = epoch;
                dense[idx] = 1;
                touched[tid].push_back(block);
            } else {
                ++dense[idx];
            }
        }
        current.threadFilteredIcount[tid] += instrs;
        current.filteredIcount += instrs;
    }
}

void
SliceProfiler::finalize()
{
    LP_ASSERT(!finalized);
    finalized = true;
    // Program-end sentinel. Suppress an empty trailing slice.
    if (current.filteredIcount > 0 || current.totalIcount > 0 ||
        sliceList.empty()) {
        closeSlice(Marker{0, 0});
    }
}

uint64_t
SliceProfiler::markerCount(BlockId block) const
{
    LP_ASSERT(block < markerCounts.size());
    return markerCounts[block];
}

uint64_t
SliceProfiler::totalFilteredIcount() const
{
    uint64_t sum = 0;
    for (const auto &s : sliceList)
        sum += s.filteredIcount;
    if (!finalized)
        sum += current.filteredIcount;
    return sum;
}

} // namespace looppoint
