#include "profile/slicer.hh"

#include "util/logging.hh"

namespace looppoint {

std::unordered_map<Addr, BlockId>
buildPcIndex(const Program &prog)
{
    std::unordered_map<Addr, BlockId> index;
    index.reserve(prog.numBlocks());
    for (const auto &bb : prog.blocks)
        index[bb.pc] = bb.id;
    return index;
}

SliceProfiler::SliceProfiler(const Program &prog_,
                             std::vector<BlockId> marker_blocks,
                             uint64_t slice_size_global,
                             uint32_t num_threads, bool filter_sync)
    : prog(&prog_), isMarker(prog_.numBlocks(), 0),
      markerCounts(prog_.numBlocks(), 0), sliceTarget(slice_size_global),
      numThreads(num_threads), filterSync(filter_sync)
{
    if (slice_size_global == 0)
        fatal("SliceProfiler: slice size must be >= 1");
    for (BlockId b : marker_blocks) {
        LP_ASSERT(b < prog->numBlocks());
        if (!prog->inMainImage(b))
            fatal("marker block %u is not in the main image "
                  "(synchronization loops cannot bound regions)", b);
        isMarker[b] = 1;
    }
    beginSlice(Marker{0, 0}); // program start sentinel
}

void
SliceProfiler::beginSlice(const Marker &start)
{
    current = SliceRecord{};
    current.index = sliceList.size();
    current.start = start;
    current.perThread.assign(numThreads, ThreadBbv{});
    current.threadFilteredIcount.assign(numThreads, 0);
}

void
SliceProfiler::closeSlice(const Marker &end)
{
    current.end = end;
    sliceList.push_back(std::move(current));
}

void
SliceProfiler::onBlock(uint32_t tid, BlockId block,
                       const ExecutionEngine &engine)
{
    (void)engine;
    LP_ASSERT(!finalized);
    LP_ASSERT(tid < numThreads);
    const BasicBlock &bb = prog->blocks[block];

    if (isMarker[block]) {
        // Boundary check happens *before* this execution is counted,
        // so the marker execution itself belongs to the next slice.
        if (current.filteredIcount >= sliceTarget) {
            Marker boundary{bb.pc, markerCounts[block] + 1};
            closeSlice(boundary);
            beginSlice(boundary);
        }
        ++markerCounts[block];
    }

    current.totalIcount += bb.numInstrs();
    if (!filterSync || bb.image == ImageId::Main) {
        // Spin and synchronization-library code is executed but not
        // counted ("execute but don't count", Section II).
        current.perThread[tid].add(block);
        current.threadFilteredIcount[tid] += bb.numInstrs();
        current.filteredIcount += bb.numInstrs();
    }
}

void
SliceProfiler::finalize()
{
    LP_ASSERT(!finalized);
    finalized = true;
    // Program-end sentinel. Suppress an empty trailing slice.
    if (current.filteredIcount > 0 || current.totalIcount > 0 ||
        sliceList.empty()) {
        closeSlice(Marker{0, 0});
    }
}

uint64_t
SliceProfiler::markerCount(BlockId block) const
{
    LP_ASSERT(block < markerCounts.size());
    return markerCounts[block];
}

uint64_t
SliceProfiler::totalFilteredIcount() const
{
    uint64_t sum = 0;
    for (const auto &s : sliceList)
        sum += s.filteredIcount;
    if (!finalized)
        sum += current.filteredIcount;
    return sum;
}

} // namespace looppoint
