#include "sim/branch_predictor.hh"

#include <cstring>

namespace looppoint {

PentiumMBranchPredictor::PentiumMBranchPredictor()
    : bimodal(1u << kBimodalBits, 2),
      global(1u << kGlobalBits, 2),
      meta(1u << kMetaBits, 1),
      loop(1u << kLoopBits)
{}

bool
PentiumMBranchPredictor::predictAndTrain(Addr pc, bool taken)
{
    const uint32_t pc_hash = static_cast<uint32_t>(pc >> 2) ^
                             static_cast<uint32_t>(pc >> 16);
    const uint32_t bi_idx = pc_hash & ((1u << kBimodalBits) - 1);
    const uint32_t gl_idx =
        (pc_hash ^ history) & ((1u << kGlobalBits) - 1);
    const uint32_t me_idx = pc_hash & ((1u << kMetaBits) - 1);
    const uint32_t lp_idx = pc_hash & ((1u << kLoopBits) - 1);

    const bool bi_pred = counterTaken(bimodal[bi_idx]);
    const bool gl_pred = counterTaken(global[gl_idx]);
    bool pred = counterTaken(meta[me_idx]) ? gl_pred : bi_pred;

    // Loop detector: a confident entry predicting "not taken at trip
    // boundary, taken otherwise" overrides the dynamic predictors.
    LoopEntry &le = loop[lp_idx];
    const uint32_t tag = pc_hash >> kLoopBits;
    bool loop_override = false;
    bool loop_pred = false;
    if (le.valid && le.tag == tag && le.confidence >= 2 &&
        le.tripCount > 0) {
        loop_override = true;
        loop_pred = (le.currentIter + 1) < le.tripCount;
    }
    if (loop_override)
        pred = loop_pred;

    const bool correct = (pred == taken);
    ++bpStats.branches;
    bpStats.mispredicts += !correct;

    // Train the loop detector on the taken-run length.
    if (!le.valid || le.tag != tag) {
        le = LoopEntry{};
        le.valid = true;
        le.tag = tag;
    }
    if (taken) {
        ++le.currentIter;
    } else {
        const uint32_t observed = le.currentIter + 1;
        if (le.tripCount == observed) {
            if (le.confidence < 3)
                ++le.confidence;
        } else {
            le.tripCount = observed;
            le.confidence = 0;
        }
        le.currentIter = 0;
    }

    // Train the direction predictors and the chooser.
    if (bi_pred != gl_pred) {
        const bool global_right = (gl_pred == taken);
        meta[me_idx] = counterUpdate(meta[me_idx], global_right);
    }
    bimodal[bi_idx] = counterUpdate(bimodal[bi_idx], taken);
    global[gl_idx] = counterUpdate(global[gl_idx], taken);
    history = ((history << 1) | (taken ? 1 : 0)) &
              ((1u << kHistoryBits) - 1);

    return correct;
}

size_t
PentiumMBranchPredictor::stateBytes() const
{
    return bimodal.size() + global.size() + meta.size() +
           loop.size() * sizeof(LoopEntry) + sizeof(uint32_t);
}

void
PentiumMBranchPredictor::exportState(void *mem) const
{
    auto *p = static_cast<unsigned char *>(mem);
    std::memcpy(p, bimodal.data(), bimodal.size());
    p += bimodal.size();
    std::memcpy(p, global.data(), global.size());
    p += global.size();
    std::memcpy(p, meta.data(), meta.size());
    p += meta.size();
    std::memcpy(p, loop.data(), loop.size() * sizeof(LoopEntry));
    p += loop.size() * sizeof(LoopEntry);
    std::memcpy(p, &history, sizeof(history));
}

void
PentiumMBranchPredictor::importState(const void *mem)
{
    const auto *p = static_cast<const unsigned char *>(mem);
    std::memcpy(bimodal.data(), p, bimodal.size());
    p += bimodal.size();
    std::memcpy(global.data(), p, global.size());
    p += global.size();
    std::memcpy(meta.data(), p, meta.size());
    p += meta.size();
    std::memcpy(loop.data(), p, loop.size() * sizeof(LoopEntry));
    p += loop.size() * sizeof(LoopEntry);
    std::memcpy(&history, p, sizeof(history));
}

} // namespace looppoint
