#include "sim/cache.hh"

#include "util/logging.hh"

namespace looppoint {

Cache::Cache(const CacheConfig &cfg_)
    : cfg(cfg_)
{
    LP_ASSERT(cfg.lineBytes > 0 && cfg.assoc > 0);
    LP_ASSERT(cfg.sizeBytes % (cfg.lineBytes * cfg.assoc) == 0);
    numSets = cfg.sizeBytes / (cfg.lineBytes * cfg.assoc);
    LP_ASSERT(numSets > 0);
    lines.resize(static_cast<size_t>(numSets) * cfg.assoc);
}

bool
Cache::access(Addr addr, uint32_t core, bool is_write, Addr *evicted)
{
    (void)is_write;
    ++cacheStats.accesses;
    const uint64_t line = lineAddr(addr);
    const uint32_t set = setIndex(line);
    Line *base = &lines[static_cast<size_t>(set) * cfg.assoc];
    Line *victim = base;
    for (uint32_t w = 0; w < cfg.assoc; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == line) {
            l.lru = ++lruClock;
            l.sharerMask |= (1ull << core);
            return true;
        }
        if (!l.valid) {
            victim = &l;
        } else if (victim->valid && l.lru < victim->lru) {
            victim = &l;
        }
    }
    ++cacheStats.misses;
    if (victim->valid && evicted)
        *evicted = victim->tag * cfg.lineBytes;
    victim->valid = true;
    victim->tag = line;
    victim->lru = ++lruClock;
    victim->sharerMask = (1ull << core);
    return false;
}

Addr
Cache::fill(Addr addr, uint32_t core)
{
    const uint64_t line = lineAddr(addr);
    const uint32_t set = setIndex(line);
    Line *base = &lines[static_cast<size_t>(set) * cfg.assoc];
    Line *victim = base;
    for (uint32_t w = 0; w < cfg.assoc; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == line) {
            l.sharerMask |= (1ull << core);
            return 0; // already resident; don't touch LRU
        }
        if (!l.valid) {
            victim = &l;
        } else if (victim->valid && l.lru < victim->lru) {
            victim = &l;
        }
    }
    Addr evicted = victim->valid ? victim->tag * cfg.lineBytes : 0;
    victim->valid = true;
    victim->tag = line;
    victim->lru = ++lruClock;
    victim->sharerMask = (1ull << core);
    return evicted;
}

bool
Cache::invalidate(Addr addr)
{
    const uint64_t line = lineAddr(addr);
    const uint32_t set = setIndex(line);
    Line *base = &lines[static_cast<size_t>(set) * cfg.assoc];
    for (uint32_t w = 0; w < cfg.assoc; ++w) {
        if (base[w].valid && base[w].tag == line) {
            base[w].valid = false;
            ++cacheStats.invalidations;
            return true;
        }
    }
    return false;
}

bool
Cache::contains(Addr addr) const
{
    const uint64_t line = lineAddr(addr);
    const uint32_t set = setIndex(line);
    const Line *base = &lines[static_cast<size_t>(set) * cfg.assoc];
    for (uint32_t w = 0; w < cfg.assoc; ++w)
        if (base[w].valid && base[w].tag == line)
            return true;
    return false;
}

uint64_t
Cache::sharers(Addr addr) const
{
    const uint64_t line = lineAddr(addr);
    const uint32_t set = setIndex(line);
    const Line *base = &lines[static_cast<size_t>(set) * cfg.assoc];
    for (uint32_t w = 0; w < cfg.assoc; ++w)
        if (base[w].valid && base[w].tag == line)
            return base[w].sharerMask;
    return 0;
}

void
Cache::removeSharer(Addr addr, uint32_t core)
{
    const uint64_t line = lineAddr(addr);
    const uint32_t set = setIndex(line);
    Line *base = &lines[static_cast<size_t>(set) * cfg.assoc];
    for (uint32_t w = 0; w < cfg.assoc; ++w)
        if (base[w].valid && base[w].tag == line)
            base[w].sharerMask &= ~(1ull << core);
}

CacheHierarchy::CacheHierarchy(const SimConfig &cfg_, uint32_t num_cores)
    : cfg(cfg_), numCores(num_cores), l3(cfg_.l3)
{
    LP_ASSERT(num_cores >= 1 && num_cores <= 64);
    for (uint32_t c = 0; c < num_cores; ++c) {
        l1d.emplace_back(cfg.l1d);
        l1i.emplace_back(cfg.l1i);
        l2.emplace_back(cfg.l2);
    }
}

void
CacheHierarchy::invalidateOthers(uint32_t core, Addr addr)
{
    uint64_t mask = l3.sharers(addr) & ~(1ull << core);
    while (mask) {
        uint32_t other = static_cast<uint32_t>(__builtin_ctzll(mask));
        mask &= mask - 1;
        if (other >= numCores)
            continue;
        l1d[other].invalidate(addr);
        l2[other].invalidate(addr);
        l3.removeSharer(addr, other);
    }
}

void
CacheHierarchy::backInvalidate(Addr addr)
{
    // Inclusive L3: evicting a line removes it from private caches.
    for (uint32_t c = 0; c < numCores; ++c) {
        l1d[c].invalidate(addr);
        l1i[c].invalidate(addr);
        l2[c].invalidate(addr);
    }
}

MemAccessResult
CacheHierarchy::access(uint32_t core, Addr addr, bool is_write)
{
    LP_ASSERT(core < numCores);
    MemAccessResult r;
    Addr evicted = 0;

    if (l1d[core].access(addr, core, is_write, nullptr)) {
        r.latency = cfg.l1d.latency;
        r.hitLevel = 1;
    } else if (l2[core].access(addr, core, is_write, nullptr)) {
        r.latency = cfg.l1d.latency + cfg.l2.latency;
        r.hitLevel = 2;
    } else if (l3.access(addr, core, is_write, &evicted)) {
        r.latency = cfg.l1d.latency + cfg.l2.latency + cfg.l3.latency;
        r.hitLevel = 3;
    } else {
        r.latency = cfg.l1d.latency + cfg.l2.latency + cfg.l3.latency +
                    cfg.memLatency;
        r.hitLevel = 4;
        ++memCount;
        if (evicted != 0)
            backInvalidate(evicted);
    }
    if (is_write)
        invalidateOthers(core, addr);

    // Next-line prefetcher: an L2 demand miss pulls the following
    // lines into the L2 and L3 without charging demand latency.
    if (cfg.prefetchDegree > 0 && r.hitLevel >= 3 && !is_write) {
        for (uint32_t d = 1; d <= cfg.prefetchDegree; ++d) {
            Addr pf = addr + static_cast<Addr>(d) * cfg.l2.lineBytes;
            Addr evicted_l3 = l3.fill(pf, core);
            if (evicted_l3 != 0)
                backInvalidate(evicted_l3);
            l2[core].fill(pf, core);
            ++prefetchCount;
        }
    }
    return r;
}

MemAccessResult
CacheHierarchy::fetch(uint32_t core, Addr pc)
{
    LP_ASSERT(core < numCores);
    MemAccessResult r;
    Addr evicted = 0;
    if (l1i[core].access(pc, core, false, nullptr)) {
        r.latency = cfg.l1i.latency;
        r.hitLevel = 1;
    } else if (l2[core].access(pc, core, false, nullptr)) {
        r.latency = cfg.l1i.latency + cfg.l2.latency;
        r.hitLevel = 2;
    } else if (l3.access(pc, core, false, &evicted)) {
        r.latency = cfg.l1i.latency + cfg.l2.latency + cfg.l3.latency;
        r.hitLevel = 3;
    } else {
        r.latency = cfg.l1i.latency + cfg.l2.latency + cfg.l3.latency +
                    cfg.memLatency;
        r.hitLevel = 4;
        ++memCount;
        if (evicted != 0)
            backInvalidate(evicted);
    }
    return r;
}

void
CacheHierarchy::warmAccess(uint32_t core, Addr addr, bool is_write)
{
    access(core, addr, is_write);
}

void
CacheHierarchy::warmFetch(uint32_t core, Addr pc)
{
    fetch(core, pc);
}

const CacheStats &
CacheHierarchy::l1dStats(uint32_t core) const
{
    return l1d[core].stats();
}

const CacheStats &
CacheHierarchy::l1iStats(uint32_t core) const
{
    return l1i[core].stats();
}

const CacheStats &
CacheHierarchy::l2Stats(uint32_t core) const
{
    return l2[core].stats();
}

const CacheStats &
CacheHierarchy::l3Stats() const
{
    return l3.stats();
}

void
CacheHierarchy::resetStats()
{
    for (uint32_t c = 0; c < numCores; ++c) {
        l1d[c].resetStats();
        l1i[c].resetStats();
        l2[c].resetStats();
    }
    l3.resetStats();
    memCount = 0;
}

} // namespace looppoint
