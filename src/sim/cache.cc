#include "sim/cache.hh"

#include <cstring>
#include <type_traits>

#include "util/logging.hh"

namespace looppoint {

namespace {

bool
isPowerOfTwo(uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

uint32_t
log2u32(uint32_t v)
{
    return static_cast<uint32_t>(__builtin_ctz(v));
}

} // namespace

Cache::Cache(const CacheConfig &cfg_)
    : cfg(cfg_)
{
    LP_ASSERT(cfg.lineBytes > 0 && cfg.assoc > 0);
    LP_ASSERT(cfg.sizeBytes % (cfg.lineBytes * cfg.assoc) == 0);
    numSets = cfg.sizeBytes / (cfg.lineBytes * cfg.assoc);
    LP_ASSERT(numSets > 0);
    // Shift/mask indexing requires power-of-two geometry (true for
    // every Table I level and any sensible cache).
    LP_ASSERT(isPowerOfTwo(cfg.lineBytes));
    LP_ASSERT(isPowerOfTwo(numSets));
    lineShift = log2u32(cfg.lineBytes);
    setMask = numSets - 1;
    static_assert(std::is_trivially_copyable_v<Line>,
                  "recency reordering uses memmove");
    lineCount = static_cast<size_t>(numSets) * cfg.assoc;
    ownedLines.resize(lineCount);
    lines = ownedLines.data();
}

Cache::Cache(const Cache &other)
    : cfg(other.cfg), numSets(other.numSets),
      lineShift(other.lineShift), setMask(other.setMask),
      lineCount(other.lineCount),
      ownedLines(other.lines, other.lines + other.lineCount),
      lines(ownedLines.data()), lruClock(other.lruClock),
      cacheStats(other.cacheStats)
{
}

Cache &
Cache::operator=(const Cache &other)
{
    if (this == &other)
        return *this;
    cfg = other.cfg;
    numSets = other.numSets;
    lineShift = other.lineShift;
    setMask = other.setMask;
    lineCount = other.lineCount;
    ownedLines.assign(other.lines, other.lines + other.lineCount);
    lines = ownedLines.data();
    lruClock = other.lruClock;
    cacheStats = other.cacheStats;
    return *this;
}

void
Cache::exportLines(void *dst) const
{
    std::memcpy(dst, lines, linesBytes());
}

void
Cache::bindExternalLines(void *mem)
{
    LP_ASSERT(reinterpret_cast<uintptr_t>(mem) % alignof(Line) == 0);
    lines = static_cast<Line *>(mem);
    ownedLines.clear();
    ownedLines.shrink_to_fit();
}

bool
Cache::access(Addr addr, uint32_t core, bool is_write,
              std::optional<Addr> *evicted)
{
    (void)is_write;
    ++cacheStats.accesses;
    const uint64_t line = lineAddr(addr);
    Line *base =
        &lines[static_cast<size_t>(setIndex(line)) * cfg.assoc];

    // MRU fast path: recency order makes the common temporal-locality
    // hit a single compare.
    if (base[0].valid && base[0].tag == line) {
        base[0].lru = ++lruClock;
        base[0].sharerMask |= (1ull << core);
        return true;
    }
    uint32_t w = 1;
    for (; w < cfg.assoc && base[w].valid; ++w) {
        if (base[w].tag == line) {
            Line hit = base[w];
            hit.lru = ++lruClock;
            hit.sharerMask |= (1ull << core);
            std::memmove(base + 1, base, w * sizeof(Line));
            base[0] = hit;
            return true;
        }
    }
    // Miss. `w` is the insertion slot: the first invalid way, or one
    // past the end. A full set's LRU line is the last way — the victim.
    ++cacheStats.misses;
    if (w == cfg.assoc) {
        --w;
        if (evicted)
            *evicted = base[w].tag << lineShift;
    }
    std::memmove(base + 1, base, w * sizeof(Line));
    base[0] = Line{line, ++lruClock, 1ull << core, true};
    return false;
}

std::optional<Addr>
Cache::fill(Addr addr, uint32_t core)
{
    const uint64_t line = lineAddr(addr);
    Line *base =
        &lines[static_cast<size_t>(setIndex(line)) * cfg.assoc];
    uint32_t w = 0;
    for (; w < cfg.assoc && base[w].valid; ++w) {
        if (base[w].tag == line) {
            base[w].sharerMask |= (1ull << core);
            return std::nullopt; // already resident; don't touch LRU
        }
    }
    std::optional<Addr> evicted;
    if (w == cfg.assoc) {
        --w;
        evicted = base[w].tag << lineShift;
    }
    std::memmove(base + 1, base, w * sizeof(Line));
    base[0] = Line{line, ++lruClock, 1ull << core, true};
    return evicted;
}

bool
Cache::invalidate(Addr addr)
{
    const uint64_t line = lineAddr(addr);
    Line *base = set(addr);
    for (uint32_t w = 0; w < cfg.assoc && base[w].valid; ++w) {
        if (base[w].tag == line) {
            // Compact the valid suffix so invalid ways stay at the
            // tail and relative recency is preserved.
            std::memmove(base + w, base + w + 1,
                         (cfg.assoc - 1 - w) * sizeof(Line));
            base[cfg.assoc - 1] = Line{};
            ++cacheStats.invalidations;
            return true;
        }
    }
    return false;
}

bool
Cache::contains(Addr addr) const
{
    const uint64_t line = lineAddr(addr);
    const Line *base = set(addr);
    for (uint32_t w = 0; w < cfg.assoc && base[w].valid; ++w)
        if (base[w].tag == line)
            return true;
    return false;
}

uint64_t
Cache::sharers(Addr addr) const
{
    const uint64_t line = lineAddr(addr);
    const Line *base = set(addr);
    for (uint32_t w = 0; w < cfg.assoc && base[w].valid; ++w)
        if (base[w].tag == line)
            return base[w].sharerMask;
    return 0;
}

void
Cache::removeSharer(Addr addr, uint32_t core)
{
    const uint64_t line = lineAddr(addr);
    Line *base = set(addr);
    for (uint32_t w = 0; w < cfg.assoc && base[w].valid; ++w)
        if (base[w].tag == line)
            base[w].sharerMask &= ~(1ull << core);
}

CacheHierarchy::CacheHierarchy(const SimConfig &cfg_, uint32_t num_cores)
    : cfg(cfg_), numCores(num_cores), l3(cfg_.l3)
{
    LP_ASSERT(num_cores >= 1 && num_cores <= 64);
    for (uint32_t c = 0; c < num_cores; ++c) {
        l1d.emplace_back(cfg.l1d);
        l1i.emplace_back(cfg.l1i);
        l2.emplace_back(cfg.l2);
    }
    dataLat[0] = cfg.l1d.latency;
    dataLat[1] = dataLat[0] + cfg.l2.latency;
    dataLat[2] = dataLat[1] + cfg.l3.latency;
    dataLat[3] = dataLat[2] + cfg.memLatency;
    fetchLat[0] = cfg.l1i.latency;
    fetchLat[1] = fetchLat[0] + cfg.l2.latency;
    fetchLat[2] = fetchLat[1] + cfg.l3.latency;
    fetchLat[3] = fetchLat[2] + cfg.memLatency;
}

void
CacheHierarchy::invalidateOthers(uint32_t core, Addr addr)
{
    uint64_t mask = l3.sharers(addr) & ~(1ull << core);
    while (mask) {
        uint32_t other = static_cast<uint32_t>(__builtin_ctzll(mask));
        mask &= mask - 1;
        if (other >= numCores)
            continue;
        l1d[other].invalidate(addr);
        l2[other].invalidate(addr);
        l3.removeSharer(addr, other);
    }
}

void
CacheHierarchy::backInvalidate(Addr addr)
{
    // Inclusive L3: evicting a line removes it from private caches.
    for (uint32_t c = 0; c < numCores; ++c) {
        l1d[c].invalidate(addr);
        l1i[c].invalidate(addr);
        l2[c].invalidate(addr);
    }
}

MemAccessResult
CacheHierarchy::access(uint32_t core, Addr addr, bool is_write)
{
    // No per-access bounds assert: core ids come from CoreModel
    // instances constructed against this hierarchy's core count.
    MemAccessResult r;
    std::optional<Addr> evicted;

    if (l1d[core].access(addr, core, is_write, nullptr)) {
        r.hitLevel = 1;
    } else if (l2[core].access(addr, core, is_write, nullptr)) {
        r.hitLevel = 2;
    } else if (l3.access(addr, core, is_write, &evicted)) {
        r.hitLevel = 3;
    } else {
        r.hitLevel = 4;
        ++memCount;
        if (evicted)
            backInvalidate(*evicted);
    }
    r.latency = dataLat[r.hitLevel - 1];
    if (is_write)
        invalidateOthers(core, addr);

    // Next-line prefetcher: an L2 demand miss pulls the following
    // lines into the L2 and L3 without charging demand latency.
    if (cfg.prefetchDegree > 0 && r.hitLevel >= 3 && !is_write) {
        for (uint32_t d = 1; d <= cfg.prefetchDegree; ++d) {
            Addr pf = addr + static_cast<Addr>(d) * cfg.l2.lineBytes;
            if (auto evicted_l3 = l3.fill(pf, core))
                backInvalidate(*evicted_l3);
            l2[core].fill(pf, core);
            ++prefetchCount;
        }
    }
    return r;
}

MemAccessResult
CacheHierarchy::fetch(uint32_t core, Addr pc)
{
    MemAccessResult r;
    std::optional<Addr> evicted;
    if (l1i[core].access(pc, core, false, nullptr)) {
        r.hitLevel = 1;
    } else if (l2[core].access(pc, core, false, nullptr)) {
        r.hitLevel = 2;
    } else if (l3.access(pc, core, false, &evicted)) {
        r.hitLevel = 3;
    } else {
        r.hitLevel = 4;
        ++memCount;
        if (evicted)
            backInvalidate(*evicted);
    }
    r.latency = fetchLat[r.hitLevel - 1];
    return r;
}

void
CacheHierarchy::warmAccess(uint32_t core, Addr addr, bool is_write)
{
    access(core, addr, is_write);
}

void
CacheHierarchy::warmFetch(uint32_t core, Addr pc)
{
    fetch(core, pc);
}

const CacheStats &
CacheHierarchy::l1dStats(uint32_t core) const
{
    return l1d[core].stats();
}

const CacheStats &
CacheHierarchy::l1iStats(uint32_t core) const
{
    return l1i[core].stats();
}

const CacheStats &
CacheHierarchy::l2Stats(uint32_t core) const
{
    return l2[core].stats();
}

const CacheStats &
CacheHierarchy::l3Stats() const
{
    return l3.stats();
}

void
CacheHierarchy::resetStats()
{
    for (uint32_t c = 0; c < numCores; ++c) {
        l1d[c].resetStats();
        l1i[c].resetStats();
        l2[c].resetStats();
    }
    l3.resetStats();
    memCount = 0;
}

// The state image is [u64 scalar header][tag arrays], both in the
// fixed cache order below. Every piece is 8-byte aligned (Line is a
// multiple of 8 bytes), so the tag arrays can be bound in place.
template <typename Fn>
static void
forEachCache(std::vector<Cache> &l1d, std::vector<Cache> &l1i,
             std::vector<Cache> &l2, Cache &l3, Fn &&fn)
{
    for (Cache &c : l1d)
        fn(c);
    for (Cache &c : l1i)
        fn(c);
    for (Cache &c : l2)
        fn(c);
    fn(l3);
}

size_t
CacheHierarchy::stateBytes() const
{
    auto &self = const_cast<CacheHierarchy &>(*this);
    size_t caches = 0, bytes = 0;
    forEachCache(self.l1d, self.l1i, self.l2, self.l3, [&](Cache &c) {
        ++caches;
        bytes += c.linesBytes();
    });
    return (caches + 1) * sizeof(uint64_t) + bytes;
}

void
CacheHierarchy::exportState(void *mem) const
{
    auto &self = const_cast<CacheHierarchy &>(*this);
    auto *scalars = static_cast<uint64_t *>(mem);
    forEachCache(self.l1d, self.l1i, self.l2, self.l3,
                 [&](Cache &c) { *scalars++ = c.lruClockValue(); });
    *scalars++ = prefetchCount;
    auto *blob = reinterpret_cast<unsigned char *>(scalars);
    forEachCache(self.l1d, self.l1i, self.l2, self.l3, [&](Cache &c) {
        c.exportLines(blob);
        blob += c.linesBytes();
    });
}

void
CacheHierarchy::adoptState(void *mem)
{
    auto *scalars = static_cast<uint64_t *>(mem);
    forEachCache(l1d, l1i, l2, l3,
                 [&](Cache &c) { c.setLruClock(*scalars++); });
    prefetchCount = *scalars++;
    auto *blob = reinterpret_cast<unsigned char *>(scalars);
    forEachCache(l1d, l1i, l2, l3, [&](Cache &c) {
        c.bindExternalLines(blob);
        blob += c.linesBytes();
    });
}

} // namespace looppoint
