/**
 * @file
 * MulticoreSim: the timing-driven execution mode ("unconstrained
 * simulation") plus functional fast-forward with warmup.
 *
 * In detailed mode the simulated microarchitecture decides thread
 * progress: the engine is stepped in core-local-time order, blocked
 * (passive) threads sleep until a wake event, and active waiters burn
 * cycles in spin loops — so spin iteration counts, lock hand-off and
 * dynamic chunk assignment all follow simulated time, exactly the
 * "how to simulate" behavior the paper argues for (Section II). Pass a
 * ReplayArbiter to get *constrained* simulation instead, including its
 * artificial-stall error (Section V-A.1).
 */

#ifndef LOOPPOINT_SIM_MULTICORE_HH
#define LOOPPOINT_SIM_MULTICORE_HH

#include <functional>
#include <memory>
#include <vector>

#include "exec/engine.hh"
#include "sim/cache.hh"
#include "sim/config.hh"
#include "sim/core_model.hh"

namespace looppoint {

/** Metrics of one (full or region) detailed simulation. */
struct SimMetrics
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;  ///< retired, incl. spin/sync code
    uint64_t filteredInstructions = 0;
    double runtimeSeconds = 0.0;
    uint64_t branches = 0;
    uint64_t branchMispredicts = 0;
    uint64_t l1dAccesses = 0;
    uint64_t l1dMisses = 0;
    uint64_t l2Accesses = 0;
    uint64_t l2Misses = 0;
    uint64_t l3Accesses = 0;
    uint64_t l3Misses = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    double
    mpki(uint64_t events) const
    {
        return instructions ? 1000.0 * static_cast<double>(events) /
                                  static_cast<double>(instructions)
                            : 0.0;
    }

    double branchMpki() const { return mpki(branchMispredicts); }
    double l1dMpki() const { return mpki(l1dMisses); }
    double l2Mpki() const { return mpki(l2Misses); }
    double l3Mpki() const { return mpki(l3Misses); }

    SimMetrics &operator+=(const SimMetrics &other);
    bool operator==(const SimMetrics &other) const = default;
};

/** See file comment. */
class MulticoreSim
{
  public:
    /**
     * @param prog program to simulate
     * @param exec_cfg threads / wait policy / seed (genAddresses is
     *        forced on — the timing model needs addresses)
     * @param sim_cfg microarchitecture (paper Table I defaults)
     * @param arbiter optional ReplayArbiter for constrained simulation
     */
    MulticoreSim(const Program &prog, ExecConfig exec_cfg,
                 const SimConfig &sim_cfg,
                 SyncArbiter *arbiter = nullptr);

    /**
     * Deep snapshot: copies the functional execution state, caches,
     * predictors, and core clocks. This is the "region pinball with
     * warmup": one warming pass can be checkpointed at every region
     * start, and each checkpoint simulated independently (and in
     * parallel) afterwards.
     *
     * Note: the copy aliases the original's SyncArbiter (if any); for
     * constrained snapshots give each copy its own arbiter via
     * engine().setArbiter().
     */
    MulticoreSim(const MulticoreSim &other);
    MulticoreSim &operator=(const MulticoreSim &) = delete;

    /** Detailed simulation of the whole program from the start. */
    SimMetrics run();

    /**
     * Sampled-region simulation: functionally fast-forward (warming
     * caches and predictors when `warmup`) until just past the
     * (start_pc, start_count) boundary, then simulate in detail until
     * just past (end_pc, end_count). end_pc == 0 means program end.
     */
    SimMetrics runRegion(Addr start_pc, uint64_t start_count,
                         Addr end_pc, uint64_t end_count,
                         bool warmup = true);

    /**
     * Functional fast-forward until `stop` returns true (checked after
     * every executed block); warms structures when `warm`.
     */
    void fastForward(const std::function<bool()> &stop, bool warm);

    /**
     * Fast-forward until `block` has executed at least `count` times
     * globally. Equivalent to fastForward with a blockExecCount stop
     * condition, but the bound check is inlined into the stepping loop
     * instead of going through std::function.
     */
    void fastForwardUntil(BlockId block, uint64_t count, bool warm);

    /**
     * Detailed simulation until `stop` returns true or the program
     * finishes. Stats and core clocks reset on entry.
     */
    SimMetrics runDetailed(const std::function<bool()> &stop = {});

    /**
     * Detailed simulation until `block` has executed at least `count`
     * times globally — the region-endpoint condition, devirtualized
     * (bit-identical endpoints, no per-block std::function call).
     */
    SimMetrics runDetailedUntil(BlockId block, uint64_t count);

    /**
     * runDetailedUntil with an instruction-budget watchdog: also stops
     * once `max_instrs` instructions have retired since entry, bounding
     * the cost of a divergent region whose end marker is never reached.
     * `*reached` (if given) reports whether the marker condition — not
     * the budget — terminated the run. max_instrs == 0 disables the
     * budget. When the budget does not fire, the stop decision is
     * identical to runDetailedUntil (same block, same cut point).
     */
    SimMetrics runDetailedUntilBudget(BlockId block, uint64_t count,
                                      uint64_t max_instrs,
                                      bool *reached = nullptr);

    /** Largest core-local time (cycles) since the last runDetailed
     * clock reset; usable in live stop conditions. */
    uint64_t maxCoreTime() const;

    const ExecutionEngine &engine() const { return eng; }
    ExecutionEngine &engine() { return eng; }
    const SimConfig &config() const { return simCfg; }

    /**
     * Flat image of the warm microarchitectural state — cache tag
     * arrays, LRU clocks, prefetch counter, branch-predictor tables.
     * Together with ExecutionEngine::save/load this is the complete
     * restart set of a region checkpoint: everything else (core
     * clocks, dependence rings, statistics) is reset when detailed
     * simulation enters. The layout is a pure function of the
     * configuration, so a sim built from the same Program/configs can
     * adopt an image exported by another process.
     *
     * adoptMicroarchState() binds the cache tag arrays directly into
     * `mem` (zero-copy): the memory must stay valid while the sim
     * lives, and the sim's subsequent execution mutates it in place.
     */
    size_t microarchStateBytes() const;
    void exportMicroarchState(void *mem) const;
    void adoptMicroarchState(void *mem);

  private:
    /** Shared stepping loop; `stop` is any bool() callable. */
    template <typename Stop>
    void fastForwardImpl(Stop &&stop, bool warm);

    /**
     * Event-driven detailed loop: a binary min-heap of packed
     * (coreTime, tid) keys replaces the per-step all-cores scan. Wakes
     * are driven by the engine's per-step woken-thread list, so a
     * sleeping core costs nothing until something releases it.
     */
    template <typename Stop>
    SimMetrics runDetailedImpl(Stop &&stop);

    /**
     * The original scan-based scheduler, kept verbatim as the oracle
     * for SimConfig::referenceScheduler and the golden-metrics tests.
     */
    SimMetrics runDetailedReference(const std::function<bool()> &stop);

    /** Metric assembly shared by both detailed schedulers. */
    SimMetrics collectMetrics(uint64_t icount_base,
                              uint64_t filtered_base) const;

    SimConfig simCfg;
    const Program *prog;
    ExecutionEngine eng;
    CacheHierarchy hierarchy;
    std::vector<CoreModel> cores;
    uint32_t numThreads;
};

} // namespace looppoint

#endif // LOOPPOINT_SIM_MULTICORE_HH
