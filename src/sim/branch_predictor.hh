/**
 * @file
 * Pentium M-style hybrid branch predictor (paper Table I).
 *
 * The Pentium M front end combines a bimodal predictor, a global
 * predictor, and a loop detector, selected by a meta predictor. This
 * model implements all four structures with 2-bit saturating counters
 * and a per-branch loop-trip detector, which is what the simulated
 * workloads exercise: highly regular loop back edges, data-dependent
 * diamonds, and constant runtime-library branches.
 */

#ifndef LOOPPOINT_SIM_BRANCH_PREDICTOR_HH
#define LOOPPOINT_SIM_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "isa/program.hh"

namespace looppoint {

/** Aggregate branch-prediction statistics. */
struct BranchStats
{
    uint64_t branches = 0;
    uint64_t mispredicts = 0;

    double
    missRate() const
    {
        return branches ? static_cast<double>(mispredicts) /
                              static_cast<double>(branches)
                        : 0.0;
    }
};

/** See file comment. */
class PentiumMBranchPredictor
{
  public:
    PentiumMBranchPredictor();

    /**
     * Predict and train on one dynamic branch.
     * @return true if the prediction was correct.
     */
    bool predictAndTrain(Addr pc, bool taken);

    const BranchStats &stats() const { return bpStats; }
    void resetStats() { bpStats = BranchStats{}; }

    /**
     * Flat image of the predictor's learned state (tables + global
     * history; stats excluded — detailed simulation resets them on
     * entry). Both sides derive the fixed size from the table
     * geometry, so the image is position-independent.
     */
    size_t stateBytes() const;
    void exportState(void *mem) const;
    void importState(const void *mem);

  private:
    static constexpr uint32_t kBimodalBits = 12;
    static constexpr uint32_t kGlobalBits = 12;
    static constexpr uint32_t kMetaBits = 12;
    static constexpr uint32_t kLoopBits = 9;
    static constexpr uint32_t kHistoryBits = 12;

    static bool counterTaken(uint8_t c) { return c >= 2; }
    static uint8_t
    counterUpdate(uint8_t c, bool taken)
    {
        if (taken)
            return c < 3 ? c + 1 : 3;
        return c > 0 ? c - 1 : 0;
    }

    struct LoopEntry
    {
        uint32_t tag = 0;
        uint32_t tripCount = 0;   ///< learned trip count
        uint32_t currentIter = 0; ///< iterations seen this visit
        uint8_t confidence = 0;
        bool valid = false;
    };

    std::vector<uint8_t> bimodal;
    std::vector<uint8_t> global;
    std::vector<uint8_t> meta; ///< 0-1 prefer bimodal, 2-3 prefer global
    std::vector<LoopEntry> loop;
    uint32_t history = 0;
    BranchStats bpStats;
};

} // namespace looppoint

#endif // LOOPPOINT_SIM_BRANCH_PREDICTOR_HH
