/**
 * @file
 * Set-associative caches and the three-level hierarchy of paper
 * Table I: private L1-I/L1-D/L2 per core, one shared inclusive L3,
 * LRU replacement, write-invalidate coherence between the private
 * levels via the L3 sharer vector.
 *
 * Hot-path design: line and set derivation use precomputed shift/mask
 * (all geometries are powers of two, asserted at construction), and
 * each set keeps its ways in recency order — most recently used first,
 * invalid ways at the tail. The common temporal-locality hit is a
 * single compare against way 0, the victim of a full set is always the
 * last way, and invalid-way search never scans past the valid prefix.
 * The ordering is observationally identical to classic timestamp LRU.
 */

#ifndef LOOPPOINT_SIM_CACHE_HH
#define LOOPPOINT_SIM_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "isa/program.hh"
#include "sim/config.hh"

namespace looppoint {

/** Hit/miss counters for one cache. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/**
 * One set-associative LRU cache. Tags only — no data storage. The
 * optional sharer vector (enabled for the L3) tracks which cores hold
 * a copy, supporting inclusive coherence.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Look up and allocate on miss (LRU victim).
     * @param core requesting core (for sharer tracking)
     * @param evicted receives the victim line address when a valid
     *        line was displaced; left untouched otherwise. An
     *        engaged optional is unambiguous even for a line at
     *        address 0.
     * @return true on hit
     */
    bool access(Addr addr, uint32_t core, bool is_write,
                std::optional<Addr> *evicted);

    /**
     * Insert a line without touching demand statistics (prefetch
     * fill). Returns the evicted line address, or nullopt when no
     * valid line was displaced (including the already-resident case).
     */
    std::optional<Addr> fill(Addr addr, uint32_t core);

    /** Remove a line if present; returns true if it was. */
    bool invalidate(Addr addr);

    /** True if the line is resident (no LRU update, no stats). */
    bool contains(Addr addr) const;

    /** Sharer bitmask of a resident line (L3 only); 0 if absent. */
    uint64_t sharers(Addr addr) const;

    /** Drop a core from a line's sharer set. */
    void removeSharer(Addr addr, uint32_t core);

    const CacheStats &stats() const { return cacheStats; }
    void resetStats() { cacheStats = CacheStats{}; }
    const CacheConfig &config() const { return cfg; }

    // Copying deep-copies the line array into owned storage, whichever
    // backing the source used; see bindExternalLines().
    Cache(const Cache &other);
    Cache &operator=(const Cache &other);

    /** Size of the tag array in bytes (fixed by the geometry). */
    size_t
    linesBytes() const
    {
        return lineCount * sizeof(Line);
    }

    /** memcpy the tag array into `dst` (linesBytes() bytes). */
    void exportLines(void *dst) const;

    /**
     * Back the tag array with caller-owned memory (linesBytes() bytes,
     * 8-byte aligned) instead of the internal vector, releasing the
     * latter. The memory must hold a valid exported tag array and must
     * outlive the cache (or the next bind). This is how a region-farm
     * worker simulates directly in a shipped shared-memory checkpoint
     * without copying it again.
     */
    void bindExternalLines(void *mem);

    /** LRU clock accessors, shipped alongside the tag array. */
    uint64_t lruClockValue() const { return lruClock; }
    void setLruClock(uint64_t v) { lruClock = v; }

  private:
    struct Line
    {
        Addr tag = 0;
        uint64_t lru = 0;
        uint64_t sharerMask = 0;
        bool valid = false;
    };

    uint64_t lineAddr(Addr addr) const { return addr >> lineShift; }
    uint32_t setIndex(uint64_t line) const
    {
        return static_cast<uint32_t>(line) & setMask;
    }
    Line *set(Addr addr)
    {
        return &lines[static_cast<size_t>(setIndex(lineAddr(addr))) *
                      cfg.assoc];
    }
    const Line *set(Addr addr) const
    {
        return &lines[static_cast<size_t>(setIndex(lineAddr(addr))) *
                      cfg.assoc];
    }

    CacheConfig cfg;
    uint32_t numSets;
    uint32_t lineShift; ///< log2(lineBytes)
    uint32_t setMask;   ///< numSets - 1
    size_t lineCount;   ///< numSets x assoc
    /** Backing store when the cache owns its tag array (the default);
     * empty after bindExternalLines(). */
    std::vector<Line> ownedLines;
    /** The live tag array, recency-ordered per set: ownedLines.data()
     * or externally bound memory. All access paths index through this
     * pointer, so binding costs nothing on the hot path. */
    Line *lines = nullptr;
    uint64_t lruClock = 0;
    CacheStats cacheStats;
};

/** Result of one hierarchy access. */
struct MemAccessResult
{
    uint32_t latency = 0;
    /** Deepest level that hit: 1=L1, 2=L2, 3=L3, 4=memory. */
    uint32_t hitLevel = 1;
};

/**
 * The full cache hierarchy. Coherence model: on a write, other cores'
 * private copies are invalidated (write-invalidate); the L3 is
 * inclusive of all private caches, so an L3 eviction back-invalidates
 * the private levels.
 */
class CacheHierarchy
{
  public:
    CacheHierarchy(const SimConfig &cfg, uint32_t num_cores);

    /** Data access from `core`. */
    MemAccessResult access(uint32_t core, Addr addr, bool is_write);

    /** Instruction fetch for one block. */
    MemAccessResult fetch(uint32_t core, Addr pc);

    /** Warm the hierarchy without timing (functional warmup). */
    void warmAccess(uint32_t core, Addr addr, bool is_write);
    void warmFetch(uint32_t core, Addr pc);

    /** Prefetches issued into the L2s (demand-miss triggered). */
    uint64_t prefetchesIssued() const { return prefetchCount; }

    const CacheStats &l1dStats(uint32_t core) const;
    const CacheStats &l1iStats(uint32_t core) const;
    const CacheStats &l2Stats(uint32_t core) const;
    const CacheStats &l3Stats() const;
    uint64_t memAccesses() const { return memCount; }

    void resetStats();

    /**
     * Flat checkpoint image of the warm hierarchy — every tag array
     * plus the per-cache LRU clocks and the cumulative prefetch
     * counter (stats are excluded: detailed simulation resets them on
     * entry). The layout is a pure function of the geometry, so two
     * hierarchies built from the same SimConfig and core count agree
     * on it. adoptState() binds the tag arrays directly into `mem`
     * (zero-copy; see Cache::bindExternalLines) — the memory must
     * outlive the hierarchy or the next adopt.
     */
    size_t stateBytes() const;
    void exportState(void *mem) const;
    void adoptState(void *mem);

  private:
    void invalidateOthers(uint32_t core, Addr addr);
    void backInvalidate(Addr addr);

    SimConfig cfg;
    uint32_t numCores;
    std::vector<Cache> l1d;
    std::vector<Cache> l1i;
    std::vector<Cache> l2;
    Cache l3;
    /** Cumulative latency per hit level (index hitLevel - 1). */
    uint32_t dataLat[4];
    uint32_t fetchLat[4];
    uint64_t memCount = 0;
    uint64_t prefetchCount = 0;
};

} // namespace looppoint

#endif // LOOPPOINT_SIM_CACHE_HH
