#include "sim/config.hh"

#include "util/logging.hh"

namespace looppoint {

namespace {

std::string
cacheLine(const char *name, const CacheConfig &c)
{
    return strFormat("  %-16s %uK, %u-way, %uB lines, LRU, %u-cycle\n",
                     name, c.sizeBytes / 1024, c.assoc, c.lineBytes,
                     c.latency);
}

} // namespace

std::string
SimConfig::describe() const
{
    std::string s;
    s += strFormat("  %-16s %s\n", "Core",
                   coreType == CoreType::OutOfOrder
                       ? "out-of-order (Gainestown-like)"
                       : "in-order");
    s += strFormat("  %-16s %.2f GHz, %u-entry ROB, width %u\n",
                   "Pipeline", freqGHz, robSize, dispatchWidth);
    s += strFormat("  %-16s Pentium M-style hybrid, %u-cycle penalty\n",
                   "Branch pred.", branchMispredictPenalty);
    s += cacheLine("L1-I cache", l1i);
    s += cacheLine("L1-D cache", l1d);
    s += cacheLine("L2 cache", l2);
    s += cacheLine("L3 cache", l3);
    s += strFormat("  %-16s %u cycles\n", "DRAM", memLatency);
    return s;
}

} // namespace looppoint
