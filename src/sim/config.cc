#include "sim/config.hh"

#include "util/fingerprint.hh"
#include "util/logging.hh"

namespace looppoint {

namespace {

std::string
cacheLine(const char *name, const CacheConfig &c)
{
    return strFormat("  %-16s %uK, %u-way, %uB lines, LRU, %u-cycle\n",
                     name, c.sizeBytes / 1024, c.assoc, c.lineBytes,
                     c.latency);
}

} // namespace

std::string
SimConfig::describe() const
{
    std::string s;
    s += strFormat("  %-16s %s\n", "Core",
                   coreType == CoreType::OutOfOrder
                       ? "out-of-order (Gainestown-like)"
                       : "in-order");
    s += strFormat("  %-16s %.2f GHz, %u-entry ROB, width %u\n",
                   "Pipeline", freqGHz, robSize, dispatchWidth);
    s += strFormat("  %-16s Pentium M-style hybrid, %u-cycle penalty\n",
                   "Branch pred.", branchMispredictPenalty);
    s += cacheLine("L1-I cache", l1i);
    s += cacheLine("L1-D cache", l1d);
    s += cacheLine("L2 cache", l2);
    s += cacheLine("L3 cache", l3);
    s += strFormat("  %-16s %u cycles\n", "DRAM", memLatency);
    return s;
}

std::string
SimConfig::uarchKeyText() const
{
    FingerprintBuilder fp("uarch-v1");
    fp.field("core",
             coreType == CoreType::OutOfOrder ? "ooo" : "inorder")
        .fieldDouble("freq_ghz", freqGHz)
        .field("rob", robSize)
        .field("width", dispatchWidth)
        .field("bp_penalty", branchMispredictPenalty)
        .field("prefetch", prefetchDegree);
    auto cache = [&](const char *name, const CacheConfig &c) {
        fp.field(std::string(name) + "_size", c.sizeBytes)
            .field(std::string(name) + "_assoc", c.assoc)
            .field(std::string(name) + "_line", c.lineBytes)
            .field(std::string(name) + "_lat", c.latency);
    };
    cache("l1i", l1i);
    cache("l1d", l1d);
    cache("l2", l2);
    cache("l3", l3);
    fp.field("mem_lat", memLatency)
        .field("lat_int_alu", latIntAlu)
        .field("lat_int_mul", latIntMul)
        .field("lat_int_div", latIntDiv)
        .field("lat_fp_add", latFpAdd)
        .field("lat_fp_mul", latFpMul)
        .field("lat_fp_div", latFpDiv)
        .field("lat_branch", latBranch)
        .field("lat_atomic_extra", latAtomicExtra);
    return fp.text();
}

void
applyUarchPreset(SimConfig &cfg, const std::string &name)
{
    if (name == "baseline") {
        // Table I as-is.
    } else if (name == "big-l2") {
        cfg.l2.sizeBytes = 1024 * 1024;
        cfg.l2.latency = 12;
    } else if (name == "small-rob") {
        cfg.robSize = 64;
    } else if (name == "slow-mem") {
        cfg.memLatency = 300;
    } else if (name == "prefetch") {
        cfg.prefetchDegree = 2;
    } else if (name == "narrow") {
        cfg.dispatchWidth = 2;
    } else if (name == "inorder") {
        cfg.coreType = CoreType::InOrder;
    } else {
        fatal("unknown uarch preset '%s' (expected one of: %s)",
              name.c_str(), uarchPresetNames().c_str());
    }
}

std::string
uarchPresetNames()
{
    return "baseline,big-l2,small-rob,slow-mem,prefetch,narrow,inorder";
}

} // namespace looppoint
