#include "sim/multicore.hh"

#include <algorithm>
#include <limits>

#include "util/logging.hh"

namespace looppoint {

SimMetrics &
SimMetrics::operator+=(const SimMetrics &other)
{
    cycles += other.cycles;
    instructions += other.instructions;
    filteredInstructions += other.filteredInstructions;
    runtimeSeconds += other.runtimeSeconds;
    branches += other.branches;
    branchMispredicts += other.branchMispredicts;
    l1dAccesses += other.l1dAccesses;
    l1dMisses += other.l1dMisses;
    l2Accesses += other.l2Accesses;
    l2Misses += other.l2Misses;
    l3Accesses += other.l3Accesses;
    l3Misses += other.l3Misses;
    return *this;
}

namespace {

ExecConfig
withAddresses(ExecConfig cfg)
{
    cfg.genAddresses = true;
    return cfg;
}

} // namespace

MulticoreSim::MulticoreSim(const Program &prog_, ExecConfig exec_cfg,
                           const SimConfig &sim_cfg, SyncArbiter *arbiter)
    : simCfg(sim_cfg), prog(&prog_),
      eng(prog_, withAddresses(exec_cfg), arbiter),
      hierarchy(sim_cfg, exec_cfg.numThreads),
      numThreads(exec_cfg.numThreads)
{
    for (uint32_t c = 0; c < numThreads; ++c)
        cores.emplace_back(simCfg, c, hierarchy);
}

MulticoreSim::MulticoreSim(const MulticoreSim &other)
    : simCfg(other.simCfg), prog(other.prog), eng(other.eng),
      hierarchy(other.hierarchy), cores(other.cores),
      numThreads(other.numThreads)
{
    for (auto &core : cores)
        core.rebindHierarchy(hierarchy);
}

size_t
MulticoreSim::microarchStateBytes() const
{
    size_t bytes = hierarchy.stateBytes();
    for (const auto &core : cores)
        bytes += core.predictor().stateBytes();
    return bytes;
}

void
MulticoreSim::exportMicroarchState(void *mem) const
{
    hierarchy.exportState(mem);
    auto *p = static_cast<unsigned char *>(mem) +
              hierarchy.stateBytes();
    for (const auto &core : cores) {
        core.predictor().exportState(p);
        p += core.predictor().stateBytes();
    }
}

void
MulticoreSim::adoptMicroarchState(void *mem)
{
    hierarchy.adoptState(mem);
    auto *p = static_cast<unsigned char *>(mem) +
              hierarchy.stateBytes();
    for (auto &core : cores) {
        core.predictor().importState(p);
        p += core.predictor().stateBytes();
    }
}

namespace {

struct NeverStop
{
    bool operator()() const { return false; }
};

} // namespace

template <typename Stop>
void
MulticoreSim::fastForwardImpl(Stop &&stop, bool warm)
{
    // Flow-controlled functional execution, mirroring the profiling
    // schedule. The boundary markers are (PC, count) pairs whose global
    // counts are schedule-invariant, so positioning under this schedule
    // is equivalent to positioning under the timing schedule.
    const uint64_t quantum = 1000;
    while (!eng.allFinished()) {
        if (stop())
            return;
        bool progressed = false;
        for (uint32_t tid = 0; tid < numThreads; ++tid) {
            if (!eng.runnable(tid))
                continue;
            uint64_t start = eng.icount(tid);
            while (eng.icount(tid) - start < quantum) {
                StepResult r = eng.step(tid);
                if (r.kind != StepResult::Kind::Block)
                    break;
                progressed = true;
                if (warm) {
                    cores[tid].warmBlock(prog->blocks[r.block],
                                         eng.memRefs(tid),
                                         eng.branchTaken(tid));
                }
                if (stop())
                    return;
            }
        }
        if (!progressed && !eng.allFinished())
            panic("MulticoreSim::fastForward: no thread can progress");
    }
}

void
MulticoreSim::fastForward(const std::function<bool()> &stop, bool warm)
{
    if (stop)
        fastForwardImpl([&stop] { return stop(); }, warm);
    else
        fastForwardImpl(NeverStop{}, warm);
}

void
MulticoreSim::fastForwardUntil(BlockId block, uint64_t count, bool warm)
{
    fastForwardImpl(
        [this, block, count] {
            return eng.blockExecCount(block) >= count;
        },
        warm);
}

template <typename Stop>
SimMetrics
MulticoreSim::runDetailedImpl(Stop &&stop)
{
    // Align clocks and reset statistics at the region start.
    hierarchy.resetStats();
    for (auto &core : cores) {
        core.resetTime();
        core.resetStats();
    }
    const uint64_t icount_base = eng.globalIcount();
    const uint64_t filtered_base = eng.globalFilteredIcount();

    // Event queue of runnable threads, keyed on (coreTime, tid) packed
    // into one uint64: the min element is the thread the reference
    // scheduler's scan would pick (lowest time, ties to lowest tid).
    // Entries never go stale: an enqueued core's time changes only when
    // it is popped and stepped, and sleeping cores leave the queue
    // until a step's woken-thread list readmits them.
    std::vector<char> asleep(numThreads, 0);
    std::vector<uint64_t> heap;
    heap.reserve(numThreads);
    auto push = [&](uint32_t tid) {
        const uint64_t t = cores[tid].time();
        LP_ASSERT(t < (1ull << 56));
        heap.push_back((t << 8) | tid);
        std::push_heap(heap.begin(), heap.end(), std::greater<>{});
    };
    // Restore the min-heap property after heap[0] changed: cheaper
    // than a pop+push pair for the common case where the stepped core
    // stays near the top.
    auto siftDownRoot = [&] {
        const size_t n = heap.size();
        const uint64_t v = heap[0];
        size_t i = 0;
        for (;;) {
            size_t child = 2 * i + 1;
            if (child >= n)
                break;
            if (child + 1 < n && heap[child + 1] < heap[child])
                ++child;
            if (heap[child] >= v)
                break;
            heap[i] = heap[child];
            i = child;
        }
        heap[i] = v;
    };
    // Threads may already be blocked or finished on entry (region
    // simulation resumes from mid-execution checkpoints).
    for (uint32_t tid = 0; tid < numThreads; ++tid) {
        if (eng.finished(tid))
            continue;
        if (!eng.runnable(tid)) {
            asleep[tid] = 1;
            continue;
        }
        push(tid);
    }

    bool done = false;
    while (!done) {
        if (heap.empty()) {
            if (eng.allFinished())
                break;
            // Everyone is asleep or finished: wake the runnable ones
            // (a prior step may have released them).
            bool woke = false;
            for (uint32_t tid = 0; tid < numThreads; ++tid) {
                if (asleep[tid] && eng.runnable(tid)) {
                    asleep[tid] = 0;
                    push(tid);
                    woke = true;
                }
            }
            if (!woke)
                panic("MulticoreSim: deadlock in detailed mode");
            continue;
        }

        // The heap minimum is the thread to step (lowest time, ties to
        // lowest tid); peek without popping.
        const uint32_t best = static_cast<uint32_t>(heap[0] & 0xff);

        StepResult r = eng.step(best);
        switch (r.kind) {
          case StepResult::Kind::Block: {
            cores[best].executeBlock(prog->blocks[r.block],
                                     eng.memRefs(best),
                                     eng.branchTaken(best));
            const uint64_t now = cores[best].time();
            LP_ASSERT(now < (1ull << 56));
            heap[0] = (now << 8) | best;
            siftDownRoot();
            // Wake threads this step released; they resume at the
            // waker's current time.
            if (!eng.wokenThreads().empty()) {
                for (uint32_t tid : eng.wokenThreads()) {
                    if (asleep[tid]) {
                        asleep[tid] = 0;
                        cores[tid].advanceTo(now);
                        push(tid);
                    }
                }
            }
            if (stop())
                done = true;
            break;
          }
          case StepResult::Kind::Blocked:
          case StepResult::Kind::Finished:
            if (r.kind == StepResult::Kind::Blocked)
                asleep[best] = 1;
            heap[0] = heap.back();
            heap.pop_back();
            if (!heap.empty())
                siftDownRoot();
            break;
        }
    }
    return collectMetrics(icount_base, filtered_base);
}

SimMetrics
MulticoreSim::runDetailed(const std::function<bool()> &stop)
{
    if (simCfg.referenceScheduler)
        return runDetailedReference(stop);
    if (stop)
        return runDetailedImpl([&stop] { return stop(); });
    return runDetailedImpl(NeverStop{});
}

SimMetrics
MulticoreSim::runDetailedUntil(BlockId block, uint64_t count)
{
    auto at_end = [this, block, count] {
        return eng.blockExecCount(block) >= count;
    };
    if (simCfg.referenceScheduler)
        return runDetailedReference(at_end);
    return runDetailedImpl(at_end);
}

SimMetrics
MulticoreSim::runDetailedUntilBudget(BlockId block, uint64_t count,
                                     uint64_t max_instrs, bool *reached)
{
    if (max_instrs == 0) {
        SimMetrics m = runDetailedUntil(block, count);
        if (reached)
            *reached = eng.blockExecCount(block) >= count;
        return m;
    }
    uint64_t limit;
    if (__builtin_add_overflow(eng.globalIcount(), max_instrs, &limit))
        limit = std::numeric_limits<uint64_t>::max();
    auto at_end = [this, block, count, limit] {
        return eng.blockExecCount(block) >= count ||
               eng.globalIcount() >= limit;
    };
    SimMetrics m = simCfg.referenceScheduler
                       ? runDetailedReference(at_end)
                       : runDetailedImpl(at_end);
    if (reached)
        *reached = eng.blockExecCount(block) >= count;
    return m;
}

SimMetrics
MulticoreSim::runDetailedReference(const std::function<bool()> &stop)
{
    // Align clocks and reset statistics at the region start.
    hierarchy.resetStats();
    for (auto &core : cores) {
        core.resetTime();
        core.resetStats();
    }
    const uint64_t icount_base = eng.globalIcount();
    const uint64_t filtered_base = eng.globalFilteredIcount();

    std::vector<char> asleep(numThreads, 0);
    bool done = false;
    while (!done) {
        // Pick the runnable thread with the smallest core-local time.
        uint32_t best = numThreads;
        uint64_t best_time = std::numeric_limits<uint64_t>::max();
        for (uint32_t tid = 0; tid < numThreads; ++tid) {
            if (eng.finished(tid) || asleep[tid])
                continue;
            if (!eng.runnable(tid)) {
                asleep[tid] = 1;
                continue;
            }
            uint64_t t = cores[tid].time();
            if (t < best_time) {
                best_time = t;
                best = tid;
            }
        }
        if (best == numThreads) {
            if (eng.allFinished())
                break;
            // Everyone is asleep or finished: wake the runnable ones
            // (a prior step may have released them).
            bool woke = false;
            for (uint32_t tid = 0; tid < numThreads; ++tid) {
                if (asleep[tid] && eng.runnable(tid)) {
                    asleep[tid] = 0;
                    woke = true;
                }
            }
            if (!woke)
                panic("MulticoreSim: deadlock in detailed mode");
            continue;
        }

        StepResult r = eng.step(best);
        switch (r.kind) {
          case StepResult::Kind::Block: {
            cores[best].executeBlock(prog->blocks[r.block],
                                     eng.memRefs(best),
                                     eng.branchTaken(best));
            // Wake threads this step may have released; they resume at
            // the waker's current time.
            uint64_t now = cores[best].time();
            for (uint32_t tid = 0; tid < numThreads; ++tid) {
                if (asleep[tid] && eng.runnable(tid)) {
                    asleep[tid] = 0;
                    cores[tid].advanceTo(now);
                }
            }
            if (stop && stop())
                done = true;
            break;
          }
          case StepResult::Kind::Blocked:
            asleep[best] = 1;
            break;
          case StepResult::Kind::Finished:
            break;
        }
    }
    return collectMetrics(icount_base, filtered_base);
}

SimMetrics
MulticoreSim::collectMetrics(uint64_t icount_base,
                             uint64_t filtered_base) const
{
    SimMetrics m;
    for (uint32_t tid = 0; tid < numThreads; ++tid) {
        m.cycles = std::max({m.cycles, cores[tid].time(),
                             cores[tid].lastCompletion()});
        m.branches += cores[tid].branchStats().branches;
        m.branchMispredicts += cores[tid].branchStats().mispredicts;
        m.l1dAccesses += hierarchy.l1dStats(tid).accesses;
        m.l1dMisses += hierarchy.l1dStats(tid).misses;
        m.l2Accesses += hierarchy.l2Stats(tid).accesses;
        m.l2Misses += hierarchy.l2Stats(tid).misses;
    }
    m.l3Accesses = hierarchy.l3Stats().accesses;
    m.l3Misses = hierarchy.l3Stats().misses;
    m.instructions = eng.globalIcount() - icount_base;
    m.filteredInstructions = eng.globalFilteredIcount() - filtered_base;
    m.runtimeSeconds =
        static_cast<double>(m.cycles) / (simCfg.freqGHz * 1e9);
    return m;
}

uint64_t
MulticoreSim::maxCoreTime() const
{
    uint64_t t = 0;
    for (const auto &core : cores)
        t = std::max({t, core.time(), core.lastCompletion()});
    return t;
}

SimMetrics
MulticoreSim::run()
{
    return runDetailed();
}

SimMetrics
MulticoreSim::runRegion(Addr start_pc, uint64_t start_count,
                        Addr end_pc, uint64_t end_count, bool warmup)
{
    // Resolve marker PCs to blocks once.
    BlockId start_block = kInvalidBlock;
    BlockId end_block = kInvalidBlock;
    for (const auto &bb : prog->blocks) {
        if (start_pc != 0 && bb.pc == start_pc)
            start_block = bb.id;
        if (end_pc != 0 && bb.pc == end_pc)
            end_block = bb.id;
    }
    if (start_pc != 0 && start_block == kInvalidBlock)
        fatal("runRegion: no block at start pc %#llx",
              static_cast<unsigned long long>(start_pc));
    if (end_pc != 0 && end_block == kInvalidBlock)
        fatal("runRegion: no block at end pc %#llx",
              static_cast<unsigned long long>(end_pc));

    // A boundary (pc, n) sits just before the n-th execution of pc.
    // We cut just *after* the n-th execution instead: loop-header
    // executions are bursty, so "after the (n-1)-th" can be a long way
    // (a whole kernel invocation) before the intended point, while
    // "after the n-th" is off by exactly one marker block (a few
    // instructions). Both region ends use the same convention, so the
    // regions still tile the execution exactly.
    if (start_pc != 0 && start_count > 0)
        fastForwardUntil(start_block, start_count, warmup);

    if (end_pc == 0)
        return runDetailed();
    return runDetailedUntil(end_block, end_count);
}

} // namespace looppoint
