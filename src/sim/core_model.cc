#include "sim/core_model.hh"

#include <algorithm>

#include "util/logging.hh"

namespace looppoint {

CoreModel::CoreModel(const SimConfig &cfg_, uint32_t core_id,
                     CacheHierarchy &hierarchy_)
    : cfg(cfg_), coreId(core_id), hierarchy(&hierarchy_),
      inOrder(cfg_.coreType == CoreType::InOrder),
      ring(kRing, 0)
{
    for (size_t op = 0; op < kNumOpClasses; ++op)
        latTable[op] = opLatency(static_cast<OpClass>(op));
}

uint32_t
CoreModel::opLatency(OpClass op) const
{
    switch (op) {
      case OpClass::IntAlu: return cfg.latIntAlu;
      case OpClass::IntMul: return cfg.latIntMul;
      case OpClass::IntDiv: return cfg.latIntDiv;
      case OpClass::FpAdd: return cfg.latFpAdd;
      case OpClass::FpMul: return cfg.latFpMul;
      case OpClass::FpDiv: return cfg.latFpDiv;
      case OpClass::Branch: return cfg.latBranch;
      default: return 1;
    }
}

void
CoreModel::executeBlock(const BasicBlock &bb,
                        const std::vector<MemRef> &refs,
                        bool branch_taken)
{
    ++coreStats.blocks;

    // Instruction fetch: an I-cache miss stalls the front end.
    MemAccessResult fetch = hierarchy->fetch(coreId, bb.pc);
    if (fetch.latency > cfg.l1i.latency)
        dispatchCycle += static_cast<double>(fetch.latency -
                                             cfg.l1i.latency);

    // Loop-invariant configuration and simulation state live in locals
    // for the duration of the block: the hierarchy and predictor calls
    // inside the loop are opaque to the compiler, which would otherwise
    // reload the members around every call.
    const double width_step = 1.0 / cfg.dispatchWidth;
    const bool in_order = inOrder;
    const uint64_t rob_size = cfg.robSize;
    const uint32_t atomic_extra = cfg.latAtomicExtra;
    const double mispredict_penalty =
        static_cast<double>(cfg.branchMispredictPenalty);
    const InstrDesc *instrs = bb.instrs.data();
    const size_t num_instrs = bb.instrs.size();
    const MemRef *ref_data = refs.data();
    const size_t num_refs = refs.size();
    uint64_t *ring_data = ring.data();
    size_t ref_cursor = 0;
    double dispatch_cycle = dispatchCycle;
    uint64_t max_completion = maxCompletion;
    uint64_t sequence = seq;

    for (size_t i = 0; i < num_instrs; ++i) {
        const InstrDesc &d = instrs[i];
        double dispatch = dispatch_cycle;

        // The ROB bounds how far dispatch runs ahead of the oldest
        // incomplete instruction.
        if (!in_order && sequence >= rob_size) {
            uint64_t oldest = ring_data[(sequence - rob_size) % kRing];
            dispatch = std::max(dispatch, static_cast<double>(oldest));
        }

        // Register dependences through the completion ring.
        double ready = dispatch;
        if (d.srcDist1 && d.srcDist1 <= sequence) {
            uint64_t t = ring_data[(sequence - d.srcDist1) % kRing];
            ready = std::max(ready, static_cast<double>(t));
        }
        if (d.srcDist2 && d.srcDist2 <= sequence) {
            uint64_t t = ring_data[(sequence - d.srcDist2) % kRing];
            ready = std::max(ready, static_cast<double>(t));
        }

        uint64_t latency;
        if (isMemOp(d.op)) {
            MemRef ref{};
            if (ref_cursor < num_refs &&
                ref_data[ref_cursor].instrIndex == i) {
                ref = ref_data[ref_cursor];
                ++ref_cursor;
            }
            MemAccessResult mr =
                hierarchy->access(coreId, ref.addr, isMemWrite(d.op));
            if (d.op == OpClass::Store) {
                // Stores retire through the store buffer: one cycle to
                // issue; the cache access happens in the background.
                latency = 1;
            } else if (d.op == OpClass::AtomicRmw) {
                latency = mr.latency + atomic_extra;
            } else {
                latency = mr.latency;
            }
        } else {
            latency = latTable[static_cast<size_t>(d.op)];
        }

        double completion = ready + static_cast<double>(latency);
        ring_data[sequence % kRing] = static_cast<uint64_t>(completion);
        ++sequence;
        max_completion = std::max(max_completion,
                                  static_cast<uint64_t>(completion));

        if (in_order) {
            // Issue in order: a stalled instruction stalls dispatch.
            dispatch_cycle = std::max(dispatch_cycle + width_step, ready);
        } else {
            dispatch_cycle = dispatch + width_step;
        }

        if (d.op == OpClass::Branch) {
            Addr pc = bb.pc + 4 * static_cast<Addr>(i);
            bool correct = bp.predictAndTrain(pc, branch_taken);
            if (!correct) {
                // Redirect: the front end resumes after resolution.
                dispatch_cycle = std::max(
                    dispatch_cycle, completion + mispredict_penalty);
            }
        }
    }

    dispatchCycle = dispatch_cycle;
    maxCompletion = max_completion;
    seq = sequence;
    coreStats.instructions += num_instrs;
}

void
CoreModel::warmBlock(const BasicBlock &bb,
                     const std::vector<MemRef> &refs, bool branch_taken)
{
    hierarchy->warmFetch(coreId, bb.pc);
    size_t ref_cursor = 0;
    for (size_t i = 0; i < bb.instrs.size(); ++i) {
        const InstrDesc &d = bb.instrs[i];
        if (isMemOp(d.op)) {
            if (ref_cursor < refs.size() &&
                refs[ref_cursor].instrIndex == i) {
                hierarchy->warmAccess(coreId, refs[ref_cursor].addr,
                                     isMemWrite(d.op));
                ++ref_cursor;
            }
        } else if (d.op == OpClass::Branch) {
            Addr pc = bb.pc + 4 * static_cast<Addr>(i);
            bp.predictAndTrain(pc, branch_taken);
        }
    }
}

void
CoreModel::advanceTo(uint64_t cycle)
{
    dispatchCycle = std::max(dispatchCycle, static_cast<double>(cycle));
}

void
CoreModel::resetTime()
{
    dispatchCycle = 0.0;
    maxCompletion = 0;
    seq = 0;
    std::fill(ring.begin(), ring.end(), 0);
}

} // namespace looppoint
