#include "sim/core_model.hh"

#include <algorithm>

#include "util/logging.hh"

namespace looppoint {

CoreModel::CoreModel(const SimConfig &cfg_, uint32_t core_id,
                     CacheHierarchy &hierarchy_)
    : cfg(cfg_), coreId(core_id), hierarchy(&hierarchy_),
      inOrder(cfg_.coreType == CoreType::InOrder),
      ring(kRing, 0)
{}

uint32_t
CoreModel::opLatency(OpClass op) const
{
    switch (op) {
      case OpClass::IntAlu: return cfg.latIntAlu;
      case OpClass::IntMul: return cfg.latIntMul;
      case OpClass::IntDiv: return cfg.latIntDiv;
      case OpClass::FpAdd: return cfg.latFpAdd;
      case OpClass::FpMul: return cfg.latFpMul;
      case OpClass::FpDiv: return cfg.latFpDiv;
      case OpClass::Branch: return cfg.latBranch;
      default: return 1;
    }
}

void
CoreModel::executeBlock(const BasicBlock &bb,
                        const std::vector<MemRef> &refs,
                        bool branch_taken)
{
    ++coreStats.blocks;

    // Instruction fetch: an I-cache miss stalls the front end.
    MemAccessResult fetch = hierarchy->fetch(coreId, bb.pc);
    if (fetch.latency > cfg.l1i.latency)
        dispatchCycle += static_cast<double>(fetch.latency -
                                             cfg.l1i.latency);

    const double width_step = 1.0 / cfg.dispatchWidth;
    size_t ref_cursor = 0;

    for (size_t i = 0; i < bb.instrs.size(); ++i) {
        const InstrDesc &d = bb.instrs[i];
        double dispatch = dispatchCycle;

        // The ROB bounds how far dispatch runs ahead of the oldest
        // incomplete instruction.
        if (!inOrder && seq >= cfg.robSize) {
            uint64_t oldest = ring[(seq - cfg.robSize) % kRing];
            dispatch = std::max(dispatch, static_cast<double>(oldest));
        }

        // Register dependences through the completion ring.
        double ready = dispatch;
        if (d.srcDist1 && d.srcDist1 <= seq) {
            uint64_t t = ring[(seq - d.srcDist1) % kRing];
            ready = std::max(ready, static_cast<double>(t));
        }
        if (d.srcDist2 && d.srcDist2 <= seq) {
            uint64_t t = ring[(seq - d.srcDist2) % kRing];
            ready = std::max(ready, static_cast<double>(t));
        }

        uint64_t latency;
        if (isMemOp(d.op)) {
            MemRef ref{};
            if (ref_cursor < refs.size() &&
                refs[ref_cursor].instrIndex == i) {
                ref = refs[ref_cursor];
                ++ref_cursor;
            }
            MemAccessResult mr =
                hierarchy->access(coreId, ref.addr, isMemWrite(d.op));
            if (d.op == OpClass::Store) {
                // Stores retire through the store buffer: one cycle to
                // issue; the cache access happens in the background.
                latency = 1;
            } else if (d.op == OpClass::AtomicRmw) {
                latency = mr.latency + cfg.latAtomicExtra;
            } else {
                latency = mr.latency;
            }
        } else {
            latency = opLatency(d.op);
        }

        double completion = ready + static_cast<double>(latency);
        ring[seq % kRing] = static_cast<uint64_t>(completion);
        ++seq;
        maxCompletion = std::max(maxCompletion,
                                 static_cast<uint64_t>(completion));

        if (inOrder) {
            // Issue in order: a stalled instruction stalls dispatch.
            dispatchCycle = std::max(dispatchCycle + width_step, ready);
        } else {
            dispatchCycle = dispatch + width_step;
        }

        if (d.op == OpClass::Branch) {
            Addr pc = bb.pc + 4 * static_cast<Addr>(i);
            bool correct = bp.predictAndTrain(pc, branch_taken);
            if (!correct) {
                // Redirect: the front end resumes after resolution.
                dispatchCycle = std::max(
                    dispatchCycle,
                    completion +
                        static_cast<double>(cfg.branchMispredictPenalty));
            }
        }
    }

    coreStats.instructions += bb.numInstrs();
}

void
CoreModel::warmBlock(const BasicBlock &bb,
                     const std::vector<MemRef> &refs, bool branch_taken)
{
    hierarchy->warmFetch(coreId, bb.pc);
    size_t ref_cursor = 0;
    for (size_t i = 0; i < bb.instrs.size(); ++i) {
        const InstrDesc &d = bb.instrs[i];
        if (isMemOp(d.op)) {
            if (ref_cursor < refs.size() &&
                refs[ref_cursor].instrIndex == i) {
                hierarchy->warmAccess(coreId, refs[ref_cursor].addr,
                                     isMemWrite(d.op));
                ++ref_cursor;
            }
        } else if (d.op == OpClass::Branch) {
            Addr pc = bb.pc + 4 * static_cast<Addr>(i);
            bp.predictAndTrain(pc, branch_taken);
        }
    }
}

void
CoreModel::advanceTo(uint64_t cycle)
{
    dispatchCycle = std::max(dispatchCycle, static_cast<double>(cycle));
}

void
CoreModel::resetTime()
{
    dispatchCycle = 0.0;
    maxCompletion = 0;
    seq = 0;
    std::fill(ring.begin(), ring.end(), 0);
}

} // namespace looppoint
