/**
 * @file
 * Timing-simulation configuration. Defaults reproduce paper Table I:
 * a Gainestown-like out-of-order multicore (2.66 GHz, 128-entry ROB,
 * Pentium M branch predictor, 32K L1s, 256K L2, 8M shared L3, LRU).
 */

#ifndef LOOPPOINT_SIM_CONFIG_HH
#define LOOPPOINT_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "util/fault.hh"

namespace looppoint {

/** Core timing model selector. */
enum class CoreType : uint8_t
{
    OutOfOrder, ///< Gainestown-like (paper default)
    InOrder     ///< Fig. 5b portability study
};

/**
 * Execution backend for checkpointed region simulation: where the
 * per-region detailed simulations run. Purely a host-side knob —
 * region metrics are bit-identical across backends and worker counts.
 */
enum class ExecBackendKind : uint8_t
{
    Pool, ///< in-process work-stealing thread pool (default)
    Procs ///< coordinator + forked worker processes (src/dist)
};

/** "pool" / "procs". */
constexpr const char *
execBackendName(ExecBackendKind kind)
{
    return kind == ExecBackendKind::Procs ? "procs" : "pool";
}

/** One cache level's geometry. */
struct CacheConfig
{
    uint32_t sizeBytes = 32 * 1024;
    uint32_t assoc = 8;
    uint32_t lineBytes = 64;
    uint32_t latency = 3; ///< access latency in cycles
};

/**
 * Which guest-program analyses run alongside the pipeline. All are
 * host-side verification passes: they never alter the recorded
 * execution or the simulated metrics, so (like ObsConfig) they are
 * deliberately excluded from the run-journal fingerprint.
 */
struct AnalysisConfig
{
    /** Run the ProgramLint static verifier over program + DCFG. */
    bool lint = false;
    /** Replay with the happens-before race detector attached. */
    bool raceCheck = false;
    /** Replay with the lockset + lock-order deadlock pass attached. */
    bool lockCheck = false;
    /** Cross-check pipeline artifacts after the run (ArtifactAudit). */
    bool audit = false;
    /** Per-pass cap on emitted findings (0 = pass default). */
    uint32_t maxFindings = 0;
};

/**
 * Observability switches (src/obs). Host-side only: they select what
 * telemetry is collected, never what is simulated, so results are
 * bit-identical on or off. Deliberately excluded from
 * SimConfig::describe() — the run-journal fingerprint must not change
 * when tracing is toggled, or resume would miss valid records.
 */
struct ObsConfig
{
    bool trace = false;   ///< span tracer -> Chrome/Perfetto JSON
    bool metrics = false; ///< counters/gauges/histograms registry
};

/** Full simulated-system configuration (paper Table I). */
struct SimConfig
{
    CoreType coreType = CoreType::OutOfOrder;
    double freqGHz = 2.66;
    uint32_t robSize = 128;
    uint32_t dispatchWidth = 4;
    uint32_t branchMispredictPenalty = 14;

    /**
     * Next-line prefetch degree on L2 demand misses (0 = disabled,
     * the Table I baseline; used by the microarchitecture ablation).
     */
    uint32_t prefetchDegree = 0;

    CacheConfig l1i{32 * 1024, 4, 64, 1};
    CacheConfig l1d{32 * 1024, 8, 64, 3};
    CacheConfig l2{256 * 1024, 8, 64, 9};
    CacheConfig l3{8 * 1024 * 1024, 16, 64, 34};
    uint32_t memLatency = 175;

    // Op latencies (issue-to-result, cycles).
    uint32_t latIntAlu = 1;
    uint32_t latIntMul = 3;
    uint32_t latIntDiv = 18;
    uint32_t latFpAdd = 3;
    uint32_t latFpMul = 5;
    uint32_t latFpDiv = 20;
    uint32_t latBranch = 1;
    uint32_t latAtomicExtra = 12; ///< added to the cache latency

    /**
     * Host worker threads for checkpointed region simulation
     * (checkpoint fanout). 1 = serial, 0 = hardware concurrency (see
     * ThreadPool::resolveWorkers). Purely a host-side knob: simulated
     * results are bit-identical for any value.
     */
    uint32_t jobs = 1;

    /**
     * Execution backend for the checkpointed region simulations (see
     * ExecBackendKind). Host-side only and deliberately excluded from
     * describe(): the run-journal fingerprint must not change with the
     * backend, so --resume composes across pool and procs runs.
     */
    ExecBackendKind backend = ExecBackendKind::Pool;

    /**
     * Procs backend only: SIGKILL a worker process whose region has
     * been in flight longer than this many seconds (a wedged worker),
     * then retry the region like any other worker death. 0 disables
     * the timeout. Host-side only; excluded from describe().
     */
    double workerTimeoutSeconds = 0.0;

    /**
     * Use the straightforward scan-based core scheduler instead of the
     * event-driven heap in detailed mode. Purely a host-side knob: the
     * two schedulers make bit-identical decisions (the golden-metrics
     * tests assert it); the reference path exists as the oracle for
     * those tests and for debugging.
     */
    bool referenceScheduler = false;

    /** Optional guest-program verification passes. */
    AnalysisConfig analysis;

    /** Telemetry switches (host-side; see ObsConfig). */
    ObsConfig obs;

    /**
     * Per-region retry budget for checkpointed simulation: a region
     * whose simulation fails is re-attempted from its checkpoint up to
     * this many additional times before it is dropped and the
     * extrapolation degrades. Purely host-side: fault-free runs are
     * bit-identical for any value.
     */
    uint32_t regionRetries = 0;

    /**
     * Divergence watchdog for region simulation: a region is aborted
     * once it retires `watchdogFactor * max(filteredIcount, 10'000)`
     * instructions without reaching its end marker. 0 disables the
     * watchdog. The default leaves a wide margin over spin inflation,
     * so it only fires on genuinely divergent replays; when it does
     * not fire the simulated trajectory is untouched.
     */
    uint64_t watchdogFactor = 64;

    /**
     * Deterministic fault-injection plan (testing / chaos harness).
     * Empty in production. See FaultPlan::parse for the grammar.
     */
    FaultPlan faults;

    /** Human-readable Table I-style description. */
    std::string describe() const;

    /**
     * Canonical one-line encoding of every *result-affecting*
     * (microarchitectural) field — the config partition that keys the
     * run journal and the store's region-simulation stage. Host-side
     * knobs (jobs, backend, obs, retries, watchdog, worker timeout,
     * reference scheduler, analysis passes, fault plan) are
     * deliberately absent: flipping them never changes simulated
     * metrics, so they must never invalidate cached results. Unlike
     * describe(), this covers prefetchDegree and the op latencies —
     * the journal historically fingerprinted describe(), which missed
     * both.
     */
    std::string uarchKeyText() const;
};

/**
 * Named microarchitecture presets for campaign sweeps (lp_campaign
 * --uarch, bench/micro_store). "baseline" is Table I; the others vary
 * exactly one uarch dimension. Unknown names call fatal().
 */
void applyUarchPreset(SimConfig &cfg, const std::string &name);

/** The preset names applyUarchPreset accepts, comma-separated. */
std::string uarchPresetNames();

} // namespace looppoint

#endif // LOOPPOINT_SIM_CONFIG_HH
