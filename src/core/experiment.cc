#include "core/experiment.hh"

#include <chrono>
#include <cmath>
#include <memory>

#include "core/run_journal.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/checksum.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace looppoint {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    auto dt = std::chrono::steady_clock::now() - t0;
    return std::chrono::duration<double>(dt).count();
}

} // namespace

ExperimentResult
runExperiment(const ExperimentConfig &cfg)
{
    // Arm the process-wide telemetry before any instrumented code
    // runs. Leaving already-armed state alone lets callers (tests)
    // manage obs themselves across multiple experiments.
    Tracer &tracer = Tracer::global();
    if (cfg.sim.obs.trace && !tracer.enabled()) {
        tracer.setEnabled(true);
        tracer.nameCurrentThread("main");
    }
    if (cfg.sim.obs.metrics)
        MetricsRegistry::global().setEnabled(true);

    ScopedSpan exp_span(tracer, "experiment");
    exp_span.arg("app", cfg.app);

    const AppDescriptor &app = findApp(cfg.app);
    const uint32_t threads =
        app.effectiveThreads(cfg.requestedThreads);

    Program prog = generateProgram(app, cfg.input);

    LoopPointOptions opts = cfg.loopPoint;
    opts.numThreads = threads;
    opts.waitPolicy = cfg.waitPolicy;
    opts.jobs = cfg.jobs;
    opts.analysis = cfg.sim.analysis;
    SimConfig sim_cfg = cfg.sim;
    sim_cfg.jobs = cfg.jobs;

    ExperimentResult res;
    res.app = cfg.app;
    res.threads = threads;

    LoopPointPipeline pipeline(prog, opts);
    res.analysis = pipeline.analyze();
    res.theoreticalSerialSpeedup =
        res.analysis.theoreticalSerialSpeedup();
    res.theoreticalParallelSpeedup =
        res.analysis.theoreticalParallelSpeedup();

    // Crash-safe journal: keyed on everything that changes region
    // results (host-side knobs like jobs, retries, and the fault plan
    // are excluded, so a post-crash clean resume reuses the records).
    // Without --resume the journal only records; with it, a missing
    // or foreign journal is a hard error.
    std::unique_ptr<RunJournal> journal;
    if (!cfg.journalPath.empty()) {
        RunKey key;
        key.app = cfg.app;
        key.input = inputClassName(cfg.input);
        key.threads = threads;
        key.waitPolicy = cfg.waitPolicy == WaitPolicy::Active
                             ? "active"
                             : "passive";
        key.seed = opts.seed;
        key.constrained = cfg.constrainedRegions;
        key.simFingerprint = crc32(sim_cfg.describe());
        journal = std::make_unique<RunJournal>(cfg.journalPath, key);
        if (cfg.resume) {
            if (auto err = journal->load(/*must_exist=*/true))
                fatal("cannot resume from journal '%s': %s",
                      cfg.journalPath.c_str(),
                      err->describe().c_str());
        }
    }

    // Checkpoint-driven simulation: one warming pass snapshots the
    // simulation state at every region start; each region then runs
    // in isolation. Region wall times exclude the shared analysis
    // pass (they are what a parallel deployment of the checkpoints
    // would see); the checkpoint pass is reported separately.
    auto ckpt = pipeline.simulateRegionsCheckpointed(
        res.analysis, sim_cfg, cfg.constrainedRegions, journal.get());
    res.wallCheckpointSeconds = ckpt.checkpointWallSeconds;
    res.wallPhaseSeconds = ckpt.phaseWallSeconds;
    res.jobs = ckpt.jobs;
    res.backend = ckpt.backend;
    res.workerDeaths = ckpt.workerDeaths;
    res.workerRespawns = ckpt.workerRespawns;
    res.hostParallelSpeedup = ckpt.hostParallelSpeedup();
    res.hostParallelEfficiency = ckpt.parallelEfficiency();
    for (double wall : ckpt.regionWallSeconds) {
        res.wallRegionsTotalSeconds += wall;
        res.wallRegionsMaxSeconds =
            std::max(res.wallRegionsMaxSeconds, wall);
    }
    res.coverage = ckpt.coverage;
    res.failedRegions = ckpt.failedRegions();
    res.journalHits = ckpt.journalHits;
    std::vector<uint8_t> ok_mask = ckpt.okMask();
    for (auto &d : ckpt.diagnostics)
        res.analysis.diagnostics.push_back(std::move(d));
    res.regionMetrics = std::move(ckpt.regionMetrics);
    res.predicted = extrapolateMetrics(res.analysis, res.regionMetrics,
                                       ok_mask, sim_cfg);

    if (cfg.simulateFull) {
        ScopedSpan full_span(tracer, "phase.fullsim");
        auto t0 = std::chrono::steady_clock::now();
        res.fullSim = pipeline.simulateFull(sim_cfg);
        res.wallFullSeconds = secondsSince(t0);
        res.haveFullSim = true;
        full_span.arg("wall_seconds", res.wallFullSeconds);

        res.runtimeErrorPct = absRelErrorPct(
            res.predicted.runtimeSeconds, res.fullSim.runtimeSeconds);
        res.cyclesErrorPct = absRelErrorPct(
            res.predicted.cycles,
            static_cast<double>(res.fullSim.cycles));
        // Work-normalized MPKI (see MetricPrediction): both sides
        // divide by main-image instructions.
        auto filtered_mpki = [&](uint64_t events) {
            return res.fullSim.filteredInstructions
                       ? 1000.0 * static_cast<double>(events) /
                             static_cast<double>(
                                 res.fullSim.filteredInstructions)
                       : 0.0;
        };
        res.branchMpkiAbsDiff =
            std::fabs(res.predicted.branchMpki() -
                      filtered_mpki(res.fullSim.branchMispredicts));
        res.l2MpkiAbsDiff = std::fabs(
            res.predicted.l2Mpki() - filtered_mpki(res.fullSim.l2Misses));

        if (res.wallRegionsTotalSeconds > 0.0)
            res.actualSerialSpeedup =
                res.wallFullSeconds / res.wallRegionsTotalSeconds;
        if (res.wallRegionsMaxSeconds > 0.0)
            res.actualParallelSpeedup =
                res.wallFullSeconds / res.wallRegionsMaxSeconds;
    }
    return res;
}

} // namespace looppoint
