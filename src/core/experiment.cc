#include "core/experiment.hh"

#include <chrono>
#include <cmath>
#include <memory>

#include "core/run_journal.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "store/stage_cache.hh"
#include "util/checksum.hh"
#include "util/interrupt.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace looppoint {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    auto dt = std::chrono::steady_clock::now() - t0;
    return std::chrono::duration<double>(dt).count();
}

} // namespace

ExperimentResult
runExperiment(const ExperimentConfig &cfg)
{
    // Arm the process-wide telemetry before any instrumented code
    // runs. Leaving already-armed state alone lets callers (tests)
    // manage obs themselves across multiple experiments.
    Tracer &tracer = Tracer::global();
    if (cfg.sim.obs.trace && !tracer.enabled()) {
        tracer.setEnabled(true);
        tracer.nameCurrentThread("main");
    }
    if (cfg.sim.obs.metrics)
        MetricsRegistry::global().setEnabled(true);

    ScopedSpan exp_span(tracer, "experiment");
    exp_span.arg("app", cfg.app);

    const AppDescriptor &app = findApp(cfg.app);
    const uint32_t threads =
        app.effectiveThreads(cfg.requestedThreads);

    Program prog = generateProgram(app, cfg.input);

    LoopPointOptions opts = cfg.loopPoint;
    opts.numThreads = threads;
    opts.waitPolicy = cfg.waitPolicy;
    opts.jobs = cfg.jobs;
    opts.analysis = cfg.sim.analysis;
    SimConfig sim_cfg = cfg.sim;
    sim_cfg.jobs = cfg.jobs;

    ExperimentResult res;
    res.app = cfg.app;
    res.threads = threads;

    // Artifact store: memoize every stage of this run. The store and
    // cache outlive the pipeline that borrows them.
    std::unique_ptr<ArtifactStore> store;
    std::unique_ptr<StageCache> stage_cache;
    if (!cfg.storeDir.empty()) {
        store = std::make_unique<ArtifactStore>(cfg.storeDir);
        stage_cache = std::make_unique<StageCache>(*store);
    }

    LoopPointPipeline pipeline(prog, opts);
    pipeline.setStageCache(stage_cache.get());
    res.analysis = pipeline.analyze();
    res.theoreticalSerialSpeedup =
        res.analysis.theoreticalSerialSpeedup();
    res.theoreticalParallelSpeedup =
        res.analysis.theoreticalParallelSpeedup();

    // Crash-safe journal: keyed on everything that changes region
    // results (host-side knobs like jobs, retries, and the fault plan
    // are excluded, so a post-crash clean resume reuses the records).
    // Without --resume the journal only records; with it, a missing
    // or foreign journal is a hard error.
    std::unique_ptr<RunJournal> journal;
    if (!cfg.journalPath.empty()) {
        RunKey key = makeRunKey(cfg.app,
                                std::string(inputClassName(cfg.input)),
                                threads, cfg.waitPolicy, opts.seed,
                                cfg.constrainedRegions, sim_cfg);
        journal = std::make_unique<RunJournal>(cfg.journalPath, key);
        if (cfg.resume) {
            if (auto err = journal->load(/*must_exist=*/true))
                fatal("cannot resume from journal '%s': %s",
                      cfg.journalPath.c_str(),
                      err->describe().c_str());
        }
    }

    // Checkpoint-driven simulation: one warming pass snapshots the
    // simulation state at every region start; each region then runs
    // in isolation. Region wall times exclude the shared analysis
    // pass (they are what a parallel deployment of the checkpoints
    // would see); the checkpoint pass is reported separately.
    //
    // Sim-stage memoization: the dominant cost of a run. Keyed on the
    // cluster artifact hash + the uarch partition, so a campaign
    // re-running the same sweep point skips warming and every region
    // simulation, bit-identically (the store holds the exact journal
    // records a fault-free run produced).
    std::string sim_key;
    std::vector<uint8_t> ok_mask;
    if (stage_cache && !res.analysis.stageHashes.cluster.empty()) {
        sim_key = StageCache::simKey(res.analysis.stageHashes.cluster,
                                     sim_cfg, cfg.constrainedRegions);
        if (auto recs = stage_cache->loadSimResults(
                sim_key, res.analysis.regions)) {
            res.simStageHit = true;
            res.regionMetrics.reserve(recs->size());
            for (const auto &rec : *recs)
                res.regionMetrics.push_back(rec.metrics);
            ok_mask.assign(res.analysis.regions.size(), 1);
            res.coverage = 1.0;
        }
    }
    if (!res.simStageHit) {
        auto ckpt = pipeline.simulateRegionsCheckpointed(
            res.analysis, sim_cfg, cfg.constrainedRegions,
            journal.get());
        res.wallCheckpointSeconds = ckpt.checkpointWallSeconds;
        res.wallPhaseSeconds = ckpt.phaseWallSeconds;
        res.jobs = ckpt.jobs;
        res.backend = ckpt.backend;
        res.workerDeaths = ckpt.workerDeaths;
        res.workerRespawns = ckpt.workerRespawns;
        res.hostParallelSpeedup = ckpt.hostParallelSpeedup();
        res.hostParallelEfficiency = ckpt.parallelEfficiency();
        for (double wall : ckpt.regionWallSeconds) {
            res.wallRegionsTotalSeconds += wall;
            res.wallRegionsMaxSeconds =
                std::max(res.wallRegionsMaxSeconds, wall);
        }
        res.coverage = ckpt.coverage;
        res.failedRegions = ckpt.failedRegions();
        res.journalHits = ckpt.journalHits;
        ok_mask = ckpt.okMask();
        for (auto &d : ckpt.diagnostics)
            res.analysis.diagnostics.push_back(std::move(d));
        res.regionMetrics = std::move(ckpt.regionMetrics);
        // Parked at a region boundary on request: everything that
        // finished is journaled above, so unwind before any artifact
        // publish or extrapolation — a partial run must surface as
        // "resume me" (exit 4), never as a degraded result.
        if (ckpt.interrupted) {
            size_t done = 0;
            for (const auto &o : ckpt.regionOutcomes)
                done += o.ok ? 1 : 0;
            throw InterruptedRun(
                "run interrupted at a region boundary with " +
                std::to_string(done) + " of " +
                std::to_string(res.analysis.regions.size()) +
                " regions complete; rerun with --resume to continue");
        }
        // Publish only complete, fault-free results: a degraded run's
        // holes must not be served to later runs as the real thing.
        if (stage_cache && !sim_key.empty() && res.coverage == 1.0 &&
            res.failedRegions == 0) {
            std::vector<RunJournal::Record> recs;
            recs.reserve(res.analysis.regions.size());
            for (size_t i = 0; i < res.analysis.regions.size(); ++i) {
                const LoopPointRegion &r = res.analysis.regions[i];
                RunJournal::Record rec;
                rec.regionIndex = static_cast<uint32_t>(i);
                rec.start = r.start;
                rec.end = r.end;
                rec.multiplier = r.multiplier;
                rec.attempts = std::max(
                    1u, ckpt.regionOutcomes[i].attempts);
                rec.metrics = res.regionMetrics[i];
                recs.push_back(rec);
            }
            stage_cache->publishSimResults(sim_key, recs);
        }
    }
    res.predicted = extrapolateMetrics(res.analysis, res.regionMetrics,
                                       ok_mask, sim_cfg);

    if (cfg.simulateFull) {
        ScopedSpan full_span(tracer, "phase.fullsim");
        std::string full_key;
        if (stage_cache) {
            full_key = StageCache::fullSimKey(
                prog.name, threads, cfg.waitPolicy, opts.seed, sim_cfg);
            if (auto m = stage_cache->loadFullSim(full_key)) {
                res.fullSim = *m;
                res.fullSimHit = true;
            }
        }
        if (!res.fullSimHit) {
            auto t0 = std::chrono::steady_clock::now();
            res.fullSim = pipeline.simulateFull(sim_cfg);
            res.wallFullSeconds = secondsSince(t0);
            if (stage_cache)
                stage_cache->publishFullSim(full_key, res.fullSim);
        }
        res.haveFullSim = true;
        full_span.arg("wall_seconds", res.wallFullSeconds)
            .arg("cached", res.fullSimHit);

        res.runtimeErrorPct = absRelErrorPct(
            res.predicted.runtimeSeconds, res.fullSim.runtimeSeconds);
        res.cyclesErrorPct = absRelErrorPct(
            res.predicted.cycles,
            static_cast<double>(res.fullSim.cycles));
        // Work-normalized MPKI (see MetricPrediction): both sides
        // divide by main-image instructions.
        auto filtered_mpki = [&](uint64_t events) {
            return res.fullSim.filteredInstructions
                       ? 1000.0 * static_cast<double>(events) /
                             static_cast<double>(
                                 res.fullSim.filteredInstructions)
                       : 0.0;
        };
        res.branchMpkiAbsDiff =
            std::fabs(res.predicted.branchMpki() -
                      filtered_mpki(res.fullSim.branchMispredicts));
        res.l2MpkiAbsDiff = std::fabs(
            res.predicted.l2Mpki() - filtered_mpki(res.fullSim.l2Misses));

        if (res.wallRegionsTotalSeconds > 0.0)
            res.actualSerialSpeedup =
                res.wallFullSeconds / res.wallRegionsTotalSeconds;
        if (res.wallRegionsMaxSeconds > 0.0)
            res.actualParallelSpeedup =
                res.wallFullSeconds / res.wallRegionsMaxSeconds;
    }
    if (store)
        res.storeStats = store->stats();
    return res;
}

} // namespace looppoint
