/**
 * @file
 * Region pinballs: self-contained, shareable region checkpoints.
 *
 * The paper argues for checkpoint-driven simulation partly on
 * deployment grounds: "checkpoints are easier to share among multiple
 * users than program binaries whose execution might require complex
 * setup" (Section II). A RegionPinball is this library's equivalent of
 * a PinPlay region pinball: a single serializable artifact from which
 * anyone can re-simulate one looppoint — it carries the workload
 * identity (our substitute for the memory image, see DESIGN.md), the
 * execution configuration, the whole-program synchronization log (for
 * deterministic reconstruction), the (PC, count) region boundaries,
 * and the extrapolation weight.
 */

#ifndef LOOPPOINT_CORE_REGION_CHECKPOINT_HH
#define LOOPPOINT_CORE_REGION_CHECKPOINT_HH

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/looppoint.hh"
#include "util/load_result.hh"
#include "workload/descriptor.hh"

namespace looppoint {

/** One shareable region checkpoint. See file comment. */
struct RegionPinball
{
    /** Workload identity: app name + input class regenerate the
     * program deterministically (the memory-image substitute). */
    std::string app;
    InputClass input = InputClass::Train;
    ExecConfig config;
    /** Whole-program schedule-resolution log. */
    SyncLog log;
    Marker start;
    Marker end;
    /** Eq. 2 extrapolation weight. */
    double multiplier = 1.0;
    /** Filtered instructions of the region (for bookkeeping). */
    uint64_t filteredIcount = 0;

    /** Versioned, CRC32-checksummed serialization (format v2). */
    void save(std::ostream &os) const;
    /**
     * Parse a region pinball — current or legacy v1 format — with
     * structured errors (truncation, bad checksum, unknown version,
     * NaN/negative multipliers, hostile sync logs) instead of fatal().
     */
    static LoadResult<RegionPinball> tryLoad(std::istream &is);
    /** tryLoad, with failures rethrown as FatalError (legacy API). */
    static RegionPinball load(std::istream &is);

    bool operator==(const RegionPinball &other) const = default;
};

/**
 * Export one RegionPinball per looppoint of a completed analysis.
 */
std::vector<RegionPinball> exportRegionPinballs(
    const AppDescriptor &app, InputClass input,
    const LoopPointOptions &opts, const LoopPointResult &lp);

/**
 * Reconstruct a positioned functional checkpoint from a region
 * pinball: regenerates the program, replays deterministically to the
 * region start, and returns the engine snapshot. The caller owns the
 * returned program (the engine references it).
 */
struct RestoredCheckpoint
{
    std::unique_ptr<Program> program;
    Checkpoint checkpoint;
};
RestoredCheckpoint restoreCheckpoint(const RegionPinball &rp);

/**
 * Simulate a region pinball end to end (warmup fast-forward plus
 * detailed simulation of the region) on the given microarchitecture.
 */
SimMetrics simulateRegionPinball(const RegionPinball &rp,
                                 const SimConfig &sim_cfg);

/**
 * ELFie analog (paper Section II): an *executable* region checkpoint.
 * Where a RegionPinball is restored by replaying the program prefix,
 * an ELFie stores the positioned execution state itself, so restoring
 * is O(state) — the difference between sharing a recipe and sharing a
 * loadable snapshot.
 */
struct RestoredElfie
{
    std::unique_ptr<Program> program;
    ExecutionEngine engine;
    Marker end;
    double multiplier = 1.0;
};

/** Position the execution at rp's start and save it as an ELFie. */
void saveElfie(std::ostream &os, const RegionPinball &rp);

/** Load an ELFie saved with saveElfie(). */
RestoredElfie loadElfie(std::istream &is);

} // namespace looppoint

#endif // LOOPPOINT_CORE_REGION_CHECKPOINT_HH
