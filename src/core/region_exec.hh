/**
 * @file
 * Factory for the in-process (thread-pool) region execution backend.
 * The backend interface itself lives in dist/region_exec.hh — the
 * layer both backends can see; this header only adds the pool-backed
 * implementation, which belongs to lp_core because it reuses the
 * shared ThreadPool.
 */

#ifndef LOOPPOINT_CORE_REGION_EXEC_HH
#define LOOPPOINT_CORE_REGION_EXEC_HH

#include <memory>

#include "dist/region_exec.hh"
#include "util/fault.hh"

namespace looppoint {

class ThreadPool;

/**
 * The in-process backend: submit deep-copies the warm state into a
 * snapshot and queues the region on `pool` (nullptr = run inline on
 * the producer thread, the historical jobs == 1 schedule). finish()
 * joins helping — the producer thread executes queued regions instead
 * of idling — and rethrows the first escaped exception (InjectedKill)
 * once every task is quiescent. The destructor drains outstanding
 * tasks, swallowing errors, so an unwinding phase never leaves a task
 * running against freed state.
 */
std::unique_ptr<RegionExecBackend> makePoolBackend(ThreadPool *pool,
                                                   FaultPlan faults,
                                                   CompletionSink sink);

} // namespace looppoint

#endif // LOOPPOINT_CORE_REGION_EXEC_HH
