/**
 * @file
 * Crash-safe run journal for checkpointed region simulation.
 *
 * A journal records one line per *completed* region simulation, so a
 * run that dies mid-phase (host crash, injected kill, OOM) can be
 * resumed without redoing finished work: on `--resume`, regions whose
 * journal record matches the current run are taken from the journal
 * and neither warmed to a stop nor re-simulated. Because journal hits
 * skip work without touching the warming pass's simulated trajectory,
 * a resumed run is bit-identical to an uninterrupted one.
 *
 * On-disk format (line-oriented text, one `crc=XXXXXXXX` trailer per
 * line covering everything before it):
 *
 *   looppoint-journal-v1 crc=...
 *   key app=... input=... threads=... waitpolicy=... seed=...
 *       constrained=... sim=... crc=...          (one line)
 *   region idx=... start=pc:count end=pc:count mult=... attempts=...
 *       cycles=... ... l3m=... crc=...           (one line per region)
 *
 * Appends rewrite the whole file to `<path>.tmp` and std::rename it
 * over the journal, so a crash mid-write can never produce a torn
 * journal — at worst the last record is lost and its region
 * re-simulates. A torn or corrupted *tail* in an existing journal
 * (e.g. from an append that raced a power cut on a non-atomic
 * filesystem) is tolerated: invalid trailing records are dropped and
 * counted, valid prefix records are kept.
 */

#ifndef LOOPPOINT_CORE_RUN_JOURNAL_HH
#define LOOPPOINT_CORE_RUN_JOURNAL_HH

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "profile/bbv.hh"
#include "sim/multicore.hh"
#include "util/load_result.hh"

namespace looppoint {

/**
 * Identity of a run for journal-reuse purposes: everything that
 * changes the simulated per-region results. Host-side knobs (jobs,
 * retries, fault plan) are deliberately excluded — a journal written
 * under fault injection is reusable by the clean re-run.
 */
struct RunKey
{
    std::string app;
    std::string input;
    uint32_t threads = 0;
    std::string waitPolicy;
    uint64_t seed = 0;
    bool constrained = false;
    /** CRC32 fingerprint of the microarchitecture configuration. */
    uint32_t simFingerprint = 0;

    /** One-line textual encoding (no trailing newline). */
    std::string encode() const;

    bool operator==(const RunKey &other) const = default;
};

/** See file comment. */
class RunJournal
{
  public:
    /** One completed region simulation. */
    struct Record
    {
        uint32_t regionIndex = 0;
        Marker start;
        Marker end;
        double multiplier = 1.0;
        /** Attempts the original run needed (bookkeeping only). */
        uint32_t attempts = 1;
        SimMetrics metrics;

        bool operator==(const Record &other) const = default;
    };

    RunJournal(std::string path, RunKey key);

    /**
     * Load an existing journal from disk. A missing file is an Io
     * error when `must_exist` (--resume names a journal that should be
     * there) and an empty journal otherwise. A journal written by a
     * different run (key mismatch) is a Validation error. Torn or
     * corrupt trailing records are dropped, not errors — see
     * droppedRecords().
     */
    std::optional<LoadError> load(bool must_exist);

    /**
     * The journaled metrics for a region, if the journal has a record
     * matching its identity exactly (index, markers, multiplier — all
     * round-trip losslessly). Returns a copy: appends from concurrent
     * region tasks may relocate the underlying storage.
     */
    std::optional<Record> find(uint32_t region_index, const Marker &start,
                               const Marker &end,
                               double multiplier) const;

    /**
     * Record a completed region and persist the journal atomically
     * (temp file + rename). Thread-safe: region tasks append
     * concurrently. Disk failures are swallowed after counting — a
     * journal is an optimization, never worth failing the run for.
     */
    void append(const Record &rec);

    const std::string &path() const { return filePath; }
    size_t size() const;
    /** Invalid tail records dropped by load(). */
    size_t droppedRecords() const { return dropped; }
    /** Appends that failed to persist (disk full, permissions). */
    size_t failedWrites() const { return writeFailures; }

  private:
    /** Serialize header + key + records to disk. Caller holds mu. */
    bool rewriteLocked();

    std::string filePath;
    RunKey key;
    std::vector<Record> records;
    size_t dropped = 0;
    size_t writeFailures = 0;
    mutable std::mutex mu;
};

} // namespace looppoint

#endif // LOOPPOINT_CORE_RUN_JOURNAL_HH
