/**
 * @file
 * Crash-safe run journal for checkpointed region simulation.
 *
 * A journal records one line per *completed* region simulation, so a
 * run that dies mid-phase (host crash, injected kill, OOM) can be
 * resumed without redoing finished work: on `--resume`, regions whose
 * journal record matches the current run are taken from the journal
 * and neither warmed to a stop nor re-simulated. Because journal hits
 * skip work without touching the warming pass's simulated trajectory,
 * a resumed run is bit-identical to an uninterrupted one.
 *
 * On-disk format (line-oriented text, one `crc=XXXXXXXX` trailer per
 * line covering everything before it):
 *
 *   looppoint-journal-v1 crc=...
 *   key app=... input=... threads=... waitpolicy=... seed=...
 *       constrained=... sim=... crc=...          (one line)
 *   region idx=... start=pc:count end=pc:count mult=... attempts=...
 *       cycles=... ... l3m=... crc=...           (one line per region)
 *
 * Appends rewrite the whole file to `<path>.tmp` and std::rename it
 * over the journal, so a crash mid-write can never produce a torn
 * journal — at worst the last record is lost and its region
 * re-simulates. A torn or corrupted *tail* in an existing journal
 * (e.g. from an append that raced a power cut on a non-atomic
 * filesystem) is tolerated: invalid trailing records are dropped and
 * counted, valid prefix records are kept.
 */

#ifndef LOOPPOINT_CORE_RUN_JOURNAL_HH
#define LOOPPOINT_CORE_RUN_JOURNAL_HH

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "profile/bbv.hh"
#include "sim/config.hh"
#include "sim/multicore.hh"
#include "util/load_result.hh"

namespace looppoint {

/**
 * Identity of a run for journal-reuse purposes: everything that
 * changes the simulated per-region results. Host-side knobs (jobs,
 * retries, fault plan) are deliberately excluded — a journal written
 * under fault injection is reusable by the clean re-run.
 */
struct RunKey
{
    std::string app;
    std::string input;
    uint32_t threads = 0;
    std::string waitPolicy;
    uint64_t seed = 0;
    bool constrained = false;
    /** CRC32 fingerprint of the microarchitecture configuration. */
    uint32_t simFingerprint = 0;

    /** One-line textual encoding (no trailing newline). */
    std::string encode() const;

    bool operator==(const RunKey &other) const = default;
};

/**
 * The one place run identity is assembled (journal, store, campaign):
 * the sim fingerprint is the CRC of SimConfig::uarchKeyText(), i.e.
 * exactly the result-affecting config partition — host-side knobs can
 * never split or join journal reuse.
 */
RunKey makeRunKey(const std::string &app, const std::string &input,
                  uint32_t threads, WaitPolicy wait_policy,
                  uint64_t seed, bool constrained,
                  const SimConfig &sim_cfg);

/** See file comment. */
class RunJournal
{
  public:
    /** One completed region simulation. */
    struct Record
    {
        uint32_t regionIndex = 0;
        Marker start;
        Marker end;
        double multiplier = 1.0;
        /** Attempts the original run needed (bookkeeping only). */
        uint32_t attempts = 1;
        SimMetrics metrics;

        bool operator==(const Record &other) const = default;
    };

    RunJournal(std::string path, RunKey key);

    /**
     * Load an existing journal from disk. A missing file is an Io
     * error when `must_exist` (--resume names a journal that should be
     * there) and an empty journal otherwise. A journal written by a
     * different run (key mismatch) is a Validation error. Torn or
     * corrupt trailing records are dropped, not errors — see
     * droppedRecords().
     */
    std::optional<LoadError> load(bool must_exist);

    /**
     * The journaled metrics for a region, if the journal has a record
     * matching its identity exactly (index, markers, multiplier — all
     * round-trip losslessly). Returns a copy: appends from concurrent
     * region tasks may relocate the underlying storage.
     */
    std::optional<Record> find(uint32_t region_index, const Marker &start,
                               const Marker &end,
                               double multiplier) const;

    /**
     * Record a completed region and persist the journal atomically
     * (temp file + rename). Thread-safe: region tasks append
     * concurrently. Disk failures are swallowed after counting — a
     * journal is an optimization, never worth failing the run for.
     */
    void append(const Record &rec);

    const std::string &path() const { return filePath; }
    size_t size() const;
    /** Copy of the current records (audit / reporting). */
    std::vector<Record> snapshot() const;
    /** Invalid tail records dropped by load(). */
    size_t droppedRecords() const { return dropped; }
    /** Appends that failed to persist (disk full, permissions). */
    size_t failedWrites() const { return writeFailures; }

  private:
    /** Serialize header + key + records to disk. Caller holds mu. */
    bool rewriteLocked();

    std::string filePath;
    RunKey key;
    std::vector<Record> records;
    size_t dropped = 0;
    size_t writeFailures = 0;
    mutable std::mutex mu;
};

/**
 * One journal record as a single text line (no newline, no CRC
 * trailer). %.17g round-trips every double exactly, so a journaled
 * metric set reloads bit-identical to what the simulation produced.
 *
 * Inline so the codec is shared without a link dependency: the journal
 * itself uses it for persistence, and the multi-process region farm
 * (src/dist) ships exactly these journal-compatible completion records
 * over its wire protocol.
 */
inline std::string
encodeJournalRecord(const RunJournal::Record &r)
{
    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "region idx=%" PRIu32 " start=%" PRIu64 ":%" PRIu64
        " end=%" PRIu64 ":%" PRIu64 " mult=%.17g attempts=%" PRIu32
        " cycles=%" PRIu64 " instrs=%" PRIu64 " filtered=%" PRIu64
        " runtime=%.17g branches=%" PRIu64 " mispredicts=%" PRIu64
        " l1da=%" PRIu64 " l1dm=%" PRIu64 " l2a=%" PRIu64
        " l2m=%" PRIu64 " l3a=%" PRIu64 " l3m=%" PRIu64,
        r.regionIndex, static_cast<uint64_t>(r.start.pc), r.start.count,
        static_cast<uint64_t>(r.end.pc), r.end.count, r.multiplier,
        r.attempts, r.metrics.cycles, r.metrics.instructions,
        r.metrics.filteredInstructions, r.metrics.runtimeSeconds,
        r.metrics.branches, r.metrics.branchMispredicts,
        r.metrics.l1dAccesses, r.metrics.l1dMisses,
        r.metrics.l2Accesses, r.metrics.l2Misses,
        r.metrics.l3Accesses, r.metrics.l3Misses);
    return buf;
}

/**
 * Parse a line written by encodeJournalRecord. Returns nullopt unless
 * re-encoding the parsed record reproduces `payload` byte for byte —
 * catching trailing junk sscanf ignores and any lossy double round
 * trip.
 */
inline std::optional<RunJournal::Record>
parseJournalRecord(const std::string &payload)
{
    RunJournal::Record r;
    uint64_t start_pc = 0, end_pc = 0;
    int n = std::sscanf(
        payload.c_str(),
        "region idx=%" SCNu32 " start=%" SCNu64 ":%" SCNu64
        " end=%" SCNu64 ":%" SCNu64 " mult=%lg attempts=%" SCNu32
        " cycles=%" SCNu64 " instrs=%" SCNu64 " filtered=%" SCNu64
        " runtime=%lg branches=%" SCNu64 " mispredicts=%" SCNu64
        " l1da=%" SCNu64 " l1dm=%" SCNu64 " l2a=%" SCNu64
        " l2m=%" SCNu64 " l3a=%" SCNu64 " l3m=%" SCNu64,
        &r.regionIndex, &start_pc, &r.start.count, &end_pc,
        &r.end.count, &r.multiplier, &r.attempts, &r.metrics.cycles,
        &r.metrics.instructions, &r.metrics.filteredInstructions,
        &r.metrics.runtimeSeconds, &r.metrics.branches,
        &r.metrics.branchMispredicts, &r.metrics.l1dAccesses,
        &r.metrics.l1dMisses, &r.metrics.l2Accesses,
        &r.metrics.l2Misses, &r.metrics.l3Accesses,
        &r.metrics.l3Misses);
    if (n != 19)
        return std::nullopt;
    r.start.pc = start_pc;
    r.end.pc = end_pc;
    if (encodeJournalRecord(r) != payload)
        return std::nullopt;
    return r;
}

} // namespace looppoint

#endif // LOOPPOINT_CORE_RUN_JOURNAL_HH
