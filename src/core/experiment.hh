/**
 * @file
 * End-to-end experiment runner: the programmatic equivalent of the
 * artifact's run-looppoint.py. Runs the LoopPoint analysis on one
 * app/input/thread/policy combination, simulates the looppoints and
 * (optionally) the full application, and reports prediction errors and
 * speedups — everything the paper's evaluation figures are built from.
 */

#ifndef LOOPPOINT_CORE_EXPERIMENT_HH
#define LOOPPOINT_CORE_EXPERIMENT_HH

#include <string>
#include <vector>

#include "core/looppoint.hh"
#include "store/artifact_store.hh"
#include "workload/descriptor.hh"

namespace looppoint {

/** What to run. */
struct ExperimentConfig
{
    std::string app = "demo-matrix";
    InputClass input = InputClass::Train;
    uint32_t requestedThreads = 8;
    WaitPolicy waitPolicy = WaitPolicy::Passive;
    SimConfig sim;
    LoopPointOptions loopPoint;
    /** Constrained (PinPlay-ordered) region simulation. */
    bool constrainedRegions = false;
    /**
     * Host worker threads for the parallel phases (clustering sweep,
     * checkpoint-fanout region simulation); overrides loopPoint.jobs
     * and sim.jobs. 1 = serial, 0 = hardware concurrency. Simulated
     * results are bit-identical for any value.
     */
    uint32_t jobs = 1;
    /**
     * Simulate the whole application in detail for ground truth.
     * Disable for ref-style inputs where only the analysis phase and
     * theoretical speedups are wanted (paper Fig. 9).
     */
    bool simulateFull = true;
    /**
     * Path of the crash-safe run journal. Empty disables journaling.
     * Completed regions are appended as they finish; see `resume`.
     */
    std::string journalPath;
    /**
     * Resume from `journalPath`: the journal must exist and match this
     * run's identity; already-journaled regions are reused instead of
     * re-simulated (bit-identical to an uninterrupted run).
     */
    bool resume = false;
    /**
     * Directory of the content-addressed artifact store. When set,
     * every pipeline stage (recording, profiling, clustering, region
     * simulation, full simulation) is memoized: a stage whose key hits
     * is served from the store bit-identically instead of recomputed,
     * and fresh results are published back. Empty disables. Safe to
     * share between concurrent runs (flock-serialized).
     */
    std::string storeDir;
};

/** Everything the evaluation needs, for one experiment. */
struct ExperimentResult
{
    std::string app;
    uint32_t threads = 0;
    LoopPointResult analysis;
    std::vector<SimMetrics> regionMetrics;
    MetricPrediction predicted;
    SimMetrics fullSim;      ///< valid when cfg.simulateFull
    bool haveFullSim = false;

    /** |predicted - actual| runtime error in percent. */
    double runtimeErrorPct = 0.0;
    double cyclesErrorPct = 0.0;
    double branchMpkiAbsDiff = 0.0;
    double l2MpkiAbsDiff = 0.0;

    double theoreticalSerialSpeedup = 0.0;
    double theoreticalParallelSpeedup = 0.0;
    /** Measured simulator wall-clock speedups (when full sim ran). */
    double actualSerialSpeedup = 0.0;
    double actualParallelSpeedup = 0.0;

    double wallFullSeconds = 0.0;
    /** One-time checkpoint-generation (warming) pass. */
    double wallCheckpointSeconds = 0.0;
    double wallRegionsTotalSeconds = 0.0;
    double wallRegionsMaxSeconds = 0.0;
    /** Measured wall time of the whole checkpointed phase. */
    double wallPhaseSeconds = 0.0;

    /** Host workers the parallel phases ran with. */
    uint32_t jobs = 1;
    /** Execution backend of the checkpointed phase (host-side only;
     * region metrics are bit-identical across backends). */
    ExecBackendKind backend = ExecBackendKind::Pool;
    /** Procs backend: worker processes that died mid-region. */
    uint32_t workerDeaths = 0;
    /** Procs backend: workers respawned to retry after a death. */
    uint32_t workerRespawns = 0;
    /** Measured host-parallel self-relative speedup of the
     * checkpointed phase (serial-equivalent / phase wall). */
    double hostParallelSpeedup = 0.0;
    /** hostParallelSpeedup / jobs. */
    double hostParallelEfficiency = 0.0;

    /** Extrapolation-weight fraction backed by usable regions (1.0
     * for a fault-free run; < 1.0 means the run completed degraded). */
    double coverage = 1.0;
    /** Regions dropped after exhausting their retry budget. */
    size_t failedRegions = 0;
    /** Regions reused from the resume journal. */
    size_t journalHits = 0;
    /** Warning/error findings of the artifact audit (--audit). */
    size_t auditFindings = 0;

    /** All region results came from the artifact store (no detailed
     * region simulation ran this run). */
    bool simStageHit = false;
    /** The full-program ground truth came from the artifact store. */
    bool fullSimHit = false;
    /** Store traffic of this run (all-zero without cfg.storeDir). */
    StoreStats storeStats;
};

/** Run one experiment end to end. */
ExperimentResult runExperiment(const ExperimentConfig &cfg);

} // namespace looppoint

#endif // LOOPPOINT_CORE_EXPERIMENT_HH
