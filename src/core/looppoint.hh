/**
 * @file
 * The LoopPoint pipeline (paper Section III): record once, replay for
 * DCFG + BBV profiling with spin filtering, cluster slices, select
 * looppoints with multipliers, simulate them unconstrained (or
 * constrained), and extrapolate whole-program performance.
 *
 * Usage:
 *
 *   LoopPointOptions opts;
 *   LoopPointPipeline pipe(program, opts);
 *   LoopPointResult lp = pipe.analyze();
 *   std::vector<SimMetrics> region_metrics;
 *   for (const auto &r : lp.regions)
 *       region_metrics.push_back(pipe.simulateRegion(lp, r, sim_cfg));
 *   MetricPrediction pred = extrapolateMetrics(lp, region_metrics,
 *                                              sim_cfg);
 */

#ifndef LOOPPOINT_CORE_LOOPPOINT_HH
#define LOOPPOINT_CORE_LOOPPOINT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/diagnostic.hh"
#include "cluster/kmeans.hh"
#include "isa/program.hh"
#include "pinball/pinball.hh"
#include "profile/bbv.hh"
#include "sim/config.hh"
#include "sim/multicore.hh"

namespace looppoint {

class RunJournal;
class StageCache;
class ThreadPool;

/** Tunables of the analysis phase. */
struct LoopPointOptions
{
    uint32_t numThreads = 8;
    WaitPolicy waitPolicy = WaitPolicy::Passive;
    /**
     * Per-thread slice-size target; the global slice size is
     * numThreads x this (the paper's N x 100M rule, scaled to the
     * synthetic workload sizes).
     */
    uint64_t sliceSizePerThread = 100'000;
    uint32_t maxK = 50;
    uint32_t projectionDims = 100;
    double bicThreshold = 0.9;
    uint64_t seed = 42;
    uint64_t flowQuantum = 1000;
    /**
     * Filter synchronization-library code out of BBVs and instruction
     * counts (the paper's method). Disable only for ablation.
     */
    bool filterSpin = true;
    /**
     * Host worker threads for the analysis phase (feature projection
     * and the k-means BIC sweep). 1 = serial, 0 = hardware
     * concurrency. Results are bit-identical for any value.
     */
    uint32_t jobs = 1;
    /**
     * Optional verification passes (ProgramLint over the recorded
     * program + DCFG, and the happens-before race detector during an
     * extra constrained replay). Findings land in
     * LoopPointResult::diagnostics; the pipeline output itself is
     * unaffected.
     */
    AnalysisConfig analysis;
};

/** One selected representative region ("looppoint"). */
struct LoopPointRegion
{
    uint32_t cluster = 0;
    /** Index of the representative slice. */
    uint32_t sliceIndex = 0;
    Marker start;
    Marker end;
    /** Filtered instructions in the representative slice. */
    uint64_t filteredIcount = 0;
    /** Eq. (2): cluster work / representative work. */
    double multiplier = 1.0;
};

/**
 * Content hashes of the analysis-stage artifacts, when a stage cache
 * was attached (empty strings otherwise). Downstream stage keys chain
 * on these, so invalidation propagates without any global version
 * number. The hit flags say whether the stage was served from the
 * store or computed (and published) this run.
 */
struct StageHashes
{
    std::string record;
    std::string profile;
    std::string cluster;
    bool recordHit = false;
    bool profileHit = false;
    bool clusterHit = false;
};

/** Complete analysis output. */
struct LoopPointResult
{
    Pinball pinball;
    std::vector<SliceRecord> slices;
    std::vector<uint32_t> assignment; ///< slice -> cluster
    uint32_t chosenK = 0;
    std::vector<double> bicByK;
    std::vector<LoopPointRegion> regions;
    uint64_t totalFilteredIcount = 0;
    uint64_t totalIcount = 0;
    /** Serial-equivalent clustering time (sum over K candidates). */
    double clusterSerialSeconds = 0.0;
    /** Measured wall time of the clustering sweep. */
    double clusterWallSeconds = 0.0;
    /** Findings of the enabled analysis passes (empty when off). */
    std::vector<Diagnostic> diagnostics;
    /** Artifact-store provenance (empty without a stage cache). */
    StageHashes stageHashes;

    /** Work reduction with regions simulated back-to-back. */
    double theoreticalSerialSpeedup() const;
    /** Work reduction with all regions simulated in parallel. */
    double theoreticalParallelSpeedup() const;
};

/**
 * Fate of one region's checkpointed simulation: whether it produced
 * usable metrics, where they came from, and what went wrong if not.
 */
struct RegionOutcome
{
    /** Metrics are valid (simulated or journaled). */
    bool ok = true;
    /** Metrics came from a resume journal; nothing was re-simulated. */
    bool fromJournal = false;
    /** Simulation attempts consumed (0 for a journal hit's skip). */
    uint32_t attempts = 0;
    /** Last failure message when !ok (empty otherwise). */
    std::string error;
};

/** Whole-program predictions from simulated looppoints (Eq. 1). */
struct MetricPrediction
{
    /**
     * Fraction of the extrapolation weight backed by successfully
     * simulated regions. 1.0 exactly for a fault-free run; < 1.0 when
     * regions were dropped and the remaining Eq. 2 weights were
     * renormalized (graceful degradation).
     */
    double coverage = 1.0;
    double runtimeSeconds = 0.0;
    double cycles = 0.0;
    double instructions = 0.0;
    /** Extrapolated main-image instructions (exact by Eq. 2 closure). */
    double filteredInstructions = 0.0;
    double branchMispredicts = 0.0;
    double l1dMisses = 0.0;
    double l2Misses = 0.0;
    double l3Misses = 0.0;

    // MPKI rates are normalized by *filtered* (main-image)
    // instructions: spin instruction counts are timing-dependent, so
    // a total-instruction denominator would inject artificial noise
    // into the comparison under active waiting.
    double
    branchMpki() const
    {
        return filteredInstructions
                   ? 1000.0 * branchMispredicts / filteredInstructions
                   : 0.0;
    }
    double
    l2Mpki() const
    {
        return filteredInstructions
                   ? 1000.0 * l2Misses / filteredInstructions
                   : 0.0;
    }
    double
    l3Mpki() const
    {
        return filteredInstructions
                   ? 1000.0 * l3Misses / filteredInstructions
                   : 0.0;
    }
};

/** See file comment. */
class LoopPointPipeline
{
  public:
    LoopPointPipeline(const Program &prog, LoopPointOptions opts);
    ~LoopPointPipeline(); ///< out-of-line: ThreadPool is incomplete here

    /** Run the full analysis: record, profile, cluster, select. */
    LoopPointResult analyze();

    /**
     * Simulate one looppoint unconstrained with warmup and return its
     * metrics. Set `constrained` for PinPlay-style constrained replay
     * (introduces artificial stalls; Section V-A.1).
     */
    SimMetrics simulateRegion(const LoopPointResult &lp,
                              const LoopPointRegion &region,
                              const SimConfig &sim_cfg,
                              bool constrained = false) const;

    /** Detailed simulation of the entire program (ground truth). */
    SimMetrics simulateFull(const SimConfig &sim_cfg) const;

    /** Result of checkpoint-driven simulation of all looppoints. */
    struct CheckpointedSimResult
    {
        /** Per-region metrics, ordered like LoopPointResult::regions. */
        std::vector<SimMetrics> regionMetrics;
        /** Detailed-simulation wall time per region (seconds). */
        std::vector<double> regionWallSeconds;
        /** One-time warming/checkpoint-generation pass (seconds). */
        double checkpointWallSeconds = 0.0;
        /**
         * Portion of checkpointWallSeconds spent fast-forwarding to
         * regions that were then satisfied from the resume journal.
         * That warming work exists only because of the resume (a
         * fresh serial run would also do it, but it backs no region
         * simulation here), so the speedup accounting below removes
         * it from both sides of the ratio. 0 on fresh runs.
         */
        double journalWarmSeconds = 0.0;
        /** End-to-end wall time of the whole checkpointed phase
         * (warming plus all region simulations, as overlapped). */
        double phaseWallSeconds = 0.0;
        /** Host workers the phase ran with. */
        uint32_t jobs = 1;
        /** Execution backend the phase ran on (host-side only; region
         * metrics are bit-identical across backends). */
        ExecBackendKind backend = ExecBackendKind::Pool;
        /** Procs backend: worker processes that died mid-region. */
        uint32_t workerDeaths = 0;
        /** Procs backend: workers respawned to retry after a death. */
        uint32_t workerRespawns = 0;
        /** Per-region fate, ordered like regionMetrics. */
        std::vector<RegionOutcome> regionOutcomes;
        /** Regions satisfied from the resume journal. */
        size_t journalHits = 0;
        /** Weight fraction of usable regions (1.0 when all ok). */
        double coverage = 1.0;
        /** Failure/retry findings (pass "fault-tolerance"). */
        std::vector<Diagnostic> diagnostics;
        /** True when a shutdown request parked the warming pass at a
         * region boundary: the remaining regions were never launched
         * and the run must be resumed, not trusted as degraded. */
        bool interrupted = false;

        /** Regions with no usable metrics after all retries. */
        size_t failedRegions() const;
        /** okMask()[i] != 0 iff region i has usable metrics. */
        std::vector<uint8_t> okMask() const;

        /** What one host thread would have needed for the work that
         * actually ran (warming pass plus every simulated region back
         * to back, minus warming attributable to journal hits). */
        double serialEquivalentSeconds() const;
        /** Measured host-parallel self-relative speedup:
         * serial-equivalent time over measured phase wall time, both
         * excluding journal-hit warming so resumed runs don't count
         * replayed regions as parallel work on one side of the ratio
         * only. 0 when nothing parallelizable ran (full resume). */
        double hostParallelSpeedup() const;
        /** hostParallelSpeedup() normalized by the worker count. */
        double parallelEfficiency() const;
    };

    /**
     * Checkpoint-driven simulation (the paper's headline deployment):
     * one flow-controlled warming pass over the program snapshots the
     * full simulation state (functional cursors + caches + predictors
     * + clocks) at every looppoint boundary — the region-pinball
     * analog — and each region then simulates independently from its
     * checkpoint. Region wall times therefore exclude the shared
     * analysis pass and are what parallel deployment would see.
     *
     * Checkpoint fanout: with sim_cfg.jobs != 1, each snapshot is
     * handed to the execution backend as soon as it is taken, so
     * region bodies simulate concurrently while the warming pass
     * advances toward the next checkpoint (the warming thread joins
     * the workers once the last checkpoint is out). Region results
     * are bit-identical for any jobs count: every region simulates
     * from its own deep snapshot and shares no mutable state.
     *
     * Execution backends (sim_cfg.backend; see dist/region_exec.hh):
     * `pool` fans regions out across the shared in-process thread
     * pool; `procs` forks a fleet of sim_cfg.jobs persistent worker
     * processes and ships each region's warm state to one of them as
     * a checkpoint (microarch state via a shared-memory arena,
     * functional state plus task/result frames on a CRC32-checked
     * socketpair protocol). Region metrics are bit-identical across
     * backends and worker counts; under `procs` a killed or wedged
     * worker is retried within the region's attempt budget (after
     * re-warming with the identical stop schedule) instead of
     * aborting the phase.
     *
     * Fault tolerance: a region whose simulation throws or diverges
     * (end marker unreachable within the watchdog budget) is retried
     * from its checkpoint up to sim_cfg.regionRetries times, then
     * dropped — its outcome records the failure, coverage drops below
     * 1.0, and the run completes degraded instead of dying. With
     * `journal`, every completed region is persisted and regions
     * already journaled by a previous (crashed) run are reused without
     * re-simulation; resumed results are bit-identical to an
     * uninterrupted run.
     */
    CheckpointedSimResult simulateRegionsCheckpointed(
        const LoopPointResult &lp, const SimConfig &sim_cfg,
        bool constrained = false, RunJournal *journal = nullptr) const;

    const LoopPointOptions &options() const { return opts; }

    /**
     * Attach a stage cache: analyze() then serves recording,
     * profiling, and clustering from the store when their stage keys
     * hit, and publishes freshly computed artifacts back. Results are
     * bit-identical either way; nullptr detaches.
     */
    void setStageCache(StageCache *cache_) { cache = cache_; }

  private:
    ExecConfig execConfig() const;

    /**
     * The pipeline's shared pool, (re)built for `jobs` workers;
     * nullptr when jobs resolves to 1 (serial).
     */
    ThreadPool *poolFor(uint32_t jobs) const;

    const Program *prog;
    LoopPointOptions opts;
    StageCache *cache = nullptr;
    mutable std::unique_ptr<ThreadPool> sharedPool;
};

/**
 * Eq. (1) extrapolation over any additive metric; runtime uses the
 * frequency from `sim_cfg`.
 */
MetricPrediction extrapolateMetrics(
    const LoopPointResult &lp,
    const std::vector<SimMetrics> &region_metrics,
    const SimConfig &sim_cfg);

/**
 * Degradation-aware Eq. (1): regions with ok_mask[i] == 0 are dropped
 * and the surviving Eq. 2 multipliers are renormalized by the covered
 * weight fraction, so the prediction stays an estimate of the *whole*
 * program. The returned coverage reports how much weight survived;
 * with a full mask this is exactly the plain extrapolation (the
 * renormalization factor is exactly 1.0).
 */
MetricPrediction extrapolateMetrics(
    const LoopPointResult &lp,
    const std::vector<SimMetrics> &region_metrics,
    const std::vector<uint8_t> &ok_mask, const SimConfig &sim_cfg);

/**
 * Build the (projected) clustering feature matrix from slices:
 * instruction-weighted, normalized, per-thread-concatenated BBVs under
 * a deterministic random projection. Exposed for tests and ablations.
 * With `pool`, slices project in parallel (one index-addressed row
 * per slice; bit-identical for any worker count).
 */
FeatureMatrix buildFeatureMatrix(const Program &prog,
                                 const std::vector<SliceRecord> &slices,
                                 uint32_t dims, uint64_t seed,
                                 ThreadPool *pool = nullptr);

} // namespace looppoint

#endif // LOOPPOINT_CORE_LOOPPOINT_HH
