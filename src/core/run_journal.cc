#include "core/run_journal.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/metrics.hh"
#include "util/checksum.hh"

namespace looppoint {

namespace {

constexpr const char *kJournalMagic = "looppoint-journal-v1";

} // namespace

std::string
RunKey::encode() const
{
    std::ostringstream os;
    os << "key app=" << app << " input=" << input << " threads="
       << threads << " waitpolicy=" << waitPolicy << " seed=" << seed
       << " constrained=" << (constrained ? 1 : 0) << " sim="
       << crcHex(simFingerprint);
    return os.str();
}

RunKey
makeRunKey(const std::string &app, const std::string &input,
           uint32_t threads, WaitPolicy wait_policy, uint64_t seed,
           bool constrained, const SimConfig &sim_cfg)
{
    RunKey key;
    key.app = app;
    key.input = input;
    key.threads = threads;
    key.waitPolicy = waitPolicyName(wait_policy);
    key.seed = seed;
    key.constrained = constrained;
    key.simFingerprint = crc32(sim_cfg.uarchKeyText());
    return key;
}

RunJournal::RunJournal(std::string path, RunKey key_)
    : filePath(std::move(path)), key(std::move(key_))
{
}

std::optional<LoadError>
RunJournal::load(bool must_exist)
{
    std::lock_guard<std::mutex> lock(mu);
    records.clear();
    dropped = 0;

    std::ifstream is(filePath);
    if (!is) {
        if (must_exist)
            return LoadError{LoadErrorKind::Io,
                             "cannot open journal '" + filePath + "'"};
        return std::nullopt; // fresh journal
    }

    std::string line;
    if (!std::getline(is, line))
        return LoadError{LoadErrorKind::Truncated, "journal is empty"};
    auto magic = checkCrcLine(line);
    if (!magic || *magic != kJournalMagic)
        return LoadError{LoadErrorKind::BadMagic,
                         "'" + filePath + "' is not a looppoint run "
                         "journal"};
    if (!std::getline(is, line))
        return LoadError{LoadErrorKind::Truncated,
                         "journal has no key line"};
    auto key_line = checkCrcLine(line);
    if (!key_line)
        return LoadError{LoadErrorKind::BadChecksum,
                         "journal key line fails its checksum"};
    if (*key_line != key.encode())
        return LoadError{
            LoadErrorKind::Validation,
            "journal was written by a different run (key mismatch): "
            "journal has '" + *key_line + "', this run is '" +
                key.encode() + "'"};

    while (std::getline(is, line)) {
        auto payload = checkCrcLine(line);
        auto rec = payload ? parseJournalRecord(*payload)
                           : std::optional<Record>();
        if (!rec) {
            // Torn tail: this record (and anything after it, which
            // was written later) is unusable. Keep the valid prefix.
            ++dropped;
            while (std::getline(is, line))
                ++dropped;
            break;
        }
        records.push_back(std::move(*rec));
    }
    MetricsRegistry::global()
        .counter("journal.loaded_records")
        .add(records.size());
    if (dropped)
        MetricsRegistry::global()
            .counter("journal.dropped_records")
            .add(dropped);
    return std::nullopt;
}

std::optional<RunJournal::Record>
RunJournal::find(uint32_t region_index, const Marker &start,
                 const Marker &end, double multiplier) const
{
    std::lock_guard<std::mutex> lock(mu);
    for (const auto &r : records) {
        if (r.regionIndex == region_index && r.start == start &&
            r.end == end && r.multiplier == multiplier)
            return r;
    }
    return std::nullopt;
}

void
RunJournal::append(const Record &rec)
{
    std::lock_guard<std::mutex> lock(mu);
    records.push_back(rec);
    if (!rewriteLocked()) {
        ++writeFailures;
        MetricsRegistry::global()
            .counter("journal.failed_writes")
            .add();
    } else {
        MetricsRegistry::global().counter("journal.appends").add();
    }
}

size_t
RunJournal::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return records.size();
}

std::vector<RunJournal::Record>
RunJournal::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    return records;
}

bool
RunJournal::rewriteLocked()
{
    const std::string tmp = filePath + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            return false;
        os << withCrcLine(kJournalMagic) << '\n';
        os << withCrcLine(key.encode()) << '\n';
        for (const auto &r : records)
            os << withCrcLine(encodeJournalRecord(r)) << '\n';
        os.flush();
        if (!os)
            return false;
    }
    return std::rename(tmp.c_str(), filePath.c_str()) == 0;
}

} // namespace looppoint
