#include "core/region_checkpoint.hh"

#include <iomanip>
#include <istream>
#include <memory>
#include <ostream>

#include "exec/driver.hh"
#include "util/logging.hh"

namespace looppoint {

namespace {

void
saveOrderTable(std::ostream &os, const char *tag,
               const std::vector<std::vector<uint32_t>> &table)
{
    os << tag << ' ' << table.size() << '\n';
    for (const auto &row : table) {
        os << row.size();
        for (uint32_t tid : row)
            os << ' ' << tid;
        os << '\n';
    }
}

std::vector<std::vector<uint32_t>>
loadOrderTable(std::istream &is, const char *tag)
{
    std::string got;
    size_t rows = 0;
    if (!(is >> got >> rows) || got != tag)
        fatal("region pinball parse error: expected '%s' table", tag);
    std::vector<std::vector<uint32_t>> table(rows);
    for (auto &row : table) {
        size_t n = 0;
        if (!(is >> n))
            fatal("region pinball parse error in '%s' table", tag);
        row.resize(n);
        for (auto &tid : row)
            if (!(is >> tid))
                fatal("region pinball parse error in '%s' row", tag);
    }
    return table;
}

} // namespace

void
RegionPinball::save(std::ostream &os) const
{
    os << std::setprecision(17);
    os << "looppoint-region-pinball-v1\n";
    os << "app " << app << '\n';
    os << "input " << inputClassName(input) << '\n';
    os << "threads " << config.numThreads << '\n';
    os << "waitpolicy "
       << (config.waitPolicy == WaitPolicy::Active ? "active"
                                                   : "passive")
       << '\n';
    os << "seed " << config.seed << '\n';
    os << "start " << start.pc << ' ' << start.count << '\n';
    os << "end " << end.pc << ' ' << end.count << '\n';
    os << "multiplier " << multiplier << '\n';
    os << "icount " << filteredIcount << '\n';
    saveOrderTable(os, "locks", log.lockOrder);
    saveOrderTable(os, "chunks", log.chunkOrder);
}

RegionPinball
RegionPinball::load(std::istream &is)
{
    RegionPinball rp;
    std::string line, key, value;
    if (!std::getline(is, line) ||
        line != "looppoint-region-pinball-v1")
        fatal("not a looppoint region pinball (bad magic)");
    if (!(is >> key >> rp.app) || key != "app")
        fatal("region pinball parse error: app");
    if (!(is >> key >> value) || key != "input")
        fatal("region pinball parse error: input");
    bool found = false;
    for (InputClass c : {InputClass::Test, InputClass::Train,
                         InputClass::Ref, InputClass::NpbA,
                         InputClass::NpbC, InputClass::NpbD}) {
        if (value == inputClassName(c)) {
            rp.input = c;
            found = true;
        }
    }
    if (!found)
        fatal("region pinball parse error: unknown input class '%s'",
              value.c_str());
    if (!(is >> key >> rp.config.numThreads) || key != "threads")
        fatal("region pinball parse error: threads");
    if (!(is >> key >> value) || key != "waitpolicy")
        fatal("region pinball parse error: waitpolicy");
    rp.config.waitPolicy = value == "active" ? WaitPolicy::Active
                                             : WaitPolicy::Passive;
    if (!(is >> key >> rp.config.seed) || key != "seed")
        fatal("region pinball parse error: seed");
    if (!(is >> key >> rp.start.pc >> rp.start.count) || key != "start")
        fatal("region pinball parse error: start");
    if (!(is >> key >> rp.end.pc >> rp.end.count) || key != "end")
        fatal("region pinball parse error: end");
    if (!(is >> key >> rp.multiplier) || key != "multiplier")
        fatal("region pinball parse error: multiplier");
    if (!(is >> key >> rp.filteredIcount) || key != "icount")
        fatal("region pinball parse error: icount");
    rp.log.lockOrder = loadOrderTable(is, "locks");
    rp.log.chunkOrder = loadOrderTable(is, "chunks");
    return rp;
}

std::vector<RegionPinball>
exportRegionPinballs(const AppDescriptor &app, InputClass input,
                     const LoopPointOptions &opts,
                     const LoopPointResult &lp)
{
    std::vector<RegionPinball> out;
    for (const auto &region : lp.regions) {
        RegionPinball rp;
        rp.app = app.name;
        rp.input = input;
        rp.config.numThreads = opts.numThreads;
        rp.config.waitPolicy = opts.waitPolicy;
        rp.config.seed = opts.seed;
        rp.log = lp.pinball.log;
        rp.start = region.start;
        rp.end = region.end;
        rp.multiplier = region.multiplier;
        rp.filteredIcount = region.filteredIcount;
        out.push_back(std::move(rp));
    }
    return out;
}

RestoredCheckpoint
restoreCheckpoint(const RegionPinball &rp)
{
    auto program = std::make_unique<Program>(
        generateProgram(findApp(rp.app), rp.input));

    ExecutionEngine engine(*program, rp.config);
    if (rp.start.pc != 0 && rp.start.count > 0) {
        auto pc_index = buildPcIndex(*program);
        auto it = pc_index.find(rp.start.pc);
        if (it == pc_index.end())
            fatal("region pinball start pc %#llx not in program",
                  static_cast<unsigned long long>(rp.start.pc));
        BlockId start_block = it->second;
        RoundRobinDriver driver(engine, 1000);
        driver.run(nullptr, [&] {
            return engine.blockExecCount(start_block) >= rp.start.count;
        });
        if (engine.blockExecCount(start_block) < rp.start.count)
            fatal("region pinball start marker never reached "
                  "(mismatched workload?)");
    }
    Checkpoint ckpt{engine, engine.globalIcount(),
                    engine.globalFilteredIcount()};
    return RestoredCheckpoint{std::move(program), std::move(ckpt)};
}

SimMetrics
simulateRegionPinball(const RegionPinball &rp, const SimConfig &sim_cfg)
{
    Program prog = generateProgram(findApp(rp.app), rp.input);
    MulticoreSim sim(prog, rp.config, sim_cfg);
    return sim.runRegion(rp.start.pc, rp.start.count, rp.end.pc,
                         rp.end.count);
}

void
saveElfie(std::ostream &os, const RegionPinball &rp)
{
    RestoredCheckpoint rc = restoreCheckpoint(rp);
    os << std::setprecision(17);
    os << "looppoint-elfie-v1\n";
    os << "app " << rp.app << '\n';
    os << "input " << inputClassName(rp.input) << '\n';
    os << "end " << rp.end.pc << ' ' << rp.end.count << '\n';
    os << "multiplier " << rp.multiplier << '\n';
    rc.checkpoint.engine.save(os);
}

RestoredElfie
loadElfie(std::istream &is)
{
    std::string line, key, value;
    if (!std::getline(is, line) || line != "looppoint-elfie-v1")
        fatal("not a looppoint ELFie (bad magic)");
    std::string app;
    if (!(is >> key >> app) || key != "app")
        fatal("ELFie parse error: app");
    if (!(is >> key >> value) || key != "input")
        fatal("ELFie parse error: input");
    InputClass input = InputClass::Train;
    bool found = false;
    for (InputClass c : {InputClass::Test, InputClass::Train,
                         InputClass::Ref, InputClass::NpbA,
                         InputClass::NpbC, InputClass::NpbD}) {
        if (value == inputClassName(c)) {
            input = c;
            found = true;
        }
    }
    if (!found)
        fatal("ELFie parse error: unknown input class '%s'",
              value.c_str());
    Marker end;
    double multiplier = 1.0;
    if (!(is >> key >> end.pc >> end.count) || key != "end")
        fatal("ELFie parse error: end");
    if (!(is >> key >> multiplier) || key != "multiplier")
        fatal("ELFie parse error: multiplier");
    is.ignore(); // trailing newline before the engine block

    auto program = std::make_unique<Program>(
        generateProgram(findApp(app), input));
    ExecutionEngine engine = ExecutionEngine::load(is, *program);
    return RestoredElfie{std::move(program), std::move(engine), end,
                         multiplier};
}

} // namespace looppoint
