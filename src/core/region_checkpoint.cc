#include "core/region_checkpoint.hh"

#include <cmath>
#include <iomanip>
#include <istream>
#include <memory>
#include <ostream>
#include <sstream>

#include "exec/driver.hh"
#include "pinball/pinball_io.hh"
#include "util/logging.hh"

namespace looppoint {

namespace {

constexpr const char *kRegionMagicBase = "looppoint-region-pinball-v";
constexpr int kRegionVersion = 2;

std::optional<LoadError>
parseRegionPayload(std::istream &is, int version, RegionPinball &rp)
{
    std::string key, value;
    if (!(is >> key >> rp.app) || key != "app")
        return streamError(is, "'app' field");
    if (!(is >> key >> value) || key != "input")
        return streamError(is, "'input' field");
    bool found = false;
    for (InputClass c : {InputClass::Test, InputClass::Train,
                         InputClass::Ref, InputClass::NpbA,
                         InputClass::NpbC, InputClass::NpbD}) {
        if (value == inputClassName(c)) {
            rp.input = c;
            found = true;
        }
    }
    if (!found)
        return LoadError{LoadErrorKind::Parse,
                         "unknown input class '" + value + "'"};
    if (!(is >> key >> rp.config.numThreads) || key != "threads")
        return streamError(is, "'threads' field");
    if (!(is >> key >> value) || key != "waitpolicy")
        return streamError(is, "'waitpolicy' field");
    if (value == "active")
        rp.config.waitPolicy = WaitPolicy::Active;
    else if (value == "passive")
        rp.config.waitPolicy = WaitPolicy::Passive;
    else
        return LoadError{LoadErrorKind::Parse,
                         "unknown wait policy '" + value + "'"};
    if (!(is >> key >> rp.config.seed) || key != "seed")
        return streamError(is, "'seed' field");
    if (version >= 2) {
        if (auto err = loadSyncTids(is, rp.config.numThreads))
            return err;
    }
    if (!(is >> key >> rp.start.pc >> rp.start.count) || key != "start")
        return streamError(is, "'start' marker");
    if (!(is >> key >> rp.end.pc >> rp.end.count) || key != "end")
        return streamError(is, "'end' marker");
    if (!(is >> key >> rp.multiplier) || key != "multiplier")
        return streamError(is, "'multiplier' field");
    if (!(is >> key >> rp.filteredIcount) || key != "icount")
        return streamError(is, "'icount' field");
    if (auto err = loadOrderTable(is, "locks", rp.log.lockOrder))
        return err;
    if (auto err = loadOrderTable(is, "chunks", rp.log.chunkOrder))
        return err;

    // Value-range checks beyond what parsing can see: a NaN or
    // negative multiplier silently poisons every Eq. 1 extrapolation
    // downstream, and a count-less marker is unreachable by
    // construction.
    if (!std::isfinite(rp.multiplier))
        return LoadError{LoadErrorKind::Validation,
                         "multiplier is not finite"};
    if (rp.multiplier < 0.0)
        return LoadError{LoadErrorKind::Validation,
                         "multiplier " + std::to_string(rp.multiplier) +
                             " is negative"};
    if (rp.start.pc != 0 && rp.start.count == 0)
        return LoadError{LoadErrorKind::Validation,
                         "start marker has a pc but a zero count"};
    if (rp.end.pc != 0 && rp.end.count == 0)
        return LoadError{LoadErrorKind::Validation,
                         "end marker has a pc but a zero count"};
    return validateExecutionRecord("region pinball",
                                   rp.config.numThreads,
                                   rp.log.lockOrder, rp.log.chunkOrder,
                                   {}, {});
}

} // namespace

void
RegionPinball::save(std::ostream &os) const
{
    std::ostringstream payload;
    payload << std::setprecision(17);
    payload << "app " << app << '\n';
    payload << "input " << inputClassName(input) << '\n';
    payload << "threads " << config.numThreads << '\n';
    payload << "waitpolicy "
            << (config.waitPolicy == WaitPolicy::Active ? "active"
                                                        : "passive")
            << '\n';
    payload << "seed " << config.seed << '\n';
    saveSyncTids(payload, config.numThreads);
    payload << "start " << start.pc << ' ' << start.count << '\n';
    payload << "end " << end.pc << ' ' << end.count << '\n';
    payload << "multiplier " << multiplier << '\n';
    payload << "icount " << filteredIcount << '\n';
    saveOrderTable(payload, "locks", log.lockOrder);
    saveOrderTable(payload, "chunks", log.chunkOrder);
    writeFramedArtifact(os, kRegionMagicBase, kRegionVersion,
                        payload.str());
}

LoadResult<RegionPinball>
RegionPinball::tryLoad(std::istream &is)
{
    auto framed = readFramedArtifact(is, kRegionMagicBase,
                                     kRegionVersion);
    if (!framed)
        return LoadResult<RegionPinball>::failure(framed.error());
    const int version = framed.value().version;
    std::istringstream payload(std::move(framed.value().payload));
    RegionPinball rp;
    if (auto err = parseRegionPayload(payload, version, rp))
        return LoadResult<RegionPinball>::failure(std::move(*err));
    return LoadResult<RegionPinball>::success(std::move(rp));
}

RegionPinball
RegionPinball::load(std::istream &is)
{
    auto result = tryLoad(is);
    if (!result)
        fatal("region pinball load failed (%s)",
              result.error().describe().c_str());
    return std::move(result).value();
}

std::vector<RegionPinball>
exportRegionPinballs(const AppDescriptor &app, InputClass input,
                     const LoopPointOptions &opts,
                     const LoopPointResult &lp)
{
    std::vector<RegionPinball> out;
    for (const auto &region : lp.regions) {
        RegionPinball rp;
        rp.app = app.name;
        rp.input = input;
        rp.config.numThreads = opts.numThreads;
        rp.config.waitPolicy = opts.waitPolicy;
        rp.config.seed = opts.seed;
        rp.log = lp.pinball.log;
        rp.start = region.start;
        rp.end = region.end;
        rp.multiplier = region.multiplier;
        rp.filteredIcount = region.filteredIcount;
        out.push_back(std::move(rp));
    }
    return out;
}

RestoredCheckpoint
restoreCheckpoint(const RegionPinball &rp)
{
    auto program = std::make_unique<Program>(
        generateProgram(findApp(rp.app), rp.input));

    ExecutionEngine engine(*program, rp.config);
    if (rp.start.pc != 0 && rp.start.count > 0) {
        auto pc_index = buildPcIndex(*program);
        auto it = pc_index.find(rp.start.pc);
        if (it == pc_index.end())
            fatal("region pinball start pc %#llx not in program",
                  static_cast<unsigned long long>(rp.start.pc));
        BlockId start_block = it->second;
        RoundRobinDriver driver(engine, 1000);
        driver.run(nullptr, [&] {
            return engine.blockExecCount(start_block) >= rp.start.count;
        });
        if (engine.blockExecCount(start_block) < rp.start.count)
            fatal("region pinball start marker never reached "
                  "(mismatched workload?)");
    }
    Checkpoint ckpt{engine, engine.globalIcount(),
                    engine.globalFilteredIcount()};
    return RestoredCheckpoint{std::move(program), std::move(ckpt)};
}

SimMetrics
simulateRegionPinball(const RegionPinball &rp, const SimConfig &sim_cfg)
{
    Program prog = generateProgram(findApp(rp.app), rp.input);
    MulticoreSim sim(prog, rp.config, sim_cfg);
    return sim.runRegion(rp.start.pc, rp.start.count, rp.end.pc,
                         rp.end.count);
}

void
saveElfie(std::ostream &os, const RegionPinball &rp)
{
    RestoredCheckpoint rc = restoreCheckpoint(rp);
    os << std::setprecision(17);
    os << "looppoint-elfie-v1\n";
    os << "app " << rp.app << '\n';
    os << "input " << inputClassName(rp.input) << '\n';
    os << "end " << rp.end.pc << ' ' << rp.end.count << '\n';
    os << "multiplier " << rp.multiplier << '\n';
    rc.checkpoint.engine.save(os);
}

RestoredElfie
loadElfie(std::istream &is)
{
    std::string line, key, value;
    if (!std::getline(is, line) || line != "looppoint-elfie-v1")
        fatal("not a looppoint ELFie (bad magic)");
    std::string app;
    if (!(is >> key >> app) || key != "app")
        fatal("ELFie parse error: app");
    if (!(is >> key >> value) || key != "input")
        fatal("ELFie parse error: input");
    InputClass input = InputClass::Train;
    bool found = false;
    for (InputClass c : {InputClass::Test, InputClass::Train,
                         InputClass::Ref, InputClass::NpbA,
                         InputClass::NpbC, InputClass::NpbD}) {
        if (value == inputClassName(c)) {
            input = c;
            found = true;
        }
    }
    if (!found)
        fatal("ELFie parse error: unknown input class '%s'",
              value.c_str());
    Marker end;
    double multiplier = 1.0;
    if (!(is >> key >> end.pc >> end.count) || key != "end")
        fatal("ELFie parse error: end");
    if (!(is >> key >> multiplier) || key != "multiplier")
        fatal("ELFie parse error: multiplier");
    is.ignore(); // trailing newline before the engine block

    auto program = std::make_unique<Program>(
        generateProgram(findApp(app), input));
    ExecutionEngine engine = ExecutionEngine::load(is, *program);
    return RestoredElfie{std::move(program), std::move(engine), end,
                         multiplier};
}

} // namespace looppoint
