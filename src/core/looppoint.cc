#include "core/looppoint.hh"

#include <algorithm>
#include <chrono>
#include <exception>
#include <future>
#include <limits>

#include "analysis/program_lint.hh"
#include "analysis/race_detector.hh"
#include "core/run_journal.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "dcfg/dcfg.hh"
#include "exec/driver.hh"
#include "profile/slicer.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace looppoint {

namespace {

/** Resolve a jobs knob: 0 = hardware concurrency, otherwise as is. */
uint32_t
effectiveJobs(uint32_t jobs)
{
    return jobs ? jobs : ThreadPool::defaultWorkers();
}

} // namespace

size_t
LoopPointPipeline::CheckpointedSimResult::failedRegions() const
{
    size_t failed = 0;
    for (const auto &o : regionOutcomes)
        if (!o.ok)
            ++failed;
    return failed;
}

std::vector<uint8_t>
LoopPointPipeline::CheckpointedSimResult::okMask() const
{
    std::vector<uint8_t> mask(regionOutcomes.size(), 1);
    for (size_t i = 0; i < regionOutcomes.size(); ++i)
        mask[i] = regionOutcomes[i].ok ? 1 : 0;
    return mask;
}

double
LoopPointPipeline::CheckpointedSimResult::serialEquivalentSeconds() const
{
    // Warming spent reaching journal-satisfied regions backs no
    // simulation in this run; counting it would credit a resumed run
    // with "serial work" it never had to parallelize.
    double total = checkpointWallSeconds - journalWarmSeconds;
    for (double w : regionWallSeconds)
        total += w;
    return total;
}

double
LoopPointPipeline::CheckpointedSimResult::hostParallelSpeedup() const
{
    // Exclude the journal-hit warming from the wall-time denominator
    // too: it is the same serial work on both sides, so leaving it in
    // only one place would misreport resumed runs (a full resume
    // would claim speedup ~1 with zero regions simulated).
    const double wall = phaseWallSeconds - journalWarmSeconds;
    const double serial = serialEquivalentSeconds();
    return wall > 0.0 && serial > 0.0 ? serial / wall : 0.0;
}

double
LoopPointPipeline::CheckpointedSimResult::parallelEfficiency() const
{
    return jobs ? hostParallelSpeedup() / static_cast<double>(jobs)
                : 0.0;
}

double
LoopPointResult::theoreticalSerialSpeedup() const
{
    uint64_t selected = 0;
    for (const auto &r : regions)
        selected += r.filteredIcount;
    return selected ? static_cast<double>(totalFilteredIcount) /
                          static_cast<double>(selected)
                    : 0.0;
}

double
LoopPointResult::theoreticalParallelSpeedup() const
{
    uint64_t largest = 0;
    for (const auto &r : regions)
        largest = std::max(largest, r.filteredIcount);
    return largest ? static_cast<double>(totalFilteredIcount) /
                         static_cast<double>(largest)
                   : 0.0;
}

LoopPointPipeline::LoopPointPipeline(const Program &prog_,
                                     LoopPointOptions opts_)
    : prog(&prog_), opts(opts_)
{
    if (opts.numThreads == 0)
        fatal("LoopPointPipeline: at least one thread required");
    if (opts.sliceSizePerThread == 0)
        fatal("LoopPointPipeline: slice size must be positive");
}

LoopPointPipeline::~LoopPointPipeline() = default;

ThreadPool *
LoopPointPipeline::poolFor(uint32_t jobs) const
{
    uint32_t workers = effectiveJobs(jobs);
    if (workers <= 1)
        return nullptr;
    if (!sharedPool || sharedPool->numWorkers() != workers)
        sharedPool = std::make_unique<ThreadPool>(workers);
    return sharedPool.get();
}

ExecConfig
LoopPointPipeline::execConfig() const
{
    ExecConfig cfg;
    cfg.numThreads = opts.numThreads;
    cfg.waitPolicy = opts.waitPolicy;
    cfg.seed = opts.seed;
    return cfg;
}

FeatureMatrix
buildFeatureMatrix(const Program &prog,
                   const std::vector<SliceRecord> &slices, uint32_t dims,
                   uint64_t seed, ThreadPool *pool)
{
    RandomProjector projector(dims, hashCombine(seed, 0xbbf));
    FeatureMatrix features(slices.size());
    const uint64_t num_blocks = prog.numBlocks();
    // Each slice projects into its own row; the projector is shared
    // but stateless, so the parallel build is bit-identical to the
    // serial one.
    ThreadPool::forEach(pool, 0, slices.size(), [&](size_t i) {
        const SliceRecord &slice = slices[i];
        std::vector<std::pair<uint64_t, double>> sparse;
        double norm = slice.filteredIcount
                          ? static_cast<double>(slice.filteredIcount)
                          : 1.0;
        for (uint32_t tid = 0; tid < slice.perThread.size(); ++tid) {
            for (const auto &[block, count] : slice.perThread[tid].counts) {
                double weight =
                    static_cast<double>(count) *
                    static_cast<double>(prog.blocks[block].numInstrs()) /
                    norm;
                sparse.emplace_back(
                    static_cast<uint64_t>(tid) * num_blocks + block,
                    weight);
            }
        }
        features[i] = projector.project(sparse);
    });
    return features;
}

LoopPointResult
LoopPointPipeline::analyze()
{
    LoopPointResult out;
    ExecConfig cfg = execConfig();
    Tracer &tracer = Tracer::global();

    // (1) Record the whole program once as a pinball: the repeatable,
    // up-front application analysis substrate.
    {
        ScopedSpan span(tracer, "analyze.record");
        out.pinball = recordPinball(*prog, cfg, opts.flowQuantum);
        span.arg("threads", cfg.numThreads);
    }

    // (2) Constrained replay #1: build the DCFG and identify the legal
    // region markers (main-image loop headers).
    DcfgBuilder dcfg_builder(*prog, cfg.numThreads);
    Dcfg dcfg = [&] {
        ScopedSpan span(tracer, "analyze.dcfg");
        replayPinball(*prog, out.pinball, opts.flowQuantum,
                      &dcfg_builder);
        return dcfg_builder.build();
    }();

    // (2b) Optional verification passes over the freshly recorded
    // execution. They only produce diagnostics; the pipeline output is
    // unaffected.
    if (opts.analysis.lint || opts.analysis.raceCheck) {
        ScopedSpan span(tracer, "analyze.verify");
        DiagnosticSink sink;
        if (opts.analysis.lint) {
            LintContext lint_ctx;
            lint_ctx.prog = prog;
            lint_ctx.dcfg = &dcfg;
            lint_ctx.pinball = &out.pinball;
            lint_ctx.flowQuantum = opts.flowQuantum;
            ProgramLint().run(lint_ctx, sink);
        }
        if (opts.analysis.raceCheck)
            checkGuestRaces(*prog, out.pinball, sink,
                            opts.flowQuantum);
        out.diagnostics = sink.take();
        span.arg("diagnostics",
                 static_cast<uint64_t>(out.diagnostics.size()));
    }

    std::vector<BlockId> markers = dcfg.mainImageLoopHeaders();
    if (markers.empty())
        fatal("program '%s' exposes no main-image loop headers to mark "
              "regions", prog->name.c_str());

    // (3) Constrained replay #2: collect per-slice, per-thread BBVs
    // with spin/synchronization filtering.
    const uint64_t slice_global =
        opts.sliceSizePerThread * cfg.numThreads;
    SliceProfiler profiler(*prog, markers, slice_global, cfg.numThreads,
                           opts.filterSpin);
    {
        ScopedSpan span(tracer, "analyze.profile");
        replayPinball(*prog, out.pinball, opts.flowQuantum, &profiler);
        profiler.finalize();
        out.slices = profiler.slices();
        span.arg("slices", static_cast<uint64_t>(out.slices.size()));
    }
    LP_ASSERT(!out.slices.empty());

    for (const auto &s : out.slices) {
        out.totalFilteredIcount += s.filteredIcount;
        out.totalIcount += s.totalIcount;
    }

    // (4) Cluster the projected BBVs and pick one representative per
    // cluster, weighted by the cluster's share of the work (Eq. 2).
    // Both the projection and the K sweep fan out over the shared
    // pool when opts.jobs allows.
    ThreadPool *pool = poolFor(opts.jobs);
    FeatureMatrix features = [&] {
        ScopedSpan span(tracer, "analyze.project");
        span.arg("slices", static_cast<uint64_t>(out.slices.size()))
            .arg("dims", opts.projectionDims);
        return buildFeatureMatrix(*prog, out.slices,
                                  opts.projectionDims, opts.seed, pool);
    }();
    ClusteringResult clustering = [&] {
        ScopedSpan span(tracer, "cluster.sweep");
        span.arg("max_k", opts.maxK);
        auto r = simpointCluster(features, opts.maxK,
                                 hashCombine(opts.seed, 0xc1u),
                                 opts.bicThreshold, pool);
        span.arg("chosen_k", r.chosenK);
        return r;
    }();
    out.clusterSerialSeconds = clustering.candidateWallSeconds;
    out.clusterWallSeconds = clustering.sweepWallSeconds;
    out.assignment = clustering.best.assignment;
    out.chosenK = clustering.chosenK;
    out.bicByK.reserve(clustering.bicByK.size());
    for (const auto &[k, bic] : clustering.bicByK) {
        (void)k;
        out.bicByK.push_back(bic);
    }

    std::vector<uint32_t> reps =
        pickRepresentatives(features, clustering.best);
    // Startup-transient guard: the first slice carries the program's
    // compulsory cache misses, which its BBV cannot express. If it was
    // chosen to represent a multi-member cluster, substitute the
    // closest *other* member so the one-off cold-start cost is not
    // multiplied across the cluster. (At paper scale the startup
    // transient is a negligible slice fraction; at our reduced scale
    // the guard is needed to preserve the same behavior.)
    for (uint32_t c = 0; c < clustering.best.k; ++c) {
        if (reps[c] != 0)
            continue;
        size_t alt = nearestMemberToCentroid(features, clustering.best,
                                             c, /*exclude=*/0);
        if (alt != features.size())
            reps[c] = static_cast<uint32_t>(alt);
    }
    std::vector<uint64_t> cluster_work(out.chosenK, 0);
    for (size_t i = 0; i < out.slices.size(); ++i)
        cluster_work[out.assignment[i]] += out.slices[i].filteredIcount;

    for (uint32_t c = 0; c < out.chosenK; ++c) {
        const SliceRecord &rep = out.slices[reps[c]];
        if (rep.filteredIcount == 0)
            continue; // empty slice (e.g. a trailing sliver)
        LoopPointRegion region;
        region.cluster = c;
        region.sliceIndex = reps[c];
        region.start = rep.start;
        region.end = rep.end;
        region.filteredIcount = rep.filteredIcount;
        region.multiplier = static_cast<double>(cluster_work[c]) /
                            static_cast<double>(rep.filteredIcount);
        out.regions.push_back(region);
    }
    LP_ASSERT(!out.regions.empty());
    return out;
}

SimMetrics
LoopPointPipeline::simulateRegion(const LoopPointResult &lp,
                                  const LoopPointRegion &region,
                                  const SimConfig &sim_cfg,
                                  bool constrained) const
{
    if (constrained) {
        ReplayArbiter arbiter(lp.pinball.log);
        MulticoreSim sim(*prog, execConfig(), sim_cfg, &arbiter);
        return sim.runRegion(region.start.pc, region.start.count,
                             region.end.pc, region.end.count);
    }
    MulticoreSim sim(*prog, execConfig(), sim_cfg);
    return sim.runRegion(region.start.pc, region.start.count,
                         region.end.pc, region.end.count);
}

SimMetrics
LoopPointPipeline::simulateFull(const SimConfig &sim_cfg) const
{
    MulticoreSim sim(*prog, execConfig(), sim_cfg);
    return sim.run();
}

namespace {

/**
 * One region checkpoint in flight: a deep snapshot of the warming
 * simulation plus its private replay arbiter, heap-held so the
 * snapshot outlives the warming loop iteration that took it. The
 * arbiter is rebound in the constructor (the MulticoreSim copy aliases
 * the source's arbiter otherwise).
 */
struct RegionSnapshot
{
    MulticoreSim sim;
    ReplayArbiter arbiter;

    RegionSnapshot(const MulticoreSim &base,
                   const ReplayArbiter &base_arbiter, bool constrained)
        : sim(base), arbiter(base_arbiter)
    {
        if (constrained)
            sim.engine().setArbiter(&arbiter);
    }
};

} // namespace

LoopPointPipeline::CheckpointedSimResult
LoopPointPipeline::simulateRegionsCheckpointed(const LoopPointResult &lp,
                                               const SimConfig &sim_cfg,
                                               bool constrained,
                                               RunJournal *journal) const
{
    using clock = std::chrono::steady_clock;
    auto seconds_since = [](clock::time_point t0) {
        return std::chrono::duration<double>(clock::now() - t0).count();
    };

    CheckpointedSimResult out;
    out.jobs = effectiveJobs(sim_cfg.jobs);
    out.regionMetrics.resize(lp.regions.size());
    out.regionWallSeconds.resize(lp.regions.size(), 0.0);
    out.regionOutcomes.resize(lp.regions.size());
    DiagnosticSink sink;

    // Telemetry handles: registry references are stable for process
    // lifetime, and every update below is a no-op while obs is off.
    Tracer &tracer = Tracer::global();
    MetricsRegistry &reg = MetricsRegistry::global();
    Counter &stat_completed = reg.counter("region.sim.completed");
    Counter &stat_failed = reg.counter("region.sim.failed");
    Counter &stat_retries = reg.counter("region.sim.retries");
    Counter &stat_journal_hits = reg.counter("journal.hits");
    Histogram &stat_wall_us = reg.histogram(
        "region.sim.wall_us",
        {100, 1'000, 10'000, 100'000, 1'000'000, 10'000'000});
    Histogram &stat_l2_mpki = reg.histogram(
        "region.l2.mpki_x1000",
        {100, 300, 1'000, 3'000, 10'000, 30'000, 100'000});

    auto t_phase = clock::now();
    ScopedSpan phase_span(tracer, "phase.checkpointed");

    // Process regions in program order so a single warming pass can
    // take every checkpoint.
    std::vector<size_t> order(lp.regions.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return lp.regions[a].sliceIndex < lp.regions[b].sliceIndex;
    });

    auto pc_index = buildPcIndex(*prog);
    auto block_of = [&](Addr pc) {
        auto it = pc_index.find(pc);
        if (it == pc_index.end())
            fatal("checkpointed simulation: no block at pc %#llx",
                  static_cast<unsigned long long>(pc));
        return it->second;
    };

    ReplayArbiter base_arbiter(lp.pinball.log);
    MulticoreSim base(*prog, execConfig(), sim_cfg,
                      constrained ? &base_arbiter : nullptr);

    // Checkpoint fanout: the warming pass (necessarily serial — it is
    // one execution) advances in program order; each snapshot it takes
    // goes straight to the pool, so region bodies simulate while
    // warming continues toward the next checkpoint. jobs == 1 runs
    // the snapshot inline, which is exactly the old serial schedule.
    ThreadPool *pool = out.jobs > 1 ? poolFor(out.jobs) : nullptr;
    std::vector<std::future<void>> inflight;

    // If anything unwinds this frame while region tasks are still
    // running (an injected kill surfacing through the helping join, a
    // marker-resolution FatalError on the warming thread), the tasks
    // must be drained before `out` and the snapshots leave scope.
    struct DrainGuard
    {
        ThreadPool *pool;
        std::vector<std::future<void>> *inflight;
        ~DrainGuard()
        {
            if (!pool)
                return;
            for (auto &fut : *inflight) {
                if (!fut.valid())
                    continue;
                try {
                    pool->waitHelping(fut);
                } catch (...) {
                    // Already unwinding; the first error wins.
                }
            }
        }
    } drain_guard{pool, &inflight};

    for (size_t idx : order) {
        const LoopPointRegion &region = lp.regions[idx];

        // Advance the warming pass to the region start. This happens
        // for journal hits too: the fast-forward scheduler's quantum
        // rotation restarts at each stop, so the stops themselves are
        // part of the warming trajectory — a resumed run must stop
        // exactly where the original did to keep the downstream
        // regions bit-identical.
        auto t_ff = clock::now();
        {
            ScopedSpan warm_span(tracer, "warm.fastforward");
            warm_span.arg("region", static_cast<uint64_t>(idx));
            if (region.start.pc != 0 && region.start.count > 0) {
                BlockId start_block = block_of(region.start.pc);
                base.fastForwardUntil(start_block, region.start.count,
                                      /*warm=*/true);
            }
        }
        const double warm_s = seconds_since(t_ff);
        out.checkpointWallSeconds += warm_s;

        // Resume fast path: a journaled region needs no snapshot and
        // no detailed simulation — the expensive parts — only the
        // warming stop above.
        if (journal) {
            auto hit = journal->find(static_cast<uint32_t>(idx),
                                     region.start, region.end,
                                     region.multiplier);
            if (hit) {
                out.regionMetrics[idx] = hit->metrics;
                out.regionOutcomes[idx].ok = true;
                out.regionOutcomes[idx].fromJournal = true;
                out.regionOutcomes[idx].attempts = hit->attempts;
                ++out.journalHits;
                // The warming above served only this replayed region;
                // see journalWarmSeconds.
                out.journalWarmSeconds += warm_s;
                stat_journal_hits.add();
                tracer.instant(
                    "journal.hit",
                    {{"region", std::to_string(idx), false}});
                continue;
            }
        }

        // Snapshot = region pinball with warm microarchitectural
        // state; simulate it in isolation. Marker blocks resolve on
        // the warming thread so pool tasks cannot throw FatalError.
        const BlockId end_block =
            region.end.pc ? block_of(region.end.pc) : kInvalidBlock;
        auto snap = std::make_shared<RegionSnapshot>(base, base_arbiter,
                                                     constrained);

        // Divergence watchdog budget: generous over any legitimate
        // spin inflation, so it only fires when the end marker is
        // genuinely unreachable.
        uint64_t budget = 0;
        if (sim_cfg.watchdogFactor) {
            const uint64_t floor_icount =
                std::max<uint64_t>(region.filteredIcount, 10'000);
            if (__builtin_mul_overflow(sim_cfg.watchdogFactor,
                                       floor_icount, &budget))
                budget = std::numeric_limits<uint64_t>::max();
        }

        auto simulate = [snap, end_block, idx, &region, &out, &sim_cfg,
                         &sink, journal, constrained, budget,
                         seconds_since, &tracer, &stat_completed,
                         &stat_failed, &stat_retries, &stat_wall_us,
                         &stat_l2_mpki] {
            auto t_region = clock::now();
            // The span lands on the executing host thread's track and
            // is mirrored onto the region's own virtual track, so the
            // trace shows both "what each worker did" and "when each
            // region ran".
            ScopedSpan region_span(tracer, "region.sim");
            if (region_span.active())
                region_span
                    .mirror(tracer.virtualTrack(
                        "region " + std::to_string(idx)))
                    .arg("region", static_cast<uint64_t>(idx))
                    .arg("multiplier", region.multiplier)
                    .arg("icount", region.filteredIcount);
            RegionOutcome &outcome = out.regionOutcomes[idx];
            const uint32_t max_attempts = 1 + sim_cfg.regionRetries;
            for (uint32_t attempt = 0; attempt < max_attempts;
                 ++attempt) {
                // Per-attempt spans only matter when retries are in
                // play; the common single-attempt case is already
                // covered by region.sim.
                ScopedSpan attempt_span(
                    max_attempts > 1 ? &tracer : nullptr,
                    "region.attempt");
                attempt_span.arg("region", static_cast<uint64_t>(idx))
                    .arg("attempt", attempt);
                try {
                    const auto fault = sim_cfg.faults.simFault(
                        static_cast<uint32_t>(idx), attempt);
                    if (fault == FaultSpec::Kind::Kill)
                        throw InjectedKill(
                            "injected host death in region " +
                            std::to_string(idx));
                    if (fault == FaultSpec::Kind::Throw)
                        throw InjectedFault(
                            "injected failure in region " +
                            std::to_string(idx) + ", attempt " +
                            std::to_string(attempt));
                    const bool diverge =
                        fault == FaultSpec::Kind::Diverge;

                    // With retries in play, every attempt gets its own
                    // copy of the pristine snapshot so a failed
                    // attempt's partial progress cannot leak into the
                    // next; the single-attempt default runs in place
                    // (no extra deep copy on the fault-free path).
                    std::unique_ptr<RegionSnapshot> scratch;
                    MulticoreSim *sim = &snap->sim;
                    if (max_attempts > 1) {
                        scratch = std::make_unique<RegionSnapshot>(
                            snap->sim, snap->arbiter, constrained);
                        sim = &scratch->sim;
                    }

                    SimMetrics m;
                    bool reached = true;
                    if (end_block == kInvalidBlock && !diverge) {
                        m = sim->runDetailed();
                    } else {
                        // A diverge fault retargets the stop at a
                        // count no execution can reach.
                        const BlockId stop_block =
                            end_block == kInvalidBlock ? 0 : end_block;
                        const uint64_t stop_count =
                            diverge
                                ? std::numeric_limits<uint64_t>::max()
                                : region.end.count;
                        m = sim->runDetailedUntilBudget(
                            stop_block, stop_count, budget, &reached);
                    }
                    if (!reached)
                        throw std::runtime_error(
                            "end marker not reached (divergent "
                            "region; watchdog budget " +
                            std::to_string(budget) + " instructions)");

                    // idx is unique per task: each writes its own
                    // slot.
                    out.regionMetrics[idx] = m;
                    outcome.ok = true;
                    outcome.attempts = attempt + 1;
                    outcome.error.clear();
                    stat_completed.add();
                    if (attempt > 0)
                        stat_retries.add(attempt);
                    stat_l2_mpki.observe(
                        static_cast<uint64_t>(m.l2Mpki() * 1000.0));
                    region_span.arg("cycles", m.cycles)
                        .arg("instructions", m.instructions)
                        .arg("ipc", m.ipc())
                        .arg("l2_mpki", m.l2Mpki());
                    if (attempt > 0)
                        sink.warning(
                            "fault-tolerance",
                            "region " + std::to_string(idx),
                            "recovered on attempt " +
                                std::to_string(attempt + 1) + " of " +
                                std::to_string(max_attempts));
                    if (journal) {
                        RunJournal::Record rec;
                        rec.regionIndex = static_cast<uint32_t>(idx);
                        rec.start = region.start;
                        rec.end = region.end;
                        rec.multiplier = region.multiplier;
                        rec.attempts = attempt + 1;
                        rec.metrics = m;
                        journal->append(rec);
                    }
                    break;
                } catch (const InjectedKill &) {
                    outcome.ok = false;
                    outcome.attempts = attempt + 1;
                    outcome.error = "injected host death";
                    throw; // simulated crash: escape the phase
                } catch (const std::exception &e) {
                    outcome.ok = false;
                    outcome.attempts = attempt + 1;
                    outcome.error = e.what();
                }
            }
            if (!outcome.ok) {
                sink.error("fault-tolerance",
                           "region " + std::to_string(idx),
                           "dropped after " +
                               std::to_string(outcome.attempts) +
                               " attempt(s): " + outcome.error);
                stat_failed.add();
            }
            out.regionWallSeconds[idx] = seconds_since(t_region);
            stat_wall_us.observe(static_cast<uint64_t>(
                out.regionWallSeconds[idx] * 1e6));
            region_span
                .arg("ok", static_cast<uint64_t>(outcome.ok ? 1 : 0))
                .arg("attempts", outcome.attempts);
        };
        if (pool)
            inflight.push_back(pool->submit(std::move(simulate)));
        else
            simulate();
    }

    // Warming is done; join the drain (the warming thread helps run
    // queued regions instead of idling). Every future is awaited even
    // if one carries an exception — a task still running while this
    // frame unwinds would use freed stack state — and the first error
    // is rethrown once all tasks are quiescent.
    std::exception_ptr first_error;
    for (auto &fut : inflight) {
        try {
            pool->waitHelping(fut);
        } catch (...) {
            if (!first_error)
                first_error = std::current_exception();
        }
    }
    if (first_error)
        std::rethrow_exception(first_error);

    // Coverage: the weight fraction of the extrapolation backed by
    // usable regions. All-ok sums are identical, so division yields
    // exactly 1.0 on the fault-free path.
    double total_weight = 0.0, ok_weight = 0.0;
    for (size_t i = 0; i < lp.regions.size(); ++i) {
        const double w =
            lp.regions[i].multiplier *
            static_cast<double>(lp.regions[i].filteredIcount);
        total_weight += w;
        if (out.regionOutcomes[i].ok)
            ok_weight += w;
    }
    out.coverage = total_weight > 0.0 ? ok_weight / total_weight : 1.0;
    out.diagnostics = sink.take();
    out.phaseWallSeconds = seconds_since(t_phase);
    phase_span.arg("jobs", out.jobs)
        .arg("regions", static_cast<uint64_t>(lp.regions.size()))
        .arg("journal_hits", static_cast<uint64_t>(out.journalHits))
        .arg("coverage", out.coverage)
        .arg("phase_wall_seconds", out.phaseWallSeconds);
    // Close now, not at frame exit: the span duration must agree with
    // phaseWallSeconds (lp_report --check enforces 1%).
    phase_span.finish();
    return out;
}

MetricPrediction
extrapolateMetrics(const LoopPointResult &lp,
                   const std::vector<SimMetrics> &region_metrics,
                   const SimConfig &sim_cfg)
{
    return extrapolateMetrics(
        lp, region_metrics,
        std::vector<uint8_t>(lp.regions.size(), 1), sim_cfg);
}

MetricPrediction
extrapolateMetrics(const LoopPointResult &lp,
                   const std::vector<SimMetrics> &region_metrics,
                   const std::vector<uint8_t> &ok_mask,
                   const SimConfig &sim_cfg)
{
    if (region_metrics.size() != lp.regions.size())
        fatal("extrapolateMetrics: %zu region metrics for %zu regions",
              region_metrics.size(), lp.regions.size());
    if (ok_mask.size() != lp.regions.size())
        fatal("extrapolateMetrics: %zu mask entries for %zu regions",
              ok_mask.size(), lp.regions.size());

    // Covered weight fraction (Eq. 2 weights over filtered work).
    double total_weight = 0.0, ok_weight = 0.0;
    for (size_t i = 0; i < lp.regions.size(); ++i) {
        const double w =
            lp.regions[i].multiplier *
            static_cast<double>(lp.regions[i].filteredIcount);
        total_weight += w;
        if (ok_mask[i])
            ok_weight += w;
    }
    const double coverage =
        total_weight > 0.0 ? ok_weight / total_weight : 1.0;

    MetricPrediction p;
    p.coverage = coverage;
    if (coverage <= 0.0)
        return p; // nothing usable: an explicitly empty prediction

    // Renormalize the surviving multipliers so the prediction still
    // targets the whole program. Full coverage divides by exactly
    // 1.0, which leaves every multiplier bit-identical to the plain
    // extrapolation.
    const double renorm = 1.0 / coverage;
    for (size_t i = 0; i < lp.regions.size(); ++i) {
        if (!ok_mask[i])
            continue;
        const double mult = lp.regions[i].multiplier * renorm;
        const SimMetrics &m = region_metrics[i];
        p.runtimeSeconds += m.runtimeSeconds * mult;
        p.cycles += static_cast<double>(m.cycles) * mult;
        p.instructions += static_cast<double>(m.instructions) * mult;
        p.filteredInstructions +=
            static_cast<double>(m.filteredInstructions) * mult;
        p.branchMispredicts +=
            static_cast<double>(m.branchMispredicts) * mult;
        p.l1dMisses += static_cast<double>(m.l1dMisses) * mult;
        p.l2Misses += static_cast<double>(m.l2Misses) * mult;
        p.l3Misses += static_cast<double>(m.l3Misses) * mult;
    }
    (void)sim_cfg;
    return p;
}

} // namespace looppoint
