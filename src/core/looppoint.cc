#include "core/looppoint.hh"

#include <algorithm>
#include <chrono>
#include <exception>
#include <future>
#include <limits>
#include <optional>

#include "analysis/lockset.hh"
#include "analysis/program_lint.hh"
#include "analysis/race_detector.hh"
#include "core/region_exec.hh"
#include "core/run_journal.hh"
#include "dist/region_farm.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "dcfg/dcfg.hh"
#include "exec/driver.hh"
#include "profile/slicer.hh"
#include "store/stage_cache.hh"
#include "util/interrupt.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace looppoint {

size_t
LoopPointPipeline::CheckpointedSimResult::failedRegions() const
{
    size_t failed = 0;
    for (const auto &o : regionOutcomes)
        if (!o.ok)
            ++failed;
    return failed;
}

std::vector<uint8_t>
LoopPointPipeline::CheckpointedSimResult::okMask() const
{
    std::vector<uint8_t> mask(regionOutcomes.size(), 1);
    for (size_t i = 0; i < regionOutcomes.size(); ++i)
        mask[i] = regionOutcomes[i].ok ? 1 : 0;
    return mask;
}

double
LoopPointPipeline::CheckpointedSimResult::serialEquivalentSeconds() const
{
    // Warming spent reaching journal-satisfied regions backs no
    // simulation in this run; counting it would credit a resumed run
    // with "serial work" it never had to parallelize.
    double total = checkpointWallSeconds - journalWarmSeconds;
    for (double w : regionWallSeconds)
        total += w;
    return total;
}

double
LoopPointPipeline::CheckpointedSimResult::hostParallelSpeedup() const
{
    // Exclude the journal-hit warming from the wall-time denominator
    // too: it is the same serial work on both sides, so leaving it in
    // only one place would misreport resumed runs (a full resume
    // would claim speedup ~1 with zero regions simulated).
    const double wall = phaseWallSeconds - journalWarmSeconds;
    const double serial = serialEquivalentSeconds();
    return wall > 0.0 && serial > 0.0 ? serial / wall : 0.0;
}

double
LoopPointPipeline::CheckpointedSimResult::parallelEfficiency() const
{
    return jobs ? hostParallelSpeedup() / static_cast<double>(jobs)
                : 0.0;
}

double
LoopPointResult::theoreticalSerialSpeedup() const
{
    uint64_t selected = 0;
    for (const auto &r : regions)
        selected += r.filteredIcount;
    return selected ? static_cast<double>(totalFilteredIcount) /
                          static_cast<double>(selected)
                    : 0.0;
}

double
LoopPointResult::theoreticalParallelSpeedup() const
{
    uint64_t largest = 0;
    for (const auto &r : regions)
        largest = std::max(largest, r.filteredIcount);
    return largest ? static_cast<double>(totalFilteredIcount) /
                         static_cast<double>(largest)
                   : 0.0;
}

LoopPointPipeline::LoopPointPipeline(const Program &prog_,
                                     LoopPointOptions opts_)
    : prog(&prog_), opts(opts_)
{
    if (opts.numThreads == 0)
        fatal("LoopPointPipeline: at least one thread required");
    if (opts.sliceSizePerThread == 0)
        fatal("LoopPointPipeline: slice size must be positive");
}

LoopPointPipeline::~LoopPointPipeline() = default;

ThreadPool *
LoopPointPipeline::poolFor(uint32_t jobs) const
{
    uint32_t workers = ThreadPool::resolveWorkers(jobs);
    if (workers <= 1)
        return nullptr;
    if (!sharedPool || sharedPool->numWorkers() != workers)
        sharedPool = std::make_unique<ThreadPool>(workers);
    return sharedPool.get();
}

ExecConfig
LoopPointPipeline::execConfig() const
{
    ExecConfig cfg;
    cfg.numThreads = opts.numThreads;
    cfg.waitPolicy = opts.waitPolicy;
    cfg.seed = opts.seed;
    return cfg;
}

FeatureMatrix
buildFeatureMatrix(const Program &prog,
                   const std::vector<SliceRecord> &slices, uint32_t dims,
                   uint64_t seed, ThreadPool *pool)
{
    RandomProjector projector(dims, hashCombine(seed, 0xbbf));
    FeatureMatrix features(slices.size());
    const uint64_t num_blocks = prog.numBlocks();
    // Each slice projects into its own row; the projector is shared
    // but stateless, so the parallel build is bit-identical to the
    // serial one.
    ThreadPool::forEach(pool, 0, slices.size(), [&](size_t i) {
        const SliceRecord &slice = slices[i];
        std::vector<std::pair<uint64_t, double>> sparse;
        double norm = slice.filteredIcount
                          ? static_cast<double>(slice.filteredIcount)
                          : 1.0;
        for (uint32_t tid = 0; tid < slice.perThread.size(); ++tid) {
            for (const auto &[block, count] : slice.perThread[tid].counts) {
                double weight =
                    static_cast<double>(count) *
                    static_cast<double>(prog.blocks[block].numInstrs()) /
                    norm;
                sparse.emplace_back(
                    static_cast<uint64_t>(tid) * num_blocks + block,
                    weight);
            }
        }
        // Canonical entry order before projecting: the per-thread BBV
        // maps iterate in insertion order, which a profile artifact
        // reloaded from the store cannot reproduce — and float
        // summation in project() is order-sensitive. Sorting by the
        // (unique) concatenated index makes the features a pure
        // function of the BBV *contents*, so cached and fresh profiles
        // cluster bit-identically.
        std::sort(sparse.begin(), sparse.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        features[i] = projector.project(sparse);
    });
    return features;
}

LoopPointResult
LoopPointPipeline::analyze()
{
    LoopPointResult out;
    ExecConfig cfg = execConfig();
    Tracer &tracer = Tracer::global();

    // (1) Record the whole program once as a pinball: the repeatable,
    // up-front application analysis substrate. With a stage cache, a
    // prior run's pinball is reused when the recording key (workload,
    // threads, wait policy, seed, flow quantum) matches.
    {
        ScopedSpan span(tracer, "analyze.record");
        std::string key;
        if (cache) {
            key = StageCache::recordKey(prog->name, opts);
            if (auto hit = cache->loadPinball(key)) {
                // Belt-and-braces: the key already encodes this, but a
                // mis-bound manifest entry must not smuggle in another
                // workload's schedule.
                if (hit->pinball.programName == prog->name &&
                    hit->pinball.config == cfg) {
                    out.pinball = std::move(hit->pinball);
                    out.stageHashes.record = std::move(hit->hash);
                    out.stageHashes.recordHit = true;
                }
            }
        }
        if (!out.stageHashes.recordHit) {
            out.pinball = recordPinball(*prog, cfg, opts.flowQuantum);
            if (cache)
                out.stageHashes.record =
                    cache->publishPinball(key, out.pinball);
        }
        span.arg("threads", cfg.numThreads)
            .arg("cached", out.stageHashes.recordHit);
    }

    // (2) Constrained replay #1: build the DCFG and identify the legal
    // region markers (main-image loop headers). The DCFG is an
    // intermediate of profiling, so a profile-stage hit skips this
    // replay entirely — unless the lint pass needs the DCFG anyway.
    std::optional<Dcfg> dcfg;
    auto build_dcfg = [&] {
        ScopedSpan span(tracer, "analyze.dcfg");
        DcfgBuilder dcfg_builder(*prog, cfg.numThreads);
        replayPinball(*prog, out.pinball, opts.flowQuantum,
                      &dcfg_builder);
        dcfg = dcfg_builder.build();
    };

    // (3) Constrained replay #2: collect per-slice, per-thread BBVs
    // with spin/synchronization filtering. Keyed on the recording's
    // content hash plus the fields this stage consumes.
    std::string profile_key;
    if (cache && !out.stageHashes.record.empty()) {
        profile_key =
            StageCache::profileKey(out.stageHashes.record, opts);
        if (auto hit = cache->loadSlices(profile_key)) {
            out.slices = std::move(hit->slices);
            out.stageHashes.profile = std::move(hit->hash);
            out.stageHashes.profileHit = true;
        }
    }
    if (!out.stageHashes.profileHit) {
        build_dcfg();
        std::vector<BlockId> markers = dcfg->mainImageLoopHeaders();
        if (markers.empty())
            fatal("program '%s' exposes no main-image loop headers to "
                  "mark regions", prog->name.c_str());
        const uint64_t slice_global =
            opts.sliceSizePerThread * cfg.numThreads;
        SliceProfiler profiler(*prog, markers, slice_global,
                               cfg.numThreads, opts.filterSpin);
        {
            ScopedSpan span(tracer, "analyze.profile");
            replayPinball(*prog, out.pinball, opts.flowQuantum,
                          &profiler);
            profiler.finalize();
            out.slices = profiler.slices();
            span.arg("slices",
                     static_cast<uint64_t>(out.slices.size()));
        }
        if (cache)
            out.stageHashes.profile =
                cache->publishSlices(profile_key, out.slices);
    }
    LP_ASSERT(!out.slices.empty());

    // (2b) Optional verification passes over the recorded execution.
    // They only produce diagnostics; the pipeline output is
    // unaffected. Lint wants the DCFG, which a profile hit skipped.
    if (opts.analysis.lint || opts.analysis.raceCheck ||
        opts.analysis.lockCheck) {
        if (opts.analysis.lint && !dcfg)
            build_dcfg();
        ScopedSpan span(tracer, "analyze.verify");
        DiagnosticSink sink;
        const uint32_t cap = opts.analysis.maxFindings
                                 ? opts.analysis.maxFindings
                                 : RaceDetector::kMaxReports;
        if (opts.analysis.lint) {
            LintContext lint_ctx;
            lint_ctx.prog = prog;
            lint_ctx.dcfg = &*dcfg;
            lint_ctx.pinball = &out.pinball;
            lint_ctx.flowQuantum = opts.flowQuantum;
            ProgramLint().run(lint_ctx, sink);
        }
        if (opts.analysis.raceCheck)
            checkGuestRaces(*prog, out.pinball, sink,
                            opts.flowQuantum, cap);
        if (opts.analysis.lockCheck)
            checkGuestLockDiscipline(*prog, out.pinball, sink,
                                     opts.flowQuantum, cap);
        out.diagnostics = sink.take();
        sortDiagnosticsCanonical(out.diagnostics);
        span.arg("diagnostics",
                 static_cast<uint64_t>(out.diagnostics.size()));
    }

    for (const auto &s : out.slices) {
        out.totalFilteredIcount += s.filteredIcount;
        out.totalIcount += s.totalIcount;
    }

    // (4) Cluster the projected BBVs and pick one representative per
    // cluster, weighted by the cluster's share of the work (Eq. 2).
    // Both the projection and the K sweep fan out over the shared
    // pool when opts.jobs allows. Keyed on the profile artifact hash
    // plus the clustering knobs; a hit skips projection + K sweep.
    std::string cluster_key;
    if (cache && !out.stageHashes.profile.empty()) {
        cluster_key =
            StageCache::clusterKey(out.stageHashes.profile, opts);
        if (auto hit = cache->loadCluster(cluster_key)) {
            if (hit->art.assignment.size() == out.slices.size() &&
                !hit->art.regions.empty()) {
                out.assignment = std::move(hit->art.assignment);
                out.chosenK = hit->art.chosenK;
                out.bicByK = std::move(hit->art.bicByK);
                out.regions = std::move(hit->art.regions);
                out.stageHashes.cluster = std::move(hit->hash);
                out.stageHashes.clusterHit = true;
            }
        }
    }
    if (out.stageHashes.clusterHit)
        return out;

    ThreadPool *pool = poolFor(opts.jobs);
    FeatureMatrix features = [&] {
        ScopedSpan span(tracer, "analyze.project");
        span.arg("slices", static_cast<uint64_t>(out.slices.size()))
            .arg("dims", opts.projectionDims);
        return buildFeatureMatrix(*prog, out.slices,
                                  opts.projectionDims, opts.seed, pool);
    }();
    ClusteringResult clustering = [&] {
        ScopedSpan span(tracer, "cluster.sweep");
        span.arg("max_k", opts.maxK);
        auto r = simpointCluster(features, opts.maxK,
                                 hashCombine(opts.seed, 0xc1u),
                                 opts.bicThreshold, pool);
        span.arg("chosen_k", r.chosenK);
        return r;
    }();
    out.clusterSerialSeconds = clustering.candidateWallSeconds;
    out.clusterWallSeconds = clustering.sweepWallSeconds;
    out.assignment = clustering.best.assignment;
    out.chosenK = clustering.chosenK;
    out.bicByK.reserve(clustering.bicByK.size());
    for (const auto &[k, bic] : clustering.bicByK) {
        (void)k;
        out.bicByK.push_back(bic);
    }

    std::vector<uint32_t> reps =
        pickRepresentatives(features, clustering.best);
    // Startup-transient guard: the first slice carries the program's
    // compulsory cache misses, which its BBV cannot express. If it was
    // chosen to represent a multi-member cluster, substitute the
    // closest *other* member so the one-off cold-start cost is not
    // multiplied across the cluster. (At paper scale the startup
    // transient is a negligible slice fraction; at our reduced scale
    // the guard is needed to preserve the same behavior.)
    for (uint32_t c = 0; c < clustering.best.k; ++c) {
        if (reps[c] != 0)
            continue;
        size_t alt = nearestMemberToCentroid(features, clustering.best,
                                             c, /*exclude=*/0);
        if (alt != features.size())
            reps[c] = static_cast<uint32_t>(alt);
    }
    std::vector<uint64_t> cluster_work(out.chosenK, 0);
    for (size_t i = 0; i < out.slices.size(); ++i)
        cluster_work[out.assignment[i]] += out.slices[i].filteredIcount;

    for (uint32_t c = 0; c < out.chosenK; ++c) {
        const SliceRecord &rep = out.slices[reps[c]];
        if (rep.filteredIcount == 0)
            continue; // empty slice (e.g. a trailing sliver)
        LoopPointRegion region;
        region.cluster = c;
        region.sliceIndex = reps[c];
        region.start = rep.start;
        region.end = rep.end;
        region.filteredIcount = rep.filteredIcount;
        region.multiplier = static_cast<double>(cluster_work[c]) /
                            static_cast<double>(rep.filteredIcount);
        out.regions.push_back(region);
    }
    LP_ASSERT(!out.regions.empty());
    if (cache)
        out.stageHashes.cluster = cache->publishCluster(
            cluster_key, {out.assignment, out.chosenK, out.bicByK,
                          out.regions});
    return out;
}

SimMetrics
LoopPointPipeline::simulateRegion(const LoopPointResult &lp,
                                  const LoopPointRegion &region,
                                  const SimConfig &sim_cfg,
                                  bool constrained) const
{
    if (constrained) {
        ReplayArbiter arbiter(lp.pinball.log);
        MulticoreSim sim(*prog, execConfig(), sim_cfg, &arbiter);
        return sim.runRegion(region.start.pc, region.start.count,
                             region.end.pc, region.end.count);
    }
    MulticoreSim sim(*prog, execConfig(), sim_cfg);
    return sim.runRegion(region.start.pc, region.start.count,
                         region.end.pc, region.end.count);
}

SimMetrics
LoopPointPipeline::simulateFull(const SimConfig &sim_cfg) const
{
    MulticoreSim sim(*prog, execConfig(), sim_cfg);
    return sim.run();
}

LoopPointPipeline::CheckpointedSimResult
LoopPointPipeline::simulateRegionsCheckpointed(const LoopPointResult &lp,
                                               const SimConfig &sim_cfg,
                                               bool constrained,
                                               RunJournal *journal) const
{
    using clock = std::chrono::steady_clock;
    auto seconds_since = [](clock::time_point t0) {
        return std::chrono::duration<double>(clock::now() - t0).count();
    };

    CheckpointedSimResult out;
    out.jobs = ThreadPool::resolveWorkers(sim_cfg.jobs);
    out.backend = sim_cfg.backend;
    out.regionMetrics.resize(lp.regions.size());
    out.regionWallSeconds.resize(lp.regions.size(), 0.0);
    out.regionOutcomes.resize(lp.regions.size());
    DiagnosticSink sink;

    // Telemetry handles: registry references are stable for process
    // lifetime, and every update below is a no-op while obs is off.
    Tracer &tracer = Tracer::global();
    MetricsRegistry &reg = MetricsRegistry::global();
    Counter &stat_completed = reg.counter("region.sim.completed");
    Counter &stat_failed = reg.counter("region.sim.failed");
    Counter &stat_retries = reg.counter("region.sim.retries");
    Counter &stat_journal_hits = reg.counter("journal.hits");
    Histogram &stat_wall_us = reg.histogram(
        "region.sim.wall_us",
        {100, 1'000, 10'000, 100'000, 1'000'000, 10'000'000});
    Histogram &stat_l2_mpki = reg.histogram(
        "region.l2.mpki_x1000",
        {100, 300, 1'000, 3'000, 10'000, 30'000, 100'000});

    auto t_phase = clock::now();
    ScopedSpan phase_span(tracer, "phase.checkpointed");

    // Process regions in program order so a single warming pass can
    // take every checkpoint.
    std::vector<size_t> order(lp.regions.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return lp.regions[a].sliceIndex < lp.regions[b].sliceIndex;
    });

    auto pc_index = buildPcIndex(*prog);
    auto block_of = [&](Addr pc) {
        auto it = pc_index.find(pc);
        if (it == pc_index.end())
            fatal("checkpointed simulation: no block at pc %#llx",
                  static_cast<unsigned long long>(pc));
        return it->second;
    };

    ReplayArbiter base_arbiter(lp.pinball.log);
    MulticoreSim base(*prog, execConfig(), sim_cfg,
                      constrained ? &base_arbiter : nullptr);

    // Every region reports here, whichever backend ran it. The pool
    // backend may invoke this from several worker threads at once:
    // everything touched is either index-addressed (the out arrays),
    // atomic (counters), or internally locked (sink, journal) —
    // exactly the concurrency profile of the historical in-task code.
    const uint32_t max_attempts = 1 + sim_cfg.regionRetries;
    auto on_completion = [&](const RegionCompletion &c) {
        const size_t idx = c.item.index;
        RegionOutcome &outcome = out.regionOutcomes[idx];
        outcome.ok = c.result.ok;
        outcome.attempts = c.result.attempts;
        outcome.error = c.result.error;
        if (c.killed) {
            // Simulated host death under the pool backend: the phase
            // is about to unwind; record the outcome and nothing else.
            return;
        }
        if (c.result.ok) {
            const SimMetrics &m = c.result.metrics;
            // idx is unique per region: each completion writes its
            // own slot.
            out.regionMetrics[idx] = m;
            stat_completed.add();
            if (c.result.attempts > 1)
                stat_retries.add(c.result.attempts - 1);
            stat_l2_mpki.observe(
                static_cast<uint64_t>(m.l2Mpki() * 1000.0));
            if (c.result.attempts > 1)
                sink.warning("fault-tolerance",
                             "region " + std::to_string(idx),
                             "recovered on attempt " +
                                 std::to_string(c.result.attempts) +
                                 " of " + std::to_string(max_attempts));
            if (journal) {
                RunJournal::Record rec;
                rec.regionIndex = static_cast<uint32_t>(idx);
                rec.start = c.item.start;
                rec.end = c.item.end;
                rec.multiplier = c.item.multiplier;
                rec.attempts = c.result.attempts;
                rec.metrics = m;
                journal->append(rec);
            }
        } else {
            sink.error("fault-tolerance",
                       "region " + std::to_string(idx),
                       "dropped after " +
                           std::to_string(c.result.attempts) +
                           " attempt(s): " + c.result.error);
            stat_failed.add();
        }
        out.regionWallSeconds[idx] = c.wallSeconds;
        stat_wall_us.observe(
            static_cast<uint64_t>(c.wallSeconds * 1e6));
    };

    // Re-warm for a procs retry whose warm state died with its worker:
    // replay the warming pass from program start with the *exact*
    // original stop schedule — the fast-forward scheduler's quantum
    // rotation restarts at each stop, so every stop (not just the
    // target's) shapes the trajectory — and hand the warm state to
    // the backend. Bit-identical to the first dispatch by
    // construction.
    auto rewarm = [&](uint32_t region_index,
                      const std::function<void(MulticoreSim &,
                                               const ReplayArbiter &)>
                          &use) {
        ScopedSpan rewarm_span(tracer, "warm.rewarm");
        rewarm_span.arg("region", static_cast<uint64_t>(region_index));
        ReplayArbiter arbiter(lp.pinball.log);
        MulticoreSim sim(*prog, execConfig(), sim_cfg,
                         constrained ? &arbiter : nullptr);
        for (size_t j : order) {
            const LoopPointRegion &r = lp.regions[j];
            if (r.start.pc != 0 && r.start.count > 0) {
                BlockId start_block = block_of(r.start.pc);
                sim.fastForwardUntil(start_block, r.start.count,
                                     /*warm=*/true);
            }
            if (j == region_index)
                break;
        }
        use(sim, arbiter);
    };

    // Checkpoint fanout: the warming pass (necessarily serial — it is
    // one execution) advances in program order; each checkpoint it
    // reaches goes straight to the execution backend, so region
    // bodies simulate while warming continues toward the next
    // checkpoint. The pool backend with jobs == 1 runs each region
    // inline, which is exactly the old serial schedule. The backend
    // is destroyed before `out` and the sink on unwind, draining (or
    // killing) whatever is still in flight.
    std::unique_ptr<RegionExecBackend> backend;
    if (sim_cfg.backend == ExecBackendKind::Procs) {
        // The coordinator must be single-threaded at every fork; the
        // shared pool (from the analysis phase) has to go first.
        sharedPool.reset();
        ProcsBackendOptions procs_opts;
        procs_opts.workers = out.jobs;
        procs_opts.workerTimeoutSeconds = sim_cfg.workerTimeoutSeconds;
        procs_opts.faults = sim_cfg.faults;
        // Checkpoint-shipping context: workers rebuild their simulator
        // from the same program + configs the warming pass uses, and
        // each slot's arena is sized for this configuration's
        // microarchitectural state image.
        procs_opts.prog = prog;
        procs_opts.execCfg = execConfig();
        procs_opts.simCfg = sim_cfg;
        procs_opts.syncLog = &lp.pinball.log;
        procs_opts.arenaBytes = base.microarchStateBytes();
        backend = std::make_unique<ProcsBackend>(
            std::move(procs_opts), on_completion, rewarm);
    } else {
        ThreadPool *pool = out.jobs > 1 ? poolFor(out.jobs) : nullptr;
        backend = makePoolBackend(pool, sim_cfg.faults, on_completion);
    }

    for (size_t idx : order) {
        // A shutdown request — supervisor SIGTERM/SIGINT, or the
        // injected `kind=interrupt` fault standing in for one — parks
        // the warming pass here, at the region boundary: regions
        // already submitted finish and journal below, nothing new
        // launches, and the caller reports the run as resumable
        // rather than degraded.
        if (sim_cfg.faults.simFault(static_cast<uint32_t>(idx), 0) ==
            FaultSpec::Kind::Interrupt)
            requestShutdown();
        if (shutdownRequested()) {
            out.interrupted = true;
            sink.warning("fault-tolerance",
                         "region " + std::to_string(idx),
                         "shutdown requested: warming parked at this "
                         "region boundary (resume to continue)");
            break;
        }

        const LoopPointRegion &region = lp.regions[idx];

        // Advance the warming pass to the region start. This happens
        // for journal hits too: the fast-forward scheduler's quantum
        // rotation restarts at each stop, so the stops themselves are
        // part of the warming trajectory — a resumed run must stop
        // exactly where the original did to keep the downstream
        // regions bit-identical.
        auto t_ff = clock::now();
        {
            ScopedSpan warm_span(tracer, "warm.fastforward");
            warm_span.arg("region", static_cast<uint64_t>(idx));
            if (region.start.pc != 0 && region.start.count > 0) {
                BlockId start_block = block_of(region.start.pc);
                base.fastForwardUntil(start_block, region.start.count,
                                      /*warm=*/true);
            }
        }
        const double warm_s = seconds_since(t_ff);
        out.checkpointWallSeconds += warm_s;

        // Resume fast path: a journaled region needs no snapshot and
        // no detailed simulation — the expensive parts — only the
        // warming stop above.
        if (journal) {
            auto hit = journal->find(static_cast<uint32_t>(idx),
                                     region.start, region.end,
                                     region.multiplier);
            if (hit) {
                out.regionMetrics[idx] = hit->metrics;
                out.regionOutcomes[idx].ok = true;
                out.regionOutcomes[idx].fromJournal = true;
                out.regionOutcomes[idx].attempts = hit->attempts;
                ++out.journalHits;
                // The warming above served only this replayed region;
                // see journalWarmSeconds.
                out.journalWarmSeconds += warm_s;
                stat_journal_hits.add();
                tracer.instant(
                    "journal.hit",
                    {{"region", std::to_string(idx), false}});
                continue;
            }
        }

        // Marker blocks resolve on the warming thread so backend
        // execution can never throw a missing-block FatalError.
        const BlockId end_block =
            region.end.pc ? block_of(region.end.pc) : kInvalidBlock;

        // Divergence watchdog budget: generous over any legitimate
        // spin inflation, so it only fires when the end marker is
        // genuinely unreachable.
        uint64_t budget = 0;
        if (sim_cfg.watchdogFactor) {
            const uint64_t floor_icount =
                std::max<uint64_t>(region.filteredIcount, 10'000);
            if (__builtin_mul_overflow(sim_cfg.watchdogFactor,
                                       floor_icount, &budget))
                budget = std::numeric_limits<uint64_t>::max();
        }

        RegionWorkItem item;
        item.index = static_cast<uint32_t>(idx);
        item.start = region.start;
        item.end = region.end;
        item.multiplier = region.multiplier;
        item.filteredIcount = region.filteredIcount;
        item.endBlock = end_block;
        item.budget = budget;
        item.maxAttempts = max_attempts;
        item.constrained = constrained;
        backend->submit(item, base, base_arbiter);
    }

    // Warming is done; drain the backend (the pool backend's producer
    // thread helps run queued regions instead of idling; the procs
    // coordinator pumps worker channels and runs death-retries). The
    // first exception that must escape the phase — the pool backend's
    // InjectedKill — is rethrown once everything is quiescent.
    backend->finish();
    out.workerDeaths = backend->workerDeaths();
    out.workerRespawns = backend->workerRespawns();

    // Coverage: the weight fraction of the extrapolation backed by
    // usable regions. All-ok sums are identical, so division yields
    // exactly 1.0 on the fault-free path.
    double total_weight = 0.0, ok_weight = 0.0;
    for (size_t i = 0; i < lp.regions.size(); ++i) {
        const double w =
            lp.regions[i].multiplier *
            static_cast<double>(lp.regions[i].filteredIcount);
        total_weight += w;
        if (out.regionOutcomes[i].ok)
            ok_weight += w;
    }
    out.coverage = total_weight > 0.0 ? ok_weight / total_weight : 1.0;
    out.diagnostics = sink.take();
    out.phaseWallSeconds = seconds_since(t_phase);
    phase_span.arg("jobs", out.jobs)
        .arg("backend", execBackendName(out.backend))
        .arg("workers", out.jobs)
        .arg("regions", static_cast<uint64_t>(lp.regions.size()))
        .arg("journal_hits", static_cast<uint64_t>(out.journalHits))
        .arg("coverage", out.coverage)
        .arg("phase_wall_seconds", out.phaseWallSeconds)
        .arg("worker_deaths", out.workerDeaths)
        .arg("worker_respawns", out.workerRespawns);
    // Close now, not at frame exit: the span duration must agree with
    // phaseWallSeconds (lp_report --check enforces 1%).
    phase_span.finish();
    return out;
}

MetricPrediction
extrapolateMetrics(const LoopPointResult &lp,
                   const std::vector<SimMetrics> &region_metrics,
                   const SimConfig &sim_cfg)
{
    return extrapolateMetrics(
        lp, region_metrics,
        std::vector<uint8_t>(lp.regions.size(), 1), sim_cfg);
}

MetricPrediction
extrapolateMetrics(const LoopPointResult &lp,
                   const std::vector<SimMetrics> &region_metrics,
                   const std::vector<uint8_t> &ok_mask,
                   const SimConfig &sim_cfg)
{
    if (region_metrics.size() != lp.regions.size())
        fatal("extrapolateMetrics: %zu region metrics for %zu regions",
              region_metrics.size(), lp.regions.size());
    if (ok_mask.size() != lp.regions.size())
        fatal("extrapolateMetrics: %zu mask entries for %zu regions",
              ok_mask.size(), lp.regions.size());

    // Covered weight fraction (Eq. 2 weights over filtered work).
    double total_weight = 0.0, ok_weight = 0.0;
    for (size_t i = 0; i < lp.regions.size(); ++i) {
        const double w =
            lp.regions[i].multiplier *
            static_cast<double>(lp.regions[i].filteredIcount);
        total_weight += w;
        if (ok_mask[i])
            ok_weight += w;
    }
    const double coverage =
        total_weight > 0.0 ? ok_weight / total_weight : 1.0;

    MetricPrediction p;
    p.coverage = coverage;
    if (coverage <= 0.0)
        return p; // nothing usable: an explicitly empty prediction

    // Renormalize the surviving multipliers so the prediction still
    // targets the whole program. Full coverage divides by exactly
    // 1.0, which leaves every multiplier bit-identical to the plain
    // extrapolation.
    const double renorm = 1.0 / coverage;
    for (size_t i = 0; i < lp.regions.size(); ++i) {
        if (!ok_mask[i])
            continue;
        const double mult = lp.regions[i].multiplier * renorm;
        const SimMetrics &m = region_metrics[i];
        p.runtimeSeconds += m.runtimeSeconds * mult;
        p.cycles += static_cast<double>(m.cycles) * mult;
        p.instructions += static_cast<double>(m.instructions) * mult;
        p.filteredInstructions +=
            static_cast<double>(m.filteredInstructions) * mult;
        p.branchMispredicts +=
            static_cast<double>(m.branchMispredicts) * mult;
        p.l1dMisses += static_cast<double>(m.l1dMisses) * mult;
        p.l2Misses += static_cast<double>(m.l2Misses) * mult;
        p.l3Misses += static_cast<double>(m.l3Misses) * mult;
    }
    (void)sim_cfg;
    return p;
}

} // namespace looppoint
