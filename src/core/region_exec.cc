#include "core/region_exec.hh"

#include <chrono>
#include <future>
#include <utility>
#include <vector>

#include "obs/trace.hh"
#include "util/thread_pool.hh"

namespace looppoint {

namespace {

class PoolBackend final : public RegionExecBackend
{
  public:
    PoolBackend(ThreadPool *pool_, FaultPlan faults_,
                CompletionSink sink_)
        : pool(pool_), faults(std::move(faults_)),
          sink(std::move(sink_))
    {
    }

    /**
     * If anything unwinds the phase while region tasks are still
     * running (an injected kill surfacing through the helping join, a
     * marker-resolution FatalError on the warming thread), the tasks
     * must be drained before the producer's state leaves scope.
     */
    ~PoolBackend() override
    {
        if (!pool)
            return;
        for (auto &fut : inflight) {
            if (!fut.valid())
                continue;
            try {
                pool->waitHelping(fut);
            } catch (...) {
                // Already unwinding; the first error wins.
            }
        }
    }

    void
    submit(const RegionWorkItem &item, MulticoreSim &warm_base,
           const ReplayArbiter &warm_arbiter) override
    {
        // Snapshot = region pinball with warm microarchitectural
        // state: the warming pass moves on, so the pool must deep-copy
        // here (the procs backend instead exports the state into a
        // worker's shared-memory arena plus a socket frame).
        auto snap = std::make_shared<WarmSnapshot>(
            warm_base, warm_arbiter, item.constrained);
        if (pool) {
            inflight.push_back(pool->submit(
                [this, item, snap] { runOne(item, *snap); }));
        } else {
            runOne(item, *snap);
        }
    }

    void
    finish() override
    {
        // Join the drain (the producer thread helps run queued regions
        // instead of idling). Every future is awaited even if one
        // carries an exception — a task still running while the caller
        // unwinds would use freed stack state — and the first error is
        // rethrown once all tasks are quiescent.
        std::exception_ptr first_error;
        for (auto &fut : inflight) {
            try {
                pool->waitHelping(fut);
            } catch (...) {
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
        inflight.clear();
        if (first_error)
            std::rethrow_exception(first_error);
    }

  private:
    void
    runOne(const RegionWorkItem &item, WarmSnapshot &snap)
    {
        using clock = std::chrono::steady_clock;
        const auto t_region = clock::now();
        auto seconds_since = [](clock::time_point t0) {
            return std::chrono::duration<double>(clock::now() - t0)
                .count();
        };
        Tracer &tracer = Tracer::global();
        // The span lands on the executing host thread's track and is
        // mirrored onto the region's own virtual track, so the trace
        // shows both "what each worker did" and "when each region
        // ran".
        ScopedSpan region_span(tracer, "region.sim");
        if (region_span.active())
            region_span
                .mirror(tracer.virtualTrack(
                    "region " + std::to_string(item.index)))
                .arg("region", static_cast<uint64_t>(item.index))
                .arg("multiplier", item.multiplier)
                .arg("icount", item.filteredIcount);

        RegionCompletion completion;
        completion.item = item;
        try {
            runRegionAttempts(item, snap.sim, snap.arbiter, faults,
                              completion.result);
        } catch (const InjectedKill &) {
            // Simulated host death: record the outcome only (the
            // phase is about to unwind; no wall/diagnostic
            // bookkeeping, exactly like a real crash would leave).
            completion.killed = true;
            sink(completion);
            throw;
        }
        if (completion.result.ok) {
            const SimMetrics &m = completion.result.metrics;
            region_span.arg("cycles", m.cycles)
                .arg("instructions", m.instructions)
                .arg("ipc", m.ipc())
                .arg("l2_mpki", m.l2Mpki());
        }
        completion.wallSeconds = seconds_since(t_region);
        sink(completion);
        region_span
            .arg("ok",
                 static_cast<uint64_t>(completion.result.ok ? 1 : 0))
            .arg("attempts", completion.result.attempts);
    }

    ThreadPool *pool;
    FaultPlan faults;
    CompletionSink sink;
    std::vector<std::future<void>> inflight;
};

} // namespace

std::unique_ptr<RegionExecBackend>
makePoolBackend(ThreadPool *pool, FaultPlan faults, CompletionSink sink)
{
    return std::make_unique<PoolBackend>(pool, std::move(faults),
                                         std::move(sink));
}

} // namespace looppoint
