/**
 * @file
 * K-means clustering with BIC-based model selection, reproducing the
 * SimPoint 3.x procedure LoopPoint relies on (Section III-E): project
 * BBVs to a low dimension with a random linear projection, run k-means
 * for k = 1..maxK, score each clustering with the Bayesian Information
 * Criterion, and pick the smallest k whose (normalized) BIC reaches a
 * threshold of the best score.
 */

#ifndef LOOPPOINT_CLUSTER_KMEANS_HH
#define LOOPPOINT_CLUSTER_KMEANS_HH

#include <cstdint>
#include <vector>

#include "util/rng.hh"

namespace looppoint {

class ThreadPool;

/** Dense feature matrix: one row per slice. */
using FeatureMatrix = std::vector<std::vector<double>>;

/** Result of one k-means run. */
struct KmeansResult
{
    uint32_t k = 0;
    std::vector<uint32_t> assignment; ///< per-row cluster id
    FeatureMatrix centroids;
    /** Sum of squared distances to assigned centroids. */
    double distortion = 0.0;
    /** Number of Lloyd iterations executed. */
    uint32_t iterations = 0;
};

/**
 * Lloyd's algorithm with k-means++ seeding. Deterministic for a given
 * rng state. Requires 1 <= k <= rows.
 */
KmeansResult kmeans(const FeatureMatrix &points, uint32_t k, Rng &rng,
                    uint32_t max_iters = 100);

/**
 * Bayesian Information Criterion of a clustering (Pelleg-Moore
 * X-means formulation with a spherical Gaussian model). Higher is
 * better.
 */
double bicScore(const FeatureMatrix &points, const KmeansResult &result);

/** Outcome of the full SimPoint-style model selection. */
struct ClusteringResult
{
    KmeansResult best;
    /** (k, BIC) for each scanned k, ascending in k. */
    std::vector<std::pair<uint32_t, double>> bicByK;
    uint32_t chosenK = 0;
    /** Sum of per-candidate k-means wall times (serial-equivalent). */
    double candidateWallSeconds = 0.0;
    /** Measured wall time of the whole sweep. */
    double sweepWallSeconds = 0.0;
};

/**
 * Scan k over 1..maxK (every value up to 16, then coarser steps, all
 * clamped to the number of rows), score with BIC, and choose the
 * smallest scanned k whose normalized BIC is >= bic_threshold — the
 * SimPoint 3.x selection rule.
 *
 * With `pool`, the K candidates run as one pool task each; every
 * candidate's RNG is seeded from (seed, k), so the result is
 * bit-identical to the serial sweep for any worker count.
 */
ClusteringResult simpointCluster(const FeatureMatrix &points,
                                 uint32_t max_k, uint64_t seed,
                                 double bic_threshold = 0.9,
                                 ThreadPool *pool = nullptr);

/**
 * Index of the row closest to each centroid (the cluster
 * representatives), one per cluster.
 */
std::vector<uint32_t> pickRepresentatives(const FeatureMatrix &points,
                                          const KmeansResult &result);

/**
 * Index of the cluster member nearest to the cluster's centroid,
 * skipping row `exclude` (pass points.size() or larger to exclude
 * nothing). Ties break to the lowest index. Returns points.size()
 * when the cluster has no eligible member. Shared by representative
 * selection and the startup-transient guard so the two distance
 * computations cannot drift.
 */
size_t nearestMemberToCentroid(const FeatureMatrix &points,
                               const KmeansResult &result,
                               uint32_t cluster,
                               size_t exclude = ~size_t{0});

/**
 * Deterministic random linear projection of sparse vectors.
 *
 * Callers provide each row as (dimension, value) pairs over an
 * arbitrarily large sparse space; entries of the projection matrix are
 * derived from a hash of (seed, dimension, output dim), uniform in
 * [-1, 1], so no matrix is ever materialized.
 */
class RandomProjector
{
  public:
    RandomProjector(uint32_t out_dims, uint64_t seed);

    uint32_t outDims() const { return dims; }

    /** Project one sparse row. */
    std::vector<double>
    project(const std::vector<std::pair<uint64_t, double>> &row) const;

  private:
    uint32_t dims;
    uint64_t seed;
};

} // namespace looppoint

#endif // LOOPPOINT_CLUSTER_KMEANS_HH
