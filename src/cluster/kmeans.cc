#include "cluster/kmeans.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace looppoint {

namespace {

double
sqDist(const std::vector<double> &a, const std::vector<double> &b)
{
    LP_ASSERT(a.size() == b.size());
    double d = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        double diff = a[i] - b[i];
        d += diff * diff;
    }
    return d;
}

} // namespace

KmeansResult
kmeans(const FeatureMatrix &points, uint32_t k, Rng &rng,
       uint32_t max_iters)
{
    const size_t n = points.size();
    if (n == 0)
        fatal("kmeans: empty input");
    if (k == 0 || k > n)
        fatal("kmeans: k=%u out of range for %zu points", k, n);
    const size_t d = points[0].size();

    KmeansResult res;
    res.k = k;

    // k-means++ seeding.
    std::vector<size_t> seeds;
    seeds.push_back(rng.nextBounded(n));
    std::vector<double> min_d2(n, std::numeric_limits<double>::max());
    while (seeds.size() < k) {
        for (size_t i = 0; i < n; ++i) {
            double d2 = sqDist(points[i], points[seeds.back()]);
            min_d2[i] = std::min(min_d2[i], d2);
        }
        double total = 0.0;
        for (double v : min_d2)
            total += v;
        size_t chosen;
        if (total <= 0.0) {
            chosen = rng.nextBounded(n); // all points identical
        } else {
            double target = rng.nextDouble() * total;
            double acc = 0.0;
            chosen = n - 1;
            for (size_t i = 0; i < n; ++i) {
                acc += min_d2[i];
                if (acc >= target) {
                    chosen = i;
                    break;
                }
            }
        }
        seeds.push_back(chosen);
    }
    res.centroids.clear();
    for (size_t s : seeds)
        res.centroids.push_back(points[s]);

    res.assignment.assign(n, 0);
    for (uint32_t iter = 0; iter < max_iters; ++iter) {
        res.iterations = iter + 1;
        // Assignment step.
        bool changed = false;
        for (size_t i = 0; i < n; ++i) {
            double best = std::numeric_limits<double>::max();
            uint32_t best_c = 0;
            for (uint32_t c = 0; c < k; ++c) {
                double d2 = sqDist(points[i], res.centroids[c]);
                if (d2 < best) {
                    best = d2;
                    best_c = c;
                }
            }
            if (res.assignment[i] != best_c) {
                res.assignment[i] = best_c;
                changed = true;
            }
        }
        // Update step.
        FeatureMatrix sums(k, std::vector<double>(d, 0.0));
        std::vector<size_t> counts(k, 0);
        for (size_t i = 0; i < n; ++i) {
            uint32_t c = res.assignment[i];
            ++counts[c];
            for (size_t j = 0; j < d; ++j)
                sums[c][j] += points[i][j];
        }
        for (uint32_t c = 0; c < k; ++c) {
            if (counts[c] == 0) {
                // Re-seed an empty cluster at the point farthest from
                // its centroid.
                size_t far_i = 0;
                double far_d = -1.0;
                for (size_t i = 0; i < n; ++i) {
                    double d2 = sqDist(points[i],
                                       res.centroids[res.assignment[i]]);
                    if (d2 > far_d) {
                        far_d = d2;
                        far_i = i;
                    }
                }
                res.centroids[c] = points[far_i];
                changed = true;
                continue;
            }
            for (size_t j = 0; j < d; ++j)
                res.centroids[c][j] =
                    sums[c][j] / static_cast<double>(counts[c]);
        }
        if (!changed)
            break;
    }

    res.distortion = 0.0;
    for (size_t i = 0; i < n; ++i)
        res.distortion += sqDist(points[i],
                                 res.centroids[res.assignment[i]]);
    return res;
}

double
bicScore(const FeatureMatrix &points, const KmeansResult &result)
{
    const double n = static_cast<double>(points.size());
    const double d = static_cast<double>(points[0].size());
    const double k = static_cast<double>(result.k);

    std::vector<double> cluster_sizes(result.k, 0.0);
    for (uint32_t c : result.assignment)
        cluster_sizes[c] += 1.0;

    double sigma2 = n > k ? result.distortion / (d * (n - k)) : 0.0;
    sigma2 = std::max(sigma2, 1e-12);

    double log_likelihood = 0.0;
    for (double rn : cluster_sizes) {
        if (rn <= 0.0)
            continue;
        log_likelihood += rn * std::log(rn / n);
    }
    log_likelihood -= n * d / 2.0 * std::log(2.0 * M_PI * sigma2);
    log_likelihood -= (n - k) * d / 2.0;

    const double num_params = k * (d + 1.0);
    return log_likelihood - num_params / 2.0 * std::log(n);
}

ClusteringResult
simpointCluster(const FeatureMatrix &points, uint32_t max_k,
                uint64_t seed, double bic_threshold, ThreadPool *pool)
{
    if (points.empty())
        fatal("simpointCluster: no slices to cluster");
    // k == n is degenerate (zero distortion makes the BIC spike and
    // poisons the normalized threshold), so keep at least two points
    // per potential cluster on average.
    uint32_t limit = std::min<uint32_t>(
        max_k,
        points.size() > 1
            ? static_cast<uint32_t>(points.size() - 1)
            : 1);
    limit = std::min<uint32_t>(
        limit, std::max<uint32_t>(1,
                                  static_cast<uint32_t>(points.size() / 2)));
    LP_ASSERT(limit >= 1);

    // Scan every k up to 16, then coarser steps up to the limit, so
    // model selection stays cheap for runs with many slices.
    std::vector<uint32_t> ks;
    for (uint32_t k = 1; k <= limit && k <= 16; ++k)
        ks.push_back(k);
    if (limit > 16) {
        uint32_t step = std::max<uint32_t>(2, (limit - 16) / 12);
        for (uint32_t k = 16 + step; k <= limit; k += step)
            ks.push_back(k);
        if (ks.back() != limit)
            ks.push_back(limit);
    }

    // One pool task per K candidate; results land in index-addressed
    // slots and each candidate's RNG is seeded from (seed, k), so the
    // sweep is bit-identical for any jobs count and schedule.
    using clock = std::chrono::steady_clock;
    auto t_sweep = clock::now();
    ClusteringResult out;
    std::vector<KmeansResult> runs(ks.size());
    out.bicByK.resize(ks.size());
    std::vector<double> candidate_wall(ks.size(), 0.0);
    Counter &stat_iterations =
        MetricsRegistry::global().counter("cluster.kmeans.iterations");
    ThreadPool::forEach(pool, 0, ks.size(), [&](size_t i) {
        auto t0 = clock::now();
        const uint32_t k = ks[i];
        ScopedSpan span(Tracer::global(), "cluster.kmeans");
        Rng rng(hashCombine(seed, k));
        runs[i] = kmeans(points, k, rng);
        out.bicByK[i] = {k, bicScore(points, runs[i])};
        span.arg("k", k)
            .arg("iterations", runs[i].iterations)
            .arg("bic", out.bicByK[i].second);
        stat_iterations.add(runs[i].iterations);
        candidate_wall[i] =
            std::chrono::duration<double>(clock::now() - t0).count();
    });
    for (double w : candidate_wall)
        out.candidateWallSeconds += w;
    out.sweepWallSeconds =
        std::chrono::duration<double>(clock::now() - t_sweep).count();

    double best = out.bicByK[0].second;
    double worst = out.bicByK[0].second;
    for (const auto &[k, bic] : out.bicByK) {
        best = std::max(best, bic);
        worst = std::min(worst, bic);
    }
    double span = best - worst;
    size_t chosen_idx = out.bicByK.size() - 1;
    for (size_t i = 0; i < out.bicByK.size(); ++i) {
        double norm = span > 0.0
                          ? (out.bicByK[i].second - worst) / span
                          : 1.0;
        if (norm >= bic_threshold) {
            chosen_idx = i;
            break;
        }
    }
    out.chosenK = out.bicByK[chosen_idx].first;
    out.best = std::move(runs[chosen_idx]);
    return out;
}

size_t
nearestMemberToCentroid(const FeatureMatrix &points,
                        const KmeansResult &result, uint32_t cluster,
                        size_t exclude)
{
    size_t best_i = points.size();
    double best_d = std::numeric_limits<double>::max();
    for (size_t i = 0; i < points.size(); ++i) {
        if (i == exclude || result.assignment[i] != cluster)
            continue;
        double d2 = sqDist(points[i], result.centroids[cluster]);
        if (d2 < best_d) {
            best_d = d2;
            best_i = i;
        }
    }
    return best_i;
}

std::vector<uint32_t>
pickRepresentatives(const FeatureMatrix &points,
                    const KmeansResult &result)
{
    std::vector<uint32_t> reps(result.k, 0);
    for (uint32_t c = 0; c < result.k; ++c) {
        size_t i = nearestMemberToCentroid(points, result, c);
        if (i != points.size())
            reps[c] = static_cast<uint32_t>(i);
    }
    return reps;
}

RandomProjector::RandomProjector(uint32_t out_dims, uint64_t seed_)
    : dims(out_dims), seed(seed_)
{
    if (dims == 0)
        fatal("RandomProjector: need at least one output dimension");
}

std::vector<double>
RandomProjector::project(
    const std::vector<std::pair<uint64_t, double>> &row) const
{
    std::vector<double> out(dims, 0.0);
    for (const auto &[dim, value] : row) {
        for (uint32_t d = 0; d < dims; ++d) {
            uint64_t h = hashCombine(seed, dim * 0x9e3779b1ull + d);
            // Map the hash to a deterministic value in [-1, 1].
            double r = static_cast<double>(h >> 11) * 0x1.0p-53;
            out[d] += value * (2.0 * r - 1.0);
        }
    }
    return out;
}

} // namespace looppoint
