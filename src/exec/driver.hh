/**
 * @file
 * RoundRobinDriver: the flow-controlled functional scheduler used for
 * recording and reproducible profiling.
 *
 * The paper's analysis phase enforces equal forward progress across
 * threads ("flow control", Section III-B) so the collected profile is
 * independent of host-machine load. We reproduce that with a
 * deterministic round-robin schedule with a fixed per-turn instruction
 * quantum.
 */

#ifndef LOOPPOINT_EXEC_DRIVER_HH
#define LOOPPOINT_EXEC_DRIVER_HH

#include <cstdint>
#include <functional>

#include "exec/engine.hh"
#include "exec/listener.hh"

namespace looppoint {

/** Deterministic round-robin functional driver. */
class RoundRobinDriver
{
  public:
    /**
     * @param engine the engine to drive (not owned)
     * @param quantum_instrs instructions a thread may advance per turn
     */
    explicit RoundRobinDriver(ExecutionEngine &engine,
                              uint64_t quantum_instrs = 1000);

    /**
     * Run until all threads finish or `stop` returns true. `listener`
     * (optional) observes every executed block.
     *
     * Panics if no thread can make progress (replay log mismatch or an
     * engine bug); a well-formed program cannot deadlock under the
     * default arbiter.
     */
    void run(ExecListener *listener = nullptr,
             const std::function<bool()> &stop = {});

    /** Total block steps executed across run() calls. */
    uint64_t steps() const { return totalSteps; }

  private:
    ExecutionEngine &engine;
    uint64_t quantum;
    uint64_t totalSteps = 0;
    uint32_t nextThread = 0;
};

} // namespace looppoint

#endif // LOOPPOINT_EXEC_DRIVER_HH
