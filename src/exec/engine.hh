/**
 * @file
 * ExecutionEngine: functional interpreter for multi-threaded Programs.
 *
 * The engine advances one thread by one basic block per step() call and
 * is otherwise completely passive: a *driver* (round-robin flow control
 * for recording/profiling, the replay driver, or the timing simulator)
 * decides which thread runs next. All synchronization (end-of-kernel
 * barriers, dynamic-for chunk claiming, critical sections) is resolved
 * functionally inside the engine, with nondeterministic outcomes routed
 * through a SyncArbiter so recordings can be replayed exactly.
 *
 * Waiting behavior follows the configured OpenMP wait policy: under
 * Active, a waiting thread emits iterations of the libiomp spin-wait
 * block (consuming instructions, like OMP_WAIT_POLICY=ACTIVE); under
 * Passive it emits one libc futex block and then reports Blocked until
 * another thread's progress wakes it.
 *
 * The engine is a value type: copying it snapshots the complete
 * execution state, which is how region checkpoints ("pinballs") are
 * taken.
 */

#ifndef LOOPPOINT_EXEC_ENGINE_HH
#define LOOPPOINT_EXEC_ENGINE_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "exec/mem_ref.hh"
#include "exec/sync_arbiter.hh"
#include "isa/program.hh"
#include "util/rng.hh"

namespace looppoint {

/** Result of advancing a thread by one step. */
struct StepResult
{
    enum class Kind : uint8_t
    {
        Block,    ///< a basic block was executed; see `block`
        Blocked,  ///< thread is passively waiting; try another thread
        Finished  ///< thread ran off the end of the program
    };

    Kind kind = Kind::Finished;
    BlockId block = kInvalidBlock;
};

/**
 * Execution configuration shared by all engine uses.
 */
struct ExecConfig
{
    uint32_t numThreads = 8;
    WaitPolicy waitPolicy = WaitPolicy::Passive;
    /** Generate concrete memory addresses for each executed block. */
    bool genAddresses = false;
    /** Base seed; per-thread streams are forked from it. */
    uint64_t seed = 1;

    bool operator==(const ExecConfig &other) const = default;
};

/** See file comment. */
class ExecutionEngine
{
  public:
    ExecutionEngine(const Program &prog, const ExecConfig &cfg,
                    SyncArbiter *arbiter = nullptr);

    // Copyable: a copy is a checkpoint of the execution state.
    ExecutionEngine(const ExecutionEngine &) = default;
    ExecutionEngine &operator=(const ExecutionEngine &) = default;

    /** Advance thread `tid` by one basic block. */
    StepResult step(uint32_t tid);

    /** True if the thread can make progress right now. */
    bool runnable(uint32_t tid) const
    {
        const Cursor &c = cursors[tid];
        return c.runnable && c.st != St::Done;
    }

    /** True if the thread has completed the whole program. */
    bool finished(uint32_t tid) const
    {
        return cursors[tid].st == St::Done;
    }

    /** True once every thread finished. */
    bool allFinished() const { return finishedCount == cfg.numThreads; }

    uint32_t numThreads() const { return cfg.numThreads; }
    const Program &program() const { return *prog; }
    const ExecConfig &config() const { return cfg; }

    /**
     * Memory references of the most recent block returned by step(tid).
     * Only populated when cfg.genAddresses is set.
     */
    const std::vector<MemRef> &memRefs(uint32_t tid) const
    {
        return cursors[tid].memRefs;
    }

    /** Total dynamic instructions executed by a thread so far. */
    uint64_t icount(uint32_t tid) const { return cursors[tid].icount; }

    /** Main-image ("filtered") instructions executed by a thread. */
    uint64_t filteredIcount(uint32_t tid) const
    {
        return cursors[tid].filteredIcount;
    }

    /**
     * Threads whose runnable flag flipped from false to true during
     * the most recent step() call. Event-driven schedulers use this to
     * re-queue sleepers without scanning every thread; the list is
     * transient (cleared at the start of the next step).
     */
    const std::vector<uint32_t> &wokenThreads() const
    {
        return wokenThisStep;
    }

    /** Sum of icount over threads. */
    uint64_t globalIcount() const;

    /** Sum of filteredIcount over threads. */
    uint64_t globalFilteredIcount() const;

    /** Global execution count of a block across all threads. */
    uint64_t blockExecCount(BlockId id) const { return blockCounts[id]; }

    /** Index into the run list the thread is currently executing. */
    uint32_t runPosition(uint32_t tid) const;

    /**
     * Direction of the terminating branch of the most recent block
     * returned by step(tid); only meaningful when that block ends with
     * a Branch. Loop latches report "continue", cond blocks report
     * "then-side", spin/runtime branches report taken.
     */
    bool branchTaken(uint32_t tid) const
    {
        return cursors[tid].branchTaken;
    }

    /**
     * Replace the arbiter (used when resuming a checkpoint under a
     * different record/replay regime). May be nullptr (default policy).
     */
    void setArbiter(SyncArbiter *a) { arbiter = a; }

    /** Toggle address generation (e.g. off while fast-forwarding). */
    void setGenAddresses(bool on) { cfg.genAddresses = on; }

    /**
     * Serialize the complete execution state — thread cursors
     * (including the body-walk stacks, encoded as item paths), RNG
     * states, synchronization state, and global counters — so a
     * mid-execution checkpoint can be restored in O(state) without
     * replaying the prefix: the ELFie analog (paper Section II).
     * The Program itself is not stored; the loader must supply the
     * identical program.
     */
    void save(std::ostream &os) const;

    /**
     * Restore an engine saved with save(). `prog` must be the same
     * program (validated via a structural fingerprint).
     */
    static ExecutionEngine load(std::istream &is, const Program &prog,
                                SyncArbiter *arbiter = nullptr);

  private:
    enum class St : uint8_t
    {
        KernelEntry,
        MasterPrologue,
        IterFetch,
        ChunkFetch,
        WorkerHeader,
        Body,
        WorkerLatch,
        ReductionStub,
        ReductionTail,
        BarrierEnter,
        BarrierWait,
        BarrierExit,
        KernelExit,
        Done
    };

    /** Why a thread is waiting (for wake bookkeeping + addresses). */
    enum class WaitKind : uint8_t
    {
        None,
        Barrier,
        Lock,
        Chunk
    };

    struct Frame
    {
        /** The Loop body item, or nullptr for the kernel body itself. */
        const BodyItem *loop = nullptr;
        /** The Critical item whose children this frame walks, or
         * nullptr. A critical frame has no header/latch; the lock is
         * released by the parent frame's Critical item (sub == 4)
         * after this frame pops. Mutually exclusive with `loop`. */
        const BodyItem *crit = nullptr;
        /** Items being walked (children of `loop`/`crit` or the kernel
         * body). */
        const std::vector<BodyItem> *items = nullptr;
        uint32_t idx = 0;
        /** 0 = emit header, 1 = walk items, 2 = emit latch. */
        uint8_t stage = 0;
        /** Sub-state of items[idx] (Cond / Critical micro-steps). */
        uint8_t sub = 0;
        bool condTaken = false;
        uint64_t tripsLeft = 1;
    };

    struct Cursor
    {
        St st = St::KernelEntry;
        uint32_t runPos = 0;
        /**
         * Cached kernel of runPos (clamped to the last run-list entry
         * once the thread is Done) and its kernel index. Refreshed by
         * refreshKernelCache() whenever runPos changes; valid because
         * the Program outlives the engine and is never mutated.
         */
        const LoweredKernel *kern = nullptr;
        uint32_t kidx = 0;
        /** Precomputed per-thread address bits (see addr_space.hh). */
        Addr stackBase = 0;
        Addr privTidBits = 0;
        uint64_t iterCur = 0;
        uint64_t iterEnd = 0;
        bool participated = false;
        std::vector<Frame> stack;
        Rng rng{0};
        Rng addrRng{0};
        /** Per-iteration draw counter for data-dependent decisions. */
        uint32_t drawCursor = 0;
        uint64_t icount = 0;
        uint64_t filteredIcount = 0;
        /** Per-kernel per-stream private-access counters. */
        std::vector<std::vector<uint64_t>> streamPos;
        /** Per-iteration counter for shared streams. */
        uint32_t iterAccessCursor = 0;
        uint64_t stackCursor = 0;
        bool runnable = true;
        WaitKind waitKind = WaitKind::None;
        uint32_t waitObj = 0;
        uint32_t curLock = 0;
        /** Direction of the terminating branch of the last block. */
        bool branchTaken = true;
        bool emittedFutex = false;
        std::vector<MemRef> memRefs;
    };

    struct BarrierState
    {
        uint32_t arrivals = 0;
        bool released = false;
    };

    struct LockState
    {
        bool held = false;
        uint32_t owner = 0;
    };

    struct ChunkState
    {
        uint64_t next = 0;
    };

    /** Emit `block` on behalf of `tid`: bookkeeping + addresses. */
    StepResult emit(uint32_t tid, BlockId block);

    /** Walk one step of the body tree; kInvalidBlock = iteration done. */
    BlockId walkBody(uint32_t tid, bool &blocked);

    /**
     * Deterministic uniform draw in [0,1) tied to the current
     * iteration (not to the executing thread), so data-dependent
     * control flow is identical no matter which thread executes an
     * iteration or in which order — branch outcomes model properties
     * of the data.
     */
    double iterationDraw(Cursor &c);

    /** Compute the static-for range for (kernel, tid). */
    void assignStaticRange(uint32_t tid);

    /** Try to take the next dynamic chunk. */
    bool tryFetchChunk(uint32_t tid);

    bool tryAcquireLock(uint32_t tid, uint32_t lock_id);
    void releaseLock(uint32_t tid, uint32_t lock_id);

    void blockThread(uint32_t tid, WaitKind kind, uint32_t obj);
    void wakeWaiters(WaitKind kind, uint32_t obj);

    void genBlockAddresses(uint32_t tid, const BasicBlock &bb);

    const LoweredKernel &curKernel(const Cursor &c) const;

    /** Recompute a cursor's cached kernel pointer from its runPos. */
    void refreshKernelCache(Cursor &c);

    const Program *prog;
    ExecConfig cfg;
    SyncArbiter *arbiter;

    std::vector<Cursor> cursors;
    std::vector<BarrierState> barriers; ///< indexed by runPos
    std::vector<ChunkState> chunks;     ///< indexed by runPos
    std::vector<LockState> locks;
    /**
     * Global per-block exec counts. Indexed directly by BlockId: ids
     * are dense 0..numBlocks-1 (Program::validate asserts it), so no
     * bounds pattern is needed at the call sites.
     */
    std::vector<uint64_t> blockCounts;
    /** Threads woken by the step in progress (see wokenThreads()). */
    std::vector<uint32_t> wokenThisStep;
    uint32_t finishedCount = 0;
};

} // namespace looppoint

#endif // LOOPPOINT_EXEC_ENGINE_HH
