/**
 * @file
 * Dynamic memory reference produced by the execution engine for the
 * timing models and cache warmers.
 */

#ifndef LOOPPOINT_EXEC_MEM_REF_HH
#define LOOPPOINT_EXEC_MEM_REF_HH

#include <cstdint>

#include "isa/program.hh"

namespace looppoint {

/** One dynamic memory access: address + direction. */
struct MemRef
{
    Addr addr = 0;
    /** Index of the instruction within its block. */
    uint16_t instrIndex = 0;
    bool isWrite = false;
};

} // namespace looppoint

#endif // LOOPPOINT_EXEC_MEM_REF_HH
