/**
 * @file
 * Dynamic memory reference produced by the execution engine for the
 * timing models and cache warmers.
 */

#ifndef LOOPPOINT_EXEC_MEM_REF_HH
#define LOOPPOINT_EXEC_MEM_REF_HH

#include <cstdint>

#include "isa/program.hh"

namespace looppoint {

/** One dynamic memory access: address + direction. */
struct MemRef
{
    Addr addr = 0;
    /** Index of the instruction within its block. */
    uint16_t instrIndex = 0;
    bool isWrite = false;
    /**
     * The address was folded by the shared-stream generator (rng jump
     * draw, iteration-window spill, or footprint wraparound) rather
     * than denoting the iteration's own data. Such collisions are an
     * address-compression artifact, not program-semantic sharing; the
     * race detector excludes them.
     */
    bool aliased = false;
};

} // namespace looppoint

#endif // LOOPPOINT_EXEC_MEM_REF_HH
