#include "exec/driver.hh"

#include "util/logging.hh"

namespace looppoint {

RoundRobinDriver::RoundRobinDriver(ExecutionEngine &engine_,
                                   uint64_t quantum_instrs)
    : engine(engine_), quantum(quantum_instrs)
{
    if (quantum == 0)
        fatal("RoundRobinDriver: quantum must be >= 1");
}

void
RoundRobinDriver::run(ExecListener *listener,
                      const std::function<bool()> &stop)
{
    const uint32_t n = engine.numThreads();
    while (!engine.allFinished()) {
        if (stop && stop())
            return;
        bool progressed = false;
        for (uint32_t i = 0; i < n; ++i) {
            uint32_t tid = (nextThread + i) % n;
            if (!engine.runnable(tid))
                continue;
            uint64_t start = engine.icount(tid);
            while (engine.icount(tid) - start < quantum) {
                StepResult r = engine.step(tid);
                if (r.kind == StepResult::Kind::Block) {
                    progressed = true;
                    ++totalSteps;
                    if (listener)
                        listener->onBlock(tid, r.block, engine);
                    if (stop && stop()) {
                        nextThread = (tid + 1) % n;
                        return;
                    }
                } else {
                    break; // Blocked or Finished
                }
            }
        }
        if (!progressed && !engine.allFinished())
            panic("RoundRobinDriver: no thread can make progress "
                  "(replay log mismatch?)");
    }
}

} // namespace looppoint
