/**
 * @file
 * Observation interface for dynamic execution events, analogous to a
 * Pin instrumentation callback. Listeners receive every executed basic
 * block in schedule order and may query the engine for details
 * (instruction counts, memory references, global block counts).
 */

#ifndef LOOPPOINT_EXEC_LISTENER_HH
#define LOOPPOINT_EXEC_LISTENER_HH

#include <cstdint>

#include "isa/program.hh"

namespace looppoint {

class ExecutionEngine;

/** Receives dynamic block events from a driver. */
class ExecListener
{
  public:
    virtual ~ExecListener() = default;

    /** Called after thread `tid` executed `block`. */
    virtual void onBlock(uint32_t tid, BlockId block,
                         const ExecutionEngine &engine) = 0;
};

} // namespace looppoint

#endif // LOOPPOINT_EXEC_LISTENER_HH
