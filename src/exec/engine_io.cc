/**
 * @file
 * ExecutionEngine state serialization (see engine.hh::save/load): the
 * substrate for ELFie-style executable region checkpoints. Frames of
 * the body-walk stack reference BodyItems by pointer at runtime; on
 * disk they are encoded as child-index paths from the kernel body and
 * re-resolved against the (identical) program on load.
 */

#include <istream>
#include <ostream>

#include "exec/engine.hh"
#include "util/logging.hh"

namespace looppoint {

namespace {

constexpr const char *kMagic = "looppoint-engine-state-v1";

/** Structural fingerprint to catch program mismatches on load. */
uint64_t
programFingerprint(const Program &prog)
{
    uint64_t h = hashString(prog.name);
    h = hashCombine(h, prog.numBlocks());
    h = hashCombine(h, prog.kernels.size());
    h = hashCombine(h, prog.runList.size());
    for (const auto &bb : prog.blocks)
        h = hashCombine(h, (bb.pc << 8) ^ bb.numInstrs());
    return h;
}

} // namespace

void
ExecutionEngine::save(std::ostream &os) const
{
    os << kMagic << '\n';
    os << "fingerprint " << programFingerprint(*prog) << '\n';
    os << "threads " << cfg.numThreads << '\n';
    os << "waitpolicy " << static_cast<int>(cfg.waitPolicy) << '\n';
    os << "genaddr " << (cfg.genAddresses ? 1 : 0) << '\n';
    os << "seed " << cfg.seed << '\n';
    os << "finished " << finishedCount << '\n';

    os << "barriers " << barriers.size() << '\n';
    for (const auto &b : barriers)
        os << b.arrivals << ' ' << (b.released ? 1 : 0) << '\n';
    os << "chunks " << chunks.size() << '\n';
    for (const auto &c : chunks)
        os << c.next << '\n';
    os << "locks " << locks.size() << '\n';
    for (const auto &l : locks)
        os << (l.held ? 1 : 0) << ' ' << l.owner << '\n';
    os << "blockcounts " << blockCounts.size() << '\n';
    for (uint64_t c : blockCounts)
        os << c << '\n';

    os << "cursors " << cursors.size() << '\n';
    for (const Cursor &c : cursors) {
        os << "cursor " << static_cast<int>(c.st) << ' ' << c.runPos
           << ' ' << c.iterCur << ' ' << c.iterEnd << ' '
           << (c.participated ? 1 : 0) << ' ' << c.icount << ' '
           << c.filteredIcount << ' ' << c.iterAccessCursor << ' '
           << c.drawCursor << ' ' << c.stackCursor << ' '
           << (c.runnable ? 1 : 0) << ' '
           << static_cast<int>(c.waitKind) << ' ' << c.waitObj << ' '
           << c.curLock << ' ' << (c.branchTaken ? 1 : 0) << ' '
           << (c.emittedFutex ? 1 : 0) << '\n';
        c.rng.save(os);
        c.addrRng.save(os);
        os << "streampos " << c.streamPos.size() << '\n';
        for (const auto &row : c.streamPos) {
            os << row.size();
            for (uint64_t v : row)
                os << ' ' << v;
            os << '\n';
        }
        // Frames: the top frame walks the kernel body; each deeper
        // frame walks the children of a Loop or Critical item,
        // identified by its index in the parent frame's item list.
        os << "frames " << c.stack.size() << '\n';
        for (size_t i = 0; i < c.stack.size(); ++i) {
            const Frame &f = c.stack[i];
            int64_t parent_item = -1;
            if (i > 0) {
                const Frame &parent = c.stack[i - 1];
                const BodyItem *owner = f.loop ? f.loop : f.crit;
                LP_ASSERT(owner != nullptr);
                parent_item = owner - parent.items->data();
                LP_ASSERT(parent_item >= 0 &&
                          static_cast<size_t>(parent_item) <
                              parent.items->size());
            }
            os << parent_item << ' ' << f.idx << ' '
               << static_cast<int>(f.stage) << ' '
               << static_cast<int>(f.sub) << ' '
               << (f.condTaken ? 1 : 0) << ' ' << f.tripsLeft << '\n';
        }
    }
}

ExecutionEngine
ExecutionEngine::load(std::istream &is, const Program &prog,
                      SyncArbiter *arbiter)
{
    std::string line, key;
    if (!std::getline(is, line) || line != kMagic)
        fatal("not a looppoint engine state (bad magic)");

    uint64_t fingerprint = 0;
    if (!(is >> key >> fingerprint) || key != "fingerprint")
        fatal("engine state parse error: fingerprint");
    if (fingerprint != programFingerprint(prog))
        fatal("engine state was saved for a different program than "
              "'%s'", prog.name.c_str());

    ExecConfig cfg;
    int wait_policy = 0, genaddr = 0;
    if (!(is >> key >> cfg.numThreads) || key != "threads")
        fatal("engine state parse error: threads");
    if (!(is >> key >> wait_policy) || key != "waitpolicy")
        fatal("engine state parse error: waitpolicy");
    cfg.waitPolicy = static_cast<WaitPolicy>(wait_policy);
    if (!(is >> key >> genaddr) || key != "genaddr")
        fatal("engine state parse error: genaddr");
    cfg.genAddresses = genaddr != 0;
    if (!(is >> key >> cfg.seed) || key != "seed")
        fatal("engine state parse error: seed");

    ExecutionEngine eng(prog, cfg, arbiter);
    if (!(is >> key >> eng.finishedCount) || key != "finished")
        fatal("engine state parse error: finished");

    size_t n = 0;
    if (!(is >> key >> n) || key != "barriers" ||
        n != eng.barriers.size())
        fatal("engine state parse error: barriers");
    for (auto &b : eng.barriers) {
        int released = 0;
        if (!(is >> b.arrivals >> released))
            fatal("engine state parse error: barrier entry");
        b.released = released != 0;
    }
    if (!(is >> key >> n) || key != "chunks" || n != eng.chunks.size())
        fatal("engine state parse error: chunks");
    for (auto &c : eng.chunks)
        if (!(is >> c.next))
            fatal("engine state parse error: chunk entry");
    if (!(is >> key >> n) || key != "locks" || n != eng.locks.size())
        fatal("engine state parse error: locks");
    for (auto &l : eng.locks) {
        int held = 0;
        if (!(is >> held >> l.owner))
            fatal("engine state parse error: lock entry");
        l.held = held != 0;
    }
    if (!(is >> key >> n) || key != "blockcounts" ||
        n != eng.blockCounts.size())
        fatal("engine state parse error: blockcounts");
    for (auto &c : eng.blockCounts)
        if (!(is >> c))
            fatal("engine state parse error: blockcount entry");

    if (!(is >> key >> n) || key != "cursors" ||
        n != eng.cursors.size())
        fatal("engine state parse error: cursors");
    for (Cursor &c : eng.cursors) {
        int st = 0, participated = 0, runnable = 0, wait_kind = 0;
        int branch_taken = 0, emitted_futex = 0;
        if (!(is >> key >> st >> c.runPos >> c.iterCur >> c.iterEnd >>
              participated >> c.icount >> c.filteredIcount >>
              c.iterAccessCursor >> c.drawCursor >> c.stackCursor >>
              runnable >> wait_kind >> c.waitObj >> c.curLock >>
              branch_taken >> emitted_futex) ||
            key != "cursor")
            fatal("engine state parse error: cursor");
        c.st = static_cast<St>(st);
        c.participated = participated != 0;
        c.runnable = runnable != 0;
        c.waitKind = static_cast<WaitKind>(wait_kind);
        c.branchTaken = branch_taken != 0;
        c.emittedFutex = emitted_futex != 0;
        // The cached kernel pointer derives from runPos, which was
        // just overwritten.
        eng.refreshKernelCache(c);
        c.rng.load(is);
        c.addrRng.load(is);

        size_t rows = 0;
        if (!(is >> key >> rows) || key != "streampos" ||
            rows != c.streamPos.size())
            fatal("engine state parse error: streampos");
        for (auto &row : c.streamPos) {
            size_t cols = 0;
            if (!(is >> cols) || cols != row.size())
                fatal("engine state parse error: streampos row");
            for (auto &v : row)
                if (!(is >> v))
                    fatal("engine state parse error: streampos value");
        }

        size_t frames = 0;
        if (!(is >> key >> frames) || key != "frames")
            fatal("engine state parse error: frames");
        c.stack.clear();
        for (size_t i = 0; i < frames; ++i) {
            int64_t parent_item = -1;
            int stage = 0, sub = 0, cond_taken = 0;
            Frame f;
            if (!(is >> parent_item >> f.idx >> stage >> sub >>
                  cond_taken >> f.tripsLeft))
                fatal("engine state parse error: frame");
            f.stage = static_cast<uint8_t>(stage);
            f.sub = static_cast<uint8_t>(sub);
            f.condTaken = cond_taken != 0;
            if (i == 0) {
                if (parent_item != -1)
                    fatal("engine state parse error: top frame");
                if (c.runPos >= prog.runList.size())
                    fatal("engine state parse error: frame without "
                          "active kernel");
                f.loop = nullptr;
                f.items =
                    &prog.kernels[prog.runList[c.runPos]].body;
            } else {
                const Frame &parent = c.stack.back();
                if (parent_item < 0 ||
                    static_cast<size_t>(parent_item) >=
                        parent.items->size())
                    fatal("engine state parse error: frame path");
                const BodyItem &item =
                    (*parent.items)[static_cast<size_t>(parent_item)];
                if (item.kind == BodyItem::Kind::Loop)
                    f.loop = &item;
                else if (item.kind == BodyItem::Kind::Critical)
                    f.crit = &item;
                else
                    fatal("engine state parse error: frame path does "
                          "not name a loop or critical item");
                f.items = &item.children;
            }
            c.stack.push_back(f);
        }
    }
    return eng;
}

} // namespace looppoint
