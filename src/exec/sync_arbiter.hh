/**
 * @file
 * Arbitration hooks for nondeterministic synchronization outcomes.
 *
 * The execution engine resolves lock acquisitions and dynamic-for chunk
 * grants through a SyncArbiter. The default arbiter lets any thread
 * proceed (scheduling order decides, as on real hardware). The pinball
 * recorder logs every resolution; the replay arbiter re-enforces the
 * recorded order so a replay reproduces the recorded execution exactly,
 * regardless of the replay scheduler — the PinPlay property LoopPoint's
 * "reproducible analysis" requirement rests on.
 */

#ifndef LOOPPOINT_EXEC_SYNC_ARBITER_HH
#define LOOPPOINT_EXEC_SYNC_ARBITER_HH

#include <cstdint>

namespace looppoint {

/** Decides which thread wins each contended synchronization event. */
class SyncArbiter
{
  public:
    virtual ~SyncArbiter() = default;

    /** May `tid` acquire lock `lock_id` now (lock itself is free)? */
    virtual bool
    mayAcquireLock(uint32_t lock_id, uint32_t tid)
    {
        (void)lock_id;
        (void)tid;
        return true;
    }

    /** Called after `tid` successfully acquired `lock_id`. */
    virtual void
    onLockAcquired(uint32_t lock_id, uint32_t tid)
    {
        (void)lock_id;
        (void)tid;
    }

    /** May `tid` take the next dynamic-for chunk of run entry run_pos? */
    virtual bool
    mayFetchChunk(uint32_t run_pos, uint32_t tid)
    {
        (void)run_pos;
        (void)tid;
        return true;
    }

    /** Called after `tid` took a chunk of run entry run_pos. */
    virtual void
    onChunkFetched(uint32_t run_pos, uint32_t tid)
    {
        (void)run_pos;
        (void)tid;
    }
};

} // namespace looppoint

#endif // LOOPPOINT_EXEC_SYNC_ARBITER_HH
