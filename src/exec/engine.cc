#include "exec/engine.hh"

#include <algorithm>

#include "isa/addr_space.hh"
#include "util/logging.hh"

namespace looppoint {

namespace {

/** Default arbiter: scheduling order decides everything. */
SyncArbiter defaultArbiter;

} // namespace

ExecutionEngine::ExecutionEngine(const Program &prog_,
                                 const ExecConfig &cfg_,
                                 SyncArbiter *arbiter_)
    : prog(&prog_), cfg(cfg_),
      arbiter(arbiter_ ? arbiter_ : &defaultArbiter)
{
    if (cfg.numThreads < 1)
        fatal("ExecutionEngine: numThreads must be >= 1");
    LP_ASSERT(prog->derivedReady());
    cursors.resize(cfg.numThreads);
    for (uint32_t t = 0; t < cfg.numThreads; ++t) {
        Cursor &c = cursors[t];
        c.rng = Rng(hashCombine(cfg.seed, 0x1000 + t));
        c.addrRng = Rng(hashCombine(cfg.seed, 0x2000 + t));
        c.streamPos.resize(prog->kernels.size());
        for (size_t k = 0; k < prog->kernels.size(); ++k)
            c.streamPos[k].assign(prog->kernels[k].streams.size(), 0);
        c.stackBase = kStackRegion | (static_cast<Addr>(t) << 20);
        c.privTidBits = static_cast<Addr>(t) << 30;
        refreshKernelCache(c);
    }
    barriers.resize(prog->runList.size());
    chunks.resize(prog->runList.size());
    locks.resize(std::max<uint32_t>(1, prog->numLocks));
    blockCounts.assign(prog->blocks.size(), 0);
}

void
ExecutionEngine::refreshKernelCache(Cursor &c)
{
    // Clamp so the cache stays valid after the final KernelExit; the
    // kernel-exit block is emitted after runPos has advanced, and
    // entry/exit blocks carry no streams, so the clamped kernel is
    // never used for stream selection in that case.
    c.kidx = prog->runList[std::min<uint32_t>(
        c.runPos, static_cast<uint32_t>(prog->runList.size() - 1))];
    c.kern = &prog->kernels[c.kidx];
}

const LoweredKernel &
ExecutionEngine::curKernel(const Cursor &c) const
{
    return *c.kern;
}

uint64_t
ExecutionEngine::globalIcount() const
{
    uint64_t sum = 0;
    for (const auto &c : cursors)
        sum += c.icount;
    return sum;
}

uint64_t
ExecutionEngine::globalFilteredIcount() const
{
    uint64_t sum = 0;
    for (const auto &c : cursors)
        sum += c.filteredIcount;
    return sum;
}

uint32_t
ExecutionEngine::runPosition(uint32_t tid) const
{
    return cursors[tid].runPos;
}

void
ExecutionEngine::blockThread(uint32_t tid, WaitKind kind, uint32_t obj)
{
    Cursor &c = cursors[tid];
    c.runnable = false;
    c.waitKind = kind;
    c.waitObj = obj;
}

void
ExecutionEngine::wakeWaiters(WaitKind kind, uint32_t obj)
{
    for (uint32_t t = 0; t < cfg.numThreads; ++t) {
        Cursor &c = cursors[t];
        if (!c.runnable && c.waitKind == kind && c.waitObj == obj) {
            c.runnable = true;
            c.waitKind = WaitKind::None;
            c.emittedFutex = false;
            wokenThisStep.push_back(t);
        }
    }
}

void
ExecutionEngine::assignStaticRange(uint32_t tid)
{
    Cursor &c = cursors[tid];
    const LoweredKernel &k = curKernel(c);
    const uint32_t n = cfg.numThreads;
    // Weight thread t by 1 + imbalance * (n - 1 - t): imbalance 0 means
    // equal shares; larger values skew work toward low thread ids.
    double total_w = 0.0;
    for (uint32_t t = 0; t < n; ++t)
        total_w += 1.0 + k.imbalance * static_cast<double>(n - 1 - t);
    double w_before = 0.0;
    for (uint32_t t = 0; t < tid; ++t)
        w_before += 1.0 + k.imbalance * static_cast<double>(n - 1 - t);
    double w_self = 1.0 + k.imbalance * static_cast<double>(n - 1 - tid);
    auto iters = static_cast<double>(k.parallelIters);
    c.iterCur = static_cast<uint64_t>(iters * w_before / total_w);
    c.iterEnd =
        static_cast<uint64_t>(iters * (w_before + w_self) / total_w);
    if (tid == n - 1)
        c.iterEnd = k.parallelIters;
}

bool
ExecutionEngine::tryFetchChunk(uint32_t tid)
{
    Cursor &c = cursors[tid];
    const LoweredKernel &k = curKernel(c);
    ChunkState &ch = chunks[c.runPos];
    if (ch.next >= k.parallelIters)
        return false;
    if (!arbiter->mayFetchChunk(c.runPos, tid))
        return false;
    c.iterCur = ch.next;
    c.iterEnd = std::min(ch.next + k.chunkSize, k.parallelIters);
    ch.next = c.iterEnd;
    c.participated = true;
    arbiter->onChunkFetched(c.runPos, tid);
    // The front of the replay queue may have changed: let passive
    // waiters re-evaluate.
    wakeWaiters(WaitKind::Chunk, c.runPos);
    return true;
}

bool
ExecutionEngine::tryAcquireLock(uint32_t tid, uint32_t lock_id)
{
    LockState &l = locks[lock_id];
    if (l.held)
        return false;
    if (!arbiter->mayAcquireLock(lock_id, tid))
        return false;
    l.held = true;
    l.owner = tid;
    arbiter->onLockAcquired(lock_id, tid);
    return true;
}

void
ExecutionEngine::releaseLock(uint32_t tid, uint32_t lock_id)
{
    LockState &l = locks[lock_id];
    LP_ASSERT(l.held && l.owner == tid);
    l.held = false;
    wakeWaiters(WaitKind::Lock, lock_id);
}

void
ExecutionEngine::genBlockAddresses(uint32_t tid, const BasicBlock &bb)
{
    Cursor &c = cursors[tid];
    c.memRefs.clear();

    // Synchronization-library blocks touch the relevant sync object's
    // cache line, producing real coherence traffic in the timing model.
    if (bb.image != ImageId::Main) {
        const RuntimeBlocks &rt = prog->runtime;
        uint32_t kind = 0, obj = 0;
        BlockId id = bb.id;
        if (id == rt.barrierEnter || id == rt.barrierExit) {
            kind = 1;
            obj = c.runPos;
        } else if (id == rt.spinWait) {
            kind = c.waitKind == WaitKind::Chunk ? 2 : 1;
            obj = c.runPos;
        } else if (id == rt.chunkFetch) {
            kind = 2;
            obj = c.runPos;
        } else if (id == rt.lockAcquire || id == rt.lockSpin ||
                   id == rt.lockRelease) {
            kind = 3;
            obj = c.curLock;
        } else if (id == rt.futexWait) {
            kind = 4;
            obj = c.waitObj;
        } else if (id == rt.atomicStub) {
            kind = 5;
            obj = prog->runList[c.runPos];
        }
        const Addr a = syncAddr(kind, obj);
        for (const BlockMemOp &op : bb.memOps)
            c.memRefs.push_back({a, op.index, op.isWrite});
        return;
    }

    // Main-image blocks: walk the derived memory-op table against the
    // cursor's cached kernel and the build-time stream plans — pure
    // table lookups and arithmetic, no per-access recomputation.
    const LoweredKernel &k = *c.kern;
    std::vector<uint64_t> &spos = c.streamPos[c.kidx];
    for (const BlockMemOp &op : bb.memOps) {
        Addr addr;
        if (op.stream >= k.plans.size()) {
            // Stack/scalar traffic: a small, hot per-thread region.
            addr = c.stackBase | ((c.stackCursor * 8) & 0xfff);
            ++c.stackCursor;
        } else {
            const StreamPlan &p = k.plans[op.stream];
            uint64_t pos;
            if (p.shared) {
                // Iteration-tied access: the data an iteration touches
                // is the same no matter which thread executes it. An
                // access whose position escapes the iteration's own
                // 64-entry window (spill, rng jump, footprint wrap) is
                // flagged aliased: its address collides with other
                // iterations' data only as a compression artifact.
                bool aliased = c.iterAccessCursor >= 64;
                pos = c.iterCur * 64 + c.iterAccessCursor;
                ++c.iterAccessCursor;
                if (p.jumpProb > 0.0 && c.addrRng.nextBool(p.jumpProb)) {
                    pos = c.addrRng.nextBounded(p.jumpBound);
                    aliased = true;
                }
                const uint64_t off = pos * p.stride;
                aliased |= off >= p.footprint;
                addr = p.base + off % p.footprint;
                c.memRefs.push_back({addr, op.index, op.isWrite,
                                     aliased});
                continue;
            } else {
                uint64_t &cursor = spos[op.stream];
                if (p.jumpProb > 0.0 && c.addrRng.nextBool(p.jumpProb))
                    cursor = c.addrRng.nextBounded(p.jumpBound);
                pos = cursor++;
                addr = (p.base | c.privTidBits) +
                       (pos * p.stride) % p.footprint;
            }
        }
        c.memRefs.push_back({addr, op.index, op.isWrite});
    }
}

StepResult
ExecutionEngine::emit(uint32_t tid, BlockId block)
{
    Cursor &c = cursors[tid];
    ++blockCounts[block];
    const uint32_t n = prog->instrCounts[block];
    c.icount += n;
    if (prog->mainImageFlags[block])
        c.filteredIcount += n;
    if (cfg.genAddresses)
        genBlockAddresses(tid, prog->blocks[block]);
    return {StepResult::Kind::Block, block};
}

double
ExecutionEngine::iterationDraw(Cursor &c)
{
    const uint32_t kidx = prog->runList[c.runPos];
    uint64_t h = hashCombine(
        hashCombine(cfg.seed,
                    (static_cast<uint64_t>(kidx) << 40) | c.iterCur),
        ++c.drawCursor);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

BlockId
ExecutionEngine::walkBody(uint32_t tid, bool &blocked)
{
    Cursor &c = cursors[tid];
    blocked = false;
    while (!c.stack.empty()) {
        Frame &f = c.stack.back();
        if (f.stage == 0) {
            f.stage = 1;
            f.idx = 0;
            f.sub = 0;
            if (f.loop)
                return f.loop->blocks[0]; // loop header
            continue;
        }
        if (f.stage == 1) {
            if (f.idx >= f.items->size()) {
                f.stage = 2;
                continue;
            }
            const BodyItem &item = (*f.items)[f.idx];
            switch (item.kind) {
              case BodyItem::Kind::Block:
              case BodyItem::Kind::Atomic:
                ++f.idx;
                return item.blocks[0];
              case BodyItem::Kind::Cond:
                if (f.sub == 0) {
                    f.condTaken = iterationDraw(c) < item.prob;
                    c.branchTaken = f.condTaken;
                    f.sub = 1;
                    return item.blocks[0];
                }
                if (f.sub == 1) {
                    f.sub = 2;
                    return f.condTaken ? item.blocks[1] : item.blocks[2];
                }
                f.sub = 0;
                ++f.idx;
                return item.blocks[3];
              case BodyItem::Kind::Loop: {
                uint64_t trips = item.trips;
                if (item.tripJitter > 0) {
                    uint64_t span = 2ull * item.tripJitter + 1;
                    int64_t j = static_cast<int64_t>(
                                    iterationDraw(c) *
                                    static_cast<double>(span)) -
                                static_cast<int64_t>(item.tripJitter);
                    int64_t t = static_cast<int64_t>(trips) + j;
                    trips = t < 1 ? 1 : static_cast<uint64_t>(t);
                }
                ++f.idx;
                f.sub = 0;
                Frame child;
                child.loop = &item;
                child.items = &item.children;
                child.stage = 0;
                child.tripsLeft = trips;
                c.stack.push_back(child); // invalidates f
                continue;
              }
              case BodyItem::Kind::Critical:
                c.curLock = item.lockId;
                if (f.sub == 0) {
                    // Emit the acquire stub, then either enter the CS
                    // next step or start waiting.
                    f.sub = tryAcquireLock(tid, item.lockId) ? 2 : 1;
                    return item.blocks[0];
                }
                if (f.sub == 1) {
                    if (tryAcquireLock(tid, item.lockId)) {
                        f.sub = 3;
                        return item.blocks[1]; // critical section
                    }
                    if (cfg.waitPolicy == WaitPolicy::Active)
                        return prog->runtime.lockSpin;
                    if (!c.emittedFutex) {
                        c.emittedFutex = true;
                        c.waitKind = WaitKind::Lock;
                        c.waitObj = item.lockId;
                        return prog->runtime.futexWait;
                    }
                    blockThread(tid, WaitKind::Lock, item.lockId);
                    blocked = true;
                    return kInvalidBlock;
                }
                if (f.sub == 2) {
                    f.sub = 3;
                    return item.blocks[1]; // critical section
                }
                if (f.sub == 3) {
                    if (item.children.empty()) {
                        releaseLock(tid, item.lockId);
                        f.sub = 0;
                        ++f.idx;
                        return item.blocks[2]; // release stub
                    }
                    // Nested body: walk the children in a child frame
                    // while the lock stays held; sub == 4 releases it
                    // once the child frame pops.
                    f.sub = 4;
                    Frame child;
                    child.crit = &item;
                    child.items = &item.children;
                    child.stage = 0;
                    c.stack.push_back(child); // invalidates f
                    continue;
                }
                // f.sub == 4: children done, leave the critical section.
                releaseLock(tid, item.lockId);
                f.sub = 0;
                ++f.idx;
                return item.blocks[2]; // release stub
              default:
                panic("walkBody: bad item kind");
            }
        }
        // f.stage == 2: end of this frame's item list.
        if (f.crit) {
            // Critical-section child frame: no latch; the parent
            // frame's Critical item (sub == 4) releases the lock and
            // emits the release stub.
            c.stack.pop_back();
            continue;
        }
        if (f.loop) {
            BlockId latch = f.loop->blocks[1];
            if (--f.tripsLeft > 0) {
                f.stage = 0;
                c.branchTaken = true; // back edge
            } else {
                c.stack.pop_back();
                c.branchTaken = false; // loop exit
            }
            return latch;
        }
        c.stack.pop_back();
        return kInvalidBlock; // top-level body finished
    }
    return kInvalidBlock;
}

StepResult
ExecutionEngine::step(uint32_t tid)
{
    LP_ASSERT(tid < cfg.numThreads);
    Cursor &c = cursors[tid];
    const RuntimeBlocks &rt = prog->runtime;
    wokenThisStep.clear();
    // Default branch direction; decision sites below override it.
    c.branchTaken = true;

    for (;;) {
        switch (c.st) {
          case St::Done:
            return {StepResult::Kind::Finished, kInvalidBlock};

          case St::KernelEntry: {
            const LoweredKernel &k = curKernel(c);
            c.participated = false;
            if (tid == 0) {
                c.st = St::MasterPrologue;
                return emit(tid, k.entryBlock);
            }
            c.st = St::MasterPrologue;
            continue;
          }

          case St::MasterPrologue: {
            const LoweredKernel &k = curKernel(c);
            c.st = St::IterFetch;
            if (tid == 0 && k.masterPrologue != kInvalidBlock)
                return emit(tid, k.masterPrologue);
            continue;
          }

          case St::IterFetch: {
            const LoweredKernel &k = curKernel(c);
            switch (k.sched) {
              case SchedPolicy::Serial:
                if (tid != 0) {
                    c.st = St::BarrierEnter;
                } else {
                    c.iterCur = 0;
                    c.iterEnd = k.parallelIters;
                    c.participated = true;
                    c.st = St::WorkerHeader;
                }
                continue;
              case SchedPolicy::StaticFor:
                assignStaticRange(tid);
                c.participated = c.iterCur < c.iterEnd;
                c.st = c.participated ? St::WorkerHeader
                                      : St::ReductionStub;
                continue;
              case SchedPolicy::DynamicFor:
                c.st = St::ChunkFetch;
                continue;
              default:
                panic("bad sched policy");
            }
          }

          case St::ChunkFetch: {
            const LoweredKernel &k = curKernel(c);
            if (chunks[c.runPos].next >= k.parallelIters) {
                // Final (empty) probe of the shared iteration counter.
                c.st = St::ReductionStub;
                return emit(tid, rt.chunkFetch);
            }
            if (tryFetchChunk(tid)) {
                c.st = St::WorkerHeader;
                return emit(tid, rt.chunkFetch);
            }
            // Replay arbitration says it is not our turn yet.
            if (cfg.waitPolicy == WaitPolicy::Active) {
                c.waitKind = WaitKind::Chunk;
                c.waitObj = c.runPos;
                return emit(tid, rt.spinWait);
            }
            if (!c.emittedFutex) {
                c.emittedFutex = true;
                c.waitKind = WaitKind::Chunk;
                c.waitObj = c.runPos;
                return emit(tid, rt.futexWait);
            }
            blockThread(tid, WaitKind::Chunk, c.runPos);
            return {StepResult::Kind::Blocked, kInvalidBlock};
          }

          case St::WorkerHeader: {
            const LoweredKernel &k = curKernel(c);
            c.iterAccessCursor = 0;
            c.drawCursor = 0;
            Frame top;
            top.loop = nullptr;
            top.items = &k.body;
            top.stage = 1;
            c.stack.clear();
            c.stack.push_back(top);
            c.st = St::Body;
            return emit(tid, k.workerHeader);
          }

          case St::Body: {
            bool blocked = false;
            BlockId b = walkBody(tid, blocked);
            if (blocked)
                return {StepResult::Kind::Blocked, kInvalidBlock};
            if (b == kInvalidBlock) {
                c.st = St::WorkerLatch;
                continue;
            }
            return emit(tid, b);
          }

          case St::WorkerLatch: {
            const LoweredKernel &k = curKernel(c);
            ++c.iterCur;
            c.branchTaken = c.iterCur < c.iterEnd;
            if (c.iterCur < c.iterEnd) {
                c.st = St::WorkerHeader;
            } else if (k.sched == SchedPolicy::DynamicFor) {
                c.st = St::ChunkFetch;
            } else {
                c.st = St::ReductionStub;
            }
            return emit(tid, k.workerLatch);
          }

          case St::ReductionStub: {
            const LoweredKernel &k = curKernel(c);
            if (k.reductionTail != kInvalidBlock) {
                c.st = St::ReductionTail;
                return emit(tid, rt.atomicStub);
            }
            c.st = St::BarrierEnter;
            continue;
          }

          case St::ReductionTail: {
            const LoweredKernel &k = curKernel(c);
            c.st = St::BarrierEnter;
            return emit(tid, k.reductionTail);
          }

          case St::BarrierEnter: {
            BarrierState &bar = barriers[c.runPos];
            ++bar.arrivals;
            LP_ASSERT(bar.arrivals <= cfg.numThreads);
            if (bar.arrivals == cfg.numThreads) {
                bar.released = true;
                wakeWaiters(WaitKind::Barrier, c.runPos);
                c.st = St::BarrierExit;
            } else {
                c.st = St::BarrierWait;
                c.waitKind = WaitKind::Barrier;
                c.waitObj = c.runPos;
            }
            return emit(tid, rt.barrierEnter);
          }

          case St::BarrierWait: {
            if (barriers[c.runPos].released) {
                c.st = St::BarrierExit;
                c.waitKind = WaitKind::None;
                c.emittedFutex = false;
                continue;
            }
            if (cfg.waitPolicy == WaitPolicy::Active)
                return emit(tid, rt.spinWait);
            if (!c.emittedFutex) {
                c.emittedFutex = true;
                return emit(tid, rt.futexWait);
            }
            blockThread(tid, WaitKind::Barrier, c.runPos);
            return {StepResult::Kind::Blocked, kInvalidBlock};
          }

          case St::BarrierExit: {
            c.st = St::KernelExit;
            return emit(tid, rt.barrierExit);
          }

          case St::KernelExit: {
            const LoweredKernel &k = curKernel(c);
            bool emit_exit = (tid == 0);
            BlockId exit_block = k.exitBlock;
            ++c.runPos;
            refreshKernelCache(c);
            c.emittedFutex = false;
            c.waitKind = WaitKind::None;
            if (c.runPos >= prog->runList.size()) {
                c.st = St::Done;
                ++finishedCount;
            } else {
                c.st = St::KernelEntry;
            }
            if (emit_exit)
                return emit(tid, exit_block);
            continue;
          }

          default:
            panic("ExecutionEngine::step: bad state");
        }
    }
}

} // namespace looppoint
