#include "obs/metrics.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "obs/json.hh"

namespace looppoint {

namespace {

/** Round-robin stripe assignment: each thread grabs a stripe on first
 * metric touch and keeps it for life. With kMetricStripes a power of
 * two well above typical pool sizes, collisions only cost a shared
 * fetch_add, never a lock. */
std::atomic<uint32_t> nextStripe{0};

uint32_t
thisThreadStripe()
{
    thread_local uint32_t stripe =
        nextStripe.fetch_add(1, std::memory_order_relaxed) %
        kMetricStripes;
    return stripe;
}

/** %.17g round-trips doubles; trim to a friendlier form when exact. */
std::string
formatDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    double back = 0.0;
    char shorter[40];
    std::snprintf(shorter, sizeof(shorter), "%g", v);
    if (std::sscanf(shorter, "%lf", &back) == 1 && back == v)
        return shorter;
    return buf;
}

} // namespace

uint32_t
Counter::stripeIndex()
{
    return thisThreadStripe();
}

uint64_t
Counter::value() const
{
    uint64_t total = 0;
    for (const MetricCell &cell : cells)
        total += cell.v.load(std::memory_order_relaxed);
    return total;
}

Histogram::Histogram(std::string name, std::vector<uint64_t> bounds,
                     const std::atomic<bool> *enabled)
    : nm(std::move(name)), upper(std::move(bounds)), on(enabled)
{
    std::sort(upper.begin(), upper.end());
    upper.erase(std::unique(upper.begin(), upper.end()), upper.end());
    const size_t n = upper.size() + 1; // + overflow bucket
    for (Shard &s : shards) {
        s.buckets = std::make_unique<std::atomic<uint64_t>[]>(n);
        for (size_t i = 0; i < n; ++i)
            s.buckets[i].store(0, std::memory_order_relaxed);
    }
}

void
Histogram::observe(uint64_t sample)
{
    if (!on->load(std::memory_order_relaxed))
        return;
    // First bucket whose inclusive upper bound fits the sample; the
    // overflow bucket (index upper.size()) takes the rest.
    size_t idx = std::lower_bound(upper.begin(), upper.end(), sample) -
                 upper.begin();
    Shard &s = shards[thisThreadStripe()];
    s.buckets[idx].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(sample, std::memory_order_relaxed);
    s.cnt.fetch_add(1, std::memory_order_relaxed);
}

uint64_t
Histogram::count() const
{
    uint64_t total = 0;
    for (const Shard &s : shards)
        total += s.cnt.load(std::memory_order_relaxed);
    return total;
}

uint64_t
Histogram::sum() const
{
    uint64_t total = 0;
    for (const Shard &s : shards)
        total += s.sum.load(std::memory_order_relaxed);
    return total;
}

std::vector<uint64_t>
Histogram::bucketCounts() const
{
    std::vector<uint64_t> out(upper.size() + 1, 0);
    for (const Shard &s : shards)
        for (size_t i = 0; i < out.size(); ++i)
            out[i] += s.buckets[i].load(std::memory_order_relaxed);
    return out;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> g(mtx);
    auto it = counters.find(name);
    if (it == counters.end())
        it = counters
                 .emplace(name, std::unique_ptr<Counter>(
                                    new Counter(name, &on)))
                 .first;
    return *it->second;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> g(mtx);
    auto it = gauges.find(name);
    if (it == gauges.end())
        it = gauges
                 .emplace(name,
                          std::unique_ptr<Gauge>(new Gauge(name, &on)))
                 .first;
    return *it->second;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<uint64_t> bounds)
{
    std::lock_guard<std::mutex> g(mtx);
    auto it = histograms.find(name);
    if (it == histograms.end())
        it = histograms
                 .emplace(name, std::unique_ptr<Histogram>(new Histogram(
                                    name, std::move(bounds), &on)))
                 .first;
    return *it->second;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> g(mtx);
    for (auto &[name, c] : counters)
        for (MetricCell &cell : c->cells)
            cell.v.store(0, std::memory_order_relaxed);
    for (auto &[name, gv] : gauges)
        gv->val.store(0.0, std::memory_order_relaxed);
    for (auto &[name, h] : histograms) {
        for (Histogram::Shard &s : h->shards) {
            for (size_t i = 0; i < h->upper.size() + 1; ++i)
                s.buckets[i].store(0, std::memory_order_relaxed);
            s.sum.store(0, std::memory_order_relaxed);
            s.cnt.store(0, std::memory_order_relaxed);
        }
    }
}

void
MetricsRegistry::printText(std::ostream &os) const
{
    std::lock_guard<std::mutex> g(mtx);
    for (const auto &[name, c] : counters)
        os << name << " " << c->value() << "\n";
    for (const auto &[name, gv] : gauges)
        os << name << " " << formatDouble(gv->value()) << "\n";
    for (const auto &[name, h] : histograms) {
        const auto buckets = h->bucketCounts();
        for (size_t i = 0; i < h->upper.size(); ++i)
            os << name << "{le=" << h->upper[i] << "} " << buckets[i]
               << "\n";
        os << name << "{le=+inf} " << buckets.back() << "\n";
        os << name << ".sum " << h->sum() << "\n";
        os << name << ".count " << h->count() << "\n";
    }
}

void
MetricsRegistry::printJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> g(mtx);
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : counters) {
        os << (first ? "\n" : ",\n") << "    " << jsonQuote(name)
           << ": " << c->value();
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto &[name, gv] : gauges) {
        os << (first ? "\n" : ",\n") << "    " << jsonQuote(name)
           << ": " << formatDouble(gv->value());
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms) {
        os << (first ? "\n" : ",\n") << "    " << jsonQuote(name)
           << ": {\"bounds\": [";
        for (size_t i = 0; i < h->upper.size(); ++i)
            os << (i ? ", " : "") << h->upper[i];
        os << "], \"buckets\": [";
        const auto buckets = h->bucketCounts();
        for (size_t i = 0; i < buckets.size(); ++i)
            os << (i ? ", " : "") << buckets[i];
        os << "], \"sum\": " << h->sum()
           << ", \"count\": " << h->count() << "}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "}\n}\n";
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace looppoint
