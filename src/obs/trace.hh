/**
 * @file
 * Structured span tracer emitting Chrome trace-event / Perfetto JSON.
 *
 * Every pipeline phase (record, DCFG build, slicing, projection, the
 * k-means BIC sweep, per-region warmup and detailed simulation, retry
 * attempts, journal activity) opens a ScopedSpan; on destruction the
 * span is pushed into a per-thread ring buffer. Rings are drained on
 * flush into one `{"traceEvents": [...]}` document that loads directly
 * in https://ui.perfetto.dev or chrome://tracing, with one named track
 * per host thread (pool workers register their names) plus optional
 * *virtual* tracks ("region 7") for per-simulated-region timelines.
 *
 * Cost model: a disabled tracer costs one relaxed atomic load and a
 * branch per span site — no clock read, no allocation, no lock. An
 * enabled tracer takes two clock reads per span and one uncontended
 * per-thread mutex on record (the same mutex flush takes, which is
 * the only cross-thread contact). Ring capacity bounds memory; when a
 * thread overruns its ring the oldest events are overwritten and
 * counted in droppedEvents().
 *
 * Timestamps come from a Clock (see clock.hh) so tests can inject a
 * FakeClock and compare traces byte-for-byte.
 */

#ifndef LOOPPOINT_OBS_TRACE_HH
#define LOOPPOINT_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "obs/clock.hh"

namespace looppoint {

/** One span/instant argument; `quoted` = emit as JSON string. */
struct TraceArg
{
    std::string key;
    std::string value;
    bool quoted = true;
};

/** One recorded event (a closed span or an instant marker). */
struct TraceEvent
{
    /** Track sentinel: "the recording thread's own track". */
    static constexpr uint32_t kCallerTrack = UINT32_MAX;

    std::string name;
    char phase = 'X'; ///< 'X' complete span, 'i' instant
    uint64_t tsNs = 0;
    uint64_t durNs = 0;
    uint32_t track = kCallerTrack;
    std::vector<TraceArg> args;
};

/** See file comment. */
class Tracer
{
  public:
    static constexpr size_t kDefaultRingCapacity = 1u << 15;

    /** @param clock nullptr = SteadyClock::instance(). */
    explicit Tracer(const Clock *clock = nullptr,
                    size_t ring_capacity = kDefaultRingCapacity);
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    bool
    enabled() const
    {
        return on.load(std::memory_order_relaxed);
    }

    void setEnabled(bool enable);

    /** Swap the time source (nullptr = steady). Takes effect for
     * subsequently opened spans; not thread-safe against them. */
    void setClock(const Clock *clock);

    uint64_t nowNs() const { return clk->nowNs(); }

    /** Name the calling thread's track ("pool worker 3", "main"). */
    void nameCurrentThread(const std::string &name);

    /**
     * A named virtual track (e.g. "region 7") for events that belong
     * to a logical timeline rather than a host thread. Idempotent:
     * the same name always maps to the same track id.
     */
    uint32_t virtualTrack(const std::string &name);

    /** Push one event into the calling thread's ring (enabled only). */
    void record(TraceEvent ev);

    /** Record an instant marker at now() on the caller's track. */
    void instant(std::string name, std::vector<TraceArg> args = {});

    /** Events currently buffered across all rings. */
    size_t pendingEvents() const;
    /** Events overwritten because a ring filled up. */
    size_t droppedEvents() const;

    /**
     * Drain every ring into one Chrome trace-event JSON document
     * (sorted by timestamp; thread_name metadata first). The rings
     * are left empty; track registrations survive.
     */
    void writeChromeTrace(std::ostream &os);

    /** Drain and discard all buffered events. */
    void clear();

    /** The process-wide tracer the pipeline instrumentation uses. */
    static Tracer &global();

  private:
    struct ThreadBuf
    {
        std::mutex mtx;
        std::vector<TraceEvent> ring;
        size_t next = 0; ///< overwrite cursor once full
        uint64_t dropped = 0;
        uint32_t track = 0;
    };

    ThreadBuf &threadBuf();

    std::atomic<bool> on{false};
    const Clock *clk;
    const size_t ringCapacity;
    const uint64_t tracerId; ///< key for the thread-local buf cache

    mutable std::mutex mtx; ///< guards bufs + trackNames
    std::vector<std::unique_ptr<ThreadBuf>> bufs;
    std::vector<std::string> trackNames;
};

/**
 * RAII span: captures the start time on construction (when the tracer
 * is enabled; otherwise fully inert) and records a complete event on
 * destruction or finish(). Args attach between the two.
 */
class ScopedSpan
{
  public:
    ScopedSpan(Tracer &tracer, std::string_view name)
        : ScopedSpan(&tracer, name)
    {}

    /** Nullable form for conditional spans: inert when null. */
    ScopedSpan(Tracer *tracer, std::string_view name)
    {
        if (!tracer || !tracer->enabled())
            return;
        t = tracer;
        ev.name = name;
        t0 = tracer->nowNs();
    }

    ~ScopedSpan() { finish(); }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** Inactive spans (disabled tracer) ignore args and finish(). */
    bool active() const { return t != nullptr; }

    uint64_t startNs() const { return t0; }

    ScopedSpan &
    arg(std::string_view key, std::string_view value)
    {
        if (t)
            ev.args.push_back({std::string(key), std::string(value),
                               /*quoted=*/true});
        return *this;
    }

    ScopedSpan &
    arg(std::string_view key, const char *value)
    {
        return arg(key, std::string_view(value));
    }

    template <typename T,
              std::enable_if_t<std::is_integral_v<T>, int> = 0>
    ScopedSpan &
    arg(std::string_view key, T value)
    {
        if (t)
            ev.args.push_back({std::string(key),
                               std::to_string(value),
                               /*quoted=*/false});
        return *this;
    }

    ScopedSpan &arg(std::string_view key, double value);

    /** Also emit a copy of this span on virtual track `track`. */
    ScopedSpan &
    mirror(uint32_t track)
    {
        if (t)
            mirrorTrack = track;
        return *this;
    }

    /** Close and record the span now (destructor becomes a no-op). */
    void finish();

  private:
    Tracer *t = nullptr;
    uint64_t t0 = 0;
    uint32_t mirrorTrack = TraceEvent::kCallerTrack;
    TraceEvent ev;
};

} // namespace looppoint

#endif // LOOPPOINT_OBS_TRACE_HH
