/**
 * @file
 * Time source abstraction for the observability subsystem.
 *
 * The tracer stamps spans through a Clock interface instead of calling
 * std::chrono directly so that tests can inject a FakeClock and get
 * bit-deterministic traces (golden-file comparisons, exact nesting
 * assertions). Production uses SteadyClock: monotonic, ns resolution,
 * immune to wall-clock adjustments.
 */

#ifndef LOOPPOINT_OBS_CLOCK_HH
#define LOOPPOINT_OBS_CLOCK_HH

#include <atomic>
#include <chrono>
#include <cstdint>

namespace looppoint {

/** Nanosecond time source; implementations must be thread-safe. */
class Clock
{
  public:
    virtual ~Clock() = default;
    virtual uint64_t nowNs() const = 0;
};

/** Monotonic host clock (the production time source). */
class SteadyClock final : public Clock
{
  public:
    uint64_t
    nowNs() const override
    {
        return static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

    /** Shared immutable instance (stateless). */
    static const SteadyClock &
    instance()
    {
        static const SteadyClock clock;
        return clock;
    }
};

/** Manually-advanced clock for deterministic traces in tests. */
class FakeClock final : public Clock
{
  public:
    explicit FakeClock(uint64_t start_ns = 0) : t(start_ns) {}

    uint64_t
    nowNs() const override
    {
        return t.load(std::memory_order_relaxed);
    }

    void
    advanceNs(uint64_t delta_ns)
    {
        t.fetch_add(delta_ns, std::memory_order_relaxed);
    }

    void
    setNs(uint64_t now_ns)
    {
        t.store(now_ns, std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> t;
};

} // namespace looppoint

#endif // LOOPPOINT_OBS_CLOCK_HH
