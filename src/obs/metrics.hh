/**
 * @file
 * Metrics registry: counters, gauges, and fixed-bucket histograms for
 * pipeline-level telemetry (region sim wall time, per-region MPKI,
 * thread-pool steal counts and idle time, BIC sweep iterations,
 * artifact checksum verify/fail counts, ...).
 *
 * Hot-path contract: updates are mutex-free. A Counter/Histogram is a
 * set of cache-line-padded per-thread shards (each thread is assigned
 * a stripe once); add()/observe() is one relaxed atomic check of the
 * registry's enabled flag plus relaxed atomic adds on the caller's
 * stripe. Aggregation across shards happens only at scrape time
 * (value(), printText(), printJson()). When the registry is disabled,
 * every update is a relaxed load and a branch — nothing else.
 *
 * Registration (counter()/gauge()/histogram()) takes the registry
 * mutex and returns a stable reference; call sites obtain handles
 * once and update through them. Emitters follow the DiagnosticSink
 * conventions: a human-readable text form and a JSON form (sorted
 * keys, round-trip-parseable with obs/json.hh).
 */

#ifndef LOOPPOINT_OBS_METRICS_HH
#define LOOPPOINT_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace looppoint {

class MetricsRegistry;

/** Stripes shared by all sharded metrics (threads hash onto these). */
constexpr uint32_t kMetricStripes = 16;

/** One cache line of counter state, to keep shards from false
 * sharing. */
struct alignas(64) MetricCell
{
    std::atomic<uint64_t> v{0};
};

/** Monotonically increasing event count. */
class Counter
{
  public:
    void
    add(uint64_t delta = 1)
    {
        if (!on->load(std::memory_order_relaxed))
            return;
        cells[stripeIndex()].v.fetch_add(delta,
                                         std::memory_order_relaxed);
    }

    /** Sum across shards (scrape-time only). */
    uint64_t value() const;

    const std::string &name() const { return nm; }

    /** The stripe the calling thread updates (exposed for tests). */
    static uint32_t stripeIndex();

  private:
    friend class MetricsRegistry;
    Counter(std::string name, const std::atomic<bool> *enabled)
        : nm(std::move(name)), on(enabled)
    {}

    std::string nm;
    const std::atomic<bool> *on;
    MetricCell cells[kMetricStripes];
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void
    set(double value)
    {
        if (!on->load(std::memory_order_relaxed))
            return;
        val.store(value, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return val.load(std::memory_order_relaxed);
    }

    const std::string &name() const { return nm; }

  private:
    friend class MetricsRegistry;
    Gauge(std::string name, const std::atomic<bool> *enabled)
        : nm(std::move(name)), on(enabled)
    {}

    std::string nm;
    const std::atomic<bool> *on;
    std::atomic<double> val{0.0};
};

/**
 * Fixed-bucket histogram over uint64 samples (callers pick the unit:
 * nanoseconds, micro-MPKI, ...). `bounds` are inclusive upper bounds,
 * ascending; one implicit overflow bucket catches everything above
 * the last bound.
 */
class Histogram
{
  public:
    void observe(uint64_t sample);

    uint64_t count() const;
    uint64_t sum() const;
    /** Per-bucket counts, size bounds().size() + 1 (overflow last). */
    std::vector<uint64_t> bucketCounts() const;
    const std::vector<uint64_t> &bounds() const { return upper; }

    const std::string &name() const { return nm; }

  private:
    friend class MetricsRegistry;
    Histogram(std::string name, std::vector<uint64_t> bounds,
              const std::atomic<bool> *enabled);

    struct alignas(64) Shard
    {
        std::unique_ptr<std::atomic<uint64_t>[]> buckets;
        std::atomic<uint64_t> sum{0};
        std::atomic<uint64_t> cnt{0};
    };

    std::string nm;
    std::vector<uint64_t> upper;
    const std::atomic<bool> *on;
    Shard shards[kMetricStripes];
};

/** See file comment. */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    bool
    enabled() const
    {
        return on.load(std::memory_order_relaxed);
    }

    void
    setEnabled(bool enable)
    {
        on.store(enable, std::memory_order_relaxed);
    }

    /** Get-or-create; the reference stays valid for the registry's
     * lifetime. Names are unique per metric kind. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /** An existing histogram keeps its original bounds. */
    Histogram &histogram(const std::string &name,
                         std::vector<uint64_t> bounds);

    /** Zero every value (registrations survive). For tests. */
    void reset();

    /** `name value` lines, histograms as `name{le=B} count` rows. */
    void printText(std::ostream &os) const;
    /** One JSON object: {"counters":{...},"gauges":{...},
     * "histograms":{...}} with sorted keys. */
    void printJson(std::ostream &os) const;

    /** The process-wide registry the instrumentation updates. */
    static MetricsRegistry &global();

  private:
    std::atomic<bool> on{false};
    mutable std::mutex mtx;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

} // namespace looppoint

#endif // LOOPPOINT_OBS_METRICS_HH
