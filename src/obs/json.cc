#include "obs/json.hh"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace looppoint {

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : object)
        if (k == key)
            return &v;
    return nullptr;
}

double
JsonValue::numberOr(std::string_view key, double def) const
{
    const JsonValue *v = find(key);
    return v && v->isNumber() ? v->number : def;
}

std::string
JsonValue::stringOr(std::string_view key, const std::string &def) const
{
    const JsonValue *v = find(key);
    return v && v->isString() ? v->str : def;
}

namespace {

/** Recursive-descent parser state over the input text. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text(text) {}

    std::optional<JsonValue>
    document(std::string *err)
    {
        JsonValue out;
        if (!value(out, 0)) {
            if (err)
                *err = error;
            return std::nullopt;
        }
        skipWs();
        if (pos != text.size()) {
            fail("trailing garbage after document");
            if (err)
                *err = error;
            return std::nullopt;
        }
        return out;
    }

  private:
    static constexpr int kMaxDepth = 128;

    bool
    fail(const std::string &what)
    {
        if (error.empty())
            error = what + " at byte " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text.compare(pos, word.size(), word) != 0)
            return fail("invalid literal");
        pos += word.size();
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected '\"'");
        out.clear();
        while (pos < text.size()) {
            char c = text[pos++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos >= text.size())
                return fail("truncated escape");
            char e = text[pos++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                  if (pos + 4 > text.size())
                      return fail("truncated \\u escape");
                  unsigned cp = 0;
                  for (int i = 0; i < 4; ++i) {
                      char h = text[pos++];
                      cp <<= 4;
                      if (h >= '0' && h <= '9')
                          cp |= static_cast<unsigned>(h - '0');
                      else if (h >= 'a' && h <= 'f')
                          cp |= static_cast<unsigned>(h - 'a' + 10);
                      else if (h >= 'A' && h <= 'F')
                          cp |= static_cast<unsigned>(h - 'A' + 10);
                      else
                          return fail("invalid \\u escape digit");
                  }
                  // UTF-8 encode (surrogate pairs are passed through
                  // as two 3-byte sequences; our emitters never write
                  // them, the parser just must not corrupt input).
                  if (cp < 0x80) {
                      out.push_back(static_cast<char>(cp));
                  } else if (cp < 0x800) {
                      out.push_back(
                          static_cast<char>(0xC0 | (cp >> 6)));
                      out.push_back(
                          static_cast<char>(0x80 | (cp & 0x3F)));
                  } else {
                      out.push_back(
                          static_cast<char>(0xE0 | (cp >> 12)));
                      out.push_back(static_cast<char>(
                          0x80 | ((cp >> 6) & 0x3F)));
                      out.push_back(
                          static_cast<char>(0x80 | (cp & 0x3F)));
                  }
                  break;
              }
              default:
                  return fail("invalid escape character");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        if (pos >= text.size() || !std::isdigit(
                static_cast<unsigned char>(text[pos])))
            return fail("malformed number");
        // Leading zero may not be followed by more digits.
        if (text[pos] == '0' && pos + 1 < text.size() &&
            std::isdigit(static_cast<unsigned char>(text[pos + 1])))
            return fail("number with leading zero");
        auto digits = [&] {
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                ++pos;
        };
        digits();
        if (pos < text.size() && text[pos] == '.') {
            ++pos;
            if (pos >= text.size() || !std::isdigit(
                    static_cast<unsigned char>(text[pos])))
                return fail("malformed fraction");
            digits();
        }
        if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            if (pos >= text.size() || !std::isdigit(
                    static_cast<unsigned char>(text[pos])))
                return fail("malformed exponent");
            digits();
        }
        out.kind = JsonValue::Kind::Number;
        const char *first = text.data() + start;
        const char *last = text.data() + pos;
        auto [ptr, ec] = std::from_chars(first, last, out.number);
        if (ec != std::errc() || ptr != last)
            return fail("unparseable number");
        return true;
    }

    bool
    value(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        switch (c) {
          case '{': {
              ++pos;
              out.kind = JsonValue::Kind::Object;
              skipWs();
              if (consume('}'))
                  return true;
              for (;;) {
                  skipWs();
                  std::string key;
                  if (!parseString(key))
                      return false;
                  skipWs();
                  if (!consume(':'))
                      return fail("expected ':'");
                  JsonValue member;
                  if (!value(member, depth + 1))
                      return false;
                  out.object.emplace_back(std::move(key),
                                          std::move(member));
                  skipWs();
                  if (consume(','))
                      continue;
                  if (consume('}'))
                      return true;
                  return fail("expected ',' or '}'");
              }
          }
          case '[': {
              ++pos;
              out.kind = JsonValue::Kind::Array;
              skipWs();
              if (consume(']'))
                  return true;
              for (;;) {
                  JsonValue elem;
                  if (!value(elem, depth + 1))
                      return false;
                  out.array.push_back(std::move(elem));
                  skipWs();
                  if (consume(','))
                      continue;
                  if (consume(']'))
                      return true;
                  return fail("expected ',' or ']'");
              }
          }
          case '"':
              out.kind = JsonValue::Kind::String;
              return parseString(out.str);
          case 't':
              out.kind = JsonValue::Kind::Bool;
              out.boolean = true;
              return literal("true");
          case 'f':
              out.kind = JsonValue::Kind::Bool;
              out.boolean = false;
              return literal("false");
          case 'n':
              out.kind = JsonValue::Kind::Null;
              return literal("null");
          default:
              return parseNumber(out);
        }
    }

    std::string_view text;
    size_t pos = 0;
    std::string error;
};

} // namespace

std::optional<JsonValue>
parseJson(std::string_view text, std::string *err)
{
    return Parser(text).document(err);
}

void
jsonEscape(std::ostream &os, std::string_view s)
{
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default: {
              // Escape control characters and any byte outside
              // printable ASCII (\u00XX = Latin-1 reading): strings
              // may carry raw artifact bytes, and the emitted JSON
              // must stay valid regardless.
              const auto u = static_cast<unsigned char>(c);
              if (u < 0x20 || u >= 0x7f) {
                  char buf[8];
                  std::snprintf(buf, sizeof(buf), "\\u%04x", u);
                  os << buf;
              } else {
                  os << c;
              }
          }
        }
    }
}

std::string
jsonQuote(std::string_view s)
{
    std::ostringstream os;
    os << '"';
    jsonEscape(os, s);
    os << '"';
    return os.str();
}

} // namespace looppoint
