#include "obs/trace.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "obs/json.hh"

namespace looppoint {

namespace {

/** Unique id per Tracer instance, so the thread-local cache below can
 * never confuse a dead tracer with a new one at the same address. */
std::atomic<uint64_t> nextTracerId{1};

/** Per-thread cache of (tracer id -> buffer). Entries for destroyed
 * tracers are harmless: their ids are never issued again. */
struct TlsBufEntry
{
    uint64_t tracerId;
    void *buf;
};
thread_local std::vector<TlsBufEntry> tlsBufs;

} // namespace

Tracer::Tracer(const Clock *clock, size_t ring_capacity)
    : clk(clock ? clock : &SteadyClock::instance()),
      ringCapacity(ring_capacity ? ring_capacity : 1),
      tracerId(nextTracerId.fetch_add(1, std::memory_order_relaxed))
{}

Tracer::~Tracer() = default;

void
Tracer::setEnabled(bool enable)
{
    on.store(enable, std::memory_order_relaxed);
}

void
Tracer::setClock(const Clock *clock)
{
    clk = clock ? clock : &SteadyClock::instance();
}

Tracer::ThreadBuf &
Tracer::threadBuf()
{
    for (const TlsBufEntry &e : tlsBufs)
        if (e.tracerId == tracerId)
            return *static_cast<ThreadBuf *>(e.buf);
    auto fresh = std::make_unique<ThreadBuf>();
    ThreadBuf *buf;
    {
        std::lock_guard<std::mutex> g(mtx);
        fresh->track = static_cast<uint32_t>(trackNames.size());
        trackNames.push_back("host thread " +
                             std::to_string(fresh->track));
        bufs.push_back(std::move(fresh));
        buf = bufs.back().get();
    }
    tlsBufs.push_back({tracerId, buf});
    return *buf;
}

void
Tracer::nameCurrentThread(const std::string &name)
{
    ThreadBuf &buf = threadBuf();
    std::lock_guard<std::mutex> g(mtx);
    trackNames[buf.track] = name;
}

uint32_t
Tracer::virtualTrack(const std::string &name)
{
    std::lock_guard<std::mutex> g(mtx);
    for (uint32_t i = 0; i < trackNames.size(); ++i)
        if (trackNames[i] == name)
            return i;
    trackNames.push_back(name);
    return static_cast<uint32_t>(trackNames.size() - 1);
}

void
Tracer::record(TraceEvent ev)
{
    if (!enabled())
        return;
    ThreadBuf &buf = threadBuf();
    if (ev.track == TraceEvent::kCallerTrack)
        ev.track = buf.track;
    std::lock_guard<std::mutex> g(buf.mtx);
    if (buf.ring.size() < ringCapacity) {
        buf.ring.push_back(std::move(ev));
    } else {
        buf.ring[buf.next] = std::move(ev);
        buf.next = (buf.next + 1) % ringCapacity;
        ++buf.dropped;
    }
}

void
Tracer::instant(std::string name, std::vector<TraceArg> args)
{
    if (!enabled())
        return;
    TraceEvent ev;
    ev.name = std::move(name);
    ev.phase = 'i';
    ev.tsNs = nowNs();
    ev.args = std::move(args);
    record(std::move(ev));
}

size_t
Tracer::pendingEvents() const
{
    std::lock_guard<std::mutex> g(mtx);
    size_t n = 0;
    for (const auto &buf : bufs) {
        std::lock_guard<std::mutex> bg(buf->mtx);
        n += buf->ring.size();
    }
    return n;
}

size_t
Tracer::droppedEvents() const
{
    std::lock_guard<std::mutex> g(mtx);
    size_t n = 0;
    for (const auto &buf : bufs) {
        std::lock_guard<std::mutex> bg(buf->mtx);
        n += buf->dropped;
    }
    return n;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> g(mtx);
    for (const auto &buf : bufs) {
        std::lock_guard<std::mutex> bg(buf->mtx);
        buf->ring.clear();
        buf->next = 0;
        buf->dropped = 0;
    }
}

void
Tracer::writeChromeTrace(std::ostream &os)
{
    // Drain every ring and snapshot the track names under the lock,
    // then format outside it.
    std::vector<TraceEvent> events;
    std::vector<std::string> tracks;
    uint64_t dropped = 0;
    {
        std::lock_guard<std::mutex> g(mtx);
        tracks = trackNames;
        for (const auto &buf : bufs) {
            std::lock_guard<std::mutex> bg(buf->mtx);
            // Restore chronological order of a wrapped ring: the
            // oldest surviving event sits at `next`.
            for (size_t i = 0; i < buf->ring.size(); ++i)
                events.push_back(std::move(
                    buf->ring[(buf->next + i) % buf->ring.size()]));
            dropped += buf->dropped;
            buf->ring.clear();
            buf->next = 0;
            buf->dropped = 0;
        }
    }

    // Chrome/Perfetto sort by ts; for equal timestamps a longer span
    // must precede its children for nesting to render. The full key
    // makes the output deterministic under a FakeClock.
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.tsNs != b.tsNs)
                             return a.tsNs < b.tsNs;
                         if (a.durNs != b.durNs)
                             return a.durNs > b.durNs;
                         if (a.track != b.track)
                             return a.track < b.track;
                         return a.name < b.name;
                     });

    auto us = [](uint64_t ns) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                      static_cast<unsigned long long>(ns / 1000),
                      static_cast<unsigned long long>(ns % 1000));
        return std::string(buf);
    };

    os << "{\n";
    os << "  \"displayTimeUnit\": \"ms\",\n";
    os << "  \"otherData\": {\"tool\": \"looppoint\", "
          "\"dropped_events\": "
       << dropped << "},\n";
    os << "  \"traceEvents\": [\n";

    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };

    sep();
    os << "    {\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, "
          "\"tid\": 0, \"args\": {\"name\": \"looppoint\"}}";
    for (uint32_t t = 0; t < tracks.size(); ++t) {
        sep();
        os << "    {\"ph\": \"M\", \"name\": \"thread_name\", "
              "\"pid\": 1, \"tid\": "
           << t << ", \"args\": {\"name\": " << jsonQuote(tracks[t])
           << "}}";
    }

    for (const TraceEvent &ev : events) {
        sep();
        os << "    {\"ph\": \"" << ev.phase << "\", \"name\": "
           << jsonQuote(ev.name) << ", \"cat\": \"looppoint\", "
              "\"pid\": 1, \"tid\": "
           << ev.track << ", \"ts\": " << us(ev.tsNs);
        if (ev.phase == 'X')
            os << ", \"dur\": " << us(ev.durNs);
        if (ev.phase == 'i')
            os << ", \"s\": \"t\"";
        if (!ev.args.empty()) {
            os << ", \"args\": {";
            for (size_t i = 0; i < ev.args.size(); ++i) {
                const TraceArg &a = ev.args[i];
                if (i)
                    os << ", ";
                os << jsonQuote(a.key) << ": ";
                if (a.quoted)
                    os << jsonQuote(a.value);
                else
                    os << a.value;
            }
            os << "}";
        }
        os << "}";
    }
    os << "\n  ]\n}\n";
}

Tracer &
Tracer::global()
{
    static Tracer tracer;
    return tracer;
}

ScopedSpan &
ScopedSpan::arg(std::string_view key, double value)
{
    if (t) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", value);
        // NaN/inf have no JSON number form; quote them instead of
        // emitting an unparseable document.
        ev.args.push_back({std::string(key), buf,
                           /*quoted=*/!std::isfinite(value)});
    }
    return *this;
}

void
ScopedSpan::finish()
{
    if (!t)
        return;
    ev.tsNs = t0;
    ev.durNs = t->nowNs() - t0;
    if (mirrorTrack != TraceEvent::kCallerTrack) {
        TraceEvent copy = ev;
        copy.track = mirrorTrack;
        copy.args.push_back({"mirror", "1", /*quoted=*/false});
        t->record(std::move(copy));
    }
    t->record(std::move(ev));
    t = nullptr;
}

} // namespace looppoint
