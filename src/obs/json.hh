/**
 * @file
 * Minimal JSON reader/escaper for the observability subsystem.
 *
 * The tracer and the metrics registry *emit* JSON (Chrome trace-event
 * files, metrics dumps); this header is the matching *reader*: a small
 * recursive-descent parser used by `lp_report` to load those artifacts
 * back and by the tests to round-trip-validate every emitter. It
 * accepts exactly RFC 8259 JSON (no comments, no trailing commas) and
 * rejects trailing garbage, so "parses with JsonValue" is a meaningful
 * validity check for files destined for Perfetto / chrome://tracing.
 *
 * Deliberately not a general-purpose DOM: numbers are doubles (trace
 * timestamps are microsecond doubles anyway), objects preserve key
 * order (emitters write sorted keys, and order-preserving storage
 * keeps golden-file comparisons meaningful), and the parse depth is
 * capped so hostile input cannot blow the stack.
 */

#ifndef LOOPPOINT_OBS_JSON_HH
#define LOOPPOINT_OBS_JSON_HH

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace looppoint {

/** One parsed JSON value (see file comment). */
struct JsonValue
{
    enum class Kind : uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    /** Key order as written (emitters sort; goldens rely on it). */
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    /** Member as number/string with a default (missing or wrong kind). */
    double numberOr(std::string_view key, double def) const;
    std::string stringOr(std::string_view key,
                         const std::string &def) const;
};

/**
 * Parse one complete JSON document. Trailing non-whitespace, depth
 * beyond 128, and any syntax error fail the parse; `err` (if given)
 * receives a one-line description with the byte offset.
 */
std::optional<JsonValue> parseJson(std::string_view text,
                                   std::string *err = nullptr);

/**
 * Write `s` JSON-escaped (without surrounding quotes). Control
 * characters and bytes outside printable ASCII are escaped as \u00XX
 * (Latin-1 reading), so the output is valid JSON for arbitrary bytes.
 */
void jsonEscape(std::ostream &os, std::string_view s);

/** jsonEscape into a fresh string, with surrounding quotes. */
std::string jsonQuote(std::string_view s);

} // namespace looppoint

#endif // LOOPPOINT_OBS_JSON_HH
