/**
 * @file
 * Workload descriptors: the structural stand-ins for the paper's
 * benchmark binaries.
 *
 * Each AppDescriptor encodes the properties LoopPoint's methodology is
 * sensitive to — phase structure (kernels per timestep), loop shapes,
 * scheduling policy, synchronization primitive use (paper Table III),
 * thread-imbalance, instruction mix, and memory locality — without
 * reproducing the benchmark's semantics. The generator lowers a
 * descriptor to a concrete Program for a given input class.
 *
 * Input classes mirror the paper: SPEC train is the validation size,
 * SPEC ref is profiled but never fully simulated (Fig. 9), and the NPB
 * classes A/C/D scale the NAS analogs (Fig. 1, 6, 10).
 */

#ifndef LOOPPOINT_WORKLOAD_DESCRIPTOR_HH
#define LOOPPOINT_WORKLOAD_DESCRIPTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace looppoint {

/** Benchmark suite an app belongs to. */
enum class Suite : uint8_t
{
    Spec2017Speed,
    NpbOmp,
    /** Pthread-style workloads (lock/atomic-heavy, barrier-poor). */
    PthreadLike,
    Demo
};

/** Input size class (SPEC: Test/Train/Ref; NPB: A/C/D). */
enum class InputClass : uint8_t
{
    Test,
    Train,
    Ref,
    NpbA,
    NpbC,
    NpbD
};

std::string_view inputClassName(InputClass c);

/** Iteration/timestep multipliers for an input class. */
struct ClassScale
{
    double itersMul = 1.0;
    double stepsMul = 1.0;
};

ClassScale classScale(InputClass c);

/** Structural recipe for one parallel region (kernel). */
struct KernelDesc
{
    std::string name;
    SchedPolicy sched = SchedPolicy::StaticFor;
    /** Parallel-loop iterations per kernel instance (pre-scaling). */
    uint64_t itersPerInstance = 1024;
    uint64_t chunkSize = 8;
    uint32_t numBodyBlocks = 2;
    uint32_t instrsPerBlock = 48;
    double fracMem = 0.30;
    double fracFp = 0.0;
    double ilp = 4.0;
    /** >0 adds an inner counted loop around the last body block. */
    uint64_t innerTrips = 0;
    uint32_t innerJitter = 0;
    /** >0 adds an if/else diamond taken with this probability. */
    double condProb = 0.0;
    /** Static-for share skew (0 = balanced). */
    double imbalance = 0.0;
    bool useAtomic = false;
    bool useCritical = false;
    bool useReduction = false;
    bool useMaster = false;
    bool useSingle = false;
    /** Private (per-thread) stream footprint. */
    uint64_t privateKB = 256;
    /** Shared stream footprint. */
    uint64_t sharedMB = 8;
    uint32_t strideBytes = 8;
    double jumpProb = 0.0;
    /** Fraction of memory ops hitting the shared stream. */
    double sharedFrac = 0.5;
};

/** Static metadata + structure of one benchmark app/input combo. */
struct AppDescriptor
{
    std::string name;
    Suite suite = Suite::Spec2017Speed;
    /** Paper Table II metadata. */
    std::string language;
    uint32_t kloc = 0;
    std::string area;
    /**
     * 0 = run with the requested thread count; nonzero pins the count
     * (657.xz_s.2 is 4-threaded, 657.xz_s.1 single-threaded).
     */
    uint32_t threadsOverride = 0;
    std::vector<KernelDesc> kernels;
    /** Kernel indices run once before the timestep loop. */
    std::vector<uint32_t> prologueKernels;
    /**
     * Kernel indices executed each timestep; empty = all kernels not
     * in the prologue, in declaration order.
     */
    std::vector<uint32_t> mainLoopKernels;
    /** Timestep count (pre-scaling). */
    uint64_t timesteps = 30;

    /** Thread count actually used for a requested count. */
    uint32_t
    effectiveThreads(uint32_t requested) const
    {
        return threadsOverride ? threadsOverride : requested;
    }

    /** Union of synchronization features over all kernels. */
    SyncUse declaredSync() const;
};

/** SPEC CPU2017 speed analogs (14 app/input combos, paper Table II). */
const std::vector<AppDescriptor> &spec2017Apps();

/** NPB 3.3 OpenMP analogs (9 apps; npb-dc excluded as in the paper). */
const std::vector<AppDescriptor> &npbApps();

/**
 * Pthread-style analogs: lock/atomic-centric applications with no
 * OpenMP-style loop scheduling discipline, exercising the paper's
 * claim that the methodology is synchronization-agnostic (Section I
 * contribution 1, Section III-K). Not part of the paper's evaluation;
 * used by the ext_generic_sync extension bench.
 */
const std::vector<AppDescriptor> &pthreadApps();

/** The artifact's matrix-omp demo application. */
const AppDescriptor &demoMatrixApp();

/** Look up an app by name across all suites; throws FatalError. */
const AppDescriptor &findApp(const std::string &name);

/**
 * Translate an artifact-style program name
 * (<suite>-<application>-<input-num>, e.g. demo-matrix-1,
 * spec-roms-1, npb-bt-1) to a workload-table app name; throws
 * FatalError on an unknown suite or program. Shared by run_looppoint
 * and lp_campaign so both spell workloads the same way.
 */
std::string resolveArtifactProgram(const std::string &prog);

/** Parse an input-class name (test, train, ref, A, C, D); throws
 * FatalError on an unknown name. */
InputClass resolveInputClass(const std::string &name);

/** Lower a descriptor to a concrete Program for an input class. */
Program generateProgram(const AppDescriptor &app, InputClass input);

} // namespace looppoint

#endif // LOOPPOINT_WORKLOAD_DESCRIPTOR_HH
