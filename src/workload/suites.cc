/**
 * @file
 * Benchmark-suite tables: the SPEC CPU2017 speed analogs (paper
 * Tables II/III) and the NPB 3.3 OpenMP analogs.
 *
 * Structural parameters (kernels per timestep, loop sizes, scheduling,
 * synchronization, locality) are chosen per app to reproduce the
 * *behavioral* properties the paper reports: barrier density
 * (imagick/xz are barrier-poor; pop2/lu barrier-rich), heterogeneity
 * (657.xz_s.2 is 4-threaded and skewed), irregular memory (cg/is/xz),
 * and strong phase regularity for the NPB codes.
 */

#include "workload/descriptor.hh"

#include "util/logging.hh"

namespace looppoint {

namespace {

KernelDesc
makeKernel(const std::string &name, SchedPolicy sched, uint64_t iters,
           uint32_t body_blocks, uint32_t instrs_per_block,
           double frac_mem, double frac_fp)
{
    KernelDesc k;
    k.name = name;
    k.sched = sched;
    k.itersPerInstance = iters;
    k.numBodyBlocks = body_blocks;
    k.instrsPerBlock = instrs_per_block;
    k.fracMem = frac_mem;
    k.fracFp = frac_fp;
    return k;
}

std::vector<AppDescriptor>
buildSpecApps()
{
    std::vector<AppDescriptor> apps;

    {
        // 603.bwaves: dense fp solver; static-for, reduction + lock.
        AppDescriptor a;
        a.name = "603.bwaves_s.1";
        a.language = "F";
        a.kloc = 1;
        a.area = "Explosion modeling";
        a.timesteps = 40;
        for (int i = 0; i < 3; ++i) {
            auto k = makeKernel(strFormat("bi_cgstab_%d", i),
                                SchedPolicy::StaticFor, 1500, 3, 56,
                                0.35, 0.55);
            k.sharedMB = 24;
            k.privateKB = 128;
            k.ilp = 5.0;
            if (i == 2) {
                k.useReduction = true;
                k.useCritical = true;
            }
            a.kernels.push_back(k);
        }
        apps.push_back(a);

        AppDescriptor a2 = a;
        a2.name = "603.bwaves_s.2";
        a2.timesteps = 25;
        for (auto &k : a2.kernels)
            k.itersPerInstance = 1800;
        apps.push_back(a2);
    }

    {
        // 607.cactuBSSN: relativity stencil; many kernels, mixed sched.
        AppDescriptor a;
        a.name = "607.cactuBSSN_s.1";
        a.language = "F, C++";
        a.kloc = 257;
        a.area = "Physics: relativity";
        a.timesteps = 20;
        for (int i = 0; i < 6; ++i) {
            auto k = makeKernel(strFormat("bssn_rhs_%d", i),
                                i % 3 == 2 ? SchedPolicy::DynamicFor
                                           : SchedPolicy::StaticFor,
                                800, 4, 44, 0.4, 0.5);
            k.sharedMB = 16;
            k.condProb = i % 2 ? 0.2 : 0.0;
            if (i == 5) {
                k.useReduction = true;
                k.useCritical = true;
            }
            a.kernels.push_back(k);
        }
        apps.push_back(a);
    }

    {
        // 619.lbm: lattice-Boltzmann streaming; single static kernel
        // style, very large shared footprint, unit-stride.
        AppDescriptor a;
        a.name = "619.lbm_s.1";
        a.language = "C";
        a.kloc = 1;
        a.area = "Fluid dynamics";
        a.timesteps = 25;
        for (int i = 0; i < 2; ++i) {
            auto k = makeKernel(strFormat("stream_collide_%d", i),
                                SchedPolicy::StaticFor, 4000, 2, 64,
                                0.45, 0.45);
            k.sharedMB = 64;
            k.strideBytes = 64;
            k.sharedFrac = 0.8;
            a.kernels.push_back(k);
        }
        apps.push_back(a);
    }

    {
        // 621.wrf: weather model; many small kernels, dynamic-for and
        // master sections.
        AppDescriptor a;
        a.name = "621.wrf_s.1";
        a.language = "F, C";
        a.kloc = 991;
        a.area = "Weather forecasting";
        a.timesteps = 12;
        for (int i = 0; i < 8; ++i) {
            auto k = makeKernel(strFormat("physics_%d", i),
                                i % 2 ? SchedPolicy::DynamicFor
                                      : SchedPolicy::StaticFor,
                                600, 3, 40, 0.35, 0.4);
            k.chunkSize = 4;
            k.sharedMB = 8;
            k.condProb = 0.3;
            if (i == 0)
                k.useMaster = true;
            a.kernels.push_back(k);
        }
        apps.push_back(a);
    }

    {
        // 627.cam4: atmosphere; static+dynamic, master sections.
        AppDescriptor a;
        a.name = "627.cam4_s.1";
        a.language = "F, C";
        a.kloc = 407;
        a.area = "Atmosphere modeling";
        a.timesteps = 15;
        for (int i = 0; i < 5; ++i) {
            auto k = makeKernel(strFormat("cam_tphys_%d", i),
                                i == 3 ? SchedPolicy::DynamicFor
                                       : SchedPolicy::StaticFor,
                                1000, 3, 48, 0.35, 0.45);
            k.sharedMB = 12;
            k.condProb = i == 1 ? 0.4 : 0.0;
            if (i == 0)
                k.useMaster = true;
            if (i == 4)
                k.useSingle = true;
            a.kernels.push_back(k);
        }
        apps.push_back(a);
    }

    {
        // 628.pop2: ocean model; barrier-rich (many timesteps, small
        // inter-barrier regions).
        AppDescriptor a;
        a.name = "628.pop2_s.1";
        a.language = "F, C";
        a.kloc = 338;
        a.area = "Wide-scale ocean modeling";
        a.timesteps = 80;
        for (int i = 0; i < 4; ++i) {
            auto k = makeKernel(strFormat("baroclinic_%d", i),
                                SchedPolicy::StaticFor, 200, 3, 40,
                                0.35, 0.5);
            k.sharedMB = 12;
            if (i == 0)
                k.useMaster = true;
            if (i == 3)
                k.useReduction = true;
            a.kernels.push_back(k);
        }
        apps.push_back(a);
    }

    {
        // 638.imagick: image pipeline; two huge parallel loops per run
        // and almost no barriers (93B-instruction inter-barrier region
        // in the paper).
        AppDescriptor a;
        a.name = "638.imagick_s.1";
        a.language = "C";
        a.kloc = 259;
        a.area = "Image manipulation";
        a.timesteps = 2;
        for (int i = 0; i < 2; ++i) {
            auto k = makeKernel(strFormat("morphology_apply_%d", i),
                                SchedPolicy::StaticFor, 60000, 2, 56,
                                0.3, 0.35);
            k.innerTrips = (i == 0) ? 1 : 0;
            k.sharedMB = 32;
            k.condProb = 0.15;
            k.useReduction = (i == 1);
            k.useAtomic = (i == 1);
            k.useCritical = (i == 1);
            k.useSingle = (i == 0);
            a.kernels.push_back(k);
        }
        apps.push_back(a);
    }

    {
        // 644.nab: molecular dynamics; dynamic-for with atomics/locks.
        AppDescriptor a;
        a.name = "644.nab_s.1";
        a.language = "C";
        a.kloc = 24;
        a.area = "Molecular dynamics";
        a.timesteps = 18;
        for (int i = 0; i < 3; ++i) {
            auto k = makeKernel(strFormat("egb_pair_%d", i),
                                SchedPolicy::DynamicFor, 1200, 3, 44,
                                0.4, 0.45);
            k.chunkSize = 16;
            k.sharedMB = 6;
            k.jumpProb = 0.05;
            k.useAtomic = (i != 1);
            if (i == 2)
                k.useCritical = true;
            a.kernels.push_back(k);
        }
        apps.push_back(a);

        AppDescriptor a2 = a;
        a2.name = "644.nab_s.2";
        a2.timesteps = 28;
        apps.push_back(a2);
    }

    {
        // 649.fotonik3d: FDTD electromagnetics; regular static loops.
        AppDescriptor a;
        a.name = "649.fotonik3d_s.1";
        a.language = "F";
        a.kloc = 14;
        a.area = "Comp. Electromagnetics";
        a.timesteps = 30;
        for (int i = 0; i < 3; ++i) {
            auto k = makeKernel(strFormat("update_field_%d", i),
                                SchedPolicy::StaticFor, 1200, 3, 48,
                                0.4, 0.55);
            k.sharedMB = 20;
            k.strideBytes = 16;
            a.kernels.push_back(k);
        }
        apps.push_back(a);
    }

    {
        // 654.roms: regional ocean model; regular static loops.
        AppDescriptor a;
        a.name = "654.roms_s.1";
        a.language = "F";
        a.kloc = 210;
        a.area = "Regional ocean modeling";
        a.timesteps = 25;
        for (int i = 0; i < 4; ++i) {
            auto k = makeKernel(strFormat("step3d_%d", i),
                                SchedPolicy::StaticFor, 1000, 3, 48,
                                0.35, 0.5);
            k.sharedMB = 16;
            k.condProb = i == 2 ? 0.25 : 0.0;
            a.kernels.push_back(k);
        }
        apps.push_back(a);
    }

    {
        // 657.xz_s.1: single-threaded compression; branchy, irregular.
        AppDescriptor a;
        a.name = "657.xz_s.1";
        a.language = "C";
        a.kloc = 33;
        a.area = "General data compression";
        a.threadsOverride = 1;
        a.timesteps = 6;
        for (int i = 0; i < 2; ++i) {
            auto k = makeKernel(strFormat("lzma_encode_%d", i),
                                SchedPolicy::Serial, 8000, 2, 56, 0.35,
                                0.0);
            k.condProb = 0.35;
            k.jumpProb = 0.15;
            k.privateKB = 4096;
            k.sharedFrac = 0.2;
            a.kernels.push_back(k);
        }
        apps.push_back(a);
    }

    {
        // 657.xz_s.2: 4-threaded, barrier-free (single kernel
        // instance), heavily imbalanced — the paper's example of
        // non-homogeneous thread behavior (Fig. 3) and of constrained
        // replay going wrong (19.6% error).
        AppDescriptor a;
        a.name = "657.xz_s.2";
        a.language = "C";
        a.kloc = 33;
        a.area = "General data compression";
        a.threadsOverride = 4;
        a.timesteps = 1;
        {
            auto k = makeKernel("xz_read_input", SchedPolicy::Serial,
                                9000, 2, 48, 0.35, 0.0);
            k.condProb = 0.3;
            k.privateKB = 2048;
            a.kernels.push_back(k);
        }
        for (int i = 0; i < 2; ++i) {
            auto k = makeKernel(strFormat("lzma_worker_%d", i),
                                SchedPolicy::DynamicFor, 40000, 2, 56,
                                0.35, 0.0);
            k.chunkSize = 64;
            k.condProb = 0.35;
            k.jumpProb = 0.15;
            k.privateKB = 4096;
            k.sharedFrac = 0.25;
            k.imbalance = 0.8;
            a.kernels.push_back(k);
        }
        apps.push_back(a);
    }

    return apps;
}

std::vector<AppDescriptor>
buildNpbApps()
{
    std::vector<AppDescriptor> apps;

    auto add = [&](AppDescriptor a) { apps.push_back(std::move(a)); };

    {
        AppDescriptor a;
        a.name = "npb-bt";
        a.suite = Suite::NpbOmp;
        a.language = "F";
        a.kloc = 9;
        a.area = "Block tri-diagonal solver";
        a.timesteps = 25;
        const char *names[5] = {"x_solve", "y_solve", "z_solve",
                                "compute_rhs", "add"};
        for (int i = 0; i < 5; ++i) {
            auto k = makeKernel(names[i], SchedPolicy::StaticFor, 800,
                                3, 52, 0.4, 0.55);
            k.sharedMB = 20;
            a.kernels.push_back(k);
        }
        add(a);
    }

    {
        AppDescriptor a;
        a.name = "npb-cg";
        a.suite = Suite::NpbOmp;
        a.language = "F";
        a.kloc = 2;
        a.area = "Conjugate gradient";
        a.timesteps = 40;
        auto spmv = makeKernel("spmv", SchedPolicy::StaticFor, 1500, 2,
                               46, 0.5, 0.4);
        spmv.jumpProb = 0.3; // indirect accesses
        spmv.sharedMB = 40;
        spmv.useReduction = true;
        a.kernels.push_back(spmv);
        auto axpy = makeKernel("axpy", SchedPolicy::StaticFor, 1200, 1,
                               40, 0.5, 0.5);
        axpy.sharedMB = 24;
        a.kernels.push_back(axpy);
        add(a);
    }

    {
        AppDescriptor a;
        a.name = "npb-ep";
        a.suite = Suite::NpbOmp;
        a.language = "F";
        a.kloc = 1;
        a.area = "Embarrassingly parallel";
        a.timesteps = 1;
        // One long parallel region; lots of compute per byte touched,
        // so the compulsory-miss transient is a tiny fraction of the
        // run (as in the real benchmark).
        auto k = makeKernel("gaussian_pairs", SchedPolicy::StaticFor,
                            100000, 2, 64, 0.15, 0.6);
        k.innerTrips = 2;
        k.privateKB = 64;
        k.sharedMB = 2;
        // Random-number-driven accesses: stationary, position-free
        // memory behavior (every slice looks alike, as in real EP).
        k.jumpProb = 1.0;
        k.sharedFrac = 0.05;
        // EP is embarrassingly parallel: threads only meet in the
        // final sum reduction (no per-iteration locking).
        k.useReduction = true;
        a.kernels.push_back(k);
        add(a);
    }

    {
        AppDescriptor a;
        a.name = "npb-ft";
        a.suite = Suite::NpbOmp;
        a.language = "F";
        a.kloc = 1;
        a.area = "3-D FFT";
        a.timesteps = 12;
        const char *names[3] = {"fftz_x", "fftz_y", "fftz_z"};
        for (int i = 0; i < 3; ++i) {
            auto k = makeKernel(names[i], SchedPolicy::StaticFor, 2000,
                                2, 56, 0.4, 0.55);
            k.sharedMB = 48;
            k.strideBytes = i == 0 ? 8 : 256; // transposed passes
            a.kernels.push_back(k);
        }
        add(a);
    }

    {
        AppDescriptor a;
        a.name = "npb-is";
        a.suite = Suite::NpbOmp;
        a.language = "C";
        a.kloc = 1;
        a.area = "Integer sort";
        a.timesteps = 15;
        auto rank = makeKernel("rank", SchedPolicy::StaticFor, 4000, 2,
                               40, 0.5, 0.0);
        rank.jumpProb = 0.4; // histogram scatter
        rank.sharedMB = 32;
        rank.useAtomic = true;
        a.kernels.push_back(rank);
        add(a);
    }

    {
        AppDescriptor a;
        a.name = "npb-lu";
        a.suite = Suite::NpbOmp;
        a.language = "F";
        a.kloc = 6;
        a.area = "LU decomposition";
        a.timesteps = 30;
        const char *names[6] = {"jacld", "blts", "jacu", "buts",
                                "rhs", "l2norm"};
        for (int i = 0; i < 6; ++i) {
            auto k = makeKernel(names[i], SchedPolicy::StaticFor, 500,
                                3, 44, 0.4, 0.5);
            k.sharedMB = 16;
            if (i == 5)
                k.useReduction = true;
            a.kernels.push_back(k);
        }
        add(a);
    }

    {
        AppDescriptor a;
        a.name = "npb-mg";
        a.suite = Suite::NpbOmp;
        a.language = "F";
        a.kloc = 3;
        a.area = "Multi-grid";
        a.timesteps = 20;
        const char *names[4] = {"resid", "psinv", "rprj3", "interp"};
        for (int i = 0; i < 4; ++i) {
            auto k = makeKernel(names[i], SchedPolicy::StaticFor, 1000,
                                2, 52, 0.45, 0.5);
            // Multigrid levels: footprints vary widely across kernels.
            k.sharedMB = 64 >> (i * 2 < 6 ? i * 2 : 6);
            a.kernels.push_back(k);
        }
        add(a);
    }

    {
        AppDescriptor a;
        a.name = "npb-sp";
        a.suite = Suite::NpbOmp;
        a.language = "F";
        a.kloc = 5;
        a.area = "Scalar penta-diagonal solver";
        a.timesteps = 30;
        const char *names[5] = {"x_solve", "y_solve", "z_solve",
                                "compute_rhs", "txinvr"};
        for (int i = 0; i < 5; ++i) {
            auto k = makeKernel(names[i], SchedPolicy::StaticFor, 600,
                                3, 46, 0.4, 0.55);
            k.sharedMB = 20;
            a.kernels.push_back(k);
        }
        add(a);
    }

    {
        AppDescriptor a;
        a.name = "npb-ua";
        a.suite = Suite::NpbOmp;
        a.language = "F";
        a.kloc = 10;
        a.area = "Unstructured adaptive mesh";
        a.timesteps = 18;
        for (int i = 0; i < 6; ++i) {
            auto k = makeKernel(strFormat("diffusion_%d", i),
                                i % 2 ? SchedPolicy::DynamicFor
                                      : SchedPolicy::StaticFor,
                                700, 2, 44, 0.4, 0.45);
            k.chunkSize = 8;
            k.jumpProb = 0.15;
            k.useAtomic = (i % 3 == 0);
            a.kernels.push_back(k);
        }
        add(a);
    }

    return apps;
}

std::vector<AppDescriptor>
buildPthreadApps()
{
    std::vector<AppDescriptor> apps;

    {
        // A software pipeline: irregular stage with a contended input
        // queue (lock), then an independent compute stage. No
        // OpenMP-style static partitioning discipline at all.
        AppDescriptor a;
        a.name = "pt-pipeline";
        a.suite = Suite::PthreadLike;
        a.language = "C";
        a.kloc = 4;
        a.area = "Lock-based software pipeline";
        // Batch-granularity locking: threads take the queue lock once
        // per batch refill, then decode a batch worth of items. A
        // per-item global lock saturates 8 threads and its convoy
        // dynamics are runtime-dependent behavior outside the
        // methodology's applicability (paper Section III-K).
        a.timesteps = 40;
        auto refill = makeKernel("refill_batches",
                                 SchedPolicy::DynamicFor, 48, 2, 40,
                                 0.35, 0.0);
        refill.chunkSize = 1;
        refill.sharedMB = 2;
        refill.useCritical = true;
        a.kernels.push_back(refill);
        auto decode = makeKernel("decode_transform",
                                 SchedPolicy::DynamicFor, 1400, 3, 64,
                                 0.35, 0.3);
        decode.chunkSize = 4;
        decode.condProb = 0.3;
        decode.sharedMB = 2;
        decode.jumpProb = 0.2;
        a.kernels.push_back(decode);
        apps.push_back(a);
    }

    {
        // A work-queue application: tasks claimed one at a time from a
        // shared queue (dynamic-for, chunk 1), results merged through
        // atomics. Heterogeneous task sizes via a conditional.
        AppDescriptor a;
        a.name = "pt-workqueue";
        a.suite = Suite::PthreadLike;
        a.language = "C++";
        a.kloc = 7;
        a.area = "Task queue with atomics";
        a.timesteps = 6;
        // Unit-size task claiming stays cheap relative to the task
        // body (inner loop), so the shared counter is contended but
        // not the bottleneck.
        auto k = makeKernel("worker_loop", SchedPolicy::DynamicFor,
                            800, 2, 90, 0.35, 0.2);
        k.chunkSize = 1;
        k.condProb = 0.4;
        k.innerTrips = 16;
        k.jumpProb = 0.1;
        k.useAtomic = true;
        a.kernels.push_back(k);
        apps.push_back(a);
    }

    {
        // A lock-chained update application (hash-table style):
        // short critical sections on two locks, imbalanced threads.
        AppDescriptor a;
        a.name = "pt-lockchain";
        a.suite = Suite::PthreadLike;
        a.language = "C";
        a.kloc = 3;
        a.area = "Concurrent table updates";
        a.timesteps = 20;
        for (int i = 0; i < 2; ++i) {
            auto k = makeKernel(strFormat("update_shard_%d", i),
                                SchedPolicy::StaticFor, 1200, 3, 56,
                                0.45, 0.0);
            k.jumpProb = 0.25;
            k.useCritical = true;
            k.imbalance = i == 1 ? 0.6 : 0.0;
            a.kernels.push_back(k);
        }
        apps.push_back(a);
    }

    return apps;
}

AppDescriptor
buildDemoApp()
{
    AppDescriptor a;
    a.name = "demo-matrix";
    a.suite = Suite::Demo;
    a.language = "C";
    a.kloc = 1;
    a.area = "Demo: blocked matrix multiply";
    a.timesteps = 10;
    auto k = makeKernel("matmul_tile", SchedPolicy::StaticFor, 600, 2,
                        48, 0.4, 0.5);
    k.innerTrips = 4;
    k.sharedMB = 4;
    a.kernels.push_back(k);
    return a;
}

} // namespace

const std::vector<AppDescriptor> &
spec2017Apps()
{
    static const std::vector<AppDescriptor> apps = buildSpecApps();
    return apps;
}

const std::vector<AppDescriptor> &
npbApps()
{
    static const std::vector<AppDescriptor> apps = buildNpbApps();
    return apps;
}

const std::vector<AppDescriptor> &
pthreadApps()
{
    static const std::vector<AppDescriptor> apps = buildPthreadApps();
    return apps;
}

const AppDescriptor &
demoMatrixApp()
{
    static const AppDescriptor app = buildDemoApp();
    return app;
}

const AppDescriptor &
findApp(const std::string &name)
{
    for (const auto &a : spec2017Apps())
        if (a.name == name)
            return a;
    for (const auto &a : npbApps())
        if (a.name == name)
            return a;
    for (const auto &a : pthreadApps())
        if (a.name == name)
            return a;
    if (demoMatrixApp().name == name)
        return demoMatrixApp();
    fatal("unknown application '%s'", name.c_str());
}

std::string
resolveArtifactProgram(const std::string &prog)
{
    auto dash1 = prog.find('-');
    auto dash2 = prog.rfind('-');
    if (dash1 == std::string::npos || dash2 == dash1)
        fatal("program '%s' is not of the form "
              "<suite>-<application>-<input-num>", prog.c_str());
    std::string suite = prog.substr(0, dash1);
    std::string app = prog.substr(dash1 + 1, dash2 - dash1 - 1);
    std::string input_num = prog.substr(dash2 + 1);

    if (suite == "demo")
        return "demo-matrix";
    if (suite == "npb")
        return "npb-" + app;
    if (suite == "pt")
        return "pt-" + app;
    if (suite == "spec") {
        // Accept either the numbered name (spec-638.imagick_s-1) or
        // the short name (spec-imagick-1).
        for (const auto &d : spec2017Apps()) {
            if (d.name == app + "." + input_num)
                return d.name;
            // short form: match ".<short>_s.<num>"
            std::string needle = "." + app + "_s." + input_num;
            if (d.name.size() > needle.size() &&
                d.name.compare(d.name.size() - needle.size(),
                               needle.size(), needle) == 0)
                return d.name;
        }
        fatal("unknown SPEC program '%s'", prog.c_str());
    }
    fatal("unknown suite '%s' (expected demo, spec, npb, or pt)",
          suite.c_str());
}

InputClass
resolveInputClass(const std::string &name)
{
    if (name == "test")
        return InputClass::Test;
    if (name == "train")
        return InputClass::Train;
    if (name == "ref")
        return InputClass::Ref;
    if (name == "A")
        return InputClass::NpbA;
    if (name == "C")
        return InputClass::NpbC;
    if (name == "D")
        return InputClass::NpbD;
    fatal("unknown input class '%s'", name.c_str());
}

} // namespace looppoint
