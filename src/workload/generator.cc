#include "workload/descriptor.hh"

#include <algorithm>
#include <cmath>

#include "isa/program_builder.hh"
#include "util/logging.hh"

namespace looppoint {

std::string_view
inputClassName(InputClass c)
{
    switch (c) {
      case InputClass::Test: return "test";
      case InputClass::Train: return "train";
      case InputClass::Ref: return "ref";
      case InputClass::NpbA: return "A";
      case InputClass::NpbC: return "C";
      case InputClass::NpbD: return "D";
      default: return "?";
    }
}

ClassScale
classScale(InputClass c)
{
    switch (c) {
      case InputClass::Test: return {0.25, 0.2};
      case InputClass::Train: return {1.0, 1.0};
      case InputClass::Ref: return {3.0, 20.0};
      case InputClass::NpbA: return {0.5, 0.5};
      case InputClass::NpbC: return {1.0, 1.0};
      case InputClass::NpbD: return {4.0, 8.0};
      default: return {1.0, 1.0};
    }
}

SyncUse
AppDescriptor::declaredSync() const
{
    SyncUse u;
    for (const auto &k : kernels) {
        u.staticFor |= (k.sched == SchedPolicy::StaticFor);
        u.dynamicFor |= (k.sched == SchedPolicy::DynamicFor);
        u.barrier = true; // implicit end-of-region barriers
        u.atomic |= k.useAtomic;
        u.lock |= k.useCritical;
        u.reduction |= k.useReduction;
        u.master |= k.useMaster;
        u.single |= k.useSingle;
    }
    return u;
}

namespace {

/** Memory-op stream pattern for a block: mix of shared and private. */
std::vector<uint8_t>
streamPattern(double shared_frac, uint8_t shared_id, uint8_t priv_id)
{
    std::vector<uint8_t> pattern;
    int shared_slots =
        static_cast<int>(std::lround(shared_frac * 8.0));
    shared_slots = std::clamp(shared_slots, 0, 8);
    for (int i = 0; i < 8; ++i)
        pattern.push_back(i < shared_slots ? shared_id : priv_id);
    return pattern;
}

void
lowerKernel(ProgramBuilder &b, const KernelDesc &kd, uint64_t iters,
            uint32_t lock_id)
{
    b.beginKernel(kd.name, kd.sched, iters, kd.chunkSize);

    MemStream shared;
    shared.footprintBytes = std::max<uint64_t>(64, kd.sharedMB << 20);
    shared.strideBytes = kd.strideBytes;
    shared.jumpProb = kd.jumpProb;
    shared.shared = true;
    uint8_t s_shared = b.addStream(shared);

    MemStream priv;
    priv.footprintBytes = std::max<uint64_t>(64, kd.privateKB << 10);
    priv.strideBytes = kd.strideBytes;
    priv.jumpProb = kd.jumpProb;
    priv.shared = false;
    uint8_t s_priv = b.addStream(priv);

    auto pattern = streamPattern(kd.sharedFrac, s_shared, s_priv);

    if (kd.useMaster || kd.useSingle) {
        BlockSpec prologue;
        prologue.numInstrs = 24;
        prologue.fracMem = 0.25;
        prologue.streams = {s_priv};
        b.setMasterPrologue(prologue, kd.useSingle);
    }
    if (kd.imbalance > 0.0)
        b.setImbalance(kd.imbalance);

    BlockSpec body;
    body.numInstrs = kd.instrsPerBlock;
    body.fracMem = kd.fracMem;
    body.fracFp = kd.fracFp;
    body.ilp = kd.ilp;
    body.streams = pattern;

    uint32_t plain_blocks = kd.numBodyBlocks;
    if (kd.innerTrips > 0 && plain_blocks > 0)
        --plain_blocks; // one block moves inside the inner loop
    for (uint32_t i = 0; i < plain_blocks; ++i)
        b.addBlock(body);

    if (kd.condProb > 0.0) {
        BlockSpec cond;
        cond.numInstrs = 8;
        cond.fracMem = 0.2;
        cond.streams = {s_priv};
        BlockSpec then_blk = body;
        then_blk.numInstrs = std::max(8u, kd.instrsPerBlock / 2);
        BlockSpec else_blk = body;
        else_blk.numInstrs = std::max(8u, kd.instrsPerBlock / 3);
        else_blk.fracMem = kd.fracMem * 0.5;
        BlockSpec join;
        join.numInstrs = 6;
        join.fracMem = 0.1;
        join.streams = {s_priv};
        b.addCond(cond, then_blk, else_blk, join, kd.condProb);
    }

    if (kd.innerTrips > 0) {
        b.beginInnerLoop(kd.innerTrips, kd.innerJitter);
        b.addBlock(body);
        b.endInnerLoop();
    }

    if (kd.useAtomic) {
        BlockSpec atomic_blk;
        atomic_blk.numInstrs = 6;
        atomic_blk.fracMem = 0.3;
        atomic_blk.streams = {s_shared};
        b.addAtomic(atomic_blk);
    }

    if (kd.useCritical) {
        BlockSpec cs;
        cs.numInstrs = 18;
        cs.fracMem = 0.4;
        cs.streams = {s_shared};
        b.addCritical(lock_id, cs);
    }

    if (kd.useReduction) {
        BlockSpec merge;
        merge.numInstrs = 10;
        merge.fracMem = 0.3;
        merge.streams = {s_shared};
        b.setReduction(merge);
    }

    b.endKernel();
}

} // namespace

Program
generateProgram(const AppDescriptor &app, InputClass input)
{
    ClassScale scale = classScale(input);
    std::string prog_name =
        app.name + "." + std::string(inputClassName(input));
    ProgramBuilder b(prog_name, hashString(app.name));
    b.setNumLocks(2);

    std::vector<uint32_t> built;
    for (const auto &kd : app.kernels) {
        auto iters = static_cast<uint64_t>(
            std::max(1.0, static_cast<double>(kd.itersPerInstance) *
                              scale.itersMul));
        uint32_t lock_id =
            static_cast<uint32_t>(built.size()) % 2;
        lowerKernel(b, kd, iters, lock_id);
        built.push_back(static_cast<uint32_t>(built.size()));
    }

    if (!app.prologueKernels.empty())
        b.runKernels(app.prologueKernels, 1);

    std::vector<uint32_t> main_loop = app.mainLoopKernels;
    if (main_loop.empty()) {
        for (uint32_t i = 0; i < built.size(); ++i) {
            bool in_prologue =
                std::find(app.prologueKernels.begin(),
                          app.prologueKernels.end(),
                          i) != app.prologueKernels.end();
            if (!in_prologue)
                main_loop.push_back(i);
        }
    }
    auto steps = static_cast<uint64_t>(std::max(
        1.0, static_cast<double>(app.timesteps) * scale.stepsMul));
    b.runKernels(main_loop, steps);

    return b.build();
}

} // namespace looppoint
