/**
 * @file
 * Example: compare the three sampling methodologies this library
 * implements — LoopPoint, BarrierPoint, and naive multi-threaded
 * SimPoint — plus the time-based-sampling baseline on one workload,
 * under the active wait policy where the differences matter most.
 */

#include <cstdio>
#include <string>

#include "baselines/barrierpoint.hh"
#include "baselines/naive_simpoint.hh"
#include "baselines/time_sampling.hh"
#include "core/experiment.hh"
#include "util/logging.hh"
#include "util/stats.hh"

using namespace looppoint;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "644.nab_s.1";
    const AppDescriptor &app = findApp(name);
    const uint32_t threads = app.effectiveThreads(8);
    Program prog = generateProgram(app, InputClass::Train);
    SimConfig sim_cfg;

    std::printf("methodology comparison on %s (train, %u threads, "
                "active wait)\n\n", name.c_str(), threads);

    // Ground truth.
    ExecConfig ecfg;
    ecfg.numThreads = threads;
    ecfg.waitPolicy = WaitPolicy::Active;
    MulticoreSim full_sim(prog, ecfg, sim_cfg);
    SimMetrics full = full_sim.run();
    std::printf("%-18s runtime %.6f s (ground truth)\n\n",
                "full detailed:", full.runtimeSeconds);

    // LoopPoint.
    {
        ExperimentConfig cfg;
        cfg.app = name;
        cfg.input = InputClass::Train;
        cfg.requestedThreads = threads;
        cfg.waitPolicy = WaitPolicy::Active;
        ExperimentResult r = runExperiment(cfg);
        std::printf("%-18s %2u regions, err %5.2f%%, theoretical "
                    "%.0fx parallel speedup\n",
                    "LoopPoint:", r.analysis.chosenK,
                    r.runtimeErrorPct, r.theoreticalParallelSpeedup);
    }

    // BarrierPoint (analysis-only: region sizes + theoretical gain).
    {
        BarrierPointOptions opts;
        opts.numThreads = threads;
        opts.waitPolicy = WaitPolicy::Active;
        BarrierPointResult bp = analyzeBarrierPoint(prog, opts);
        std::printf("%-18s %2u regions, largest region %.1fM "
                    "instructions, theoretical %.0fx parallel\n",
                    "BarrierPoint:", bp.chosenK,
                    static_cast<double>(bp.largestRegionIcount()) / 1e6,
                    bp.theoreticalParallelSpeedup());
    }

    // Naive MT-SimPoint.
    {
        NaiveSimpointOptions opts;
        opts.numThreads = threads;
        opts.waitPolicy = WaitPolicy::Active;
        opts.sliceSizeGlobal =
            static_cast<uint64_t>(threads) * 100'000;
        NaiveSimpointResult analysis =
            analyzeNaiveSimpoint(prog, opts);
        std::vector<SimMetrics> regions;
        for (const auto &r : analysis.regions)
            regions.push_back(
                simulateNaiveRegion(prog, opts, r, sim_cfg));
        double predicted =
            extrapolateNaiveRuntime(analysis, regions);
        std::printf("%-18s %2u regions, err %5.2f%% (icount "
                    "boundaries are unstable under spinning)\n",
                    "naive SimPoint:", analysis.chosenK,
                    absRelErrorPct(predicted, full.runtimeSeconds));
    }

    // Time-based sampling.
    {
        TimeSamplingOptions opts;
        opts.numThreads = threads;
        opts.waitPolicy = WaitPolicy::Active;
        TimeSamplingResult ts = runTimeSampling(prog, opts, sim_cfg);
        std::printf("%-18s %llu windows, err %5.2f%%, but visits the "
                    "whole program (%.0f%% detailed)\n",
                    "time-based:",
                    static_cast<unsigned long long>(ts.detailedWindows),
                    absRelErrorPct(ts.predictedRuntimeSeconds,
                                   full.runtimeSeconds),
                    ts.detailFraction() * 100.0);
    }
    return 0;
}
