/**
 * @file
 * Example: bring your own workload. Builds a custom multi-threaded
 * program directly with ProgramBuilder — a producer/consumer-style
 * pipeline with a dynamic-for stage, a critical section, and an
 * imbalanced static stage — then samples it with LoopPoint.
 *
 * This is the path a user takes to evaluate an application that is
 * not part of the bundled SPEC/NPB analogs (the paper's "one can
 * integrate any multi-threaded application in a similar fashion").
 */

#include <cstdio>

#include "core/looppoint.hh"
#include "isa/program_builder.hh"
#include "util/logging.hh"

using namespace looppoint;

namespace {

Program
buildPipelineApp()
{
    ProgramBuilder b("my-pipeline-app", /*seed=*/2026);

    // Stage 1: irregular decode stage, dynamically scheduled.
    uint32_t decode =
        b.beginKernel("decode", SchedPolicy::DynamicFor, 3000, 8);
    uint8_t s_in = b.addStream({.footprintBytes = 16u << 20,
                                .strideBytes = 64,
                                .jumpProb = 0.2,
                                .shared = true});
    uint8_t s_tmp = b.addStream({.footprintBytes = 128u << 10,
                                 .strideBytes = 8});
    b.addBlock({.numInstrs = 48,
                .fracMem = 0.4,
                .streams = {s_in, s_tmp}});
    b.addCond({.numInstrs = 8, .streams = {s_tmp}},
              {.numInstrs = 30, .fracMem = 0.3, .streams = {s_tmp}},
              {.numInstrs = 12, .fracMem = 0.2, .streams = {s_tmp}},
              {.numInstrs = 6, .streams = {}}, /*p=*/0.35);
    b.addCritical(0, {.numInstrs = 14, .fracMem = 0.5,
                      .streams = {s_in}});
    b.endKernel();

    // Stage 2: compute stage with an inner loop and fp work,
    // statically scheduled but imbalanced.
    uint32_t compute =
        b.beginKernel("compute", SchedPolicy::StaticFor, 2000);
    uint8_t s_grid = b.addStream({.footprintBytes = 32u << 20,
                                  .strideBytes = 16,
                                  .shared = true});
    b.setImbalance(0.5);
    b.beginInnerLoop(/*trips=*/8, /*jitter=*/2);
    b.addBlock({.numInstrs = 40,
                .fracMem = 0.35,
                .fracFp = 0.6,
                .streams = {s_grid}});
    b.endInnerLoop();
    b.endKernel();

    // 20 timesteps of decode -> compute.
    b.runKernels({decode, compute}, 20);
    return b.build();
}

} // namespace

int
main()
{
    Program prog = buildPipelineApp();
    prog.validate();
    std::printf("custom app '%s': %zu blocks, %zu kernels, ~%.1fM "
                "instructions of work\n",
                prog.name.c_str(), prog.numBlocks(),
                prog.kernels.size(),
                static_cast<double>(prog.estimateWorkInstrs(8)) / 1e6);

    LoopPointOptions opts;
    opts.numThreads = 8;
    opts.waitPolicy = WaitPolicy::Active; // spiky spin behavior
    opts.sliceSizePerThread = 50'000;

    LoopPointPipeline pipe(prog, opts);
    LoopPointResult lp = pipe.analyze();
    std::printf("analysis: %zu slices -> %u looppoints\n",
                lp.slices.size(), lp.chosenK);

    SimConfig sim_cfg;
    std::vector<SimMetrics> metrics;
    for (const auto &r : lp.regions)
        metrics.push_back(pipe.simulateRegion(lp, r, sim_cfg));
    MetricPrediction pred = extrapolateMetrics(lp, metrics, sim_cfg);
    SimMetrics full = pipe.simulateFull(sim_cfg);

    std::printf("predicted runtime %.6f s vs measured %.6f s "
                "(%.2f%% error), %.1fx parallel speedup\n",
                pred.runtimeSeconds, full.runtimeSeconds,
                (pred.runtimeSeconds - full.runtimeSeconds) /
                    full.runtimeSeconds * 100.0,
                lp.theoreticalParallelSpeedup());
    return 0;
}
