/**
 * @file
 * Quickstart: run the complete LoopPoint flow on the bundled demo
 * application (the analog of the artifact's
 * `./run-looppoint.py -p demo-matrix-1 -n 8 --force`).
 *
 * Steps shown:
 *  1. pick a workload and generate its program,
 *  2. run the LoopPoint analysis (record -> profile -> cluster),
 *  3. simulate every looppoint plus the full application,
 *  4. extrapolate and compare.
 */

#include <cstdio>

#include "core/experiment.hh"

using namespace looppoint;

int
main()
{
    ExperimentConfig cfg;
    cfg.app = "demo-matrix";
    cfg.input = InputClass::Train;
    cfg.requestedThreads = 8;
    cfg.waitPolicy = WaitPolicy::Passive;
    cfg.loopPoint.sliceSizePerThread = 20'000;

    std::printf("LoopPoint quickstart: %s (%u threads, passive)\n",
                cfg.app.c_str(), cfg.requestedThreads);
    std::printf("---------------------------------------------------\n");

    ExperimentResult r = runExperiment(cfg);

    std::printf("slices profiled      : %zu\n", r.analysis.slices.size());
    std::printf("clusters chosen (k)  : %u\n", r.analysis.chosenK);
    std::printf("looppoints selected  : %zu\n",
                r.analysis.regions.size());
    for (const auto &region : r.analysis.regions) {
        std::printf("  region %2u: start=(%#llx,%llu) "
                    "end=(%#llx,%llu) icount=%llu mult=%.2f\n",
                    region.cluster,
                    static_cast<unsigned long long>(region.start.pc),
                    static_cast<unsigned long long>(region.start.count),
                    static_cast<unsigned long long>(region.end.pc),
                    static_cast<unsigned long long>(region.end.count),
                    static_cast<unsigned long long>(region.filteredIcount),
                    region.multiplier);
    }

    std::printf("\npredicted runtime    : %.6f s\n",
                r.predicted.runtimeSeconds);
    std::printf("measured runtime     : %.6f s (full simulation)\n",
                r.fullSim.runtimeSeconds);
    std::printf("runtime error        : %.2f %%\n", r.runtimeErrorPct);
    std::printf("theoretical speedup  : %.1fx serial, %.1fx parallel\n",
                r.theoreticalSerialSpeedup,
                r.theoreticalParallelSpeedup);
    std::printf("actual speedup       : %.1fx serial, %.1fx parallel\n",
                r.actualSerialSpeedup, r.actualParallelSpeedup);
    return 0;
}
