/**
 * @file
 * Example: the checkpoint-sharing workflow the paper's title is about.
 *
 * Machine A (has the workload): analyze once, export each looppoint as
 * a shareable artifact — a RegionPinball (tiny recipe, restored by
 * deterministic replay) and an ELFie (positioned execution state,
 * restored in O(state)).
 *
 * Machine B (has only the artifacts): load them, simulate each region
 * on its own microarchitecture, extrapolate with the embedded Eq.-2
 * multipliers — no access to the original program run needed.
 *
 * Here both "machines" are this process, with the artifacts round-
 * tripped through files in the working directory.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/region_checkpoint.hh"
#include "util/logging.hh"

using namespace looppoint;

int
main()
{
    const char *app_name = "628.pop2_s.1";
    const AppDescriptor &app = findApp(app_name);
    const uint32_t threads = app.effectiveThreads(8);

    // ---- Machine A: analyze and export --------------------------------
    Program prog = generateProgram(app, InputClass::Train);
    LoopPointOptions opts;
    opts.numThreads = threads;
    LoopPointPipeline pipe(prog, opts);
    LoopPointResult lp = pipe.analyze();
    std::printf("[A] analyzed %s: %zu slices -> %u looppoints\n",
                app_name, lp.slices.size(), lp.chosenK);

    auto pinballs =
        exportRegionPinballs(app, InputClass::Train, opts, lp);
    std::vector<std::string> files;
    for (size_t i = 0; i < pinballs.size(); ++i) {
        std::string path = strFormat("region_%02zu.pinball", i);
        std::ofstream os(path);
        pinballs[i].save(os);
        files.push_back(path);
    }
    std::printf("[A] exported %zu region pinballs (plus one ELFie "
                "demo)\n", files.size());

    // One ELFie for the hottest region, to show the O(1)-restore path.
    size_t hottest = 0;
    for (size_t i = 0; i < pinballs.size(); ++i)
        if (pinballs[i].multiplier > pinballs[hottest].multiplier)
            hottest = i;
    {
        std::ofstream os("region_hot.elfie");
        saveElfie(os, pinballs[hottest]);
    }

    // ---- Machine B: load and simulate ---------------------------------
    SimConfig target; // could be any microarchitecture
    std::vector<SimMetrics> metrics;
    std::vector<RegionPinball> loaded;
    for (const auto &path : files) {
        std::ifstream is(path);
        loaded.push_back(RegionPinball::load(is));
        metrics.push_back(
            simulateRegionPinball(loaded.back(), target));
    }
    std::printf("[B] simulated %zu regions from the artifacts\n",
                metrics.size());

    double runtime = 0.0;
    for (size_t i = 0; i < metrics.size(); ++i)
        runtime += metrics[i].runtimeSeconds * loaded[i].multiplier;
    std::printf("[B] extrapolated runtime: %.6f s\n", runtime);

    // ELFie restore: positioned state, no prefix replay.
    {
        std::ifstream is("region_hot.elfie");
        RestoredElfie elfie = loadElfie(is);
        std::printf("[B] ELFie restored at %llu instructions executed "
                    "(region multiplier %.2f)\n",
                    static_cast<unsigned long long>(
                        elfie.engine.globalIcount()),
                    elfie.multiplier);
    }

    // Cross-check against a direct full simulation (Machine A's view).
    SimMetrics full = pipe.simulateFull(target);
    std::printf("\ncheck: direct full simulation %.6f s "
                "(extrapolation error %.2f%%)\n",
                full.runtimeSeconds,
                (runtime - full.runtimeSeconds) /
                    full.runtimeSeconds * 100.0);
    for (const auto &path : files)
        std::remove(path.c_str());
    std::remove("region_hot.elfie");
    return 0;
}
