/**
 * @file
 * Example: sample one SPEC CPU2017 analog end to end and inspect every
 * intermediate artifact of the methodology — the pinball, the DCFG
 * loops, the slice profile, the clustering, the selected looppoints,
 * and the final prediction vs. the full-simulation ground truth.
 *
 * Usage: sample_spec_app [app-name] [threads]
 *   e.g. sample_spec_app 638.imagick_s.1 8
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/looppoint.hh"
#include "dcfg/dcfg.hh"
#include "exec/driver.hh"
#include "util/logging.hh"
#include "workload/descriptor.hh"

using namespace looppoint;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "628.pop2_s.1";
    uint32_t requested =
        argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 8;

    const AppDescriptor &app = findApp(name);
    const uint32_t threads = app.effectiveThreads(requested);
    Program prog = generateProgram(app, InputClass::Train);

    std::printf("== %s (train, %u threads) ==\n", name.c_str(),
                threads);
    std::printf("%s, %u KLOC, %s\n", app.language.c_str(), app.kloc,
                app.area.c_str());
    std::printf("kernels: %zu, run-list entries: %zu, est. work: "
                "%.1fM instructions\n\n",
                prog.kernels.size(), prog.runList.size(),
                static_cast<double>(prog.estimateWorkInstrs(threads)) /
                    1e6);

    // Step 1: the reproducible-analysis substrate.
    ExecConfig ecfg;
    ecfg.numThreads = threads;
    Pinball pinball = recordPinball(prog, ecfg);
    std::printf("[1] recorded pinball: %zu lock events, %zu dynamic "
                "chunk grants\n",
                pinball.log.lockOrder.empty()
                    ? 0
                    : pinball.log.lockOrder[0].size(),
                [&] {
                    size_t n = 0;
                    for (const auto &row : pinball.log.chunkOrder)
                        n += row.size();
                    return n;
                }());

    // Step 2: DCFG loops.
    DcfgBuilder dcfg_builder(prog, threads);
    replayPinball(prog, pinball, 1000, &dcfg_builder);
    Dcfg dcfg = dcfg_builder.build();
    auto markers = dcfg.mainImageLoopHeaders();
    std::printf("[2] DCFG: %zu loops, %zu legal main-image markers\n",
                dcfg.loops().size(), markers.size());

    // Step 3-4: full pipeline.
    LoopPointOptions opts;
    opts.numThreads = threads;
    LoopPointPipeline pipe(prog, opts);
    LoopPointResult lp = pipe.analyze();
    std::printf("[3] profile: %zu slices of ~%llu filtered "
                "instructions\n",
                lp.slices.size(),
                static_cast<unsigned long long>(
                    opts.sliceSizePerThread * threads));
    std::printf("[4] clustering: k = %u looppoints\n", lp.chosenK);

    // Step 5: simulate and extrapolate.
    SimConfig sim_cfg;
    std::vector<SimMetrics> region_metrics;
    for (const auto &region : lp.regions) {
        region_metrics.push_back(
            pipe.simulateRegion(lp, region, sim_cfg));
        std::printf("    region %2u: mult %7.2f  IPC %.2f\n",
                    region.cluster, region.multiplier,
                    region_metrics.back().ipc());
    }
    MetricPrediction pred =
        extrapolateMetrics(lp, region_metrics, sim_cfg);
    SimMetrics full = pipe.simulateFull(sim_cfg);

    std::printf("\n[5] prediction vs full simulation:\n");
    std::printf("    runtime   : %.6f s vs %.6f s (%.2f%% error)\n",
                pred.runtimeSeconds, full.runtimeSeconds,
                (pred.runtimeSeconds - full.runtimeSeconds) /
                    full.runtimeSeconds * 100.0);
    std::printf("    branchMPKI: %.3f vs %.3f\n", pred.branchMpki(),
                full.branchMpki());
    std::printf("    L2 MPKI   : %.3f vs %.3f\n", pred.l2Mpki(),
                full.l2Mpki());
    std::printf("    speedup   : %.1fx serial / %.1fx parallel "
                "(theoretical)\n",
                lp.theoreticalSerialSpeedup(),
                lp.theoreticalParallelSpeedup());
    return 0;
}
