/**
 * @file
 * lp_store: inspect and manage a content-addressed artifact store
 * (the directory run_looppoint --store=DIR and lp_campaign write).
 *
 *   lp_store stats  DIR              entry/object/byte totals
 *   lp_store ls     DIR              one line per manifest binding
 *   lp_store verify DIR              integrity-check every object
 *   lp_store gc     DIR --max-bytes=N [--dry-run]
 *                                    shrink to N bytes, LRU first
 *
 * Exit codes follow run_looppoint's contract: 0 success, 1 findings
 * (verify found corrupt objects), 2 usage, 3 runtime failure.
 */

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "store/artifact_store.hh"
#include "util/logging.hh"

using namespace looppoint;

namespace {

void
usage()
{
    std::printf(
        "usage: lp_store <command> <dir> [options]\n"
        "  stats  DIR                 totals: entries, objects, bytes,\n"
        "                             per-stage breakdown\n"
        "  ls     DIR                 every manifest binding\n"
        "                             (stage, key, hash, bytes)\n"
        "  verify DIR                 integrity-check every object\n"
        "                             (exit 1 if any is corrupt)\n"
        "  gc     DIR --max-bytes=N   evict least-recently-used\n"
        "         [--dry-run]         objects until at most N bytes\n"
        "                             remain (orphans always go);\n"
        "                             --dry-run only reports\n");
}

int
cmdStats(ArtifactStore &store)
{
    auto entries = store.entries();
    uint64_t total_bytes = 0;
    std::map<std::string, std::pair<uint64_t, uint64_t>> by_stage;
    for (const auto &e : entries) {
        total_bytes += e.bytes;
        auto &s = by_stage[e.stage];
        s.first += 1;
        s.second += e.bytes;
    }
    std::printf("store   : %s\n", store.dir().c_str());
    std::printf("entries : %zu (%llu payload bytes)\n", entries.size(),
                static_cast<unsigned long long>(total_bytes));
    for (const auto &[stage, s] : by_stage)
        std::printf("  %-8s: %llu entr%s, %llu bytes\n", stage.c_str(),
                    static_cast<unsigned long long>(s.first),
                    s.first == 1 ? "y" : "ies",
                    static_cast<unsigned long long>(s.second));
    return 0;
}

int
cmdLs(ArtifactStore &store)
{
    for (const auto &e : store.entries())
        std::printf("%-8s %10llu  %s  %s\n", e.stage.c_str(),
                    static_cast<unsigned long long>(e.bytes),
                    e.hash.c_str(), e.key.c_str());
    return 0;
}

int
cmdVerify(ArtifactStore &store)
{
    size_t bad = store.verify();
    std::printf("verify  : %zu entr%s checked, %zu corrupt\n",
                store.entries().size(),
                store.entries().size() == 1 ? "y" : "ies", bad);
    return bad ? 1 : 0;
}

int
cmdGc(ArtifactStore &store, uint64_t max_bytes, bool dry_run)
{
    auto r = store.gc(max_bytes, dry_run);
    std::printf("%s : removed %llu object(s) (%llu bytes), kept %llu "
                "(%llu bytes), dropped %llu binding(s)\n",
                dry_run ? "gc(dry)" : "gc     ",
                static_cast<unsigned long long>(r.removedObjects),
                static_cast<unsigned long long>(r.removedBytes),
                static_cast<unsigned long long>(r.keptObjects),
                static_cast<unsigned long long>(r.keptBytes),
                static_cast<unsigned long long>(r.droppedEntries));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        usage();
        return 2;
    }
    std::string cmd = argv[1];
    std::string dir = argv[2];

    bool dry_run = false;
    uint64_t max_bytes = 0;
    bool have_max = false;
    for (int i = 3; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--dry-run") {
            dry_run = true;
        } else if (arg.rfind("--max-bytes=", 0) == 0) {
            max_bytes = std::stoull(arg.substr(strlen("--max-bytes=")));
            have_max = true;
        } else {
            logError("unknown option '%s'", arg.c_str());
            usage();
            return 2;
        }
    }

    try {
        ArtifactStore store(dir);
        if (cmd == "stats")
            return cmdStats(store);
        if (cmd == "ls")
            return cmdLs(store);
        if (cmd == "verify")
            return cmdVerify(store);
        if (cmd == "gc") {
            if (!have_max) {
                logError("gc requires --max-bytes=N");
                return 2;
            }
            return cmdGc(store, max_bytes, dry_run);
        }
        logError("unknown command '%s'", cmd.c_str());
        usage();
        return 2;
    } catch (const FatalError &e) {
        logError("lp_store: %s", e.what());
        return 3;
    }
}
