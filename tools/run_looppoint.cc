/**
 * @file
 * run-looppoint: the command-line driver, mirroring the artifact's
 * run-looppoint.py (paper appendix A.E):
 *
 *   run_looppoint -p <suite>-<application>-<input-num> [-n N]
 *                 [-i CLASS] [-w POLICY] [--force] [--native]
 *                 [--inorder] [--constrained] [--no-fullsim]
 *
 * Programs are named like the artifact (demo-matrix-1,
 * spec-bwaves-1, spec-xz-2, npb-bt-1, ...); multiple programs may be
 * given comma-separated. The tool runs profiling, region selection,
 * region simulation, (optionally) the full-application simulation, and
 * prints the estimated error and speedups — the artifact's console
 * output, end to end.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/diagnostic.hh"
#include "analysis/experiment_audit.hh"
#include "analysis/sarif.hh"
#include "core/experiment.hh"
#include "exec/driver.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/fault.hh"
#include "util/interrupt.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

using namespace looppoint;

namespace {

struct CliOptions
{
    std::vector<std::string> programs{"demo-matrix-1"};
    uint32_t ncores = 8;
    /** Host workers for the parallel phases; 0 = hardware concurrency
     * (resolved at parse time so the report shows the real width). */
    uint32_t jobs = 0;
    /** Execution backend for region simulation: "pool" or "procs". */
    std::string backend = "pool";
    /** Procs backend: SIGKILL a wedged worker after this many
     * seconds; 0 = no timeout. */
    double workerTimeout = 0.0;
    std::string inputClass = "test";
    std::string waitPolicy = "passive";
    bool native = false;
    bool inorder = false;
    bool constrained = false;
    bool fullSim = true;
    bool lint = false;
    bool raceCheck = false;
    bool lockCheck = false;
    bool audit = false;
    /** Per-pass cap on reported findings (0 = pass default). */
    uint32_t maxFindings = 0;
    /** Write analysis findings as SARIF 2.1.0 to this path. */
    std::string sarifPath;
    uint32_t regionRetries = 0;
    std::string faultSpec;
    std::string journalPath;
    bool resume = false;
    std::string tracePath;
    std::string metricsPath;
    /** Artifact-store directory; empty = no memoization. */
    std::string storeDir;
    /** Named microarchitecture preset ("" = baseline). */
    std::string uarchPreset;
};

void
usage()
{
    std::printf(
        "usage: run_looppoint [options]\n"
        "  -p, --program=LIST   comma-separated programs, each\n"
        "                       <suite>-<app>-<input-num>\n"
        "                       (default: demo-matrix-1)\n"
        "  -n, --ncores=N       number of threads (default: 8)\n"
        "  -j, --jobs=N         host workers for region simulation\n"
        "                       and clustering; 0 or omitted =\n"
        "                       auto-detect (hardware concurrency).\n"
        "                       Results are identical for any N\n"
        "      --workers=N      alias for --jobs (the region-farm\n"
        "                       vocabulary; same auto-detect rule)\n"
        "      --backend=B      execution backend for region\n"
        "                       simulation: pool (in-process thread\n"
        "                       pool, default) or procs (forked\n"
        "                       worker processes; bit-identical\n"
        "                       metrics, isolates worker crashes)\n"
        "      --worker-timeout=S  procs only: SIGKILL a worker\n"
        "                       stuck on one region for more than S\n"
        "                       seconds, then retry the region\n"
        "                       (default: 0 = no timeout)\n"
        "  -i, --input-class=C  test | train | ref | A | C | D\n"
        "                       (default: test)\n"
        "  -w, --wait-policy=P  passive | active (default: passive)\n"
        "      --native         run the application functionally only\n"
        "      --inorder        simulate an in-order core\n"
        "      --constrained    constrained (replay-ordered) regions\n"
        "      --no-fullsim     skip the full-application simulation\n"
        "      --lint           run the ProgramLint static verifier\n"
        "                       over the program and its DCFG\n"
        "      --race-check     replay with the happens-before race\n"
        "                       detector attached\n"
        "      --lock-check     replay with the lockset (Eraser-style)\n"
        "                       and lock-order deadlock detectors\n"
        "                       attached\n"
        "      --audit          after the run, statically cross-check\n"
        "                       the pipeline artifacts (markers vs.\n"
        "                       DCFG, cluster-weight closure, journal\n"
        "                       and store integrity) without\n"
        "                       re-simulating\n"
        "      --max-findings=N cap each analysis pass at N reported\n"
        "                       findings (default: pass-specific, 32)\n"
        "      --sarif=PATH     also write the analysis findings as\n"
        "                       SARIF 2.1.0 to PATH\n"
        "      --force          start a new end-to-end run (accepted\n"
        "                       for artifact compatibility; runs are\n"
        "                       always fresh here)\n"
        "      --region-retries=N  re-attempt a failed region from its\n"
        "                       checkpoint up to N times before\n"
        "                       dropping it (default: 0)\n"
        "      --journal=PATH   record completed regions in a\n"
        "                       crash-safe journal at PATH\n"
        "      --resume=PATH    resume from the journal at PATH:\n"
        "                       already-completed regions are reused,\n"
        "                       results are bit-identical to an\n"
        "                       uninterrupted run\n"
        "      --inject-fault=SPEC  deterministic fault injection, e.g.\n"
        "                       sim:region=3,kind=throw|diverge|kill\n"
        "                       [,times=M]; clauses separated by ';'\n"
        "      --trace=PATH     write a Chrome/Perfetto trace of the\n"
        "                       whole pipeline to PATH (open it in\n"
        "                       ui.perfetto.dev or chrome://tracing;\n"
        "                       inspect it with lp_report)\n"
        "      --metrics=PATH   write the metrics registry to PATH\n"
        "                       (*.txt = text, otherwise JSON)\n"
        "      --store=DIR      content-addressed artifact store at\n"
        "                       DIR: recording, profiling, clustering,\n"
        "                       region simulation and the full sim are\n"
        "                       served from the store when their stage\n"
        "                       keys hit (bit-identical) and published\n"
        "                       back when recomputed. Safe to share\n"
        "                       between concurrent runs. Manage with\n"
        "                       lp_store; sweep with lp_campaign\n"
        "      --uarch=PRESET   named microarchitecture preset\n"
        "                       (baseline, big-l2, small-rob,\n"
        "                       slow-mem, prefetch, narrow, inorder);\n"
        "                       changing it re-keys only the\n"
        "                       simulation stages of the store\n"
        "  -h, --help           this message\n"
        "\nexit codes:\n"
        "  0  success, full coverage\n"
        "  1  completed degraded (regions dropped, coverage < 1.0) or\n"
        "     analysis findings with error severity\n"
        "  2  usage error (bad flag or argument)\n"
        "  4  interrupted: SIGTERM/SIGINT (or an injected\n"
        "     kind=interrupt fault) parked the run at the next region\n"
        "     boundary; completed regions are already journaled, so a\n"
        "     rerun with --resume continues bit-identically. A third\n"
        "     signal skips the graceful stop and dies immediately\n"
        "  3  runtime failure: I/O error, corrupt artifact or journal,\n"
        "     or (injected) crash. Note the backends differ on a\n"
        "     worker crash by design: under --backend=pool a (real or\n"
        "     injected) death takes the whole run down (exit 3, resume\n"
        "     with --resume); under --backend=procs it kills one\n"
        "     worker process and the region is retried within its\n"
        "     --region-retries budget (exit 0 when recovered, 1 when\n"
        "     the region dropped). --journal/--resume compose with\n"
        "     either backend: the journal identity excludes host-side\n"
        "     knobs, so a procs run can resume a pool run's journal\n"
        "     and vice versa\n"
        "\nexamples (artifact appendix):\n"
        "  ./run_looppoint -p demo-matrix-1 -n 8 --force\n"
        "  ./run_looppoint -p demo-matrix-2,demo-matrix-3 -w active "
        "-i test --force\n"
        "  ./run_looppoint -p spec-imagick-1 -i train -n 8\n");
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos <= s.size()) {
        size_t comma = s.find(',', pos);
        if (comma == std::string::npos) {
            out.push_back(s.substr(pos));
            break;
        }
        out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

bool
parseArg(int argc, char **argv, int &i, const char *short_name,
         const char *long_name, std::string *value)
{
    std::string arg = argv[i];
    std::string long_eq = std::string(long_name) + "=";
    if (arg == short_name || arg == long_name) {
        if (i + 1 >= argc)
            fatal("option %s requires a value", arg.c_str());
        *value = argv[++i];
        return true;
    }
    if (arg.rfind(long_eq, 0) == 0) {
        *value = arg.substr(long_eq.size());
        return true;
    }
    return false;
}

CliOptions
parseCli(int argc, char **argv)
{
    CliOptions opts;
    std::string value;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            usage();
            std::exit(0);
        } else if (parseArg(argc, argv, i, "-p", "--program", &value)) {
            opts.programs = splitCommas(value);
        } else if (parseArg(argc, argv, i, "-n", "--ncores", &value)) {
            opts.ncores = static_cast<uint32_t>(std::stoul(value));
        } else if (parseArg(argc, argv, i, "-j", "--jobs", &value) ||
                   parseArg(argc, argv, i, "", "--workers", &value)) {
            opts.jobs = static_cast<uint32_t>(std::stoul(value));
        } else if (parseArg(argc, argv, i, "", "--backend", &value)) {
            opts.backend = value;
        } else if (parseArg(argc, argv, i, "", "--worker-timeout",
                            &value)) {
            opts.workerTimeout = std::stod(value);
        } else if (parseArg(argc, argv, i, "-i", "--input-class",
                            &value)) {
            opts.inputClass = value;
        } else if (parseArg(argc, argv, i, "-w", "--wait-policy",
                            &value)) {
            opts.waitPolicy = value;
        } else if (arg == "--native") {
            opts.native = true;
        } else if (arg == "--inorder") {
            opts.inorder = true;
        } else if (arg == "--constrained") {
            opts.constrained = true;
        } else if (arg == "--no-fullsim") {
            opts.fullSim = false;
        } else if (arg == "--lint") {
            opts.lint = true;
        } else if (arg == "--race-check") {
            opts.raceCheck = true;
        } else if (arg == "--lock-check") {
            opts.lockCheck = true;
        } else if (arg == "--audit") {
            opts.audit = true;
        } else if (parseArg(argc, argv, i, "", "--max-findings",
                            &value)) {
            opts.maxFindings =
                static_cast<uint32_t>(std::stoul(value));
        } else if (parseArg(argc, argv, i, "", "--sarif", &value)) {
            opts.sarifPath = value;
        } else if (parseArg(argc, argv, i, "", "--region-retries",
                            &value)) {
            opts.regionRetries =
                static_cast<uint32_t>(std::stoul(value));
        } else if (parseArg(argc, argv, i, "", "--journal", &value)) {
            opts.journalPath = value;
        } else if (parseArg(argc, argv, i, "", "--resume", &value)) {
            opts.journalPath = value;
            opts.resume = true;
        } else if (parseArg(argc, argv, i, "", "--inject-fault",
                            &value)) {
            opts.faultSpec = value;
        } else if (parseArg(argc, argv, i, "", "--trace", &value)) {
            opts.tracePath = value;
        } else if (parseArg(argc, argv, i, "", "--metrics", &value)) {
            opts.metricsPath = value;
        } else if (parseArg(argc, argv, i, "", "--store", &value)) {
            opts.storeDir = value;
        } else if (parseArg(argc, argv, i, "", "--uarch", &value)) {
            opts.uarchPreset = value;
        } else if (arg == "--force" || arg == "--reuse-profile" ||
                   arg == "--reuse-fullsim") {
            // Artifact compatibility: runs are always fresh.
        } else {
            logError("unknown option '%s'", arg.c_str());
            usage();
            std::exit(2);
        }
    }
    if (opts.waitPolicy != "passive" && opts.waitPolicy != "active")
        fatal("wait policy must be 'passive' or 'active'");
    if (opts.backend != "pool" && opts.backend != "procs")
        fatal("backend must be 'pool' or 'procs'");
    if (opts.workerTimeout < 0.0)
        fatal("--worker-timeout must be >= 0");
    // Validate the fault spec and uarch preset up front: a malformed
    // one is a usage error (exit 2), not a runtime failure.
    FaultPlan::parse(opts.faultSpec);
    if (!opts.uarchPreset.empty()) {
        SimConfig scratch;
        applyUarchPreset(scratch, opts.uarchPreset);
    }
    opts.jobs = ThreadPool::resolveWorkers(opts.jobs);
    return opts;
}

int
runNative(const std::string &app_name, const CliOptions &cli)
{
    const AppDescriptor &app = findApp(app_name);
    uint32_t threads = app.effectiveThreads(cli.ncores);
    Program prog = generateProgram(app, resolveInputClass(cli.inputClass));
    ExecConfig cfg;
    cfg.numThreads = threads;
    cfg.waitPolicy = cli.waitPolicy == "active" ? WaitPolicy::Active
                                                : WaitPolicy::Passive;
    ExecutionEngine engine(prog, cfg);
    RoundRobinDriver driver(engine, 1000);
    driver.run();
    std::printf("[native] %s: %llu instructions (%llu in the main "
                "image), %u threads\n",
                app_name.c_str(),
                static_cast<unsigned long long>(engine.globalIcount()),
                static_cast<unsigned long long>(
                    engine.globalFilteredIcount()),
                threads);
    return 0;
}

/** Findings of every program this invocation ran, for --sarif. */
std::vector<Diagnostic> g_sarifDiags;

int
runOne(const std::string &program, const CliOptions &cli)
{
    std::string app_name = resolveArtifactProgram(program);
    std::printf("==== %s (%s, input %s, %u cores, %s wait, %u jobs) "
                "====\n",
                program.c_str(), app_name.c_str(),
                cli.inputClass.c_str(), cli.ncores,
                cli.waitPolicy.c_str(), cli.jobs);
    if (cli.native)
        return runNative(app_name, cli);

    ExperimentConfig cfg;
    cfg.app = app_name;
    cfg.input = resolveInputClass(cli.inputClass);
    cfg.requestedThreads = cli.ncores;
    cfg.jobs = cli.jobs;
    cfg.waitPolicy = cli.waitPolicy == "active" ? WaitPolicy::Active
                                                : WaitPolicy::Passive;
    cfg.constrainedRegions = cli.constrained;
    cfg.simulateFull = cli.fullSim;
    if (!cli.uarchPreset.empty())
        applyUarchPreset(cfg.sim, cli.uarchPreset);
    if (cli.inorder)
        cfg.sim.coreType = CoreType::InOrder;
    cfg.sim.analysis.lint = cli.lint;
    cfg.sim.analysis.raceCheck = cli.raceCheck;
    cfg.sim.analysis.lockCheck = cli.lockCheck;
    cfg.sim.analysis.audit = cli.audit;
    cfg.sim.analysis.maxFindings = cli.maxFindings;
    cfg.sim.regionRetries = cli.regionRetries;
    cfg.sim.backend = cli.backend == "procs" ? ExecBackendKind::Procs
                                             : ExecBackendKind::Pool;
    cfg.sim.workerTimeoutSeconds = cli.workerTimeout;
    cfg.sim.faults = FaultPlan::parse(cli.faultSpec);
    cfg.sim.obs.trace = !cli.tracePath.empty();
    cfg.sim.obs.metrics = !cli.metricsPath.empty();
    cfg.journalPath = cli.journalPath;
    cfg.resume = cli.resume;
    cfg.storeDir = cli.storeDir;
    // Test-class runs are small; shrink slices so clustering has
    // enough intervals to work with (paper Sec. III-B).
    if (cfg.input == InputClass::Test)
        cfg.loopPoint.sliceSizePerThread = 25'000;

    ExperimentResult r = runExperiment(cfg);
    if (cli.audit)
        auditExperiment(cfg, r);

    std::printf("profiling      : %zu slices, %llu filtered "
                "instructions\n",
                r.analysis.slices.size(),
                static_cast<unsigned long long>(
                    r.analysis.totalFilteredIcount));
    std::printf("region selection: k = %u looppoints\n",
                r.analysis.chosenK);
    for (const auto &region : r.analysis.regions) {
        std::printf("  cluster %2u: slice %3u, start=(%#llx,%llu) "
                    "end=(%#llx,%llu) mult=%.3f\n",
                    region.cluster, region.sliceIndex,
                    static_cast<unsigned long long>(region.start.pc),
                    static_cast<unsigned long long>(region.start.count),
                    static_cast<unsigned long long>(region.end.pc),
                    static_cast<unsigned long long>(region.end.count),
                    region.multiplier);
    }
    std::printf("prediction     : runtime %.6f s\n",
                r.predicted.runtimeSeconds);
    std::printf("coverage       : %.4f (%zu of %zu regions failed)\n",
                r.coverage, r.failedRegions,
                r.analysis.regions.size());
    if (!cfg.journalPath.empty())
        std::printf("journal        : %s, %zu region(s) reused\n",
                    cfg.journalPath.c_str(), r.journalHits);
    if (!cfg.storeDir.empty())
        std::printf("store          : %llu hit(s), %llu miss(es), "
                    "%llu publish(es), %llu failed, %llu corrupt, "
                    "regions %s, fullsim %s\n",
                    static_cast<unsigned long long>(r.storeStats.hits),
                    static_cast<unsigned long long>(
                        r.storeStats.misses),
                    static_cast<unsigned long long>(
                        r.storeStats.publishes),
                    static_cast<unsigned long long>(
                        r.storeStats.failedPublishes),
                    static_cast<unsigned long long>(
                        r.storeStats.corruptEntries),
                    r.simStageHit ? "cached" : "simulated",
                    !r.haveFullSim     ? "skipped"
                    : r.fullSimHit     ? "cached"
                                       : "simulated");
    if (r.haveFullSim) {
        std::printf("full simulation: runtime %.6f s\n",
                    r.fullSim.runtimeSeconds);
        std::printf("estimated error: %.2f %%\n", r.runtimeErrorPct);
        std::printf("actual speedup : %.1fx serial, %.1fx parallel "
                    "(checkpoint generation %.2f s)\n",
                    r.actualSerialSpeedup, r.actualParallelSpeedup,
                    r.wallCheckpointSeconds);
    }
    std::printf("host-parallel  : %u jobs, phase %.3f s, "
                "self-relative speedup %.2fx (efficiency %.0f%%)\n",
                r.jobs, r.wallPhaseSeconds, r.hostParallelSpeedup,
                100.0 * r.hostParallelEfficiency);
    std::printf("backend        : %s, %u worker(s)",
                execBackendName(r.backend), r.jobs);
    if (r.backend == ExecBackendKind::Procs)
        std::printf(", %u death(s), %u respawn(s)", r.workerDeaths,
                    r.workerRespawns);
    std::printf("\n");
    std::printf("theo. speedup  : %.1fx serial, %.1fx parallel\n\n",
                r.theoreticalSerialSpeedup,
                r.theoreticalParallelSpeedup);

    const auto &diags = r.analysis.diagnostics;
    if (!cli.sarifPath.empty())
        g_sarifDiags.insert(g_sarifDiags.end(), diags.begin(),
                            diags.end());
    if (cli.lint || cli.raceCheck || cli.lockCheck || cli.audit ||
        !diags.empty()) {
        printDiagnosticsText(std::cout, diags);
        size_t errors = 0;
        for (const auto &d : diags)
            if (d.severity == Severity::Error)
                ++errors;
        if (cli.audit)
            std::printf("audit          : %zu finding(s)\n",
                        r.auditFindings);
        std::printf("analysis       : %zu finding(s), %zu error(s)\n\n",
                    diags.size(), errors);
        if (errors > 0)
            return 1;
    }
    return r.coverage < 1.0 ? 1 : 0;
}

/**
 * Flush the accumulated observability outputs (all programs of the
 * invocation share the global tracer/registry). Returns 0, or 3 when
 * a requested output could not be written.
 */
int
writeObsOutputs(const CliOptions &cli)
{
    int rc = 0;
    if (!cli.tracePath.empty()) {
        std::ofstream os(cli.tracePath);
        if (!os) {
            logError("cannot write trace to '%s'",
                     cli.tracePath.c_str());
            rc = 3;
        } else {
            Tracer::global().writeChromeTrace(os);
            std::printf("trace          : %s (load in "
                        "ui.perfetto.dev or chrome://tracing)\n",
                        cli.tracePath.c_str());
        }
    }
    if (!cli.metricsPath.empty()) {
        std::ofstream os(cli.metricsPath);
        if (!os) {
            logError("cannot write metrics to '%s'",
                     cli.metricsPath.c_str());
            rc = 3;
        } else {
            const std::string &p = cli.metricsPath;
            const bool text = p.size() >= 4 &&
                              p.compare(p.size() - 4, 4, ".txt") == 0;
            if (text)
                MetricsRegistry::global().printText(os);
            else
                MetricsRegistry::global().printJson(os);
            std::printf("metrics        : %s\n", p.c_str());
        }
    }
    if (!cli.sarifPath.empty()) {
        std::ofstream os(cli.sarifPath);
        if (!os) {
            logError("cannot write SARIF to '%s'",
                     cli.sarifPath.c_str());
            rc = 3;
        } else {
            sortDiagnosticsCanonical(g_sarifDiags);
            printDiagnosticsSarif(os, g_sarifDiags);
            std::printf("sarif          : %s (%zu finding(s))\n",
                        cli.sarifPath.c_str(), g_sarifDiags.size());
        }
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    // Exit-code contract (documented in --help): 0 success, 1
    // degraded/findings, 2 usage, 3 runtime failure, 4 interrupted at
    // a region boundary (resume-able).
    CliOptions cli;
    try {
        cli = parseCli(argc, argv);
    } catch (const std::exception &e) {
        logError("run_looppoint: %s", e.what());
        return 2;
    }
    installInterruptHandlers();
    int rc = 0;
    try {
        for (const auto &program : cli.programs)
            rc = std::max(rc, runOne(program, cli));
    } catch (const InjectedKill &e) {
        // A simulated host crash: like the real thing, it leaves no
        // trace/metrics files behind.
        logError("run_looppoint: %s", e.what());
        return 3;
    } catch (const InterruptedRun &e) {
        // Graceful stop at a region boundary: the run journal already
        // holds every completed region, so the supervisor (or user)
        // can rerun with --resume for a bit-identical continuation.
        // Flush obs outputs first — a parked daemon job should still
        // leave its trace behind.
        warn("run_looppoint: %s", e.what());
        writeObsOutputs(cli);
        return 4;
    } catch (const FatalError &e) {
        logError("run_looppoint: %s", e.what());
        return 3;
    }
    rc = std::max(rc, writeObsOutputs(cli));
    return rc;
}
