/**
 * @file
 * lp_lint: standalone guest-program verifier. Generates a workload
 * program, records a pinball, builds the DCFG, and runs the ProgramLint
 * passes (and optionally the happens-before race detector) against it,
 * reporting through the shared diagnostic sink as text or JSON.
 *
 *   lp_lint -p demo-matrix-1 -n 8
 *   lp_lint -p npb-bt-1 --race-check --json
 *   lp_lint --list-passes
 *   lp_lint -p spec-imagick-1 --passes=structure,streams
 *
 * Exit status (shared contract with run_looppoint): 0 when no
 * error-severity diagnostics were produced, 1 on findings, 2 on usage
 * errors, 3 on runtime failures.
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/program_lint.hh"
#include "analysis/race_detector.hh"
#include "dcfg/dcfg.hh"
#include "pinball/pinball.hh"
#include "util/logging.hh"
#include "workload/descriptor.hh"

using namespace looppoint;

namespace {

struct CliOptions
{
    std::vector<std::string> programs{"demo-matrix-1"};
    uint32_t ncores = 8;
    std::string inputClass = "test";
    std::string waitPolicy = "passive";
    uint64_t quantum = 1000;
    bool lint = true;
    bool raceCheck = false;
    bool json = false;
    std::vector<std::string> passes;
};

void
usage()
{
    std::printf(
        "usage: lp_lint [options]\n"
        "  -p, --program=LIST   comma-separated programs, each\n"
        "                       <suite>-<app>-<input-num>\n"
        "                       (default: demo-matrix-1)\n"
        "  -n, --ncores=N       number of threads (default: 8)\n"
        "  -i, --input-class=C  test | train | ref | A | C | D\n"
        "                       (default: test)\n"
        "  -w, --wait-policy=P  passive | active (default: passive)\n"
        "  -q, --quantum=N      flow-control quantum in instructions\n"
        "                       (default: 1000)\n"
        "      --passes=LIST    run only these lint passes\n"
        "      --race-check     also replay with the race detector\n"
        "      --no-lint        skip the lint passes (race check only)\n"
        "      --json           print diagnostics as a JSON array\n"
        "      --list-passes    print the lint pass names and exit\n"
        "  -h, --help           this message\n"
        "\nexit codes:\n"
        "  0  no error-severity findings\n"
        "  1  at least one error-severity finding\n"
        "  2  usage error (bad flag or argument)\n"
        "  3  runtime failure (I/O error, corrupt artifact, ...)\n");
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos <= s.size()) {
        size_t comma = s.find(',', pos);
        if (comma == std::string::npos) {
            out.push_back(s.substr(pos));
            break;
        }
        out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

bool
parseArg(int argc, char **argv, int &i, const char *short_name,
         const char *long_name, std::string *value)
{
    std::string arg = argv[i];
    std::string long_eq = std::string(long_name) + "=";
    if (arg == short_name || arg == long_name) {
        if (i + 1 >= argc)
            fatal("option %s requires a value", arg.c_str());
        *value = argv[++i];
        return true;
    }
    if (arg.rfind(long_eq, 0) == 0) {
        *value = arg.substr(long_eq.size());
        return true;
    }
    return false;
}

InputClass
resolveInput(const std::string &name)
{
    if (name == "test")
        return InputClass::Test;
    if (name == "train")
        return InputClass::Train;
    if (name == "ref")
        return InputClass::Ref;
    if (name == "A")
        return InputClass::NpbA;
    if (name == "C")
        return InputClass::NpbC;
    if (name == "D")
        return InputClass::NpbD;
    fatal("unknown input class '%s'", name.c_str());
}

/** <suite>-<app>-<input-num> -> workload-table app name. */
std::string
resolveProgram(const std::string &prog)
{
    auto dash1 = prog.find('-');
    auto dash2 = prog.rfind('-');
    if (dash1 == std::string::npos || dash2 == dash1)
        fatal("program '%s' is not of the form "
              "<suite>-<application>-<input-num>", prog.c_str());
    std::string suite = prog.substr(0, dash1);
    std::string app = prog.substr(dash1 + 1, dash2 - dash1 - 1);
    std::string input_num = prog.substr(dash2 + 1);

    if (suite == "demo")
        return "demo-matrix";
    if (suite == "npb")
        return "npb-" + app;
    if (suite == "spec") {
        for (const auto &d : spec2017Apps()) {
            if (d.name == app + "." + input_num)
                return d.name;
            std::string needle = "." + app + "_s." + input_num;
            if (d.name.size() > needle.size() &&
                d.name.compare(d.name.size() - needle.size(),
                               needle.size(), needle) == 0)
                return d.name;
        }
        fatal("unknown SPEC program '%s'", prog.c_str());
    }
    fatal("unknown suite '%s' (expected demo, spec, or npb)",
          suite.c_str());
}

CliOptions
parseCli(int argc, char **argv)
{
    CliOptions opts;
    std::string value;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            usage();
            std::exit(0);
        } else if (arg == "--list-passes") {
            for (const auto &name : lintPassNames())
                std::printf("%s\n", name.c_str());
            std::exit(0);
        } else if (parseArg(argc, argv, i, "-p", "--program", &value)) {
            opts.programs = splitCommas(value);
        } else if (parseArg(argc, argv, i, "-n", "--ncores", &value)) {
            opts.ncores = static_cast<uint32_t>(std::stoul(value));
        } else if (parseArg(argc, argv, i, "-i", "--input-class",
                            &value)) {
            opts.inputClass = value;
        } else if (parseArg(argc, argv, i, "-w", "--wait-policy",
                            &value)) {
            opts.waitPolicy = value;
        } else if (parseArg(argc, argv, i, "-q", "--quantum", &value)) {
            opts.quantum = std::stoull(value);
        } else if (parseArg(argc, argv, i, "", "--passes", &value)) {
            opts.passes = splitCommas(value);
        } else if (arg == "--race-check") {
            opts.raceCheck = true;
        } else if (arg == "--no-lint") {
            opts.lint = false;
        } else if (arg == "--json") {
            opts.json = true;
        } else {
            logError("unknown option '%s'", arg.c_str());
            usage();
            std::exit(2);
        }
    }
    if (opts.waitPolicy != "passive" && opts.waitPolicy != "active")
        fatal("wait policy must be 'passive' or 'active'");
    if (opts.quantum == 0)
        fatal("quantum must be positive");
    if (!opts.lint && !opts.raceCheck)
        fatal("--no-lint without --race-check leaves nothing to do");
    return opts;
}

int
checkOne(const std::string &program, const CliOptions &cli,
         DiagnosticSink &sink)
{
    const std::string app_name = resolveProgram(program);
    const AppDescriptor &app = findApp(app_name);
    const uint32_t threads = app.effectiveThreads(cli.ncores);
    Program prog = generateProgram(app, resolveInput(cli.inputClass));

    ExecConfig cfg;
    cfg.numThreads = threads;
    cfg.waitPolicy = cli.waitPolicy == "active" ? WaitPolicy::Active
                                                : WaitPolicy::Passive;
    Pinball pinball = recordPinball(prog, cfg, cli.quantum);
    DcfgBuilder dcfg_builder(prog, threads);
    replayPinball(prog, pinball, cli.quantum, &dcfg_builder);
    Dcfg dcfg = dcfg_builder.build();

    const size_t errs_before = sink.errors();
    if (cli.lint) {
        LintContext ctx;
        ctx.prog = &prog;
        ctx.dcfg = &dcfg;
        ctx.pinball = &pinball;
        ctx.flowQuantum = cli.quantum;
        ProgramLint().run(ctx, sink, cli.passes);
    }
    if (cli.raceCheck)
        checkGuestRaces(prog, pinball, sink, cli.quantum);
    return sink.errors() > errs_before ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Exit-code contract (documented in --help): 0 clean, 1 findings,
    // 2 usage, 3 runtime failure.
    CliOptions cli;
    try {
        cli = parseCli(argc, argv);
    } catch (const std::exception &e) {
        logError("lp_lint: %s", e.what());
        return 2;
    }
    int rc = 0;
    DiagnosticSink sink;
    try {
        for (const auto &program : cli.programs)
            rc |= checkOne(program, cli, sink);
        if (cli.json)
            sink.printJson(std::cout);
        else
            sink.printText(std::cout);
        if (!cli.json)
            std::printf("%zu finding(s), %zu error(s)\n",
                        sink.diagnostics().size(), sink.errors());
    } catch (const FatalError &e) {
        logError("lp_lint: %s", e.what());
        return 3;
    }
    return rc;
}
