/**
 * @file
 * lp_lint: standalone guest-program verifier. Generates a workload
 * program, records a pinball, builds the DCFG, and runs the full
 * analysis registry against it — the ProgramLint passes, the dynamic
 * replay checkers (race, lockset, deadlock), and the artifact audit —
 * reporting through the shared diagnostic sink as text, JSON, or
 * SARIF 2.1.0, optionally filtered through a baseline file.
 *
 *   lp_lint -p demo-matrix-1 -n 8
 *   lp_lint -p npb-bt-1 --race-check --lock-check --json
 *   lp_lint --list-passes
 *   lp_lint -p spec-imagick-1 --passes=structure,streams,lockset
 *   lp_lint -p demo-matrix-1 --sarif=findings.sarif
 *   lp_lint -p demo-matrix-1 --write-baseline=known.txt
 *   lp_lint -p demo-matrix-1 --baseline=known.txt
 *
 * Exit status (shared contract with run_looppoint): 0 when no
 * error-severity diagnostics were produced, 1 on findings, 2 on usage
 * errors, 3 on runtime failures.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/baseline.hh"
#include "analysis/program_lint.hh"
#include "analysis/race_detector.hh"
#include "analysis/registry.hh"
#include "analysis/sarif.hh"
#include "core/run_journal.hh"
#include "dcfg/dcfg.hh"
#include "pinball/pinball.hh"
#include "util/logging.hh"
#include "workload/descriptor.hh"

using namespace looppoint;

namespace {

struct CliOptions
{
    std::vector<std::string> programs{"demo-matrix-1"};
    uint32_t ncores = 8;
    std::string inputClass = "test";
    std::string waitPolicy = "passive";
    uint64_t quantum = 1000;
    bool lint = true;
    bool raceCheck = false;
    bool lockCheck = false;
    bool audit = false;
    bool json = false;
    uint32_t maxFindings = 0;
    std::string sarifPath;
    /** Artifact-store directory for the audit pass ("" = skip). */
    std::string storeDir;
    /** Run journal for the audit pass ("" = skip). */
    std::string journalPath;
    std::string baselinePath;
    std::string writeBaselinePath;
    std::vector<std::string> passes;
};

void
usage()
{
    std::printf(
        "usage: lp_lint [options]\n"
        "  -p, --program=LIST   comma-separated programs, each\n"
        "                       <suite>-<app>-<input-num>\n"
        "                       (default: demo-matrix-1)\n"
        "  -n, --ncores=N       number of threads (default: 8)\n"
        "  -i, --input-class=C  test | train | ref | A | C | D\n"
        "                       (default: test)\n"
        "  -w, --wait-policy=P  passive | active (default: passive)\n"
        "  -q, --quantum=N      flow-control quantum in instructions\n"
        "                       (default: 1000)\n"
        "      --passes=LIST    run exactly these analyses (see\n"
        "                       --list-passes; overrides the toggles\n"
        "                       below)\n"
        "      --race-check     also replay with the happens-before\n"
        "                       race detector\n"
        "      --lock-check     also replay with the lockset and\n"
        "                       lock-order deadlock detectors\n"
        "      --audit          also cross-check the recording with\n"
        "                       the artifact audit\n"
        "      --no-lint        skip the lint passes (dynamic checks\n"
        "                       only)\n"
        "      --max-findings=N cap each analysis pass at N reported\n"
        "                       findings (default: pass-specific, 32)\n"
        "      --json           print diagnostics as a JSON array\n"
        "      --sarif=PATH     also write the findings as SARIF\n"
        "                       2.1.0 to PATH\n"
        "      --store=DIR      audit pass: hash-verify and\n"
        "                       chain-check the artifact store at DIR\n"
        "      --journal=PATH   audit pass: validate the run journal\n"
        "                       at PATH against this program's\n"
        "                       default-configuration run key\n"
        "      --baseline=PATH  drop findings whose fingerprints are\n"
        "                       in the baseline file at PATH\n"
        "      --write-baseline=PATH  snapshot the current warnings\n"
        "                       and errors as a baseline at PATH and\n"
        "                       exit 0\n"
        "      --list-passes    print every analysis name and exit\n"
        "  -h, --help           this message\n"
        "\nexit codes:\n"
        "  0  no error-severity findings\n"
        "  1  at least one error-severity finding\n"
        "  2  usage error (bad flag or argument)\n"
        "  3  runtime failure (I/O error, corrupt artifact, ...)\n");
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos <= s.size()) {
        size_t comma = s.find(',', pos);
        if (comma == std::string::npos) {
            out.push_back(s.substr(pos));
            break;
        }
        out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

bool
parseArg(int argc, char **argv, int &i, const char *short_name,
         const char *long_name, std::string *value)
{
    std::string arg = argv[i];
    std::string long_eq = std::string(long_name) + "=";
    if (arg == short_name || arg == long_name) {
        if (i + 1 >= argc)
            fatal("option %s requires a value", arg.c_str());
        *value = argv[++i];
        return true;
    }
    if (arg.rfind(long_eq, 0) == 0) {
        *value = arg.substr(long_eq.size());
        return true;
    }
    return false;
}

InputClass
resolveInput(const std::string &name)
{
    if (name == "test")
        return InputClass::Test;
    if (name == "train")
        return InputClass::Train;
    if (name == "ref")
        return InputClass::Ref;
    if (name == "A")
        return InputClass::NpbA;
    if (name == "C")
        return InputClass::NpbC;
    if (name == "D")
        return InputClass::NpbD;
    fatal("unknown input class '%s'", name.c_str());
}

CliOptions
parseCli(int argc, char **argv)
{
    CliOptions opts;
    std::string value;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            usage();
            std::exit(0);
        } else if (arg == "--list-passes") {
            for (const auto &name : analysisNames())
                std::printf("%s\n", name.c_str());
            std::exit(0);
        } else if (parseArg(argc, argv, i, "-p", "--program", &value)) {
            opts.programs = splitCommas(value);
        } else if (parseArg(argc, argv, i, "-n", "--ncores", &value)) {
            opts.ncores = static_cast<uint32_t>(std::stoul(value));
        } else if (parseArg(argc, argv, i, "-i", "--input-class",
                            &value)) {
            opts.inputClass = value;
        } else if (parseArg(argc, argv, i, "-w", "--wait-policy",
                            &value)) {
            opts.waitPolicy = value;
        } else if (parseArg(argc, argv, i, "-q", "--quantum", &value)) {
            opts.quantum = std::stoull(value);
        } else if (parseArg(argc, argv, i, "", "--passes", &value)) {
            opts.passes = splitCommas(value);
        } else if (arg == "--race-check") {
            opts.raceCheck = true;
        } else if (arg == "--lock-check") {
            opts.lockCheck = true;
        } else if (arg == "--audit") {
            opts.audit = true;
        } else if (arg == "--no-lint") {
            opts.lint = false;
        } else if (parseArg(argc, argv, i, "", "--max-findings",
                            &value)) {
            opts.maxFindings =
                static_cast<uint32_t>(std::stoul(value));
        } else if (parseArg(argc, argv, i, "", "--sarif", &value)) {
            opts.sarifPath = value;
        } else if (parseArg(argc, argv, i, "", "--store", &value)) {
            opts.storeDir = value;
        } else if (parseArg(argc, argv, i, "", "--journal",
                            &value)) {
            opts.journalPath = value;
        } else if (parseArg(argc, argv, i, "", "--baseline",
                            &value)) {
            opts.baselinePath = value;
        } else if (parseArg(argc, argv, i, "", "--write-baseline",
                            &value)) {
            opts.writeBaselinePath = value;
        } else if (arg == "--json") {
            opts.json = true;
        } else {
            logError("unknown option '%s'", arg.c_str());
            usage();
            std::exit(2);
        }
    }
    if (opts.waitPolicy != "passive" && opts.waitPolicy != "active")
        fatal("wait policy must be 'passive' or 'active'");
    if (opts.quantum == 0)
        fatal("quantum must be positive");
    if (!opts.lint && !opts.raceCheck && !opts.lockCheck &&
        !opts.audit && opts.passes.empty())
        fatal("--no-lint with no dynamic check or --passes leaves "
              "nothing to do");
    if (!opts.baselinePath.empty() &&
        !opts.writeBaselinePath.empty())
        fatal("--baseline and --write-baseline are exclusive");
    {
        const auto known = analysisNames();
        for (const auto &p : opts.passes)
            if (std::find(known.begin(), known.end(), p) ==
                known.end())
                fatal("unknown pass '%s' (see --list-passes)",
                      p.c_str());
    }
    return opts;
}

/** The registry filter this invocation's toggles translate to. */
std::vector<std::string>
selectedPasses(const CliOptions &cli)
{
    if (!cli.passes.empty())
        return cli.passes;
    std::vector<std::string> out;
    if (cli.lint)
        out = lintPassNames();
    if (cli.raceCheck)
        out.push_back("race");
    if (cli.lockCheck) {
        out.push_back("lockset");
        out.push_back("deadlock");
    }
    if (cli.audit)
        out.push_back("audit");
    return out;
}

int
checkOne(const std::string &program, const CliOptions &cli,
         DiagnosticSink &sink)
{
    const std::string app_name = resolveArtifactProgram(program);
    const AppDescriptor &app = findApp(app_name);
    const uint32_t threads = app.effectiveThreads(cli.ncores);
    Program prog = generateProgram(app, resolveInput(cli.inputClass));

    ExecConfig cfg;
    cfg.numThreads = threads;
    cfg.waitPolicy = cli.waitPolicy == "active" ? WaitPolicy::Active
                                                : WaitPolicy::Passive;
    Pinball pinball = recordPinball(prog, cfg, cli.quantum);
    DcfgBuilder dcfg_builder(prog, threads);
    replayPinball(prog, pinball, cli.quantum, &dcfg_builder);
    Dcfg dcfg = dcfg_builder.build();

    AnalysisContext ctx;
    ctx.lint.prog = &prog;
    ctx.lint.dcfg = &dcfg;
    ctx.lint.pinball = &pinball;
    ctx.lint.flowQuantum = cli.quantum;
    ctx.replayQuantum = cli.quantum;
    if (cli.maxFindings)
        ctx.maxFindings = cli.maxFindings;
    ctx.audit.expectedThreads = threads;
    ctx.audit.storeDir = cli.storeDir;
    // The journal key of a default-configuration run_looppoint run of
    // this program (the analysis flags are deliberately not part of
    // the key, so a lint invocation can validate a pipeline run's
    // journal).
    RunKey journal_key;
    if (!cli.journalPath.empty()) {
        journal_key = makeRunKey(
            app_name,
            std::string(inputClassName(resolveInput(cli.inputClass))),
            threads, cfg.waitPolicy, LoopPointOptions{}.seed,
            /*constrained=*/false, SimConfig{});
        ctx.audit.journalPath = cli.journalPath;
        ctx.audit.journalKey = &journal_key;
    }
    return runAnalyses(ctx, sink, selectedPasses(cli)) > 0 ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Exit-code contract (documented in --help): 0 clean, 1 findings,
    // 2 usage, 3 runtime failure.
    CliOptions cli;
    try {
        cli = parseCli(argc, argv);
    } catch (const std::exception &e) {
        logError("lp_lint: %s", e.what());
        return 2;
    }
    int rc = 0;
    DiagnosticSink sink;
    try {
        for (const auto &program : cli.programs)
            rc |= checkOne(program, cli, sink);

        std::vector<Diagnostic> diags = sink.take();
        if (!cli.writeBaselinePath.empty()) {
            std::ofstream os(cli.writeBaselinePath);
            if (!os)
                fatal("cannot write baseline to '%s'",
                      cli.writeBaselinePath.c_str());
            writeBaseline(os, diags);
            std::printf("baseline       : %s\n",
                        cli.writeBaselinePath.c_str());
            return 0;
        }
        size_t suppressed = 0;
        if (!cli.baselinePath.empty()) {
            std::ifstream is(cli.baselinePath);
            if (!is)
                fatal("cannot read baseline '%s'",
                      cli.baselinePath.c_str());
            auto baseline = loadBaseline(is);
            if (!baseline.ok())
                fatal("baseline '%s': %s", cli.baselinePath.c_str(),
                      baseline.error().describe().c_str());
            suppressed = applyBaseline(diags, baseline.value());
        }
        size_t errors = 0;
        for (const auto &d : diags)
            if (d.severity == Severity::Error)
                ++errors;
        rc = errors > 0 ? 1 : 0;

        if (!cli.sarifPath.empty()) {
            std::ofstream os(cli.sarifPath);
            if (!os)
                fatal("cannot write SARIF to '%s'",
                      cli.sarifPath.c_str());
            printDiagnosticsSarif(os, diags);
        }
        if (cli.json) {
            printDiagnosticsJson(std::cout, diags);
        } else {
            printDiagnosticsText(std::cout, diags);
            std::printf("%zu finding(s), %zu error(s)",
                        diags.size(), errors);
            if (suppressed)
                std::printf(", %zu baseline-suppressed", suppressed);
            std::printf("\n");
        }
    } catch (const FatalError &e) {
        logError("lp_lint: %s", e.what());
        return 3;
    }
    return rc;
}
