/**
 * @file
 * lp_report: offline analyzer for the observability outputs of
 * run_looppoint (--trace / --metrics).
 *
 *   lp_report --trace=t.json [--metrics=m.json] [--check]
 *
 * Reads a Chrome trace-event document produced by the span tracer and
 * prints a per-phase wall-time breakdown, a per-region table (wall
 * time, multiplier, IPC, L2 MPKI), the slowest region, the measured
 * host-parallel efficiency, and the checkpoint-fanout critical path
 * (the best wall time any worker count could achieve, paper Fig. 9's
 * limit): max over regions of (checkpoint-ready time + region sim
 * time).
 *
 * --check turns lp_report into a validator: the document must parse,
 * every event must carry the Chrome trace-event required fields, 'X'
 * spans on one track must nest properly, and the phase.checkpointed
 * span duration must agree with its own phase_wall_seconds argument
 * within 1%. Exit 0 when valid, 1 when any check fails, 2 on usage
 * errors.
 *
 * Events mirrored onto virtual region tracks carry a `mirror: 1`
 * argument and are excluded from aggregation (they are the same span
 * twice).
 */

#include <dirent.h>

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "util/logging.hh"

using namespace looppoint;

namespace {

struct Options
{
    std::string tracePath;
    std::string metricsPath;
    std::string campaignDir;
    bool check = false;
};

void
usage()
{
    std::printf(
        "usage: lp_report --trace=PATH [--metrics=PATH] [--check]\n"
        "       lp_report --campaign=DIR\n"
        "  --trace=PATH    Chrome trace JSON from run_looppoint "
        "--trace\n"
        "  --metrics=PATH  metrics JSON from run_looppoint --metrics\n"
        "  --campaign=DIR  aggregate the per-job result.json files of\n"
        "                  an lp_campaign directory: per-job table\n"
        "                  plus store hit-rate and deduplication\n"
        "  --check         validate the inputs instead of summarizing\n"
        "                  only (exit 1 on any violation)\n"
        "  -h, --help      this message\n");
}

/** One parsed trace event, with numeric args flattened for lookup. */
struct Event
{
    std::string name;
    std::string phase;
    int64_t tid = 0;
    double tsUs = 0.0;
    double durUs = 0.0;
    bool mirror = false;
    std::map<std::string, double> numArgs;
};

bool
loadFile(const std::string &path, std::string &out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::ostringstream ss;
    ss << is.rdbuf();
    out = ss.str();
    return true;
}

/** Collects violations; in non-check mode they still print. */
struct CheckLog
{
    size_t violations = 0;

    void
    failf(const char *fmt, ...) __attribute__((format(printf, 2, 3)))
    {
        ++violations;
        va_list ap;
        va_start(ap, fmt);
        char buf[512];
        std::vsnprintf(buf, sizeof(buf), fmt, ap);
        va_end(ap);
        std::printf("CHECK FAIL: %s\n", buf);
    }
};

/**
 * Validate one raw event object and flatten it into `ev`. Metadata
 * ('M') events are validated but not returned for aggregation.
 */
bool
parseEvent(const JsonValue &raw, size_t index, Event &ev,
           CheckLog &log)
{
    if (!raw.isObject()) {
        log.failf("event %zu is not an object", index);
        return false;
    }
    const JsonValue *ph = raw.find("ph");
    const JsonValue *name = raw.find("name");
    const JsonValue *pid = raw.find("pid");
    const JsonValue *tid = raw.find("tid");
    if (!ph || !ph->isString() || ph->str.size() != 1) {
        log.failf("event %zu has no one-character 'ph'", index);
        return false;
    }
    if (!name || !name->isString() || name->str.empty()) {
        log.failf("event %zu has no 'name'", index);
        return false;
    }
    if (!pid || !pid->isNumber() || !tid || !tid->isNumber()) {
        log.failf("event %zu ('%s') lacks numeric pid/tid", index,
                  name->str.c_str());
        return false;
    }
    ev.name = name->str;
    ev.phase = ph->str;
    ev.tid = static_cast<int64_t>(tid->number);
    if (ev.phase == "M")
        return true; // metadata: no ts required
    const JsonValue *ts = raw.find("ts");
    if (!ts || !ts->isNumber()) {
        log.failf("event %zu ('%s') lacks numeric 'ts'", index,
                  name->str.c_str());
        return false;
    }
    ev.tsUs = ts->number;
    if (ev.phase == "X") {
        const JsonValue *dur = raw.find("dur");
        if (!dur || !dur->isNumber() || dur->number < 0) {
            log.failf("complete event %zu ('%s') lacks non-negative "
                      "'dur'",
                      index, name->str.c_str());
            return false;
        }
        ev.durUs = dur->number;
    }
    if (const JsonValue *args = raw.find("args")) {
        if (!args->isObject()) {
            log.failf("event %zu ('%s') has non-object 'args'", index,
                      name->str.c_str());
            return false;
        }
        for (const auto &[k, v] : args->object)
            if (v.isNumber())
                ev.numArgs[k] = v.number;
        ev.mirror = ev.numArgs.count("mirror") != 0;
    }
    return true;
}

/**
 * Chrome's nesting rule: on one track, complete events sorted by
 * (ts asc, dur desc) must form a proper stack — a span either encloses
 * the next one or ends before it starts.
 */
void
checkNesting(std::vector<Event> spans, CheckLog &log)
{
    constexpr double eps = 1e-6; // sub-ns; timestamps are ns-exact
    std::stable_sort(spans.begin(), spans.end(),
                     [](const Event &a, const Event &b) {
                         if (a.tsUs != b.tsUs)
                             return a.tsUs < b.tsUs;
                         return a.durUs > b.durUs;
                     });
    std::vector<const Event *> stack;
    for (const Event &ev : spans) {
        while (!stack.empty() &&
               stack.back()->tsUs + stack.back()->durUs <=
                   ev.tsUs + eps)
            stack.pop_back();
        if (!stack.empty()) {
            const Event &top = *stack.back();
            if (ev.tsUs + ev.durUs > top.tsUs + top.durUs + eps)
                log.failf("track %lld: span '%s' [%f, %f] overlaps "
                          "'%s' [%f, %f] without nesting",
                          static_cast<long long>(ev.tid),
                          ev.name.c_str(), ev.tsUs,
                          ev.tsUs + ev.durUs, top.name.c_str(),
                          top.tsUs, top.tsUs + top.durUs);
        }
        stack.push_back(&ev);
    }
}

int
reportTrace(const Options &opt)
{
    std::string text;
    if (!loadFile(opt.tracePath, text)) {
        logError("cannot read trace '%s'", opt.tracePath.c_str());
        return 2;
    }
    CheckLog log;
    std::string err;
    auto doc = parseJson(text, &err);
    if (!doc) {
        log.failf("trace is not valid JSON: %s", err.c_str());
        return 1;
    }
    const JsonValue *events = doc->find("traceEvents");
    if (!events || !events->isArray()) {
        log.failf("trace has no 'traceEvents' array");
        return 1;
    }

    std::vector<Event> spans;      // 'X', mirrors included
    std::vector<Event> instants;   // 'i'
    for (size_t i = 0; i < events->array.size(); ++i) {
        Event ev;
        if (!parseEvent(events->array[i], i, ev, log))
            continue;
        if (ev.phase == "X")
            spans.push_back(std::move(ev));
        else if (ev.phase == "i")
            instants.push_back(std::move(ev));
        else if (ev.phase != "M")
            log.failf("event %zu has unsupported phase '%s'", i,
                      ev.phase.c_str());
    }

    // Nesting is a per-track property; mirrors live on their own
    // region tracks and are checked there like any other span.
    std::map<int64_t, std::vector<Event>> byTrack;
    for (const Event &ev : spans)
        byTrack[ev.tid].push_back(ev);
    for (auto &[tid, track_spans] : byTrack)
        checkNesting(std::move(track_spans), log);

    // ---- Aggregation (mirrors excluded: same span, second track) ----
    struct PhaseAgg
    {
        size_t count = 0;
        double totalUs = 0.0;
        double maxUs = 0.0;
    };
    std::map<std::string, PhaseAgg> phases;
    const Event *checkpointed = nullptr;
    std::map<int64_t, const Event *> regionSims;  // region id -> span
    std::map<int64_t, const Event *> regionWarms; // region id -> span
    std::vector<const Event *> workerTasks;       // backend.task spans
    for (const Event &ev : spans) {
        if (ev.mirror)
            continue;
        PhaseAgg &agg = phases[ev.name];
        ++agg.count;
        agg.totalUs += ev.durUs;
        agg.maxUs = std::max(agg.maxUs, ev.durUs);
        if (ev.name == "phase.checkpointed")
            checkpointed = &ev;
        auto region_of = [&]() {
            auto it = ev.numArgs.find("region");
            return it == ev.numArgs.end()
                       ? static_cast<int64_t>(-1)
                       : static_cast<int64_t>(it->second);
        };
        if (ev.name == "region.sim")
            regionSims[region_of()] = &ev;
        else if (ev.name == "warm.fastforward")
            regionWarms[region_of()] = &ev;
        else if (ev.name == "backend.task")
            workerTasks.push_back(&ev);
    }

    std::printf("== phases (mirrored spans excluded) ==\n");
    std::printf("%-24s %6s %12s %12s\n", "span", "count", "total ms",
                "max ms");
    for (const auto &[name, agg] : phases)
        std::printf("%-24s %6zu %12.3f %12.3f\n", name.c_str(),
                    agg.count, agg.totalUs / 1e3, agg.maxUs / 1e3);

    if (!regionSims.empty()) {
        std::printf("\n== regions ==\n");
        std::printf("%6s %10s %12s %8s %8s %3s\n", "region", "mult",
                    "wall ms", "ipc", "l2mpki", "ok");
        int64_t slowest = -1;
        double slowest_us = -1.0;
        for (const auto &[region, ev] : regionSims) {
            auto num = [&](const char *key) {
                auto it = ev->numArgs.find(key);
                return it == ev->numArgs.end() ? 0.0 : it->second;
            };
            std::printf("%6lld %10.3f %12.3f %8.3f %8.3f %3s\n",
                        static_cast<long long>(region),
                        num("multiplier"), ev->durUs / 1e3,
                        num("ipc"), num("l2_mpki"),
                        num("ok") != 0.0 ? "yes" : "NO");
            if (ev->durUs > slowest_us) {
                slowest_us = ev->durUs;
                slowest = region;
            }
        }
        std::printf("slowest region : %lld (%.3f ms)\n",
                    static_cast<long long>(slowest), slowest_us / 1e3);
    }

    if (checkpointed) {
        const Event &cp = *checkpointed;
        auto arg = [&](const char *key) {
            auto it = cp.numArgs.find(key);
            return it == cp.numArgs.end() ? 0.0 : it->second;
        };
        const double jobs = arg("jobs");
        const double phase_ms = cp.durUs / 1e3;

        // Busy time inside the phase. For the in-process pool that is
        // every region body plus the (serial) warming stops, measured
        // on the threads that ran them. Under the procs backend the
        // region work happens in forked worker processes that cannot
        // write into this trace; the coordinator records one
        // backend.task span per dispatched region on a per-worker
        // virtual track, and aggregating those tracks (plus the
        // coordinator's serial warming) is the multi-process
        // equivalent of the thread busy time.
        double busy_ms = 0.0;
        if (!workerTasks.empty()) {
            for (const Event *ev : workerTasks)
                busy_ms += ev->durUs / 1e3;
        } else {
            for (const auto &[region, ev] : regionSims)
                busy_ms += ev->durUs / 1e3;
        }
        for (const auto &[region, ev] : regionWarms)
            busy_ms += ev->durUs / 1e3;
        if (jobs > 0.0 && phase_ms > 0.0)
            std::printf("\nhost-parallel  : %g jobs, busy %.3f ms "
                        "over phase %.3f ms -> efficiency %.0f%%\n",
                        jobs, busy_ms, phase_ms,
                        100.0 * busy_ms / (phase_ms * jobs));

        // Per-worker utilization (procs backend only): how evenly the
        // coordinator sharded regions across worker processes.
        if (!workerTasks.empty() && phase_ms > 0.0) {
            struct WorkerAgg
            {
                size_t regions = 0;
                double busyUs = 0.0;
            };
            std::map<int64_t, WorkerAgg> workers;
            for (const Event *ev : workerTasks) {
                auto it = ev->numArgs.find("worker");
                const int64_t w =
                    it == ev->numArgs.end()
                        ? static_cast<int64_t>(-1)
                        : static_cast<int64_t>(it->second);
                WorkerAgg &agg = workers[w];
                ++agg.regions;
                agg.busyUs += ev->durUs;
            }
            std::printf("\n== workers (procs backend) ==\n");
            std::printf("%6s %8s %12s %7s\n", "worker", "regions",
                        "busy ms", "util %");
            for (const auto &[w, agg] : workers)
                std::printf("%6lld %8zu %12.3f %7.0f\n",
                            static_cast<long long>(w), agg.regions,
                            agg.busyUs / 1e3,
                            100.0 * agg.busyUs / 1e3 / phase_ms);
        }

        // Critical path: a region cannot start before its checkpoint
        // exists; the fanout's floor is the slowest
        // (checkpoint-ready + region-sim) chain.
        double critical_ms = 0.0;
        int64_t critical_region = -1;
        for (const auto &[region, warm] : regionWarms) {
            const double ready_ms =
                (warm->tsUs + warm->durUs - cp.tsUs) / 1e3;
            auto it = regionSims.find(region);
            const double chain_ms =
                ready_ms +
                (it == regionSims.end() ? 0.0 : it->second->durUs / 1e3);
            if (chain_ms > critical_ms) {
                critical_ms = chain_ms;
                critical_region = region;
            }
        }
        if (critical_region >= 0)
            std::printf("critical path  : %.3f ms (region %lld); "
                        "measured phase %.3f ms\n",
                        critical_ms,
                        static_cast<long long>(critical_region),
                        phase_ms);

        // The phase span must agree with the wall time the pipeline
        // itself measured and attached as an argument.
        const double wall_arg_ms = arg("phase_wall_seconds") * 1e3;
        if (wall_arg_ms > 0.0) {
            const double rel =
                std::fabs(phase_ms - wall_arg_ms) /
                std::max(wall_arg_ms, 1e-9);
            if (rel > 0.01)
                log.failf("phase.checkpointed span is %.3f ms but its "
                          "phase_wall_seconds arg says %.3f ms "
                          "(%.2f%% apart, tolerance 1%%)",
                          phase_ms, wall_arg_ms, 100.0 * rel);
        }
    } else if (opt.check) {
        log.failf("trace has no phase.checkpointed span");
    }

    size_t journal_hits = 0;
    for (const Event &ev : instants)
        if (ev.name == "journal.hit")
            ++journal_hits;
    if (journal_hits)
        std::printf("journal hits   : %zu\n", journal_hits);

    if (opt.check)
        std::printf("check          : %zu violation(s)\n",
                    log.violations);
    return log.violations ? 1 : 0;
}

int
reportMetrics(const Options &opt)
{
    std::string text;
    if (!loadFile(opt.metricsPath, text)) {
        logError("cannot read metrics '%s'", opt.metricsPath.c_str());
        return 2;
    }
    CheckLog log;
    std::string err;
    auto doc = parseJson(text, &err);
    if (!doc) {
        log.failf("metrics file is not valid JSON: %s", err.c_str());
        return 1;
    }
    const JsonValue *counters = doc->find("counters");
    const JsonValue *gauges = doc->find("gauges");
    const JsonValue *histograms = doc->find("histograms");
    if (!counters || !counters->isObject() || !gauges ||
        !gauges->isObject() || !histograms || !histograms->isObject()) {
        log.failf("metrics JSON lacks counters/gauges/histograms "
                  "objects");
        return 1;
    }
    std::printf("\n== metrics ==\n");
    for (const auto &[name, v] : counters->object)
        if (v.isNumber())
            std::printf("%-32s %.0f\n", name.c_str(), v.number);
    for (const auto &[name, v] : gauges->object)
        if (v.isNumber())
            std::printf("%-32s %g\n", name.c_str(), v.number);
    for (const auto &[name, v] : histograms->object) {
        const double count = v.numberOr("count", 0.0);
        const double sum = v.numberOr("sum", 0.0);
        std::printf("%-32s count %.0f, mean %.1f\n", name.c_str(),
                    count, count > 0.0 ? sum / count : 0.0);
    }
    // Wire-protocol overhead of the multi-process backend: what the
    // coordinator spent framing, checksumming, and shipping region
    // tasks relative to the payload it moved.
    auto counter = [&](const char *name) {
        const JsonValue *v = counters->find(name);
        return v && v->isNumber() ? v->number : 0.0;
    };
    const double frames =
        counter("backend.procs.frames_tx") +
        counter("backend.procs.frames_rx");
    if (frames > 0.0) {
        const double bytes = counter("backend.procs.bytes_tx") +
                             counter("backend.procs.bytes_rx");
        std::printf("protocol       : %.0f frame(s), %.0f byte(s), "
                    "%.3f ms coordinator overhead (%.1f us/frame)\n",
                    frames, bytes,
                    counter("backend.procs.protocol_us") / 1e3,
                    counter("backend.procs.protocol_us") / frames);
    }
    if (opt.check)
        std::printf("metrics check  : %zu violation(s)\n",
                    log.violations);
    return log.violations ? 1 : 0;
}

/**
 * Render the supervisor's live surface (status.json) when present:
 * supervisor state, retry/timeout/GC accounting, and the per-job
 * attempt/backoff table. Best-effort — a missing or torn file (the
 * supervisor rewrites it atomically, so torn means "not a campaign
 * with a supervisor") just skips the section.
 */
void
reportCampaignStatus(const Options &opt)
{
    std::string text;
    if (!loadFile(opt.campaignDir + "/status.json", text))
        return;
    auto doc = parseJson(text);
    if (!doc || doc->stringOr("kind", "") != "lp_campaign_status")
        return;

    std::printf("== supervisor (%s) ==\n",
                doc->stringOr("state", "?").c_str());
    std::printf("pid %.0f, pass %.0f: %.0f/%.0f job(s) done, %.0f "
                "failed, %.0f pending\n",
                doc->numberOr("pid", 0), doc->numberOr("pass", 0),
                doc->numberOr("jobsDone", 0),
                doc->numberOr("jobsTotal", 0),
                doc->numberOr("jobsFailed", 0),
                doc->numberOr("jobsPending", 0));
    std::printf("supervision    : %.0f launch(es), %.0f retry(ies), "
                "%.0f timeout(s), %.0f gc run(s), %.0f adopted from "
                "journal, %.0f stale result(s)\n",
                doc->numberOr("launches", 0),
                doc->numberOr("retries", 0),
                doc->numberOr("timeouts", 0),
                doc->numberOr("gcRuns", 0),
                doc->numberOr("adopted", 0),
                doc->numberOr("staleResults", 0));
    std::printf("free disk      : %.0f byte(s) under the store\n",
                doc->numberOr("freeDiskBytes", 0));
    const JsonValue *jobs = doc->find("jobs");
    if (jobs && jobs->isArray() && !jobs->array.empty()) {
        std::printf("%-44s %-9s %8s %10s %8s\n", "job", "status",
                    "attempts", "backoff s", "wall s");
        for (const auto &j : jobs->array)
            std::printf("%-44s %-9s %8.0f %10.3f %8.3f\n",
                        j.stringOr("job", "?").c_str(),
                        j.stringOr("status", "?").c_str(),
                        j.numberOr("attempts", 0),
                        j.numberOr("backoffSeconds", 0),
                        j.numberOr("wallSeconds", 0));
    }
    std::printf("\n");
}

/**
 * Aggregate an lp_campaign directory: one row per job result, then
 * campaign-wide store economics (hit rate, bytes deduplicated — the
 * "never recompute twice" dividend).
 */
int
reportCampaign(const Options &opt)
{
    reportCampaignStatus(opt);
    DIR *dir = opendir(opt.campaignDir.c_str());
    if (!dir) {
        logError("cannot open campaign directory '%s'",
                 opt.campaignDir.c_str());
        return 2;
    }
    std::vector<std::string> job_dirs;
    while (struct dirent *de = readdir(dir)) {
        if (de->d_name[0] == '.')
            continue;
        job_dirs.push_back(de->d_name);
    }
    closedir(dir);
    std::sort(job_dirs.begin(), job_dirs.end());

    struct Row
    {
        std::string job, uarch, input;
        double threads = 0, chosenK = 0, regions = 0, coverage = 0;
        double errPct = 0, wall = 0;
        double findings = 0, errors = 0, warnings = 0;
        double auditFindings = 0;
        bool haveAnalysis = false;
        bool simHit = false, fullsimHit = false, analysisHit = false;
        double hits = 0, misses = 0, bytesDeduped = 0, bytesRead = 0;
        double bytesStored = 0;
    };
    std::vector<Row> rows;
    size_t bad = 0;
    for (const auto &jd : job_dirs) {
        const std::string path =
            opt.campaignDir + "/" + jd + "/result.json";
        std::string text;
        if (!loadFile(path, text))
            continue; // not a job directory (e.g. the store)
        std::string err;
        auto doc = parseJson(text, &err);
        if (!doc || doc->stringOr("kind", "") != "lp_campaign_job") {
            logError("skipping '%s': %s", path.c_str(),
                     doc ? "not an lp_campaign_job document"
                         : err.c_str());
            ++bad;
            continue;
        }
        Row r;
        r.job = doc->stringOr("job", jd);
        r.uarch = doc->stringOr("uarch", "?");
        r.input = doc->stringOr("input", "?");
        r.threads = doc->numberOr("threads", 0);
        r.chosenK = doc->numberOr("chosenK", 0);
        r.regions = doc->numberOr("regions", 0);
        r.coverage = doc->numberOr("coverage", 0);
        r.errPct = doc->numberOr("runtimeErrorPct", 0);
        r.wall = doc->numberOr("wallSeconds", 0);
        if (const JsonValue *sh = doc->find("stageHits")) {
            auto flag = [&](const char *k) {
                const JsonValue *v = sh->find(k);
                return v && v->isBool() && v->boolean;
            };
            r.analysisHit = flag("record") && flag("profile") &&
                            flag("cluster");
            r.simHit = flag("sim");
            r.fullsimHit = flag("fullsim");
        }
        if (const JsonValue *an = doc->find("analysis")) {
            r.haveAnalysis = true;
            r.findings = an->numberOr("findings", 0);
            r.errors = an->numberOr("errors", 0);
            r.warnings = an->numberOr("warnings", 0);
            r.auditFindings = an->numberOr("auditFindings", 0);
        }
        if (const JsonValue *st = doc->find("store")) {
            r.hits = st->numberOr("hits", 0);
            r.misses = st->numberOr("misses", 0);
            r.bytesStored = st->numberOr("bytesStored", 0);
            r.bytesDeduped = st->numberOr("bytesDeduped", 0);
            r.bytesRead = st->numberOr("bytesRead", 0);
        }
        rows.push_back(std::move(r));
    }

    if (rows.empty()) {
        logError("no lp_campaign_job results under '%s'",
                 opt.campaignDir.c_str());
        return bad ? 1 : 2;
    }

    std::printf("== campaign %s (%zu job(s)) ==\n",
                opt.campaignDir.c_str(), rows.size());
    std::printf("%-40s %-9s %3s %4s %8s %7s %9s %8s %8s\n", "job",
                "uarch", "thr", "K", "cov", "err%", "hit-rate",
                "dedup-B", "wall s");
    double hits = 0, misses = 0, deduped = 0, stored = 0, read = 0;
    size_t sim_hits = 0, analysis_hits = 0;
    for (const auto &r : rows) {
        const double lookups = r.hits + r.misses;
        std::printf("%-40s %-9s %3.0f %4.0f %8.4f %7.2f %8.0f%% "
                    "%8.0f %8.3f\n",
                    r.job.c_str(), r.uarch.c_str(), r.threads,
                    r.chosenK, r.coverage, r.errPct,
                    lookups > 0 ? 100.0 * r.hits / lookups : 0.0,
                    r.bytesDeduped, r.wall);
        hits += r.hits;
        misses += r.misses;
        deduped += r.bytesDeduped;
        stored += r.bytesStored;
        read += r.bytesRead;
        sim_hits += r.simHit ? 1 : 0;
        analysis_hits += r.analysisHit ? 1 : 0;
    }
    const double lookups = hits + misses;
    std::printf("\nstore          : %.0f lookup(s), %.0f%% hit rate, "
                "%.0f byte(s) stored, %.0f read back, %.0f "
                "deduplicated\n",
                lookups,
                lookups > 0 ? 100.0 * hits / lookups : 0.0, stored,
                read, deduped);
    std::printf("stage reuse    : analysis served from store in "
                "%zu/%zu job(s), region sims in %zu/%zu\n",
                analysis_hits, rows.size(), sim_hits, rows.size());
    double findings = 0, errors = 0, warnings = 0, audit = 0;
    size_t have_analysis = 0;
    for (const auto &r : rows) {
        if (!r.haveAnalysis)
            continue;
        ++have_analysis;
        findings += r.findings;
        errors += r.errors;
        warnings += r.warnings;
        audit += r.auditFindings;
    }
    if (have_analysis)
        std::printf("analysis       : %.0f finding(s) across %zu "
                    "job(s) (%.0f error(s), %.0f warning(s), %.0f "
                    "audit finding(s))\n",
                    findings, have_analysis, errors, warnings, audit);
    return bad ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else if (arg.rfind("--trace=", 0) == 0) {
            opt.tracePath = arg.substr(8);
        } else if (arg.rfind("--metrics=", 0) == 0) {
            opt.metricsPath = arg.substr(10);
        } else if (arg.rfind("--campaign=", 0) == 0) {
            opt.campaignDir = arg.substr(11);
        } else if (arg == "--check") {
            opt.check = true;
        } else {
            logError("unknown option '%s'", arg.c_str());
            usage();
            return 2;
        }
    }
    if (opt.tracePath.empty() && opt.metricsPath.empty() &&
        opt.campaignDir.empty()) {
        logError("nothing to do: give --trace, --metrics, or "
                 "--campaign");
        usage();
        return 2;
    }
    int rc = 0;
    if (!opt.tracePath.empty())
        rc = std::max(rc, reportTrace(opt));
    if (!opt.metricsPath.empty())
        rc = std::max(rc, reportMetrics(opt));
    if (!opt.campaignDir.empty())
        rc = std::max(rc, reportCampaign(opt));
    return rc;
}
