/**
 * @file
 * lp_campaign: supervised sweep driver over the artifact store.
 *
 * A thin CLI over src/campaign: the matrix spec and execution knobs
 * parse into a CampaignSpec, the supervision policy (retry budget,
 * watchdog, backoff, disk watermarks, daemon mode, fault injection)
 * into SupervisorOptions, and CampaignSupervisor::run() does the rest.
 * Each job runs in a forked child for crash isolation; see
 * src/campaign/supervisor.hh for the full supervision model.
 *
 * Layout under --out=DIR:
 *
 *   campaign.json             summary (written last, atomically)
 *   campaign.journal          supervisor state (crash-safe; restarts
 *                             adopt completed jobs exactly once)
 *   status.json               live surface (`lp_report --campaign`)
 *   store/                    the shared store (override: --store)
 *   <job>/result.json         one "lp_campaign_job" document per job
 *   <job>/journal             per-job region journal (resume-able)
 *   <job>/.done               completion marker (skip-done)
 *   <job>/.lock               flock target (skip-running)
 *
 * Aggregate with `lp_report --campaign=DIR`. Exit codes follow
 * run_looppoint: 0 all jobs ok, 1 some job degraded/failed/parked,
 * 2 usage, 3 runtime failure, 4 interrupted (drained on SIGINT or
 * SIGTERM; re-invoke to resume exactly-once from the journal).
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/supervisor.hh"
#include "core/experiment.hh"
#include "util/logging.hh"

using namespace looppoint;

namespace {

struct CliOptions
{
    CampaignSpec spec;
    SupervisorOptions sup;
};

void
usage()
{
    std::printf(
        "usage: lp_campaign --out=DIR [options]\n"
        "  --apps=LIST        artifact-style programs\n"
        "                     (default: demo-matrix-1)\n"
        "  --inputs=LIST      input classes (default: test)\n"
        "  --threads=LIST     thread counts (default: 4)\n"
        "  --uarch=LIST       uarch presets: %s\n"
        "                     (default: baseline)\n"
        "  --out=DIR          campaign directory (required)\n"
        "  --store=DIR        artifact store (default: <out>/store)\n"
        "  --jobs=N           host workers per job (default: 1)\n"
        "  --backend=B        pool | procs (default: pool)\n"
        "  --wait-policy=P    passive | active (default: passive)\n"
        "  --seed=N           analysis seed (default: 42)\n"
        "  --no-fullsim       skip per-job ground-truth simulation\n"
        "  --audit            statically cross-check each job's\n"
        "                     artifacts after it runs; finding counts\n"
        "                     land in result.json\n"
        "supervision:\n"
        "  --job-retries=N    extra attempts per failed job\n"
        "                     (default: 2)\n"
        "  --job-timeout=SEC  per-attempt wall-clock watchdog; SIGTERM\n"
        "                     (job parks at the next region boundary\n"
        "                     and resumes on retry), then SIGKILL after\n"
        "                     the grace period. 0 disables (default)\n"
        "  --kill-grace=SEC   SIGTERM -> SIGKILL escalation grace\n"
        "                     (default: 5)\n"
        "  --backoff-base=SEC first retry delay (default: 0.5);\n"
        "                     doubles per retry with deterministic\n"
        "                     per-job jitter\n"
        "  --backoff-cap=SEC  retry delay ceiling (default: 60)\n"
        "  --gc-watermark=BYTES  run store GC before a launch when\n"
        "                     free disk under the store drops below\n"
        "                     this; 0 disables (default)\n"
        "  --gc-floor=BYTES   park the queue when free disk is still\n"
        "                     below this after GC; 0 disables\n"
        "  --gc-target=BYTES  GC size target (default: unlimited, so\n"
        "                     GC only collects orphaned objects and\n"
        "                     never evicts live results)\n"
        "  --daemon           keep running after a pass: rescan the\n"
        "                     matrix on SIGHUP or --rescan interval,\n"
        "                     heartbeat status.json while idle\n"
        "  --rescan=SEC       daemon rescan interval (default: SIGHUP\n"
        "                     only)\n"
        "  --inject-fault=SPEC  deterministic job faults, e.g.\n"
        "                     job:index=2,kind=crash|wedge|\n"
        "                     corrupt-result[,times=M]; ';'-separated\n"
        "  -h, --help         this message\n"
        "\nJobs are grouped by (app, input, threads) so consecutive\n"
        "uarch points reuse the analysis stages from the store. Each\n"
        "job runs in a forked child: crashes cost one attempt, never\n"
        "the sweep. Completed jobs are adopted from campaign.journal\n"
        "on restart (exactly-once); SIGINT/SIGTERM drains at the next\n"
        "job boundary (exit 4, resumable), a second signal kills the\n"
        "running child first.\n",
        uarchPresetNames().c_str());
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos <= s.size()) {
        size_t comma = s.find(',', pos);
        if (comma == std::string::npos) {
            out.push_back(s.substr(pos));
            break;
        }
        out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

bool
parseArg(int argc, char **argv, int &i, const char *long_name,
         std::string *value)
{
    std::string arg = argv[i];
    std::string long_eq = std::string(long_name) + "=";
    if (arg == long_name) {
        if (i + 1 >= argc)
            fatal("option %s requires a value", arg.c_str());
        *value = argv[++i];
        return true;
    }
    if (arg.rfind(long_eq, 0) == 0) {
        *value = arg.substr(long_eq.size());
        return true;
    }
    return false;
}

CliOptions
parseCli(int argc, char **argv)
{
    CliOptions opts;
    CampaignSpec &spec = opts.spec;
    SupervisorOptions &sup = opts.sup;
    std::string value;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            usage();
            std::exit(0);
        } else if (parseArg(argc, argv, i, "--apps", &value)) {
            spec.apps = splitCommas(value);
        } else if (parseArg(argc, argv, i, "--inputs", &value)) {
            spec.inputs = splitCommas(value);
        } else if (parseArg(argc, argv, i, "--threads", &value)) {
            spec.threads.clear();
            for (const auto &t : splitCommas(value))
                spec.threads.push_back(
                    static_cast<uint32_t>(std::stoul(t)));
        } else if (parseArg(argc, argv, i, "--uarch", &value)) {
            spec.uarchs = splitCommas(value);
        } else if (parseArg(argc, argv, i, "--out", &value)) {
            spec.outDir = value;
        } else if (parseArg(argc, argv, i, "--store", &value)) {
            spec.storeDir = value;
        } else if (parseArg(argc, argv, i, "--jobs", &value)) {
            spec.jobs = static_cast<uint32_t>(std::stoul(value));
        } else if (parseArg(argc, argv, i, "--backend", &value)) {
            spec.backend = value;
        } else if (parseArg(argc, argv, i, "--wait-policy", &value)) {
            spec.waitPolicy = value;
        } else if (parseArg(argc, argv, i, "--seed", &value)) {
            spec.seed = std::stoull(value);
        } else if (arg == "--no-fullsim") {
            spec.fullSim = false;
        } else if (arg == "--audit") {
            spec.audit = true;
        } else if (parseArg(argc, argv, i, "--job-retries", &value)) {
            sup.jobRetries = static_cast<uint32_t>(std::stoul(value));
        } else if (parseArg(argc, argv, i, "--job-timeout", &value)) {
            sup.jobTimeoutSeconds = std::stod(value);
        } else if (parseArg(argc, argv, i, "--kill-grace", &value)) {
            sup.killGraceSeconds = std::stod(value);
        } else if (parseArg(argc, argv, i, "--backoff-base", &value)) {
            sup.backoff.baseSeconds = std::stod(value);
        } else if (parseArg(argc, argv, i, "--backoff-cap", &value)) {
            sup.backoff.capSeconds = std::stod(value);
        } else if (parseArg(argc, argv, i, "--gc-watermark", &value)) {
            sup.gcWatermarkBytes = std::stoull(value);
        } else if (parseArg(argc, argv, i, "--gc-floor", &value)) {
            sup.gcFloorBytes = std::stoull(value);
        } else if (parseArg(argc, argv, i, "--gc-target", &value)) {
            sup.gcTargetBytes = std::stoull(value);
        } else if (arg == "--daemon") {
            sup.daemonMode = true;
        } else if (parseArg(argc, argv, i, "--rescan", &value)) {
            sup.rescanSeconds = std::stod(value);
        } else if (parseArg(argc, argv, i, "--inject-fault", &value)) {
            sup.faults = FaultPlan::parse(value);
        } else {
            logError("unknown option '%s'", arg.c_str());
            usage();
            std::exit(2);
        }
    }
    if (spec.storeDir.empty() && !spec.outDir.empty())
        spec.storeDir = spec.outDir + "/store";
    validateCampaignSpec(spec);
    // Only job-site clauses make sense here: sim/corrupt faults fire
    // inside the pipeline, which jobs reach via run_looppoint-style
    // configs, not this driver.
    for (const auto &f : sup.faults.specs())
        if (f.site != FaultSpec::Site::Job)
            fatal("lp_campaign --inject-fault accepts job: clauses "
                  "only (sim:/corrupt: fire inside the pipeline)");
    return opts;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions opts;
    try {
        opts = parseCli(argc, argv);
    } catch (const std::exception &e) {
        logError("lp_campaign: %s", e.what());
        return 2;
    }
    try {
        CampaignSupervisor sup(opts.spec, opts.sup);
        SupervisorResult res = sup.run();
        std::printf("campaign: %zu job(s), %u launch(es), %u "
                    "retry(ies), %u timeout(s), %u adopted, summary "
                    "%s/campaign.json, store %s\n",
                    res.jobs.size(), res.launches, res.retries,
                    res.timeouts, res.adopted,
                    opts.spec.outDir.c_str(),
                    opts.spec.storeDir.c_str());
        if (res.interrupted)
            warn("campaign interrupted; re-invoke the same command "
                 "to resume (completed jobs are adopted from the "
                 "journal)");
        return res.exitCode;
    } catch (const FatalError &e) {
        logError("lp_campaign: %s", e.what());
        return 3;
    }
}
