/**
 * @file
 * lp_campaign: incremental sweep driver over the artifact store.
 *
 * Expands a matrix spec (apps x inputs x threads x uarch presets)
 * into one job per combination and runs each end to end through
 * runExperiment with a shared content-addressed store, so everything
 * the sweep points have in common — recording, profiling, clustering
 * of the same (app, input, threads) triple — is computed once and
 * served from the store for every other uarch point. Re-invoking the
 * same campaign is incremental twice over:
 *
 *   job level   a job with a published result (`.done`) is skipped
 *               outright; a job another process holds the `.lock` of
 *               is skipped as running (crashed holders are harmless:
 *               flock dies with its process)
 *   stage level a job that does run skips every pipeline stage whose
 *               store key hits, including the detailed region
 *               simulations themselves
 *
 * Layout under --out=DIR:
 *
 *   campaign.json             summary (written last, atomically)
 *   store/                    the shared store (override: --store)
 *   <job>/result.json         one "lp_campaign_job" document per job
 *   <job>/.done               completion marker (skip-done)
 *   <job>/.lock               flock target (skip-running)
 *
 * Aggregate with `lp_report --campaign=DIR`. Exit codes follow
 * run_looppoint: 0 all jobs ok, 1 some job degraded, 2 usage,
 * 3 runtime failure.
 */

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/experiment_audit.hh"
#include "core/experiment.hh"
#include "obs/json.hh"
#include "util/logging.hh"

using namespace looppoint;

namespace {

struct CampaignOptions
{
    std::vector<std::string> apps{"demo-matrix-1"};
    std::vector<std::string> inputs{"test"};
    std::vector<uint32_t> threads{4};
    std::vector<std::string> uarchs{"baseline"};
    std::string outDir;
    std::string storeDir; ///< default: <outDir>/store
    uint32_t jobs = 1;
    std::string backend = "pool";
    std::string waitPolicy = "passive";
    uint64_t seed = 42;
    bool fullSim = true;
    /** Run the post-job artifact audit and record its findings. */
    bool audit = false;
};

void
usage()
{
    std::printf(
        "usage: lp_campaign --out=DIR [options]\n"
        "  --apps=LIST        artifact-style programs\n"
        "                     (default: demo-matrix-1)\n"
        "  --inputs=LIST      input classes (default: test)\n"
        "  --threads=LIST     thread counts (default: 4)\n"
        "  --uarch=LIST       uarch presets: %s\n"
        "                     (default: baseline)\n"
        "  --out=DIR          campaign directory (required)\n"
        "  --store=DIR        artifact store (default: <out>/store)\n"
        "  --jobs=N           host workers per job (default: 1)\n"
        "  --backend=B        pool | procs (default: pool)\n"
        "  --wait-policy=P    passive | active (default: passive)\n"
        "  --seed=N           analysis seed (default: 42)\n"
        "  --no-fullsim       skip per-job ground-truth simulation\n"
        "  --audit            statically cross-check each job's\n"
        "                     artifacts after it runs; finding counts\n"
        "                     land in result.json\n"
        "  -h, --help         this message\n"
        "\nJobs are grouped by (app, input, threads) so consecutive\n"
        "uarch points reuse the analysis stages from the store; jobs\n"
        "already done (or running elsewhere) are skipped.\n",
        uarchPresetNames().c_str());
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos <= s.size()) {
        size_t comma = s.find(',', pos);
        if (comma == std::string::npos) {
            out.push_back(s.substr(pos));
            break;
        }
        out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

bool
parseArg(int argc, char **argv, int &i, const char *long_name,
         std::string *value)
{
    std::string arg = argv[i];
    std::string long_eq = std::string(long_name) + "=";
    if (arg == long_name) {
        if (i + 1 >= argc)
            fatal("option %s requires a value", arg.c_str());
        *value = argv[++i];
        return true;
    }
    if (arg.rfind(long_eq, 0) == 0) {
        *value = arg.substr(long_eq.size());
        return true;
    }
    return false;
}

CampaignOptions
parseCli(int argc, char **argv)
{
    CampaignOptions opts;
    std::string value;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            usage();
            std::exit(0);
        } else if (parseArg(argc, argv, i, "--apps", &value)) {
            opts.apps = splitCommas(value);
        } else if (parseArg(argc, argv, i, "--inputs", &value)) {
            opts.inputs = splitCommas(value);
        } else if (parseArg(argc, argv, i, "--threads", &value)) {
            opts.threads.clear();
            for (const auto &t : splitCommas(value))
                opts.threads.push_back(
                    static_cast<uint32_t>(std::stoul(t)));
        } else if (parseArg(argc, argv, i, "--uarch", &value)) {
            opts.uarchs = splitCommas(value);
        } else if (parseArg(argc, argv, i, "--out", &value)) {
            opts.outDir = value;
        } else if (parseArg(argc, argv, i, "--store", &value)) {
            opts.storeDir = value;
        } else if (parseArg(argc, argv, i, "--jobs", &value)) {
            opts.jobs = static_cast<uint32_t>(std::stoul(value));
        } else if (parseArg(argc, argv, i, "--backend", &value)) {
            opts.backend = value;
        } else if (parseArg(argc, argv, i, "--wait-policy", &value)) {
            opts.waitPolicy = value;
        } else if (parseArg(argc, argv, i, "--seed", &value)) {
            opts.seed = std::stoull(value);
        } else if (arg == "--no-fullsim") {
            opts.fullSim = false;
        } else if (arg == "--audit") {
            opts.audit = true;
        } else {
            logError("unknown option '%s'", arg.c_str());
            usage();
            std::exit(2);
        }
    }
    if (opts.outDir.empty())
        fatal("--out=DIR is required");
    if (opts.storeDir.empty())
        opts.storeDir = opts.outDir + "/store";
    if (opts.backend != "pool" && opts.backend != "procs")
        fatal("backend must be 'pool' or 'procs'");
    if (opts.waitPolicy != "passive" && opts.waitPolicy != "active")
        fatal("wait policy must be 'passive' or 'active'");
    // Validate every matrix axis up front: a bad name anywhere is a
    // usage error before any job runs.
    for (const auto &p : opts.apps)
        resolveArtifactProgram(p);
    for (const auto &ic : opts.inputs)
        resolveInputClass(ic);
    for (const auto &u : opts.uarchs) {
        SimConfig scratch;
        applyUarchPreset(scratch, u);
    }
    return opts;
}

void
makeDir(const std::string &path)
{
    if (mkdir(path.c_str(), 0777) != 0 && errno != EEXIST)
        fatal("cannot create directory '%s': %s", path.c_str(),
              strerror(errno));
}

/** One expanded sweep point. */
struct Job
{
    std::string id;      ///< <prog>-<input>-t<T>-<uarch>
    std::string program; ///< artifact-style name
    std::string input;
    uint32_t threads = 0;
    std::string uarch;
    /** done | running | ok | degraded (set as the campaign runs). */
    std::string status;
    double wallSeconds = 0.0;
};

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
writeResultJson(const std::string &path, const Job &job,
                const ExperimentResult &r, const CampaignOptions &opts)
{
    size_t errors = 0, warnings = 0;
    for (const auto &d : r.analysis.diagnostics) {
        errors += d.severity == Severity::Error;
        warnings += d.severity == Severity::Warning;
    }
    std::ostringstream os;
    os << "{\n"
       << "  \"kind\": \"lp_campaign_job\",\n"
       << "  \"job\": " << jsonQuote(job.id) << ",\n"
       << "  \"program\": " << jsonQuote(job.program) << ",\n"
       << "  \"app\": " << jsonQuote(r.app) << ",\n"
       << "  \"input\": " << jsonQuote(job.input) << ",\n"
       << "  \"threads\": " << r.threads << ",\n"
       << "  \"uarch\": " << jsonQuote(job.uarch) << ",\n"
       << "  \"backend\": " << jsonQuote(opts.backend) << ",\n"
       << "  \"chosenK\": " << r.analysis.chosenK << ",\n"
       << "  \"regions\": " << r.analysis.regions.size() << ",\n"
       << "  \"coverage\": " << fmtDouble(r.coverage) << ",\n"
       << "  \"predictedRuntime\": "
       << fmtDouble(r.predicted.runtimeSeconds) << ",\n"
       << "  \"fullsimRuntime\": "
       << fmtDouble(r.haveFullSim ? r.fullSim.runtimeSeconds : 0.0)
       << ",\n"
       << "  \"runtimeErrorPct\": " << fmtDouble(r.runtimeErrorPct)
       << ",\n"
       << "  \"stageHits\": {\"record\": "
       << (r.analysis.stageHashes.recordHit ? "true" : "false")
       << ", \"profile\": "
       << (r.analysis.stageHashes.profileHit ? "true" : "false")
       << ", \"cluster\": "
       << (r.analysis.stageHashes.clusterHit ? "true" : "false")
       << ", \"sim\": " << (r.simStageHit ? "true" : "false")
       << ", \"fullsim\": " << (r.fullSimHit ? "true" : "false")
       << "},\n"
       << "  \"store\": {\"hits\": " << r.storeStats.hits
       << ", \"misses\": " << r.storeStats.misses
       << ", \"publishes\": " << r.storeStats.publishes
       << ", \"corrupt\": " << r.storeStats.corruptEntries
       << ", \"bytesStored\": " << r.storeStats.bytesStored
       << ", \"bytesDeduped\": " << r.storeStats.bytesDeduped
       << ", \"bytesRead\": " << r.storeStats.bytesRead << "},\n"
       << "  \"analysis\": {\"findings\": "
       << r.analysis.diagnostics.size() << ", \"errors\": " << errors
       << ", \"warnings\": " << warnings
       << ", \"auditFindings\": " << r.auditFindings << "},\n"
       << "  \"wallSeconds\": " << fmtDouble(job.wallSeconds) << "\n"
       << "}\n";
    const std::string tmp = path + ".tmp";
    {
        std::ofstream f(tmp);
        if (!f)
            fatal("cannot write '%s'", tmp.c_str());
        f << os.str();
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("cannot publish '%s': %s", path.c_str(),
              strerror(errno));
}

int
runJob(Job &job, const std::string &job_dir,
       const CampaignOptions &opts)
{
    ExperimentConfig cfg;
    cfg.app = resolveArtifactProgram(job.program);
    cfg.input = resolveInputClass(job.input);
    cfg.requestedThreads = job.threads;
    cfg.waitPolicy = opts.waitPolicy == "active" ? WaitPolicy::Active
                                                 : WaitPolicy::Passive;
    cfg.jobs = opts.jobs;
    cfg.simulateFull = opts.fullSim;
    cfg.loopPoint.seed = opts.seed;
    applyUarchPreset(cfg.sim, job.uarch);
    cfg.sim.backend = opts.backend == "procs" ? ExecBackendKind::Procs
                                              : ExecBackendKind::Pool;
    cfg.storeDir = opts.storeDir;
    if (cfg.input == InputClass::Test)
        cfg.loopPoint.sliceSizePerThread = 25'000;

    auto t0 = std::chrono::steady_clock::now();
    ExperimentResult r = runExperiment(cfg);
    if (opts.audit)
        auditExperiment(cfg, r);
    job.wallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    job.status = r.coverage < 1.0 ? "degraded" : "ok";

    writeResultJson(job_dir + "/result.json", job, r, opts);
    std::ofstream done(job_dir + "/.done");
    done << job.status << "\n";
    return r.coverage < 1.0 ? 1 : 0;
}

void
writeCampaignJson(const std::string &path, const CampaignOptions &opts,
                  const std::vector<Job> &jobs)
{
    size_t ran = 0, done = 0, running = 0, degraded = 0;
    for (const auto &j : jobs) {
        if (j.status == "ok")
            ++ran;
        else if (j.status == "done")
            ++done;
        else if (j.status == "running")
            ++running;
        else if (j.status == "degraded")
            ++degraded;
    }
    std::ostringstream os;
    os << "{\n"
       << "  \"kind\": \"lp_campaign\",\n"
       << "  \"store\": " << jsonQuote(opts.storeDir) << ",\n"
       << "  \"backend\": " << jsonQuote(opts.backend) << ",\n"
       << "  \"jobsTotal\": " << jobs.size() << ",\n"
       << "  \"jobsRan\": " << ran << ",\n"
       << "  \"jobsSkippedDone\": " << done << ",\n"
       << "  \"jobsSkippedRunning\": " << running << ",\n"
       << "  \"jobsDegraded\": " << degraded << ",\n"
       << "  \"jobs\": [\n";
    for (size_t i = 0; i < jobs.size(); ++i)
        os << "    {\"job\": " << jsonQuote(jobs[i].id)
           << ", \"status\": " << jsonQuote(jobs[i].status)
           << ", \"wallSeconds\": " << fmtDouble(jobs[i].wallSeconds)
           << "}" << (i + 1 < jobs.size() ? "," : "") << "\n";
    os << "  ]\n}\n";
    const std::string tmp = path + ".tmp";
    {
        std::ofstream f(tmp);
        if (!f)
            fatal("cannot write '%s'", tmp.c_str());
        f << os.str();
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("cannot publish '%s': %s", path.c_str(),
              strerror(errno));
}

int
runCampaign(const CampaignOptions &opts)
{
    makeDir(opts.outDir);

    // Expansion order is the incremental-reuse order: all uarch points
    // of one (app, input, threads) triple are adjacent, so after the
    // first the analysis stages are store hits.
    std::vector<Job> jobs;
    for (const auto &prog : opts.apps)
        for (const auto &input : opts.inputs)
            for (uint32_t threads : opts.threads)
                for (const auto &uarch : opts.uarchs) {
                    Job j;
                    j.program = prog;
                    j.input = input;
                    j.threads = threads;
                    j.uarch = uarch;
                    j.id = prog + "-" + input + "-t" +
                           std::to_string(threads) + "-" + uarch;
                    jobs.push_back(std::move(j));
                }

    int rc = 0;
    for (auto &job : jobs) {
        const std::string job_dir = opts.outDir + "/" + job.id;
        makeDir(job_dir);

        struct stat st;
        if (stat((job_dir + "/.done").c_str(), &st) == 0) {
            job.status = "done";
            std::printf("[skip] %-44s already done\n", job.id.c_str());
            continue;
        }

        // Skip-running: the lock dies with its holder, so a crashed
        // job never wedges the campaign — the next invocation reruns
        // it (and the store makes the rerun cheap).
        int lock_fd = open((job_dir + "/.lock").c_str(),
                           O_CREAT | O_RDWR | O_CLOEXEC, 0666);
        if (lock_fd < 0)
            fatal("cannot open '%s/.lock': %s", job_dir.c_str(),
                  strerror(errno));
        if (flock(lock_fd, LOCK_EX | LOCK_NB) != 0) {
            close(lock_fd);
            job.status = "running";
            std::printf("[skip] %-44s running elsewhere\n",
                        job.id.c_str());
            continue;
        }

        std::printf("[run ] %s\n", job.id.c_str());
        std::fflush(stdout);
        rc = std::max(rc, runJob(job, job_dir, opts));
        std::printf("[%s] %-44s %.3f s\n",
                    job.status == "ok" ? " ok " : "DEGR",
                    job.id.c_str(), job.wallSeconds);

        flock(lock_fd, LOCK_UN);
        close(lock_fd);
    }

    writeCampaignJson(opts.outDir + "/campaign.json", opts, jobs);
    std::printf("campaign: %zu job(s), summary %s/campaign.json, "
                "store %s\n",
                jobs.size(), opts.outDir.c_str(),
                opts.storeDir.c_str());
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    CampaignOptions opts;
    try {
        opts = parseCli(argc, argv);
    } catch (const std::exception &e) {
        logError("lp_campaign: %s", e.what());
        return 2;
    }
    try {
        return runCampaign(opts);
    } catch (const FatalError &e) {
        logError("lp_campaign: %s", e.what());
        return 3;
    }
}
